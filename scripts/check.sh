#!/usr/bin/env bash
# Correctness gate for GCSM: builds every analysis preset and runs the test
# suite under each. Intended as the local "tier-1.5" check before a PR:
#
#   scripts/check.sh            # all presets
#   scripts/check.sh asan-ubsan # just one
#
# Presets (see CMakePresets.json; all build with GCSM_WERROR=ON):
#   asan-ubsan — AddressSanitizer + UBSan, invariant checks on
#   tsan       — ThreadSanitizer
#   checks     — plain build with GCSM_ENABLE_CHECKS=ON (GCSM_ASSERT hot-path
#                asserts + batch-boundary validate() in Pipeline); also runs
#                the gcsm_lint contract linter and the bench --json smoke
#   tidy       — clang-tidy over src/ (skipped when clang-tidy is not
#                installed; the .clang-tidy config is still the gate in
#                environments that have it)
#
# Opt-in stages (never run by default; name them explicitly):
#   soak       — scripts/soak.sh: time-capped poison-tenant fault-matrix
#                soak of the multi-query circuit breaker against the
#                default build (GCSM_SOAK_SECONDS caps it, default 120)
#
#   scripts/check.sh soak                      # just the soak
#   GCSM_SOAK_SECONDS=600 scripts/check.sh asan-ubsan soak
set -u

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
# Fail hard on the first sanitizer report; keep output readable.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0:halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

failures=()

run() {
  echo "+ $*"
  "$@"
}

run_preset() {
  local preset="$1"
  echo
  echo "=== preset: ${preset} ==="
  if ! run cmake --preset "${preset}"; then
    failures+=("${preset}: configure")
    return
  fi
  if ! run cmake --build --preset "${preset}" -j "${JOBS}"; then
    failures+=("${preset}: build")
    return
  fi
  # The tidy preset is a build-only gate: a clang-tidy diagnostic fails the
  # compile (warnings-as-errors), so there is nothing extra to run.
  if [ "${preset}" = "tidy" ]; then
    return
  fi
  if ! run ctest --preset "${preset}" -j "${JOBS}"; then
    failures+=("${preset}: tests")
  fi
  # The fault-injection matrix must hold under the sanitizers: recovery paths
  # (rollback, retry, CPU fallback) are exactly where leaks and UB hide.
  if [ "${preset}" = "asan-ubsan" ]; then
    if ! run ctest --preset faults-asan -j "${JOBS}"; then
      failures+=("faults-asan: tests")
    fi
    # Observability layer (registry concurrency, JSON schemas, regressions)
    # under the same sanitizers.
    if ! run ctest --preset metrics-asan -j "${JOBS}"; then
      failures+=("metrics-asan: tests")
    fi
    # Durability layer (WAL torn tails, snapshot round trips, the crash
    # matrix): every injected-crash recovery path runs with the sanitizers
    # watching for leaks of half-written state.
    if ! run ctest --preset durability-asan -j "${JOBS}"; then
      failures+=("durability-asan: tests")
    fi
    # Multi-query serving engine (registry durability, bit-identity vs
    # independent pipelines, shared-cache arbitration) under asan/ubsan.
    if ! run ctest --preset multiquery-asan -j "${JOBS}"; then
      failures+=("multiquery-asan: tests")
    fi
    # Tenant isolation (circuit breaker, quarantine, catch-up replay,
    # kill-during-catch-up crash matrix) under asan/ubsan.
    if ! run ctest --preset breaker-asan -j "${JOBS}"; then
      failures+=("breaker-asan: tests")
    fi
    # Pipelined batch schedule (process_stream staging, double-buffered
    # cache epochs, group-commit surfacing) under asan/ubsan.
    if ! run ctest --preset pipeline-asan -j "${JOBS}"; then
      failures+=("pipeline-asan: tests")
    fi
    # Overload protection (admission control, bounded ingress queue,
    # deadline shedding + kShed audit, degradation ladder, traffic
    # generator) under asan/ubsan.
    if ! run ctest --preset overload-asan -j "${JOBS}"; then
      failures+=("overload-asan: tests")
    fi
    # Multi-device sharding (partitioner, cut-edge replication, branch
    # stitching, bit-identity vs the single-device engine with and without
    # the fault matrix) under asan/ubsan.
    if ! run ctest --preset shard-asan -j "${JOBS}"; then
      failures+=("shard-asan: tests")
    fi
  fi
  # The match fan-out across queries is the concurrency hot spot: the
  # multiquery label (engine suite + ThreadPool stress) is the tsan target,
  # and the breaker's trip/re-join staging races against the same fan-out.
  if [ "${preset}" = "tsan" ]; then
    if ! run ctest --preset multiquery-tsan -j "${JOBS}"; then
      failures+=("multiquery-tsan: tests")
    fi
    if ! run ctest --preset breaker-tsan -j "${JOBS}"; then
      failures+=("breaker-tsan: tests")
    fi
    # Pipelined schedule overlap stress (200 batches, 8 queries, faults at
    # p=0.05): the staged front half races the match fan-out on one pool
    # while the group-commit committer drains — tsan's richest target.
    if ! run ctest --preset pipeline-tsan -j "${JOBS}"; then
      failures+=("pipeline-tsan: tests")
    fi
    # Overload controller wall-clock paths: submit() backpressure parks
    # producer threads against serve_pending()'s drain — the ParkingLot
    # handoff and the shed-while-parked wakeups are tsan's target here.
    if ! run ctest --preset overload-tsan -j "${JOBS}"; then
      failures+=("overload-tsan: tests")
    fi
    # Sharded matching: shard tasks fan out on one pool and hand partials
    # across per-shard outboxes at superstep barriers — that hand-off is
    # tsan's target here.
    if ! run ctest --preset shard-tsan -j "${JOBS}"; then
      failures+=("shard-tsan: tests")
    fi
  fi
  # Bench smoke + --json schema gate (docs/OBSERVABILITY.md): a reduced
  # fig08 run must emit a report that the schema checker accepts.
  if [ "${preset}" = "checks" ]; then
    # Contract linter (docs/ANALYSIS.md "Static analysis"): registry-backed
    # rules over src/ — raw metric/fault-site literals, doc drift, throws
    # outside the gcsm::Error taxonomy, stray relaxed atomics, naked locks.
    # Diagnostics are `file:line: rule: message`.
    if ! run "build-${preset}/tools/gcsm_lint" .; then
      failures+=("${preset}: gcsm_lint")
    fi
    local report="build-${preset}/bench_smoke.json"
    if ! run "build-${preset}/bench/fig08_fr" --scale=0.05 --batches=1 \
         --json="${report}" > /dev/null; then
      failures+=("${preset}: bench smoke")
    elif command -v python3 > /dev/null 2>&1; then
      if ! run python3 scripts/check_bench_json.py "${report}"; then
        failures+=("${preset}: bench json schema")
      fi
    else
      echo "bench json schema check SKIPPED (python3 not installed)"
    fi
    # The multi-query bench shares the same --json schema contract.
    local mq_report="build-${preset}/bench_multi_query_smoke.json"
    if ! run "build-${preset}/bench/multi_query" --scale=0.05 --batches=1 \
         --json="${mq_report}" > /dev/null; then
      failures+=("${preset}: multi_query bench smoke")
    elif command -v python3 > /dev/null 2>&1; then
      if ! run python3 scripts/check_bench_json.py "${mq_report}"; then
        failures+=("${preset}: multi_query bench json schema")
      fi
    fi
    # The overload bench adds the "overload" section (goodput, shed rate,
    # latency percentiles, conservation) to the same schema.
    local ovl_report="build-${preset}/bench_overload_smoke.json"
    if ! run "build-${preset}/bench/overload" --scale=0.05 --batches=8 \
         --json="${ovl_report}" > /dev/null; then
      failures+=("${preset}: overload bench smoke")
    elif command -v python3 > /dev/null 2>&1; then
      if ! run python3 scripts/check_bench_json.py "${ovl_report}"; then
        failures+=("${preset}: overload bench json schema")
      fi
    fi
    # The sharded-matching bench adds the "sharded" section (per-shard peak
    # cache bytes vs the single-device peak, stitch share, speedup vs 1
    # shard) to the same schema — and asserts bit-identical counts itself.
    local shard_report="build-${preset}/bench_sharded_smoke.json"
    if ! run "build-${preset}/bench/sharded_match" --scale=0.05 --batches=2 \
         --json="${shard_report}" > /dev/null; then
      failures+=("${preset}: sharded_match bench smoke")
    elif command -v python3 > /dev/null 2>&1; then
      if ! run python3 scripts/check_bench_json.py "${shard_report}"; then
        failures+=("${preset}: sharded_match bench json schema")
      fi
    fi
  fi
}

if [ "$#" -gt 0 ]; then
  presets=("$@")
else
  presets=(asan-ubsan tsan checks tidy)
fi

for preset in "${presets[@]}"; do
  # Opt-in soak stage: not a CMake preset — builds the default preset and
  # hands off to scripts/soak.sh (time cap via GCSM_SOAK_SECONDS).
  if [ "${preset}" = "soak" ]; then
    echo
    echo "=== stage: soak (opt-in) ==="
    if ! run cmake --preset default ||
       ! run cmake --build --preset default -j "${JOBS}"; then
      failures+=("soak: build")
    elif ! run scripts/soak.sh "${GCSM_SOAK_SECONDS:-120}"; then
      failures+=("soak")
    fi
    continue
  fi
  if [ "${preset}" = "tidy" ] && ! command -v clang-tidy > /dev/null 2>&1; then
    echo
    echo "=== preset: tidy — SKIPPED (clang-tidy not installed) ==="
    continue
  fi
  run_preset "${preset}"
done

echo
if [ "${#failures[@]}" -gt 0 ]; then
  echo "check.sh: FAILED presets:"
  printf '  %s\n' "${failures[@]}"
  exit 1
fi
echo "check.sh: all presets clean"
