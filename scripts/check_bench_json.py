#!/usr/bin/env python3
"""Validates a bench --json report against the stable schema.

Usage: check_bench_json.py REPORT.json

The schema is documented in docs/OBSERVABILITY.md and emitted by
bench/harness.cpp:write_json_report. This checker is intentionally strict
about required keys and types (extra keys are a schema change and fail),
so drift between the emitter, the docs, and downstream consumers is caught
by the scripts/check.sh smoke run.
"""
import json
import numbers
import sys


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(obj, required, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected object, got {type(obj).__name__}")
    missing = required.keys() - obj.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    extra = obj.keys() - required.keys()
    if extra:
        fail(f"{where}: unexpected keys {sorted(extra)} (schema change?)")
    for key, kind in required.items():
        if not isinstance(obj[key], kind) or (
            kind is not bool and isinstance(obj[key], bool)
        ):
            fail(
                f"{where}.{key}: expected {kind}, "
                f"got {type(obj[key]).__name__}"
            )


CACHE_KEYS = {
    "hits": int,
    "misses": int,
    "hit_rate": numbers.Real,
    "cached_vertices": int,
}

BATCH_KEYS = {
    "query": str,
    "engine": str,
    "batch": int,
    "wall_ms": numbers.Real,
    "sim_s": numbers.Real,
    "embeddings": int,
    "retries": int,
    "cpu_fallback": bool,
    "cache": dict,
}

CONFIG_KEYS = {
    "scale": numbers.Real,
    "labels": int,
    "batch": int,
    "batches": int,
    "workers": int,
    "seed": int,
    "budget_bytes": int,
    "walks": int,
    "duration_s": numbers.Real,
}

# bench/overload adds this section: admission-control conservation plus the
# goodput / shed-rate / latency summary of the overload run.
OVERLOAD_KEYS = {
    "offered": int,
    "admitted": int,
    "committed": int,
    "shed": int,
    "rejected": int,
    "overload_factor": numbers.Real,
    "goodput_batches_per_s": numbers.Real,
    "shed_rate": numbers.Real,
    "latency_ms": dict,
}


# bench/sharded_match adds this section: one entry per shard-count config
# plus the single-device peak cache footprint the per-shard slices compare
# against (DESIGN.md "Multi-device sharding").
SHARDED_KEYS = {
    "single_device_peak_cache_bytes": int,
    "configs": list,
}

SHARDED_CONFIG_KEYS = {
    "shards": int,
    "partition": str,
    "max_shard_cache_bytes": int,
    "routed_joins": int,
    "stitch_candidates": int,
    "stitch_share": numbers.Real,
    "speedup_vs_1shard": numbers.Real,
    "sim_s": numbers.Real,
    "cut_edges": int,
    "imbalance": numbers.Real,
}


def check_sharded(sh):
    check_keys(sh, SHARDED_KEYS, "sharded")
    if not sh["configs"]:
        fail("sharded.configs: empty (no shard-count configs in the run)")
    peak = sh["single_device_peak_cache_bytes"]
    for i, c in enumerate(sh["configs"]):
        where = f"sharded.configs[{i}]"
        check_keys(c, SHARDED_CONFIG_KEYS, where)
        if c["shards"] <= 0:
            fail(f"{where}.shards must be positive")
        if c["partition"] not in ("range", "hash"):
            fail(f"{where}.partition: unknown strategy {c['partition']!r}")
        if not 0.0 <= c["stitch_share"]:
            fail(f"{where}.stitch_share negative")
        if c["speedup_vs_1shard"] <= 0.0:
            fail(f"{where}.speedup_vs_1shard must be positive")
        if c["imbalance"] < 1.0:
            fail(f"{where}.imbalance below 1.0 (max/mean by definition)")
        # The point of the exercise: partitioning must shrink the per-device
        # peak footprint once the graph is spread over >= 4 devices.
        if peak > 0 and c["shards"] >= 4 and not (
            c["max_shard_cache_bytes"] < peak
        ):
            fail(
                f"{where}: max_shard_cache_bytes "
                f"{c['max_shard_cache_bytes']} not strictly below the "
                f"single-device peak {peak} at {c['shards']} shards"
            )


def check_overload(ovl):
    check_keys(ovl, OVERLOAD_KEYS, "overload")
    check_keys(
        ovl["latency_ms"],
        {"p50": numbers.Real, "p95": numbers.Real, "p99": numbers.Real},
        "overload.latency_ms",
    )
    lat = ovl["latency_ms"]
    if not lat["p50"] <= lat["p95"] <= lat["p99"]:
        fail("overload.latency_ms: percentiles not monotone (p50<=p95<=p99)")
    if ovl["offered"] != ovl["admitted"] + ovl["rejected"]:
        fail("overload: offered != admitted + rejected (books not conserved)")
    if ovl["admitted"] != ovl["committed"] + ovl["shed"]:
        fail("overload: admitted != committed + shed (books not conserved)")
    if not 0.0 <= ovl["shed_rate"]:
        fail("overload.shed_rate negative")
    if ovl["overload_factor"] <= 0.0:
        fail("overload.overload_factor must be positive")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py REPORT.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{sys.argv[1]}: {e}")

    top = {
        "dataset": str,
        "queries": list,
        "config": dict,
        "per_batch": list,
        "aggregate": dict,
    }
    if "overload" in doc:
        top["overload"] = dict
    if "sharded" in doc:
        top["sharded"] = dict
    check_keys(doc, top, "report")
    if not all(isinstance(q, str) for q in doc["queries"]):
        fail("queries: every entry must be a string")
    check_keys(doc["config"], CONFIG_KEYS, "config")

    if not doc["per_batch"]:
        fail("per_batch: empty (the run produced no batches)")
    for i, rec in enumerate(doc["per_batch"]):
        where = f"per_batch[{i}]"
        check_keys(rec, BATCH_KEYS, where)
        check_keys(rec["cache"], CACHE_KEYS, f"{where}.cache")

    agg = doc["aggregate"]
    check_keys(
        agg,
        {
            "wall_ms": numbers.Real,
            "sim_s": numbers.Real,
            "latency_ms": dict,
            "cache": dict,
        },
        "aggregate",
    )
    check_keys(
        agg["latency_ms"],
        {"p50": numbers.Real, "p95": numbers.Real, "p99": numbers.Real},
        "aggregate.latency_ms",
    )
    lat = agg["latency_ms"]
    if not lat["p50"] <= lat["p95"] <= lat["p99"]:
        fail("aggregate.latency_ms: percentiles not monotone (p50<=p95<=p99)")
    check_keys(
        agg["cache"],
        {"hits": int, "misses": int, "hit_rate": numbers.Real},
        "aggregate.cache",
    )
    if not 0.0 <= agg["cache"]["hit_rate"] <= 1.0:
        fail("aggregate.cache.hit_rate outside [0, 1]")

    if "overload" in doc:
        check_overload(doc["overload"])
    if "sharded" in doc:
        check_sharded(doc["sharded"])

    print(
        f"check_bench_json: OK — {doc['dataset']}, "
        f"{len(doc['queries'])} queries, "
        f"{len(doc['per_batch'])} per-batch records"
    )


if __name__ == "__main__":
    main()
