#!/usr/bin/env bash
# Time-capped poison-tenant soak for the multi-query circuit breaker
# (docs/ROBUSTNESS.md, "Tenant isolation & circuit breaker").
#
# Each pass streams batches through csm_cli's multi-query path with EVERY
# armable fault site lit at a low probability AND one query poisoned at
# match.query p=1.0. The poison tenant must trip to quarantine while the
# batches keep committing for the healthy tenants. A pass that dies from
# the background fault matrix (exit 1: injected WAL/snapshot I/O error;
# exit 3: ladder exhausted) is resumed with --recover against its WAL dir,
# which soaks the breaker's durable-recovery path too; a pass that never
# trips the poison query, exits with a config error, or burns through its
# resume budget fails the soak.
#
#   scripts/soak.sh [seconds]        # default 120; or GCSM_SOAK_SECONDS
#   GCSM_SOAK_BIN=build-foo/examples/csm_cli scripts/soak.sh 600
#
# scripts/check.sh runs this as the opt-in `soak` stage:
#   scripts/check.sh soak
set -u

cd "$(dirname "$0")/.."

CAP="${1:-${GCSM_SOAK_SECONDS:-120}}"
BIN="${GCSM_SOAK_BIN:-build/examples/csm_cli}"
if [ ! -x "${BIN}" ]; then
  echo "soak.sh: ${BIN} not built (run: cmake --build build -j)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

passes=0
resumes=0
batches=0
seed=101
echo "soak.sh: poison-tenant soak — cap ${CAP}s, bin ${BIN}"
while [ "${SECONDS}" -lt "${CAP}" ]; do
  wal="${workdir}/wal"
  rm -rf "${wal}"
  mkdir -p "${wal}"
  log="${workdir}/pass.log"
  # Each pass is wall-clock bounded to the soak budget that remains:
  # --duration-s makes csm_cli stop cleanly mid-stream (WAL flushed,
  # partial report printed) instead of overshooting the cap.
  left=$((CAP - SECONDS))
  [ "${left}" -lt 1 ] && break
  args=(--dataset=FR --scale=0.1 --engine=gcsm
        --query=triangle --query=Q1 --query=diamond --query=Q2
        --batch=128 --batches=32 --seed="${seed}"
        --duration-s="${left}"
        --faults=0.12 --fault-seed="${seed}"
        --poison-query=1 --breaker-trip-after=1 --breaker-cooldown=64
        --wal-dir="${wal}" --snapshot-every=4)
  "${BIN}" "${args[@]}" > "${log}" 2>&1
  rc=$?
  lives=0
  while { [ "${rc}" -eq 1 ] || [ "${rc}" -eq 3 ]; } &&
        [ "${lives}" -lt 20 ]; do
    lives=$((lives + 1))
    resumes=$((resumes + 1))
    left=$((CAP - SECONDS))
    [ "${left}" -lt 1 ] && left=1
    # Fresh fault seed per resume: recovery suspends fault probes, so a
    # resume with the original seed replays the exact fault sequence that
    # killed the run — an unlucky seed would death-loop through every life.
    "${BIN}" "${args[@]}" --duration-s="${left}" \
      --fault-seed=$((seed + 997 * lives)) --recover >> "${log}" 2>&1
    rc=$?
  done
  if [ "${rc}" -ne 0 ]; then
    echo "soak.sh: FAILED — exit ${rc} on pass ${passes} (seed ${seed}," \
         "${lives} resumes); last log lines:" >&2
    tail -n 30 "${log}" >&2
    exit 1
  fi
  # A pass clipped by the duration cap may legitimately stop before the
  # poison query's first failure; only a FULL pass must show the trip.
  if ! grep -q 'duration cap reached' "${log}" &&
     ! grep -Eq 'breaker:.*(tripped|quarantined)' "${log}"; then
    echo "soak.sh: FAILED — poison query never tripped on pass ${passes}" \
         "(seed ${seed}); last log lines:" >&2
    tail -n 30 "${log}" >&2
    exit 1
  fi
  passes=$((passes + 1))
  batches=$((batches + 32))
  seed=$((seed + 1))
done

if [ "${passes}" -eq 0 ]; then
  echo "soak.sh: FAILED — time cap ${CAP}s too small for a single pass" >&2
  exit 1
fi
echo "soak.sh: OK — ${passes} passes, ${batches} batches," \
     "${resumes} fault resumes in ${SECONDS}s"
