// Structured error taxonomy for the GCSM service layer.
//
// Every failure the pipeline can recover from — or must report — carries an
// ErrorCode, so callers branch on machine-readable codes instead of matching
// what() strings. The taxonomy splits along the recovery matrix documented
// in docs/ROBUSTNESS.md:
//
//   * transient faults (a failed DMA, a refused kernel launch, a watchdog-
//     cancelled kernel, an interrupted batch apply) — safe to retry after
//     rolling the dynamic graph back to its pre-batch snapshot;
//   * capacity faults (device OOM) — retrying verbatim cannot help; the
//     pipeline degrades by shrinking the cache budget, then falls back to
//     the CPU engine;
//   * permanent faults (unparseable input, broken invariants, bad
//     configuration) — surfaced to the caller with the batch rolled back.
//
// Error derives from std::runtime_error so existing catch sites keep
// working; DeviceOomError and the kernel fault types derive from Error so
// new code can catch the whole taxonomy with one clause.
#pragma once

#include <stdexcept>
#include <string>

namespace gcsm {

enum class ErrorCode {
  kUnknown = 0,
  // IO / input.
  kIoOpen,       // cannot open a file for reading or writing
  kIoParse,      // malformed content (bad token, bad magic)
  kIoTruncated,  // file ends before the promised payload
  // Device / kernel (simulated GPU).
  kDeviceOom,      // allocation exceeds device capacity
  kDeviceDma,      // a host->device copy failed (transient)
  kKernelLaunch,   // the kernel launch was refused (transient)
  kKernelTimeout,  // the watchdog cancelled a hung kernel (transient)
  // Pipeline stages.
  kCacheBuild,     // DCSR pack failed mid-build (transient)
  kGraphApply,     // batch apply interrupted mid-append (transient)
  kBatchRejected,  // a batch failed permanently after all recovery
  kConfig,         // a setting the pipeline cannot satisfy
  kOverload,       // admission refused: the ingress queue is full and the
                   // caller asked not to block (docs/ROBUSTNESS.md,
                   // "Overload & admission control")
  // Durability layer (docs/ROBUSTNESS.md, "Durability & recovery").
  kWalWrite,       // a WAL append or fsync failed (transient)
  kSnapshotWrite,  // a snapshot write failed pre-rename (transient)
  kCrash,          // injected crash: the write in progress was torn
  kRecovery,       // startup recovery failed (replay/counter mismatch)
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kIoOpen:
      return "io-open";
    case ErrorCode::kIoParse:
      return "io-parse";
    case ErrorCode::kIoTruncated:
      return "io-truncated";
    case ErrorCode::kDeviceOom:
      return "device-oom";
    case ErrorCode::kDeviceDma:
      return "device-dma";
    case ErrorCode::kKernelLaunch:
      return "kernel-launch";
    case ErrorCode::kKernelTimeout:
      return "kernel-timeout";
    case ErrorCode::kCacheBuild:
      return "cache-build";
    case ErrorCode::kGraphApply:
      return "graph-apply";
    case ErrorCode::kBatchRejected:
      return "batch-rejected";
    case ErrorCode::kConfig:
      return "config";
    case ErrorCode::kOverload:
      return "overload";
    case ErrorCode::kWalWrite:
      return "wal-write";
    case ErrorCode::kSnapshotWrite:
      return "snapshot-write";
    case ErrorCode::kCrash:
      return "crash";
    case ErrorCode::kRecovery:
      return "recovery";
  }
  return "?";
}

// True when retrying the same operation (after rollback) may succeed: the
// fault models a momentary condition, not a capacity or input problem.
inline bool error_code_transient(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeviceDma:
    case ErrorCode::kKernelLaunch:
    case ErrorCode::kKernelTimeout:
    case ErrorCode::kCacheBuild:
    case ErrorCode::kGraphApply:
    case ErrorCode::kWalWrite:
    case ErrorCode::kSnapshotWrite:
      return true;
    default:
      return false;
  }
}

// Process exit-code contract for the drivers (csm_cli, bench binaries);
// documented in docs/ROBUSTNESS.md:
//   1 — permanent gcsm::Error (IO, rejected batch, recovery failure, ...);
//   2 — configuration / parse error (bad flag, malformed input);
//   3 — unrecoverable device error (OOM, DMA, launch, watchdog timeout).
inline int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kConfig:
    case ErrorCode::kIoParse:
      return 2;
    case ErrorCode::kDeviceOom:
    case ErrorCode::kDeviceDma:
    case ErrorCode::kKernelLaunch:
    case ErrorCode::kKernelTimeout:
      return 3;
    default:
      return 1;
  }
}

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }
  bool transient() const { return error_code_transient(code_); }

 private:
  ErrorCode code_;
};

// Deterministic injected crash (fault site `crash.at`): the write in
// progress was torn at a configured byte offset and the process is presumed
// dead from this point on. Crash-matrix tests catch this, destroy the
// pipeline without any cleanup of the durable state, and restart with
// recover-on-start — the in-process analog of kill -9.
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& what)
      : Error(ErrorCode::kCrash, what) {}
};

}  // namespace gcsm
