// Interruptible backoff parking (docs/MULTI_QUERY.md, "Batch semantics").
//
// The retry ladders used to back off with std::this_thread::sleep_for,
// which pins the calling thread — a pool worker or the batch driver — for
// the full delay even when the run is being torn down or the next batch is
// already waiting. A ParkingLot gives the same bounded delay as a
// condition-variable wait that interrupt_all() can cut short, mirroring
// the ready-at parking the multi-query match fan-out uses for per-task
// backoff.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace gcsm::util {

class ParkingLot {
 public:
  // Blocks for roughly `ms` milliseconds, returning early if
  // interrupt_all() is called in the meantime. ms <= 0 returns immediately.
  void park_for_ms(double ms) {
    if (ms <= 0.0) return;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t seen = epoch_;
    cv_.wait_until(lock, deadline, [&] { return epoch_ != seen; });
  }

  // Wakes every parked thread immediately (teardown, next batch ready).
  void interrupt_all() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++epoch_;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
};

}  // namespace gcsm::util
