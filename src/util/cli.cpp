#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace gcsm {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = a.substr(0, eq);
      value = a.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = a;
      value = argv[++i];
    } else {
      name = a;  // boolean flag
    }
    flags_[name] = value;
    occurrences_.emplace_back(std::move(name), std::move(value));
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::vector<std::string> CliArgs::get_all(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : occurrences_) {
    if (flag == name) values.push_back(value);
  }
  return values;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw Error(ErrorCode::kConfig,
                "invalid integer for --" + name + ": " + it->second);
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw Error(ErrorCode::kConfig,
                "invalid number for --" + name + ": " + it->second);
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  if (it->second.empty() || it->second == "1" || it->second == "true") {
    return true;
  }
  return false;
}

}  // namespace gcsm
