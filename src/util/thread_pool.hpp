// A small work-sharing thread pool.
//
// Used by the CPU matching engine (parallel-for over the update batch, like
// the paper's 32-thread OpenMP loop) and by the SIMT executor in gpusim/ to
// back simulated thread blocks with host threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcsm {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  // Runs body(worker_id) on every worker (including the caller, as worker 0)
  // and blocks until all return. worker_id is in [0, size()).
  void run_on_all(const std::function<void(std::size_t)>& body);

  // Dynamic parallel-for over [0, n) with grain-sized chunks claimed from a
  // shared atomic counter (work stealing in the trivial sense). Blocks until
  // complete. body(begin, end, worker_id).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& body);

 private:
  struct Task;

  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace gcsm
