// Minimal command-line flag parsing shared by the benchmark binaries and
// examples: `--name=value` / `--name value` / boolean `--name`.
//
// Numeric getters are strict: a malformed or out-of-range value (e.g.
// `--batch=abc`) throws Error(kConfig) naming the flag and the offending
// value, so every driver reports `flag: value` on one line and exits
// nonzero instead of silently running with a garbage parameter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gcsm {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Every value given for a repeated flag, in command-line order (the
  // scalar getters above keep their last-one-wins behavior). Empty when the
  // flag never appeared. Used by csm_cli's repeated --query.
  std::vector<std::string> get_all(const std::string& name) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::pair<std::string, std::string>> occurrences_;  // in order
  std::vector<std::string> positional_;
};

}  // namespace gcsm
