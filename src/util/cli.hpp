// Minimal command-line flag parsing shared by the benchmark binaries and
// examples: `--name=value` / `--name value` / boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcsm {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gcsm
