#include "util/trace.hpp"

#include <atomic>
#include <functional>
#include <thread>

#include "util/json.hpp"

namespace gcsm::trace {

namespace {

std::atomic<TraceCollector*> g_collector{nullptr};

std::uint64_t current_tid() {
  // A stable small-ish id per thread; chrome://tracing only needs distinct
  // integers, not OS thread ids.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

}  // namespace

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::record(std::string name, std::string category,
                            double ts_us, double dur_us) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = current_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

double TraceCollector::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<TraceEvent> TraceCollector::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceCollector::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events_) {
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.category);
    w.key("ph").value("X");
    w.key("ts").value(ev.ts_us);
    w.key("dur").value(ev.dur_us);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(ev.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void set_collector(TraceCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
}

TraceCollector* collector() {
  return g_collector.load(std::memory_order_acquire);
}

Span::Span(const char* name, const char* category)
    : collector_(trace::collector()), name_(name), category_(category) {
  if (collector_ != nullptr) start_us_ = collector_->now_us();
}

Span::~Span() {
  if (collector_ == nullptr) return;
  const double end_us = collector_->now_us();
  collector_->record(name_, category_, start_us_, end_us - start_us_);
}

}  // namespace gcsm::trace
