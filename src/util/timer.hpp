// Wall-clock timing helpers used by the pipeline phase breakdown
// (paper Table II / Fig. 13) and the benchmark harness.
#pragma once

#include <chrono>

namespace gcsm {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates wall time across multiple scopes; `ScopedAdd` RAII helper.
class Stopwatch {
 public:
  class ScopedAdd {
   public:
    explicit ScopedAdd(Stopwatch& sw) : sw_(sw) {}
    ~ScopedAdd() { sw_.total_seconds_ += t_.seconds(); }

    ScopedAdd(const ScopedAdd&) = delete;
    ScopedAdd& operator=(const ScopedAdd&) = delete;

   private:
    Stopwatch& sw_;
    Timer t_;
  };

  double seconds() const { return total_seconds_; }
  double millis() const { return total_seconds_ * 1e3; }
  void reset() { total_seconds_ = 0.0; }
  void add_seconds(double s) { total_seconds_ += s; }

 private:
  double total_seconds_ = 0.0;
};

}  // namespace gcsm
