// Small statistics helpers: running moments, percentiles, and the cumulative
// access-share curve used for Fig. 15a.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcsm {

// Welford running mean/variance.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a copy of the data (nearest-rank). p in [0, 100].
double percentile(std::vector<double> values, double p);

// Given per-item weights (e.g. per-vertex access counts), returns the share
// of total weight covered by the top `top_fraction` heaviest items.
// Used to reproduce Fig. 15a ("top 5% of vertices account for >80% of
// accesses").
double top_fraction_share(std::vector<std::uint64_t> weights,
                          double top_fraction);

// Spearman-style overlap metric for Fig. 15b: |S ∩ T| / |S| where S is the
// set of indices of the top `k` entries of `truth` and T the top `k` of
// `estimate`.
double topk_coverage(const std::vector<std::uint64_t>& truth,
                     const std::vector<double>& estimate, std::size_t k);

}  // namespace gcsm
