// Append-only write-ahead log of update batches (docs/ROBUSTNESS.md,
// "Durability & recovery").
//
// Record format (little-endian, fixed 21-byte header then payload):
//
//   offset  size  field
//        0     4  magic   0x4C415747 ("GWAL")
//        4     1  type    1 = batch payload, 2 = commit marker,
//                         3 = server state (query-health transition),
//                         4 = shed marker (admission dropped the batch)
//        5     8  seq     batch sequence number (1-based, monotonic)
//       13     4  len     payload length in bytes
//       17     4  crc     CRC32C over bytes [0, 17) + payload
//       21   len  payload
//
// The writer appends records and fsyncs on commit boundaries; the reader
// validates every record and STOPS at the first torn or corrupt one — a
// crash mid-append can only damage the tail, so everything before it is
// intact by construction. Recovery truncates the damaged tail (with a
// logged warning) instead of refusing to start.
//
// Fault sites (util/fault.hpp): `wal.write` fires before a record write
// (nothing reaches the file — safe to retry), `wal.fsync` fires before the
// fsync, and `crash.at` tears the write at FaultSpec::crash_at_byte and
// throws CrashError.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gcsm {

class FaultInjector;

namespace wal {

inline constexpr std::uint32_t kMagic = 0x4C415747U;  // "GWAL"
inline constexpr std::size_t kHeaderBytes = 21;
// Sanity cap on a single record payload: a corrupt length field must not
// make the reader chase gigabytes of garbage.
inline constexpr std::uint32_t kMaxPayloadBytes = 1U << 30;

// kServerState records carry a multi-query engine health-transition table
// (server/query_health.hpp): a circuit-breaker trip or re-join, sequenced
// against the batch stream so recovery can reconstruct which queries
// participated in which committed batches. Single-query pipelines never
// write them.
//
// kShed records are the overload controller's audit trail
// (docs/ROBUSTNESS.md, "Overload & admission control"): a batch the
// admission layer dropped under load. The record consumes a sequence number
// from the SAME space as kBatch — so the committed stream has an explicit,
// durable explanation for every seq gap — but it is never replayed, never
// gets a commit marker, and never advances the aggregate counters. Recovery
// reports shed seqs (RecoveredState::shed_seqs) instead of treating the gap
// as a missing batch.
enum class RecordType : std::uint8_t {
  kBatch = 1,
  kCommit = 2,
  kServerState = 3,
  kShed = 4,
};

struct Record {
  RecordType type = RecordType::kBatch;
  std::uint64_t seq = 0;
  std::string payload;
};

// Serializes one record (header + payload) into its on-disk bytes.
std::string encode_record(RecordType type, std::uint64_t seq,
                          std::string_view payload);

// Thread-safe: append/sync/reset serialize on an internal mutex, so a
// group-commit committer thread can fsync earlier records while the batch
// thread appends the next ones (docs/ROBUSTNESS.md, "Group commit").
class Writer {
 public:
  // Opens `path` for appending, creating it if needed. `sync` off skips the
  // fsync syscall (tests) but still probes the wal.fsync fault site.
  Writer(std::string path, bool sync, FaultInjector* faults = nullptr);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // Appends one record. Probes wal.write (transient Error, nothing written)
  // and crash.at (torn write + CrashError) before/while touching the file.
  void append(RecordType type, std::uint64_t seq, std::string_view payload);

  // Flushes appended records to stable storage. Probes wal.fsync.
  void sync();

  // Truncates the log to zero length (snapshot compaction dropped the whole
  // prefix) and syncs the truncation.
  void reset();

  const std::string& path() const { return path_; }
  std::uint64_t bytes_appended() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return bytes_appended_;
  }

 private:
  std::string path_;
  int fd_ = -1;
  bool sync_enabled_;
  bool dirty_ = false;
  std::uint64_t bytes_appended_ = 0;
  FaultInjector* faults_;
  mutable std::mutex mu_;  // serializes append/sync/reset across threads
};

struct ReadResult {
  std::vector<Record> records;
  // Offset of the first byte that failed validation; equals the file size
  // for a clean log.
  std::uint64_t valid_bytes = 0;
  bool tail_damaged = false;
  std::string tail_reason;  // human-readable, for the recovery warning
};

// Reads every valid record from the log. Missing file = empty clean result.
// Never throws on corruption: the damaged tail is reported, not fatal.
ReadResult read_all(const std::string& path);

// Truncates the log file to `valid_bytes` (recovery's tail repair).
void truncate_log(const std::string& path, std::uint64_t valid_bytes);

}  // namespace wal
}  // namespace gcsm
