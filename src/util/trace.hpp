// Lightweight phase tracing (docs/OBSERVABILITY.md).
//
// A TraceCollector records complete spans (begin/end collapsed into one
// event, chrome "ph":"X") and exports them as chrome://tracing /
// Perfetto-compatible JSON. Collection is armed by installing a collector
// globally (set_collector) or per-span; when no collector is armed, a Span
// costs one relaxed atomic load and never reads the clock — cheap enough to
// leave in every pipeline phase unconditionally.
//
// Timestamps are microseconds on the steady clock relative to the
// collector's construction, so a trace from one process is internally
// consistent without wall-clock coupling.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcsm::trace {

struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // span begin, relative to the collector epoch
  double dur_us = 0.0;  // span duration
  std::uint64_t tid = 0;
};

class TraceCollector {
 public:
  TraceCollector();

  // Thread-safe; called from Span destructors.
  void record(std::string name, std::string category, double ts_us,
              double dur_us);

  // Microseconds since this collector's construction.
  double now_us() const;

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  // {"displayTimeUnit":"ms","traceEvents":[{"name":...,"cat":...,"ph":"X",
  // "ts":...,"dur":...,"pid":1,"tid":...}]} — load in chrome://tracing or
  // https://ui.perfetto.dev.
  std::string to_chrome_json() const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

// Arms/disarms the process-wide collector spans attach to by default.
// Non-owning; pass nullptr to disarm. The collector must outlive every span
// started while it was armed.
void set_collector(TraceCollector* collector);
TraceCollector* collector();

// RAII span: records [construction, destruction) into the collector armed
// at construction time. Nesting works naturally — inner spans close first
// and chrome://tracing renders containment per thread.
class Span {
 public:
  explicit Span(const char* name, const char* category = "gcsm");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceCollector* collector_;  // nullptr = disarmed, whole span is a no-op
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

}  // namespace gcsm::trace
