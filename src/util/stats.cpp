#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gcsm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(idx),
                   values.end());
  return values[idx];
}

double top_fraction_share(std::vector<std::uint64_t> weights,
                          double top_fraction) {
  if (weights.empty()) return 0.0;
  const auto total = std::accumulate(weights.begin(), weights.end(),
                                     static_cast<std::uint64_t>(0));
  if (total == 0) return 0.0;
  auto k = static_cast<std::size_t>(
      std::ceil(top_fraction * static_cast<double>(weights.size())));
  k = std::clamp<std::size_t>(k, 1, weights.size());
  std::nth_element(weights.begin(), weights.begin() + static_cast<long>(k - 1),
                   weights.end(), std::greater<>());
  const auto top = std::accumulate(weights.begin(),
                                   weights.begin() + static_cast<long>(k),
                                   static_cast<std::uint64_t>(0));
  return static_cast<double>(top) / static_cast<double>(total);
}

double topk_coverage(const std::vector<std::uint64_t>& truth,
                     const std::vector<double>& estimate, std::size_t k) {
  if (truth.empty() || k == 0) return 0.0;
  k = std::min(k, truth.size());

  std::vector<std::uint32_t> order_truth(truth.size());
  std::iota(order_truth.begin(), order_truth.end(), 0);
  std::nth_element(order_truth.begin(),
                   order_truth.begin() + static_cast<long>(k - 1),
                   order_truth.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return truth[a] > truth[b];
                   });

  std::vector<std::uint32_t> order_est(estimate.size());
  std::iota(order_est.begin(), order_est.end(), 0);
  const std::size_t ke = std::min(k, order_est.size());
  // An empty estimate covers nothing; without this guard ke-1 wraps and
  // nth_element gets an iterator before begin().
  if (ke == 0) return 0.0;
  std::nth_element(order_est.begin(),
                   order_est.begin() + static_cast<long>(ke - 1),
                   order_est.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return estimate[a] > estimate[b];
                   });

  std::vector<char> in_est(truth.size(), 0);
  for (std::size_t i = 0; i < ke; ++i) {
    if (order_est[i] < in_est.size()) in_est[order_est[i]] = 1;
  }
  std::size_t hit = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (in_est[order_truth[i]]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(k);
}

}  // namespace gcsm
