#include "util/thread_pool.hpp"

#include <atomic>

#include "util/check.hpp"

namespace gcsm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    GCSM_ASSERT(job_ == nullptr && remaining_ == 0,
                "run_on_all entered while a job is in flight");
    job_ = &body;
    remaining_ = workers_.size();
    ++epoch_;
  }
  cv_start_.notify_all();
  body(0);  // the caller participates as worker 0
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> next{0};
  run_on_all([&](std::size_t worker) {
    for (;;) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) break;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      body(begin, end, worker);
    }
  });
}

}  // namespace gcsm
