// Low-level durable-IO building blocks shared by the WAL (util/wal.hpp),
// the graph snapshot serializer (graph/snapshot.hpp), and the JSON report
// sinks:
//
//   * CRC32C (Castagnoli) — the checksum every durable record and snapshot
//     carries, so corruption is detected instead of deserialized;
//   * explicit little-endian byte encoding — on-disk layouts never depend
//     on struct padding or host endianness;
//   * atomic_write_file — temp file + rename(2), so a reader can never
//     observe a half-written file: it sees the old content or the new one.
//
// atomic_write_file optionally probes the `crash.at` fault site before the
// payload write: when armed, only FaultSpec::crash_at_byte bytes reach the
// temp file and a CrashError escapes — a deterministic torn write, with the
// destination path untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gcsm {

class FaultInjector;

namespace io {

// CRC32C (polynomial 0x1EDC6F41, reflected). `crc` chains calls:
// crc32c(b, crc32c(a)) == crc32c(a+b).
std::uint32_t crc32c(std::string_view data, std::uint32_t crc = 0);

// Little-endian append helpers for building on-disk records.
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
// Length-prefixed (u64) byte string.
void put_bytes(std::string& out, std::string_view bytes);

// Sequential little-endian decoder. Every getter sets ok() to false (and
// returns 0 / empty) on underrun instead of reading past the end, so a
// parser can decode optimistically and check ok() once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  std::string_view get_bytes();  // u64 length prefix

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  const unsigned char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// mkdir -p: creates `path` and any missing parents. Throws Error(kIoOpen)
// when a component cannot be created.
void ensure_dir(const std::string& path);

// Reads the whole file; nullopt when it does not exist. Throws
// Error(kIoOpen) on any other failure.
std::optional<std::string> read_file_if_exists(const std::string& path);

// Writes `bytes` to `path + ".tmp"`, optionally fsyncs, then renames over
// `path`. Readers observe the old file or the new one, never a torn mix.
// When `faults` is armed at crash.at, tears the temp-file write at the
// spec's byte offset and throws CrashError (destination untouched).
void atomic_write_file(const std::string& path, std::string_view bytes,
                       bool sync, FaultInjector* faults = nullptr);

}  // namespace io
}  // namespace gcsm
