#include "util/durable_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace gcsm::io {
namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ 0x82F63B78U : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFU] ^ (crc >> 8);
  }
  return ~crc;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_u64(out, bytes.size());
  out.append(bytes);
}

const unsigned char* ByteReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::get_u8() {
  const unsigned char* p = take(1);
  return p == nullptr ? 0 : *p;
}

std::uint32_t ByteReader::get_u32() {
  const unsigned char* p = take(4);
  if (p == nullptr) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const unsigned char* p = take(8);
  if (p == nullptr) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t ByteReader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

std::string_view ByteReader::get_bytes() {
  const std::uint64_t len = get_u64();
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    return {};
  }
  const std::string_view out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

void ensure_dir(const std::string& path) {
  if (path.empty() || path == "/" || path == ".") return;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return;
    throw Error(ErrorCode::kIoOpen, "not a directory: " + path);
  }
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    ensure_dir(path.substr(0, slash));
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error(ErrorCode::kIoOpen,
                "cannot create directory " + path + ": " + errno_text());
  }
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw Error(ErrorCode::kIoOpen,
                "cannot open " + path + ": " + errno_text());
  }
  std::string out;
  std::array<char, 1 << 16> buf{};
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      throw Error(ErrorCode::kIoOpen, "cannot read " + path + ": " + err);
    }
    if (n == 0) break;
    out.append(buf.data(), static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {

void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kIoOpen,
                  "cannot write " + path + ": " + errno_text());
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       bool sync, FaultInjector* faults) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);  // NOLINT
  if (fd < 0) {
    throw Error(ErrorCode::kIoOpen,
                "cannot open " + tmp + ": " + errno_text());
  }
  try {
    if (faults != nullptr) {
      if (const auto spec = faults->fires_spec(fault_site::kCrashAt)) {
        // Torn write: part of the payload reaches the temp file, then the
        // process "dies". The destination is never renamed over.
        const std::size_t torn =
            std::min<std::size_t>(spec->crash_at_byte, bytes.size());
        write_all(fd, bytes.data(), torn, tmp);
        ::close(fd);
        throw CrashError("injected crash: " + tmp + " torn at byte " +
                         std::to_string(torn));
      }
    }
    write_all(fd, bytes.data(), bytes.size(), tmp);
    if (sync && ::fsync(fd) != 0) {
      throw Error(ErrorCode::kIoOpen,
                  "cannot fsync " + tmp + ": " + errno_text());
    }
  } catch (const CrashError&) {
    throw;  // fd already closed above
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error(ErrorCode::kIoOpen, "cannot rename " + tmp + " to " + path +
                                        ": " + errno_text());
  }
}

}  // namespace gcsm::io
