#include "util/binomial.hpp"

#include <cmath>

namespace gcsm {
namespace detail {
namespace {

// Tail of Stirling's approximation: log(k!) = stirling(k) + tail(k) where
// stirling(k) = 0.5*log(2*pi) + (k+0.5)*log(k) - k. Values for k < 10 are
// precomputed; larger k use the asymptotic series.
double stirling_tail(double k) {
  static const double kTail[10] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTail[static_cast<int>(k)];
  const double kp = k + 1.0;
  return 1.0 / (12.0 * kp) - 1.0 / (360.0 * kp * kp * kp);
}

}  // namespace

std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  // Degenerate probabilities first: at p == 1 the q == 0 arithmetic below
  // turns f into 0 * inf = NaN and the CDF walk stops at k == 1 instead of
  // n. (binomial() pre-clamps, but this entry point is public too.)
  if (p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Sequential search on the CDF starting from k = 0.
  const double q = 1.0 - p;
  const double s = p / q;
  double f = std::pow(q, static_cast<double>(n));  // P[X = 0]
  const double u = rng.uniform();
  std::uint64_t k = 0;
  double cdf = f;
  while (u > cdf && k < n) {
    ++k;
    f *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
    cdf += f;
    if (f <= 0.0) break;  // numeric underflow: the remaining tail is ~0
  }
  return k;
}

std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p) {
  // BTRS transformed-rejection sampler (Hormann 1993), as formulated in the
  // TensorFlow random-binomial kernel. Requires n*p >= 10 and p <= 0.5.
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double r = p / q;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1) * p);

  for (;;) {
    const double u = rng.uniform() - 0.5;
    double v = rng.uniform();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_tail(m) + stirling_tail(nd - m) - stirling_tail(kd) -
        stirling_tail(nd - kd);
    if (v <= upper) return static_cast<std::uint64_t>(kd);
  }
}

}  // namespace detail

std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flip = p > 0.5;
  const double pe = flip ? 1.0 - p : p;
  const double np = static_cast<double>(n) * pe;
  std::uint64_t k = 0;
  if (np < 10.0) {
    k = detail::binomial_inversion(rng, n, pe);
  } else {
    k = detail::binomial_btrs(rng, n, pe);
  }
  return flip ? n - k : k;
}

}  // namespace gcsm
