#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/json.hpp"

namespace gcsm::metrics {

namespace {

// Atomically folds `v` into a stored double under `cmp` (CAS loop). The
// empty state is the identity of `cmp` (+inf for min, -inf for max), so no
// first-observation flag is needed and concurrent first observers race
// safely.
template <typename Cmp>
void atomic_fold(std::atomic<std::uint64_t>& bits, double v, Cmp cmp) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (cmp(v, std::bit_cast<double>(cur))) {
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

int Histogram::bin_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, and NaN land in bin 0
  const int octave_offset = static_cast<int>(
      std::floor((std::log2(v) - kMinExp) * kBinsPerOctave));
  return std::clamp(octave_offset + 1, 1, kNumBins - 1);
}

double Histogram::bin_lower(int index) {
  if (index <= 0) return 0.0;
  return std::exp2(kMinExp +
                   static_cast<double>(index - 1) / kBinsPerOctave);
}

double Histogram::bin_upper(int index) {
  return std::exp2(kMinExp + static_cast<double>(index) / kBinsPerOctave);
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  bins_[static_cast<std::size_t>(bin_index(v))].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  std::uint64_t sum_cur = sum_bits_.load(kRelaxed);
  while (!sum_bits_.compare_exchange_weak(
      sum_cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(sum_cur) + v),
      kRelaxed)) {
  }
  atomic_fold(min_bits_, v, std::less<>());
  atomic_fold(max_bits_, v, std::greater<>());
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : std::bit_cast<double>(min_bits_.load(kRelaxed));
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : std::bit_cast<double>(max_bits_.load(kRelaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank, exactly as gcsm::percentile: the ceil(p/100 * n)-th
  // smallest sample (rank 0 maps to the smallest).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBins; ++i) {
    cum += bins_[static_cast<std::size_t>(i)].load(kRelaxed);
    if (cum >= target) {
      const double lo = bin_lower(i);
      const double hi = bin_upper(i);
      const double mid = i == 0 ? hi / 2.0 : std::sqrt(lo * hi);
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, kRelaxed);
  sum_bits_.store(0, kRelaxed);
  min_bits_.store(kPosInfBits, kRelaxed);
  max_bits_.store(kNegInfBits, kRelaxed);
  for (auto& b : bins_) b.store(0, kRelaxed);
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t def) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return def;
}

std::optional<double> Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return std::nullopt;
}

const HistogramSummary* Snapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("p50").value(h.p50);
    w.key("p90").value(h.p90);
    w.key("p99").value(h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->percentile(50.0);
    s.p90 = h->percentile(90.0);
    s.p99 = h->percentile(99.0);
    snap.histograms.emplace_back(name, s);
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace gcsm::metrics
