// Typed constants for every registered metric name, generated from the
// X-macro registry util/metric_names.def (the single source of truth; see
// the policy comment there). Call sites write
//
//   metrics::Registry::global().counter(metric::kPipelineBatches)
//   metrics::Registry::global().counter(prefix + metric::kCacheHits)
//
// so a typo is a compile error and tools/gcsm_lint can hold the registry,
// the call sites, and the docs/OBSERVABILITY.md catalogue in sync.
#pragma once

namespace gcsm::metric {

#define GCSM_METRIC(kind, sym, name, meaning) \
  inline constexpr const char* k##sym = name;
#include "util/metric_names.def"
#undef GCSM_METRIC

enum class Kind { kCounter, kGauge, kHistogram };

struct Info {
  const char* name;
  Kind kind;
};

// Every registered metric, in registry (name) order — for tests and tooling
// that need to enumerate the catalogue.
inline constexpr Info kMetricTable[] = {
#define GCSM_METRIC(kind, sym, name, meaning) {name, Kind::k##kind},
#include "util/metric_names.def"
#undef GCSM_METRIC
};

}  // namespace gcsm::metric
