#include "util/fault.hpp"

namespace gcsm {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  specs_[site] = spec;
}

void FaultInjector::arm_all(double probability) {
  const std::lock_guard<std::mutex> lock(mu_);
  default_spec_ = FaultSpec{probability, 0};
}

void FaultInjector::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mu_);
  specs_.erase(site);
}

void FaultInjector::disarm_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  default_spec_.reset();
}

void FaultInjector::set_enabled(bool on) {
  const std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool FaultInjector::enabled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

const FaultSpec* FaultInjector::spec_for(const std::string& site) const {
  const auto it = specs_.find(site);
  if (it != specs_.end()) return &it->second;
  // crash.at is explicit-arm only: a probabilistic arm_all sweep must never
  // schedule a (simulated) process death.
  if (default_spec_.has_value() && site != fault_site::kCrashAt) {
    return &*default_spec_;
  }
  return nullptr;
}

bool FaultInjector::fires(const char* site) {
  return fires_spec(site).has_value();
}

std::optional<FaultSpec> FaultInjector::fires_spec(const char* site) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return std::nullopt;
  const std::string key(site);
  const std::uint64_t hit = ++hit_counts_[key];
  const FaultSpec* spec = spec_for(key);
  if (spec == nullptr) return std::nullopt;
  const bool on_nth = spec->nth_hit != 0 && hit == spec->nth_hit;
  const bool on_draw = spec->probability > 0.0 &&
                       rng_.bernoulli(spec->probability);
  if (!on_nth && !on_draw) return std::nullopt;
  fired_.push_back({key, hit});
  return *spec;
}

bool FaultInjector::fires_for(const char* site, std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return false;
  const std::string name(site);
  const FaultSpec* spec = spec_for(name);
  if (spec != nullptr && spec->match_query_id != 0 &&
      spec->match_query_id != key) {
    // Filtered out: the probe never happened as far as determinism is
    // concerned — no hit count, no rng draw.
    return false;
  }
  const std::uint64_t hit = ++hit_counts_[name];
  if (spec == nullptr) return false;
  const bool on_nth = spec->nth_hit != 0 && hit == spec->nth_hit;
  const bool on_draw =
      spec->probability > 0.0 && rng_.bernoulli(spec->probability);
  if (!on_nth && !on_draw) return false;
  fired_.push_back({name, hit});
  return true;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hit_counts_.find(site);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::uint64_t FaultInjector::fired_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fired_.size();
}

std::vector<std::string> FaultInjector::fired_sites_since(
    std::uint64_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (std::size_t i = static_cast<std::size_t>(index); i < fired_.size();
       ++i) {
    out.push_back(fired_[i].site);
  }
  return out;
}

std::vector<FaultObservation> FaultInjector::observations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace gcsm
