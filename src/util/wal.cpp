#include "util/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace gcsm::wal {
namespace {

std::string errno_text() { return std::strerror(errno); }

void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kWalWrite,
                  "cannot append to WAL " + path + ": " + errno_text());
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string encode_record(RecordType type, std::uint64_t seq,
                          std::string_view payload) {
  std::string rec;
  rec.reserve(kHeaderBytes + payload.size());
  io::put_u32(rec, kMagic);
  io::put_u8(rec, static_cast<std::uint8_t>(type));
  io::put_u64(rec, seq);
  io::put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  // CRC over everything before the crc field, then the payload.
  std::uint32_t crc = io::crc32c(rec);
  crc = io::crc32c(payload, crc);
  io::put_u32(rec, crc);
  rec.append(payload);
  return rec;
}

Writer::Writer(std::string path, bool sync, FaultInjector* faults)
    : path_(std::move(path)), sync_enabled_(sync), faults_(faults) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);  // NOLINT
  if (fd_ < 0) {
    throw Error(ErrorCode::kIoOpen,
                "cannot open WAL " + path_ + ": " + errno_text());
  }
}

Writer::~Writer() {
  if (fd_ >= 0) ::close(fd_);
}

void Writer::append(RecordType type, std::uint64_t seq,
                    std::string_view payload) {
  static auto& m_records = metrics::Registry::global().counter(metric::kWalRecords);
  static auto& m_bytes = metrics::Registry::global().counter(metric::kWalBytes);
  const std::string rec = encode_record(type, seq, payload);
  const std::lock_guard<std::mutex> lock(mu_);
  if (faults_ != nullptr && faults_->fires(fault_site::kWalWrite)) {
    // Fires before any byte reaches the file, so a retry simply re-appends.
    throw Error(ErrorCode::kWalWrite,
                "injected fault: WAL append refused (" + path_ + ")");
  }
  if (faults_ != nullptr) {
    if (const auto spec = faults_->fires_spec(fault_site::kCrashAt)) {
      const std::size_t torn =
          std::min<std::size_t>(spec->crash_at_byte, rec.size());
      write_all(fd_, rec.data(), torn, path_);
      throw CrashError("injected crash: WAL append of seq " +
                       std::to_string(seq) + " torn at byte " +
                       std::to_string(torn));
    }
  }
  write_all(fd_, rec.data(), rec.size(), path_);
  bytes_appended_ += rec.size();
  dirty_ = true;
  m_records.add();
  m_bytes.add(rec.size());
}

void Writer::sync() {
  static auto& m_fsyncs = metrics::Registry::global().counter(metric::kWalFsyncs);
  static auto& h_fsync =
      metrics::Registry::global().histogram(metric::kWalFsyncMs);
  const std::lock_guard<std::mutex> lock(mu_);
  if (faults_ != nullptr && faults_->fires(fault_site::kWalFsync)) {
    throw Error(ErrorCode::kWalWrite,
                "injected fault: WAL fsync failed (" + path_ + ")");
  }
  if (faults_ != nullptr && faults_->fires_spec(fault_site::kCrashAt)) {
    throw CrashError("injected crash: before WAL fsync of " + path_);
  }
  if (!dirty_) return;
  if (sync_enabled_) {
    const Timer t;
    if (::fsync(fd_) != 0) {
      throw Error(ErrorCode::kWalWrite,
                  "cannot fsync WAL " + path_ + ": " + errno_text());
    }
    h_fsync.observe(t.millis());
  }
  dirty_ = false;
  m_fsyncs.add();
}

void Writer::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    throw Error(ErrorCode::kWalWrite,
                "cannot truncate WAL " + path_ + ": " + errno_text());
  }
  if (sync_enabled_ && ::fsync(fd_) != 0) {
    throw Error(ErrorCode::kWalWrite,
                "cannot fsync WAL " + path_ + ": " + errno_text());
  }
  dirty_ = false;
}

ReadResult read_all(const std::string& path) {
  ReadResult result;
  const std::optional<std::string> bytes = io::read_file_if_exists(path);
  if (!bytes.has_value()) return result;
  const std::string_view data = *bytes;

  std::size_t pos = 0;
  auto damaged = [&](const std::string& reason) {
    result.tail_damaged = true;
    result.tail_reason = reason + " at byte " + std::to_string(pos);
  };
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderBytes) {
      damaged("torn record header");
      break;
    }
    io::ByteReader header(data.substr(pos, kHeaderBytes));
    const std::uint32_t magic = header.get_u32();
    const std::uint8_t type = header.get_u8();
    const std::uint64_t seq = header.get_u64();
    const std::uint32_t len = header.get_u32();
    const std::uint32_t crc = header.get_u32();
    if (magic != kMagic) {
      damaged("bad record magic");
      break;
    }
    if (type != static_cast<std::uint8_t>(RecordType::kBatch) &&
        type != static_cast<std::uint8_t>(RecordType::kCommit) &&
        type != static_cast<std::uint8_t>(RecordType::kServerState) &&
        type != static_cast<std::uint8_t>(RecordType::kShed)) {
      damaged("unknown record type " + std::to_string(type));
      break;
    }
    if (len > kMaxPayloadBytes) {
      damaged("implausible payload length " + std::to_string(len));
      break;
    }
    if (data.size() - pos - kHeaderBytes < len) {
      damaged("torn record payload");
      break;
    }
    const std::string_view payload = data.substr(pos + kHeaderBytes, len);
    std::uint32_t expect = io::crc32c(data.substr(pos, kHeaderBytes - 4));
    expect = io::crc32c(payload, expect);
    if (expect != crc) {
      damaged("record CRC mismatch (seq " + std::to_string(seq) + ")");
      break;
    }
    result.records.push_back(
        {static_cast<RecordType>(type), seq, std::string(payload)});
    pos += kHeaderBytes + len;
  }
  result.valid_bytes = pos;
  return result;
}

void truncate_log(const std::string& path, std::uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    throw Error(ErrorCode::kIoOpen,
                "cannot truncate WAL " + path + ": " + errno_text());
  }
}

}  // namespace gcsm::wal
