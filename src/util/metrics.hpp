// Process-wide observability registry (docs/OBSERVABILITY.md).
//
// Named counters, gauges, and histograms with a lock-free fast path: a
// metric is registered once (under the registry mutex), after which the
// returned reference is stable for the registry's lifetime and every update
// is a single relaxed atomic operation. Components either cache the
// reference at construction or use a function-local static, so the hot
// paths — per-batch pipeline accounting, device DMA, kernel launches —
// never touch a lock.
//
// Reads are snapshot-on-read: snapshot() walks the registered metrics and
// copies their current values into a plain Snapshot (no atomics), which is
// what BatchReport carries and what the JSON sinks serialize. Histograms
// bin observations geometrically (8 bins per octave, ~9% relative
// resolution), so percentile queries never store raw samples and
// observe() stays O(1) and allocation-free.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/metric_names.hpp"

namespace gcsm::metrics {

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, kRelaxed); }
  std::uint64_t value() const { return value_.load(kRelaxed); }
  void reset() { value_.store(0, kRelaxed); }

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  std::atomic<std::uint64_t> value_{0};
};

// Last-written instantaneous value (e.g. a budget or a level).
class Gauge {
 public:
  void set(double v) { bits_.store(std::bit_cast<std::uint64_t>(v), kRelaxed); }
  void add(double delta) {
    std::uint64_t cur = bits_.load(kRelaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + delta),
        kRelaxed)) {
    }
  }
  double value() const { return std::bit_cast<double>(bits_.load(kRelaxed)); }
  void reset() { set(0.0); }

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  static_assert(std::bit_cast<std::uint64_t>(0.0) == 0);
  std::atomic<std::uint64_t> bits_{0};
};

// Geometric-bin histogram for non-negative samples (phase times, sizes).
// Bin 0 holds everything below 2^kMinExp (including zero); above that, each
// octave is split into kBinsPerOctave bins, so any reported quantile is
// within a factor of 2^(1/kBinsPerOctave) ≈ 1.09 of the exact sample.
class Histogram {
 public:
  static constexpr int kBinsPerOctave = 8;
  static constexpr int kMinExp = -20;  // bin 0 ceiling: 2^-20 ≈ 9.5e-7
  static constexpr int kMaxExp = 44;   // saturates above 2^44 ≈ 1.8e13
  static constexpr int kNumBins = (kMaxExp - kMinExp) * kBinsPerOctave + 1;

  void observe(double v);

  std::uint64_t count() const { return count_.load(kRelaxed); }
  double sum() const { return std::bit_cast<double>(sum_bits_.load(kRelaxed)); }
  double min() const;  // 0.0 when empty
  double max() const;  // 0.0 when empty
  double mean() const;

  // Nearest-rank percentile (same rank rule as gcsm::percentile), answered
  // from the bins: the returned value is the geometric midpoint of the bin
  // holding the rank-th smallest sample, clamped to the observed [min, max].
  double percentile(double p) const;

  void reset();

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  static int bin_index(double v);
  static double bin_lower(int index);
  static double bin_upper(int index);

  // min/max rest at their fold identity (±inf) so concurrent first
  // observations need no coordination; reads gate on count() == 0.
  static constexpr std::uint64_t kPosInfBits =
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
  static constexpr std::uint64_t kNegInfBits =
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity());

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> min_bits_{kPosInfBits};
  std::atomic<std::uint64_t> max_bits_{kNegInfBits};
  std::array<std::atomic<std::uint64_t>, kNumBins> bins_{};
};

struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// A plain copy of every registered metric at one instant.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  std::uint64_t counter_or(std::string_view name, std::uint64_t def = 0) const;
  std::optional<double> gauge(std::string_view name) const;
  const HistogramSummary* histogram(std::string_view name) const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  // p50,p90,p99}}} with names in lexicographic order (schema-stable; pinned
  // by the golden-file test).
  std::string to_json() const;
};

class Registry {
 public:
  // The process-wide registry the library instruments. Separate instances
  // exist only so tests can exercise the registry in isolation.
  static Registry& global();

  // Registers on first use; later calls return the same object. References
  // stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

  // Zeroes every registered metric in place (references stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gcsm::metrics
