// Minimal JSON emission shared by the observability sinks (metrics
// snapshots, trace exports, bench --json reports). Write-only by design:
// the repo never parses JSON, it only needs to emit schema-stable documents
// that external tooling (jq, chrome://tracing, the perf-trajectory
// collector) can read. Keys are emitted in call order, numbers via %.12g,
// and non-finite doubles as null, so identical inputs produce byte-identical
// documents — which is what the golden-file schema test pins down.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace gcsm::json {

inline void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

// Streaming writer with just enough structure tracking to place commas.
// Usage: w.begin_object().key("a").value(1.0).end_object();
class Writer {
 public:
  Writer& begin_object() {
    separate();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  Writer& end_object() {
    out_ += '}';
    first_.pop_back();
    return *this;
  }
  Writer& begin_array() {
    separate();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  Writer& end_array() {
    out_ += ']';
    first_.pop_back();
    return *this;
  }
  Writer& key(std::string_view k) {
    separate();
    append_escaped(out_, k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }
  Writer& value(std::string_view s) {
    separate();
    append_escaped(out_, s);
    return *this;
  }
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v) {
    separate();
    append_number(out_, v);
    return *this;
  }
  Writer& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  // Emits the comma between container elements; a value directly after a
  // key never needs one.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace gcsm::json
