#include "util/rng.hpp"

#include <cmath>

namespace gcsm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  has_cached_normal_ = false;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

Rng Rng::split(std::uint64_t stream) const {
  std::uint64_t x = s_[0] ^ (s_[3] * 0x2545f4914f6cdd1dULL) ^ stream;
  return Rng(splitmix64(x));
}

}  // namespace gcsm
