// Deterministic token-bucket rate limiter (docs/ROBUSTNESS.md, "Overload &
// admission control").
//
// The bucket holds up to `burst` tokens and refills continuously at `rate`
// tokens per second. Time is an explicit parameter — the caller advances a
// clock (wall or virtual) and the bucket never reads one itself — so a
// seeded overload run is reproducible bit-for-bit: the same arrival
// timestamps always produce the same admit/deny sequence. A rate of 0 means
// unlimited (every try_take succeeds and the bucket stays full).
#pragma once

#include <algorithm>

namespace gcsm::util {

class TokenBucket {
 public:
  // rate: tokens refilled per second (0 = unlimited). burst: bucket
  // capacity; the bucket starts full so an idle source can burst.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(std::max(burst, 1.0)), tokens_(burst_) {}

  // Takes `cost` tokens at time `now_s` (seconds, monotone per bucket).
  // Returns true and debits on success; false leaves the bucket untouched
  // apart from the refill.
  bool try_take(double now_s, double cost = 1.0) {
    if (rate_ <= 0.0) return true;
    refill(now_s);
    if (tokens_ + 1e-9 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  // Seconds from `now_s` until `cost` tokens will be available (0 when they
  // already are; callers use this to park instead of spinning).
  double seconds_until(double now_s, double cost = 1.0) {
    if (rate_ <= 0.0) return 0.0;
    refill(now_s);
    if (tokens_ + 1e-9 >= cost) return 0.0;
    return (cost - tokens_) / rate_;
  }

  double tokens() const { return rate_ <= 0.0 ? burst_ : tokens_; }
  double rate() const { return rate_; }

 private:
  void refill(double now_s) {
    if (now_s > last_s_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
      last_s_ = now_s;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
};

}  // namespace gcsm::util
