// Binomial sampling for the merged random-walk estimator (paper Sec. IV-B).
//
// The estimator draws B_child ~ Binomial(B_parent, p) at *every* loop
// iteration of the simulated nested-loop execution, typically with very small
// n*p, so the sampler must be fast in the "usually returns 0" regime and
// still exact for large n.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace gcsm {

// Draws an exact Binomial(n, p) variate.
//
// Strategy:
//  * p == 0 or n == 0       -> 0
//  * n * p small (< 10)     -> inversion by sequential search on the CDF,
//                              with an O(1) early-out when the uniform draw
//                              falls below (1-p)^n (the most common case for
//                              the estimator: the iteration is not sampled).
//  * otherwise              -> BTRS transformed-rejection (Hormann 1993),
//                              exact and O(1) expected time.
std::uint64_t binomial(Rng& rng, std::uint64_t n, double p);

namespace detail {
// Exposed for unit testing of the two regimes independently.
std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p);
std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p);
}  // namespace detail

}  // namespace gcsm
