// Deterministic, fast pseudo-random number generation for GCSM.
//
// All randomized components of the library (graph generators, update-stream
// construction, the random-walk frequency estimator) take an explicit Rng so
// that every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace gcsm {

// xoshiro256++ 1.0 (Blackman & Vigna). Small state, passes BigCrush, and is
// much faster than std::mt19937_64 — the estimator draws millions of
// variates per batch.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  // SplitMix64 expansion of a 64-bit seed into the 256-bit state.
  void reseed(std::uint64_t seed);

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t bounded(std::uint64_t bound);

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Standard normal variate (Marsaglia polar method; caches the pair).
  double normal();

  // Derive an independent stream (for per-thread RNGs): jump-free splitting
  // via SplitMix64 of (state hash, stream index).
  Rng split(std::uint64_t stream) const;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gcsm
