// Deterministic, seeded fault injection for the pipeline's recovery paths.
//
// A FaultInjector owns a set of named fault *sites* — fixed points in the
// stack where a production system can fail: device allocation, DMA, kernel
// launch, a hung kernel, the DCSR pack, the dynamic-graph batch apply, and
// batch ingestion. Components hold a non-owning pointer (nullptr = disarmed,
// the production default) and ask `fires(site)` at each site; the injector
// decides from a per-site FaultSpec:
//
//   * probability — an independent Bernoulli draw per hit from the
//     injector's own seeded Rng, so a run is reproducible from one seed;
//   * nth_hit     — fire deterministically on exactly the nth hit of the
//     site (1-based), for tests that need a fault at a precise moment.
//
// Every firing is logged (site name + hit index), so the pipeline can report
// which faults a batch survived and tests can assert the exact fault set.
// All methods are mutex-guarded: sites are probed from the pipeline thread
// today, but nothing stops a future async stage from probing concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace gcsm {

// Canonical site names, generated from the X-macro registry
// util/fault_sites.def (the single source of truth; see the policy comment
// there). Components compare by content, not pointer, so call sites may
// also use ad-hoc names in tests — but src/ call sites must reference these
// constants, never the raw string (enforced by tools/gcsm_lint).
//
// crash.at is special: when it fires, the durable write in progress is torn
// at FaultSpec::crash_at_byte and a CrashError escapes (the in-process
// kill -9). It never fires from arm_all's default spec — only an explicit
// arm() can schedule a crash, so probabilistic fault sweeps stay alive.
namespace fault_site {
#define GCSM_FAULT_SITE(sym, name, armable) \
  inline constexpr const char* k##sym = name;
#include "util/fault_sites.def"
#undef GCSM_FAULT_SITE

struct Info {
  const char* name;
  bool armable;  // covered by arm_all's default spec
};

// Every registered site, in registry (name) order — for tests and tooling.
inline constexpr Info kSiteTable[] = {
#define GCSM_FAULT_SITE(sym, name, armable) {name, armable},
#include "util/fault_sites.def"
#undef GCSM_FAULT_SITE
};
}  // namespace fault_site

// Every site covered by arm_all (crash.at is deliberately excluded; see
// above).
inline constexpr std::array<const char*, 12> kAllFaultSites = {
    fault_site::kDeviceAlloc,   fault_site::kDeviceDma,
    fault_site::kKernelLaunch,  fault_site::kKernelHang,
    fault_site::kCacheBuild,    fault_site::kGraphApply,
    fault_site::kBatchCorrupt,  fault_site::kWalWrite,
    fault_site::kWalFsync,      fault_site::kSnapshotWrite,
    fault_site::kMatchQuery,    fault_site::kSourceBurst,
};

struct FaultSpec {
  double probability = 0.0;   // chance of firing at each hit
  std::uint64_t nth_hit = 0;  // fire on exactly this hit (1-based); 0 = off
  // crash.at only: how many bytes of the write in progress reach the file
  // before the crash (0 = the write never starts).
  std::uint64_t crash_at_byte = 0;
  // Keyed sites only (match.query, probed via fires_for with the QueryId):
  // 0 admits every key; any other value poisons exactly that key. Hits that
  // the filter rejects are neither counted nor drawn, so nth_hit and
  // probability stay deterministic per key even when many keys probe the
  // site concurrently (the kernel.* sites, by contrast, hit in whatever
  // order the match pool schedules).
  std::uint64_t match_query_id = 0;
};

struct FaultObservation {
  std::string site;
  std::uint64_t hit = 0;  // which hit of the site fired (1-based)
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eed5eedULL);

  // Arms one site; replaces any previous spec for it.
  void arm(const std::string& site, FaultSpec spec);
  // Default spec applied to every site without an explicit one.
  void arm_all(double probability);
  void disarm(const std::string& site);
  void disarm_all();

  // Master switch: while disabled, fires() counts nothing and never fires.
  // Used to suspend injection around reference/validation matching so
  // faults only strike production batch work.
  void set_enabled(bool on);
  bool enabled() const;

  // Called at a fault site: counts the hit, returns true when the fault
  // fires. The decision is deterministic in (seed, call sequence).
  bool fires(const char* site);

  // fires() variant for sites whose behavior depends on spec parameters
  // (crash.at's byte offset): returns the firing spec, or nullopt when the
  // site does not fire. Counts the hit exactly like fires().
  std::optional<FaultSpec> fires_spec(const char* site);

  // fires() variant for keyed sites (match.query): `key` is the QueryId of
  // the probing query. A spec whose match_query_id is nonzero admits only
  // that key — rejected probes are not counted and never draw, so one query
  // can be poisoned deterministically while the rest of the fan-out stays
  // clean regardless of match_parallelism.
  bool fires_for(const char* site, std::uint64_t key);

  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fired_count() const;
  // Site names of observations[index..): lets a caller attribute firings to
  // one batch by bracketing with fired_count().
  std::vector<std::string> fired_sites_since(std::uint64_t index) const;
  std::vector<FaultObservation> observations() const;

 private:
  const FaultSpec* spec_for(const std::string& site) const;

  mutable std::mutex mu_;
  Rng rng_;
  bool enabled_ = true;
  std::optional<FaultSpec> default_spec_;
  std::unordered_map<std::string, FaultSpec> specs_;
  std::unordered_map<std::string, std::uint64_t> hit_counts_;
  std::vector<FaultObservation> fired_;
};

// RAII suspension of an injector (tolerates nullptr).
class FaultSuspendGuard {
 public:
  explicit FaultSuspendGuard(FaultInjector* injector)
      : injector_(injector),
        was_enabled_(injector != nullptr && injector->enabled()) {
    if (injector_ != nullptr) injector_->set_enabled(false);
  }
  ~FaultSuspendGuard() {
    if (injector_ != nullptr) injector_->set_enabled(was_enabled_);
  }

  FaultSuspendGuard(const FaultSuspendGuard&) = delete;
  FaultSuspendGuard& operator=(const FaultSuspendGuard&) = delete;

 private:
  FaultInjector* injector_;
  bool was_enabled_;
};

}  // namespace gcsm
