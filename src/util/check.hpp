// Runtime invariant checking for the concurrent core.
//
// Two tiers of checks, matching how expensive they are to evaluate:
//
//   GCSM_CHECK(cond, msg)   — always compiled. Throws CheckFailure when the
//       condition is false. Used inside the explicit validate() methods
//       (DynamicGraph, DcsrCache, MatchStore), whose cost is only paid when
//       a caller invokes them, so the macro itself need not be gated.
//
//   GCSM_ASSERT(cond, msg)  — hot-path assertion. Compiled to ((void)0)
//       unless the build defines GCSM_ENABLE_CHECKS (the `checks` preset /
//       -DGCSM_ENABLE_CHECKS=ON), so release binaries pay zero cost — the
//       condition expression is not even evaluated.
//
// Failures throw (rather than abort) so tests can prove a deliberately
// corrupted structure is caught, and so a long-running service can fail one
// batch instead of the whole process. CheckFailure carries the failed
// expression, source location, and the caller's message.
#pragma once

#include <stdexcept>
#include <string>

namespace gcsm {

class CheckFailure : public std::logic_error {
 public:
  CheckFailure(const char* expr, const char* file, int line,
               const std::string& message)
      : std::logic_error(format(expr, file, line, message)),
        expression(expr),
        file_name(file),
        line_number(line) {}

  const char* expression;
  const char* file_name;
  int line_number;

 private:
  static std::string format(const char* expr, const char* file, int line,
                            const std::string& message) {
    std::string out = "GCSM invariant violated: ";
    out += expr;
    out += " at ";
    out += file;
    out += ":";
    out += std::to_string(line);
    if (!message.empty()) {
      out += " — ";
      out += message;
    }
    return out;
  }
};

namespace detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& message) {
  throw CheckFailure(expr, file, line, message);
}

}  // namespace detail
}  // namespace gcsm

// Always-on check; use in validate() methods and other cold paths.
#define GCSM_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::gcsm::detail::check_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (0)

// Hot-path assertion; zero-cost unless GCSM_ENABLE_CHECKS is defined.
#if defined(GCSM_ENABLE_CHECKS)
#define GCSM_ASSERT(cond, msg) GCSM_CHECK(cond, msg)
#define GCSM_CHECKS_ENABLED 1
#else
#define GCSM_ASSERT(cond, msg) ((void)0)
#define GCSM_CHECKS_ENABLED 0
#endif
