#include "query/automorphism.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace gcsm {
namespace {

bool is_automorphism(const QueryGraph& q,
                     const std::array<std::uint32_t, kMaxQueryVertices>& perm) {
  const std::uint32_t n = q.num_vertices();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (q.label(perm[i]) != q.label(i)) return false;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (q.adjacent(i, j) != q.adjacent(perm[i], perm[j])) return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t count_automorphisms(const QueryGraph& q) {
  std::array<std::uint32_t, kMaxQueryVertices> perm{};
  const std::uint32_t n = q.num_vertices();
  std::iota(perm.begin(), perm.begin() + n, 0);
  std::uint64_t count = 0;
  do {
    if (is_automorphism(q, perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.begin() + n));
  return count;
}

std::vector<std::vector<std::uint32_t>> list_automorphisms(
    const QueryGraph& q) {
  std::array<std::uint32_t, kMaxQueryVertices> perm{};
  const std::uint32_t n = q.num_vertices();
  std::iota(perm.begin(), perm.begin() + n, 0);
  std::vector<std::vector<std::uint32_t>> out;
  do {
    if (is_automorphism(q, perm)) {
      out.emplace_back(perm.begin(), perm.begin() + n);
    }
  } while (std::next_permutation(perm.begin(), perm.begin() + n));
  return out;
}

}  // namespace gcsm
