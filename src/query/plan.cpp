#include "query/plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/error.hpp"

namespace gcsm {
namespace {

// Greedy connected matching order: start from the seed edge's endpoints,
// then repeatedly pick the unmatched query vertex with the most edges into
// the matched set (ties: larger degree, then smaller id). More edges into
// the matched set means more intersections constraining the candidate set —
// the standard WCOJ ordering heuristic.
std::vector<std::uint32_t> make_order(const QueryGraph& q, std::uint32_t a,
                                      std::uint32_t b,
                                      const std::vector<std::uint64_t>*
                                          weights = nullptr) {
  const std::uint32_t n = q.num_vertices();
  std::vector<std::uint32_t> order{a, b};
  std::vector<bool> matched(n, false);
  matched[a] = matched[b] = true;
  while (order.size() < n) {
    std::int32_t best = -1;
    std::uint32_t best_links = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (matched[u]) continue;
      std::uint32_t links = 0;
      for (const std::uint32_t w : order) {
        if (q.adjacent(u, w)) ++links;
      }
      if (links == 0) continue;
      bool better = false;
      if (best < 0) {
        better = true;
      } else if (weights != nullptr) {
        // Weighted mode: smallest weight first; break ties with more
        // backward edges (stronger pruning).
        const std::uint64_t wu = (*weights)[u];
        const std::uint64_t wb = (*weights)[static_cast<std::uint32_t>(best)];
        better = wu < wb || (wu == wb && links > best_links);
      } else {
        better = links > best_links ||
                 (links == best_links &&
                  q.degree(u) > q.degree(static_cast<std::uint32_t>(best)));
      }
      if (better) {
        best = static_cast<std::int32_t>(u);
        best_links = links;
      }
    }
    if (best < 0) {
      throw Error(ErrorCode::kConfig, "query graph is not connected");
    }
    order.push_back(static_cast<std::uint32_t>(best));
    matched[static_cast<std::uint32_t>(best)] = true;
  }
  return order;
}

std::uint32_t edge_id_between(const QueryGraph& q, std::uint32_t u,
                              std::uint32_t v) {
  const std::uint32_t a = std::min(u, v);
  const std::uint32_t b = std::max(u, v);
  for (const QueryEdge& e : q.edges()) {
    if (e.a == a && e.b == b) return e.id;
  }
  GCSM_CHECK(false, "no such query edge");
}

// Shared construction: the view of a constraint through query edge j in
// plan ΔM_i is OLD if j < i and NEW if j > i; for the static plan
// (delta = false) every view is NEW.
MatchPlan build_plan(const QueryGraph& q, std::uint32_t seed_edge_id,
                     bool delta,
                     const std::vector<std::uint64_t>* weights = nullptr) {
  if (q.num_edges() == 0) {
    throw Error(ErrorCode::kConfig, "query has no edges");
  }
  const QueryEdge seed = q.edges()[seed_edge_id];

  MatchPlan plan;
  plan.seed_edge_id = seed_edge_id;
  plan.seed_a = seed.a;
  plan.seed_b = seed.b;
  plan.seed_label_a = q.label(seed.a);
  plan.seed_label_b = q.label(seed.b);
  plan.vertex_order = make_order(q, seed.a, seed.b, weights);

  for (std::uint32_t pos = 2; pos < plan.vertex_order.size(); ++pos) {
    const std::uint32_t u = plan.vertex_order[pos];
    PlanLevel level;
    level.query_vertex = u;
    level.label = q.label(u);
    for (std::uint32_t prev = 0; prev < pos; ++prev) {
      const std::uint32_t w = plan.vertex_order[prev];
      if (!q.adjacent(u, w)) continue;
      const std::uint32_t j = edge_id_between(q, u, w);
      BackwardConstraint c;
      c.order_pos = prev;
      c.query_edge_id = j;
      c.view = (delta && j < seed_edge_id) ? ViewMode::kOld : ViewMode::kNew;
      level.constraints.push_back(c);
    }
    GCSM_CHECK(!level.constraints.empty(),
               "disconnected level in matching order");
    plan.levels.push_back(std::move(level));
  }

  std::ostringstream name;
  name << (delta ? "dM" : "static") << seed_edge_id << "(" << q.name() << ")";
  plan.debug_name = name.str();
  return plan;
}

}  // namespace

MatchPlan make_static_plan(const QueryGraph& q) {
  return build_plan(q, 0, /*delta=*/false);
}

MatchPlan make_delta_plan(const QueryGraph& q, std::uint32_t edge_id) {
  if (edge_id >= q.num_edges()) {
    throw Error(ErrorCode::kConfig, "delta plan edge id out of range");
  }
  return build_plan(q, edge_id, /*delta=*/true);
}

MatchPlan make_delta_plan_weighted(
    const QueryGraph& q, std::uint32_t edge_id,
    const std::vector<std::uint64_t>& vertex_weights) {
  if (edge_id >= q.num_edges()) {
    throw Error(ErrorCode::kConfig, "delta plan edge id out of range");
  }
  if (vertex_weights.size() != q.num_vertices()) {
    throw Error(ErrorCode::kConfig, "vertex_weights size mismatch");
  }
  return build_plan(q, edge_id, /*delta=*/true, &vertex_weights);
}

std::vector<MatchPlan> make_delta_plans(const QueryGraph& q) {
  std::vector<MatchPlan> plans;
  plans.reserve(q.num_edges());
  for (std::uint32_t i = 0; i < q.num_edges(); ++i) {
    plans.push_back(make_delta_plan(q, i));
  }
  return plans;
}

std::string describe_plan(const QueryGraph& q, const MatchPlan& plan) {
  std::ostringstream os;
  os << plan.debug_name << ": seed (u" << plan.seed_a << ",u" << plan.seed_b
     << ")";
  for (const PlanLevel& level : plan.levels) {
    os << " | u" << level.query_vertex << " in";
    for (std::size_t i = 0; i < level.constraints.size(); ++i) {
      const auto& c = level.constraints[i];
      os << (i == 0 ? " " : " & ")
         << (c.view == ViewMode::kOld ? "N(" : "N'(") << "x"
         << plan.vertex_order[c.order_pos] << ")";
    }
  }
  (void)q;
  return os.str();
}

}  // namespace gcsm
