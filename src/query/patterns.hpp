// The query patterns of the paper's evaluation (Fig. 7): six connected
// patterns of sizes 5 to 7. Fig. 7 is an image in the original; the exact
// shapes are reconstructed as representative patterns of the stated sizes —
// the mix of sparse (cycle-like) and dense (clique-like) shapes that CSM
// evaluations conventionally use. All are unlabeled (wildcard) by default; a
// labeled variant assigns labels round-robin for use with labeled data.
#pragma once

#include <vector>

#include "query/query_graph.hpp"

namespace gcsm {

// Q1: size-5 "house" — a 4-cycle with a triangle roof (6 edges).
// Q2: size-5 near-clique — K4 plus a pendant vertex (7 edges).
// Q3: size-6 triangular prism — two triangles joined by a matching (9 edges).
// Q4: size-6 chorded hexagon — 6-cycle plus two long chords (8 edges).
// Q5: size-7 "double house" — two 4-cycles sharing an edge, plus a roof
//     (9 edges).
// Q6: size-7 wheel fragment — a hub adjacent to a 6-path's vertices
//     (10 edges).
QueryGraph make_pattern(int index);  // index in [1, 6]

// All six, in order Q1..Q6.
std::vector<QueryGraph> all_patterns();

// Assigns labels 0..num_labels-1 round-robin to a wildcard pattern (for
// experiments on labeled data graphs).
QueryGraph with_round_robin_labels(const QueryGraph& q, int num_labels);

// Common small shapes used by tests and examples.
QueryGraph make_triangle();
QueryGraph make_path(std::uint32_t length);   // length edges, length+1 verts
QueryGraph make_cycle(std::uint32_t length);  // length >= 3
QueryGraph make_clique(std::uint32_t size);   // size in [2, 8]
QueryGraph make_star(std::uint32_t leaves);   // hub + leaves
// The 4-vertex pattern of the paper's running example (Fig. 1): a diamond
// (4-cycle with one chord): edges (0,1),(0,2),(1,2),(1,3),(2,3).
QueryGraph make_fig1_diamond();

}  // namespace gcsm
