// Query-tree branch decomposition for sharded matching (DESIGN.md,
// "Multi-device sharding").
//
// Following the Pregel+ subgraph-isomorphism decomposition, the query is
// turned into a rooted spanning tree (greedy high-degree-first root, BFS
// expansion that prefers high-degree children) and split into *branches*:
// maximal root-to-leaf path segments separated at vertices with two or more
// tree children. Partial matches crossing shard boundaries are migrated —
// "stitched" — exactly when the enumeration binds a branch vertex, because
// that is where independent sub-branches fan out and locality pays the most.
//
// The decomposition only steers WHERE a partial match continues executing;
// the candidate sets themselves are computed from exact neighbor views
// wherever the partial lands, so match counts never depend on it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "query/plan.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

struct BranchDecomposition {
  std::uint32_t root = 0;
  // Spanning-tree parent per query vertex; the root is its own parent.
  std::array<std::uint32_t, kMaxQueryVertices> parent{};
  // Branch-segment id per query vertex: a new segment starts below every
  // branch vertex, numbered in BFS discovery order (the Pregel repo's
  // branch_number).
  std::array<std::uint32_t, kMaxQueryVertices> branch_number{};
  // Tree vertices with >= 2 children — the stitch points.
  std::array<std::uint8_t, kMaxQueryVertices> is_branch{};
  std::uint32_t num_branches = 1;
  std::uint32_t num_branch_vertices = 0;
};

// Builds the decomposition: root = highest-degree query vertex (ties to the
// smaller id), spanning tree by BFS that visits neighbors in descending
// degree order (ties to the smaller id). Deterministic for a given query.
BranchDecomposition make_branch_decomposition(const QueryGraph& q);

// Per extension level of `plan` (same indexing as MatchPlan::levels): 1 when
// the level binds a branch vertex of `d` — a sharded enumerator may migrate
// the partial match to the shard owning the level's first-constraint anchor
// before expanding it.
std::vector<std::uint8_t> stitch_levels(const BranchDecomposition& d,
                                        const MatchPlan& plan);

// Human-readable summary ("root=2 branches=3 branch_vertices={2}"), for
// tests and the quickstart example.
std::string describe_branches(const QueryGraph& q,
                              const BranchDecomposition& d);

}  // namespace gcsm
