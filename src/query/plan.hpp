// Matching-plan generation: compiles a query pattern into the nested-loop
// programs of the paper's Fig. 2.
//
// A MatchPlan describes one nested loop: iterate candidate data edges for a
// chosen "seed" query edge, then extend one pattern vertex per level by
// intersecting neighbor lists of already-matched vertices.
//
// * The static plan (Fig. 2a) seeds on query edge 0 and reads only NEW
//   (= current) neighbor lists.
// * The delta plans ΔM_1..ΔM_m (Fig. 2b-f) seed query edge i on the update
//   batch ΔE; a backward constraint through query edge j reads the OLD list
//   N if j < i and the updated list N' if j > i. This implements the IVM
//   decomposition ΔM_i = R_1 ⋈ … ⋈ R_{i-1} ⋈ ΔR_i ⋈ R'_{i+1} ⋈ … ⋈ R'_m,
//   whose signed union telescopes to M(G_{k+1}) − M(G_k).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

// One backward constraint of a plan level: intersect with the neighbor list
// of the data vertex bound at `order_pos`, in the given view.
struct BackwardConstraint {
  std::uint32_t order_pos = 0;  // position in MatchPlan::vertex_order
  ViewMode view = ViewMode::kNew;
  std::uint32_t query_edge_id = 0;  // which query edge this enforces
};

// Extension step for the pattern vertex at order position `level + 2`.
struct PlanLevel {
  std::uint32_t query_vertex = 0;
  Label label = kWildcardLabel;
  std::vector<BackwardConstraint> constraints;  // never empty
};

struct MatchPlan {
  std::uint32_t seed_edge_id = 0;  // query edge bound by the seed loop
  std::uint32_t seed_a = 0;        // pattern vertex bound to the seed source
  std::uint32_t seed_b = 0;        // pattern vertex bound to the seed target
  Label seed_label_a = kWildcardLabel;
  Label seed_label_b = kWildcardLabel;
  std::vector<std::uint32_t> vertex_order;  // [0]=seed_a, [1]=seed_b, ...
  std::vector<PlanLevel> levels;            // size n-2
  std::string debug_name;

  std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(levels.size());
  }
};

// Builds the static full-matching plan (all views NEW, seed edge 0).
MatchPlan make_static_plan(const QueryGraph& q);

// Builds ΔM_i's plan for seed query edge `edge_id` (0-based).
MatchPlan make_delta_plan(const QueryGraph& q, std::uint32_t edge_id);

// As make_delta_plan, but the greedy extension order picks the connected
// query vertex with the smallest weight first (ties by more backward edges).
// Used by the RapidFlow-like baseline, which orders by candidate-set size.
MatchPlan make_delta_plan_weighted(
    const QueryGraph& q, std::uint32_t edge_id,
    const std::vector<std::uint64_t>& vertex_weights);

// All m delta plans, in edge order.
std::vector<MatchPlan> make_delta_plans(const QueryGraph& q);

// Pretty-printer (used by tests and the quickstart example).
std::string describe_plan(const QueryGraph& q, const MatchPlan& plan);

}  // namespace gcsm
