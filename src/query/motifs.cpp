#include "query/motifs.hpp"

#include <set>
#include <string>

#include "util/error.hpp"

namespace gcsm {

std::vector<QueryGraph> all_motifs(std::uint32_t size) {
  if (size < 2 || size > 6) {
    throw Error(ErrorCode::kConfig, "motif size must be in [2, 6]");
  }
  const std::uint32_t num_pairs = size * (size - 1) / 2;
  std::vector<QueryGraph> out;
  std::set<std::uint64_t> seen;
  for (std::uint32_t mask = 0; mask < (1u << num_pairs); ++mask) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::uint32_t bit = 0;
    for (std::uint32_t i = 0; i < size; ++i) {
      for (std::uint32_t j = i + 1; j < size; ++j, ++bit) {
        if (mask & (1u << bit)) edges.emplace_back(i, j);
      }
    }
    if (edges.size() + 1 < size) continue;  // too few edges to connect
    QueryGraph q = QueryGraph::from_edges(size, edges);
    if (!q.connected()) continue;
    const std::uint64_t code = q.canonical_code();
    if (seen.insert(code).second) {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> e2;
      for (const QueryEdge& e : q.edges()) e2.emplace_back(e.a, e.b);
      out.push_back(QueryGraph::from_edges(
          size, e2, {},
          "motif" + std::to_string(size) + "_" +
              std::to_string(out.size())));
    }
  }
  return out;
}

}  // namespace gcsm
