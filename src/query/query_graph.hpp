// Query pattern representation.
//
// Patterns are tiny (the paper uses sizes 5-7; we support up to 8 vertices),
// so an adjacency matrix plus a canonical edge list is the whole story. The
// canonical edge numbering (sorted (min,max) pairs) is what the delta-join
// decomposition ΔM_1..ΔM_m indexes into.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace gcsm {

constexpr std::uint32_t kMaxQueryVertices = 8;

// -1 as a query-vertex label means "match any data label".
constexpr Label kWildcardLabel = -1;

struct QueryEdge {
  std::uint32_t a = 0;  // a < b
  std::uint32_t b = 0;
  std::uint32_t id = 0;  // index in the canonical numbering

  friend bool operator==(const QueryEdge&, const QueryEdge&) = default;
};

class QueryGraph {
 public:
  QueryGraph() = default;

  // Edges are unordered pairs; duplicates and self-loops are rejected.
  // labels may be empty (all wildcard) or have num_vertices entries.
  static QueryGraph from_edges(
      std::uint32_t num_vertices,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
      std::vector<Label> labels = {}, std::string name = {});

  std::uint32_t num_vertices() const { return n_; }
  std::uint32_t num_edges() const {
    return static_cast<std::uint32_t>(edges_.size());
  }
  bool adjacent(std::uint32_t u, std::uint32_t v) const {
    return adj_[u * kMaxQueryVertices + v] != 0;
  }
  std::uint32_t degree(std::uint32_t u) const { return degree_[u]; }
  Label label(std::uint32_t u) const { return labels_[u]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  const std::string& name() const { return name_; }

  bool connected() const;
  // Longest shortest path between any two query vertices; the k in VSGM's
  // k-hop copy (Sec. I / baseline description).
  std::uint32_t diameter() const;

  // True if label_matches(query vertex u, data label l).
  bool label_matches(std::uint32_t u, Label l) const {
    return labels_[u] == kWildcardLabel || labels_[u] == l;
  }

  // Canonical code: the lexicographically smallest adjacency bitstring over
  // all label-preserving vertex permutations. Two queries are isomorphic iff
  // codes are equal. Used to dedup the motif enumeration.
  std::uint64_t canonical_code() const;

 private:
  std::uint32_t n_ = 0;
  std::array<std::uint8_t, kMaxQueryVertices * kMaxQueryVertices> adj_{};
  std::array<std::uint32_t, kMaxQueryVertices> degree_{};
  std::vector<Label> labels_;
  std::vector<QueryEdge> edges_;
  std::string name_;
};

}  // namespace gcsm
