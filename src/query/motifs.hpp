// Enumeration of all connected unlabeled motifs of a given size, used by the
// road-network experiment (paper Fig. 11: "all size-3, 4, and 5 motifs
// instead of specific patterns").
#pragma once

#include <cstdint>
#include <vector>

#include "query/query_graph.hpp"

namespace gcsm {

// All connected non-isomorphic unlabeled graphs with `size` vertices
// (size in [2, 6]; there are 1, 2, 6, 21, 112 of them for sizes 2..6).
std::vector<QueryGraph> all_motifs(std::uint32_t size);

}  // namespace gcsm
