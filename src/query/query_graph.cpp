#include "query/query_graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace gcsm {

QueryGraph QueryGraph::from_edges(
    std::uint32_t num_vertices,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::vector<Label> labels, std::string name) {
  if (num_vertices == 0 || num_vertices > kMaxQueryVertices) {
    throw Error(ErrorCode::kConfig, "query size must be in [1, 8]");
  }
  if (!labels.empty() && labels.size() != num_vertices) {
    throw Error(ErrorCode::kConfig, "query labels size mismatch");
  }
  QueryGraph q;
  q.n_ = num_vertices;
  q.labels_ = labels.empty()
                  ? std::vector<Label>(num_vertices, kWildcardLabel)
                  : std::move(labels);
  q.name_ = std::move(name);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> canon;
  canon.reserve(edges.size());
  for (auto [a, b] : edges) {
    if (a == b || a >= num_vertices || b >= num_vertices) {
      throw Error(ErrorCode::kConfig, "bad query edge");
    }
    if (a > b) std::swap(a, b);
    canon.emplace_back(a, b);
  }
  std::sort(canon.begin(), canon.end());
  if (std::adjacent_find(canon.begin(), canon.end()) != canon.end()) {
    throw Error(ErrorCode::kConfig, "duplicate query edge");
  }
  for (std::uint32_t i = 0; i < canon.size(); ++i) {
    const auto [a, b] = canon[i];
    q.edges_.push_back({a, b, i});
    q.adj_[a * kMaxQueryVertices + b] = 1;
    q.adj_[b * kMaxQueryVertices + a] = 1;
    ++q.degree_[a];
    ++q.degree_[b];
  }
  return q;
}

bool QueryGraph::connected() const {
  if (n_ == 0) return false;
  std::uint32_t seen = 1;  // bitmask, vertex 0 visited
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (adjacent(u, v) && !(seen & (1u << v))) {
        seen |= 1u << v;
        stack.push_back(v);
      }
    }
  }
  return seen == (n_ >= 32 ? ~0u : (1u << n_) - 1);
}

std::uint32_t QueryGraph::diameter() const {
  std::uint32_t diameter = 0;
  for (std::uint32_t s = 0; s < n_; ++s) {
    std::array<std::int32_t, kMaxQueryVertices> dist;
    dist.fill(-1);
    dist[s] = 0;
    std::vector<std::uint32_t> frontier{s};
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next;
      for (const std::uint32_t u : frontier) {
        for (std::uint32_t v = 0; v < n_; ++v) {
          if (adjacent(u, v) && dist[v] < 0) {
            dist[v] = dist[u] + 1;
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (dist[v] > static_cast<std::int32_t>(diameter)) {
        diameter = static_cast<std::uint32_t>(dist[v]);
      }
    }
  }
  return diameter;
}

std::uint64_t QueryGraph::canonical_code() const {
  std::array<std::uint32_t, kMaxQueryVertices> perm{};
  std::iota(perm.begin(), perm.begin() + n_, 0);
  std::uint64_t best = ~0ull;
  do {
    // Only consider label-preserving permutations.
    bool label_ok = true;
    for (std::uint32_t i = 0; i < n_ && label_ok; ++i) {
      label_ok = labels_[perm[i]] == labels_[i];
    }
    if (!label_ok) continue;
    std::uint64_t code = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (std::uint32_t j = i + 1; j < n_; ++j) {
        code = (code << 1) |
               static_cast<std::uint64_t>(adjacent(perm[i], perm[j]));
      }
    }
    best = std::min(best, code);
  } while (std::next_permutation(perm.begin(), perm.begin() + n_));
  return best;
}

}  // namespace gcsm
