// Automorphism counting for query patterns.
//
// Engines enumerate *embeddings* (injective label- and adjacency-preserving
// mappings). The number of distinct matched subgraphs is embeddings/|Aut(Q)|
// — exact for full enumeration, and also for signed incremental counts,
// because each subgraph appears exactly |Aut(Q)| times with a uniform sign.
#pragma once

#include <cstdint>
#include <vector>

#include "query/query_graph.hpp"

namespace gcsm {

// Number of automorphisms of Q (label-preserving). Brute force over
// permutations; Q has at most 8 vertices so this is at most 40320 checks.
std::uint64_t count_automorphisms(const QueryGraph& q);

// All automorphisms as permutation vectors (perm[i] = image of vertex i).
std::vector<std::vector<std::uint32_t>> list_automorphisms(
    const QueryGraph& q);

}  // namespace gcsm
