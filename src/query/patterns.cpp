#include "query/patterns.hpp"


#include "util/error.hpp"

namespace gcsm {

QueryGraph make_pattern(int index) {
  using E = std::pair<std::uint32_t, std::uint32_t>;
  switch (index) {
    case 1:  // house: 4-cycle 0-1-2-3 with roof vertex 4 over edge (0,1)
      return QueryGraph::from_edges(
          5, std::vector<E>{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}},
          {}, "Q1");
    case 2:  // K4 {0,1,2,3} plus pendant 4 attached to 0
      return QueryGraph::from_edges(5,
                                    std::vector<E>{{0, 1},
                                                   {0, 2},
                                                   {0, 3},
                                                   {1, 2},
                                                   {1, 3},
                                                   {2, 3},
                                                   {0, 4}},
                                    {}, "Q2");
    case 3:  // triangular prism: triangles {0,1,2}, {3,4,5} + matching
      return QueryGraph::from_edges(6,
                                    std::vector<E>{{0, 1},
                                                   {1, 2},
                                                   {0, 2},
                                                   {3, 4},
                                                   {4, 5},
                                                   {3, 5},
                                                   {0, 3},
                                                   {1, 4},
                                                   {2, 5}},
                                    {}, "Q3");
    case 4:  // hexagon 0..5 with chords (0,3) and (1,4)
      return QueryGraph::from_edges(6,
                                    std::vector<E>{{0, 1},
                                                   {1, 2},
                                                   {2, 3},
                                                   {3, 4},
                                                   {4, 5},
                                                   {5, 0},
                                                   {0, 3},
                                                   {1, 4}},
                                    {}, "Q4");
    case 5:  // two 4-cycles sharing edge (1,2), roof 6 over (0,1)
      return QueryGraph::from_edges(7,
                                    std::vector<E>{{0, 1},
                                                   {1, 2},
                                                   {2, 3},
                                                   {3, 0},
                                                   {1, 4},
                                                   {4, 5},
                                                   {5, 2},
                                                   {0, 6},
                                                   {1, 6}},
                                    {}, "Q5");
    case 6:  // hub 6 adjacent to path 0-1-2-3-4-5's vertices 0..4
      return QueryGraph::from_edges(7,
                                    std::vector<E>{{0, 1},
                                                   {1, 2},
                                                   {2, 3},
                                                   {3, 4},
                                                   {4, 5},
                                                   {6, 0},
                                                   {6, 1},
                                                   {6, 2},
                                                   {6, 3},
                                                   {6, 4}},
                                    {}, "Q6");
    default:
      throw Error(ErrorCode::kConfig, "pattern index must be in [1, 6]");
  }
}

std::vector<QueryGraph> all_patterns() {
  std::vector<QueryGraph> out;
  for (int i = 1; i <= 6; ++i) out.push_back(make_pattern(i));
  return out;
}

QueryGraph with_round_robin_labels(const QueryGraph& q, int num_labels) {
  std::vector<Label> labels(q.num_vertices());
  for (std::uint32_t i = 0; i < q.num_vertices(); ++i) {
    labels[i] = static_cast<Label>(i % num_labels);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const QueryEdge& e : q.edges()) edges.emplace_back(e.a, e.b);
  return QueryGraph::from_edges(q.num_vertices(), edges, std::move(labels),
                                q.name() + "-labeled");
}

QueryGraph make_triangle() {
  return QueryGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}, {}, "triangle");
}

QueryGraph make_path(std::uint32_t length) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < length; ++i) edges.emplace_back(i, i + 1);
  return QueryGraph::from_edges(length + 1, edges, {}, "path");
}

QueryGraph make_cycle(std::uint32_t length) {
  if (length < 3) throw Error(ErrorCode::kConfig, "cycle length must be >= 3");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < length; ++i) {
    edges.emplace_back(i, (i + 1) % length);
  }
  return QueryGraph::from_edges(length, edges, {}, "cycle");
}

QueryGraph make_clique(std::uint32_t size) {
  if (size < 2 || size > kMaxQueryVertices) {
    throw Error(ErrorCode::kConfig, "clique size must be in [2, 8]");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < size; ++i) {
    for (std::uint32_t j = i + 1; j < size; ++j) edges.emplace_back(i, j);
  }
  return QueryGraph::from_edges(size, edges, {}, "clique");
}

QueryGraph make_star(std::uint32_t leaves) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return QueryGraph::from_edges(leaves + 1, edges, {}, "star");
}

QueryGraph make_fig1_diamond() {
  return QueryGraph::from_edges(
      4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}, {}, "fig1");
}

}  // namespace gcsm
