#include "query/branch_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace gcsm {

BranchDecomposition make_branch_decomposition(const QueryGraph& q) {
  BranchDecomposition d;
  const std::uint32_t n = q.num_vertices();
  if (n == 0) return d;

  // Greedy high-degree-first root.
  d.root = 0;
  for (std::uint32_t v = 1; v < n; ++v) {
    if (q.degree(v) > q.degree(d.root)) d.root = v;
  }

  // BFS spanning tree, expanding high-degree neighbors first.
  std::array<std::uint8_t, kMaxQueryVertices> seen{};
  std::array<std::uint32_t, kMaxQueryVertices> children{};
  std::vector<std::uint32_t> frontier{d.root};
  seen[d.root] = 1;
  d.parent[d.root] = d.root;
  while (!frontier.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t u : frontier) {
      std::vector<std::uint32_t> nbrs;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (q.adjacent(u, v) && !seen[v]) nbrs.push_back(v);
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (q.degree(a) != q.degree(b)) {
                    return q.degree(a) > q.degree(b);
                  }
                  return a < b;
                });
      for (const std::uint32_t v : nbrs) {
        seen[v] = 1;
        d.parent[v] = u;
        ++children[u];
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (children[v] >= 2) {
      d.is_branch[v] = 1;
      ++d.num_branch_vertices;
    }
  }

  // Branch segments: a child of a branch vertex starts a new segment,
  // numbered in BFS order; everything else inherits its parent's segment.
  std::uint32_t next_segment = 0;
  d.branch_number[d.root] = next_segment++;
  std::vector<std::uint32_t> order{d.root};
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t u = order[i];
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v != d.root && d.parent[v] == u && seen[v]) {
        d.branch_number[v] =
            d.is_branch[u] ? next_segment++ : d.branch_number[u];
        order.push_back(v);
      }
    }
  }
  d.num_branches = next_segment;
  return d;
}

std::vector<std::uint8_t> stitch_levels(const BranchDecomposition& d,
                                        const MatchPlan& plan) {
  std::vector<std::uint8_t> out(plan.levels.size(), 0);
  for (std::size_t l = 0; l < plan.levels.size(); ++l) {
    const std::uint32_t qv = plan.levels[l].query_vertex;
    if (qv < kMaxQueryVertices && d.is_branch[qv] != 0) out[l] = 1;
  }
  return out;
}

std::string describe_branches(const QueryGraph& q,
                              const BranchDecomposition& d) {
  std::string s = "root=" + std::to_string(d.root) +
                  " branches=" + std::to_string(d.num_branches) +
                  " branch_vertices={";
  bool first = true;
  for (std::uint32_t v = 0; v < q.num_vertices(); ++v) {
    if (d.is_branch[v] == 0) continue;
    if (!first) s += ",";
    s += std::to_string(v);
    first = false;
  }
  s += "}";
  return s;
}

}  // namespace gcsm
