// LRU page cache modeling the unified-memory resident set on the device
// (cudaMallocManaged analog). Used only by the UM baseline: every kernel
// access is mapped to a 4-KiB page; a miss is a page fault that migrates the
// whole page over PCIe (Sec. II-C's "wastes PCIe bandwidth" argument).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "gpusim/cost_model.hpp"

namespace gcsm::gpusim {

class PageCache {
 public:
  // capacity_bytes is rounded down to whole pages (minimum one page).
  PageCache(std::uint64_t capacity_bytes, std::uint32_t page_bytes);

  // Registers an access to `bytes` bytes starting at host address `addr`.
  // Counts one fault per non-resident page touched (plus hits for resident
  // pages) on `counters`, updating LRU recency.
  void access(const void* addr, std::size_t bytes, TrafficCounters& counters);

  void clear();
  std::size_t resident_pages() const;
  std::uint64_t capacity_pages() const { return capacity_pages_; }

 private:
  void touch_page(std::uint64_t page, TrafficCounters& counters);

  std::uint64_t capacity_pages_;
  std::uint32_t page_bytes_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

}  // namespace gcsm::gpusim
