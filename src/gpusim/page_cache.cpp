#include "gpusim/page_cache.hpp"

namespace gcsm::gpusim {

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint32_t page_bytes)
    : capacity_pages_(capacity_bytes / page_bytes), page_bytes_(page_bytes) {
  if (capacity_pages_ == 0) capacity_pages_ = 1;
}

void PageCache::access(const void* addr, std::size_t bytes,
                       TrafficCounters& counters) {
  if (bytes == 0) return;
  const auto start = reinterpret_cast<std::uintptr_t>(addr);
  const std::uint64_t first = start / page_bytes_;
  const std::uint64_t last = (start + bytes - 1) / page_bytes_;
  std::lock_guard<std::mutex> lk(mu_);
  for (std::uint64_t page = first; page <= last; ++page) {
    touch_page(page, counters);
  }
}

void PageCache::touch_page(std::uint64_t page, TrafficCounters& counters) {
  const auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    counters.add_um_hit();
    return;
  }
  counters.add_um_fault();
  if (map_.size() >= capacity_pages_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
}

void PageCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  map_.clear();
}

std::size_t PageCache::resident_pages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

}  // namespace gcsm::gpusim
