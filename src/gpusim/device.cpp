#include "gpusim/device.hpp"

#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm::gpusim {

DeviceBuffer::DeviceBuffer(Device* dev, std::size_t bytes)
    : dev_(dev), data_(new std::byte[bytes]), bytes_(bytes) {}

DeviceBuffer::~DeviceBuffer() { release(); }

DeviceBuffer::DeviceBuffer(DeviceBuffer&& o) noexcept
    : dev_(o.dev_), data_(std::move(o.data_)), bytes_(o.bytes_) {
  o.dev_ = nullptr;
  o.bytes_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& o) noexcept {
  if (this != &o) {
    release();
    dev_ = o.dev_;
    data_ = std::move(o.data_);
    bytes_ = o.bytes_;
    o.dev_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

void DeviceBuffer::release() {
  if (dev_ != nullptr && bytes_ > 0) {
    dev_->used_ -= bytes_;
  }
  data_.reset();
  dev_ = nullptr;
  bytes_ = 0;
}

DeviceOomError::DeviceOomError(std::size_t req, std::size_t avail)
    : gcsm::Error(gcsm::ErrorCode::kDeviceOom,
                  "simulated device out of memory: requested " +
                      std::to_string(req) + " bytes, available " +
                      std::to_string(avail)),
      requested(req),
      available(avail) {}

DeviceDmaError::DeviceDmaError()
    : gcsm::Error(gcsm::ErrorCode::kDeviceDma,
                  "host->device DMA transfer failed (transient)") {}

Device::Device(SimParams params) : params_(params) {}

DeviceBuffer Device::alloc(std::size_t bytes) {
  static auto& m_allocs =
      metrics::Registry::global().counter(metric::kDeviceAllocs);
  static auto& m_alloc_bytes =
      metrics::Registry::global().counter(metric::kDeviceAllocBytes);
  static auto& m_oom = metrics::Registry::global().counter(metric::kDeviceOomErrors);
  if (faults_ != nullptr && faults_->fires(fault_site::kDeviceAlloc)) {
    m_oom.add();
    throw DeviceOomError(bytes, available());
  }
  if (bytes > available()) {
    m_oom.add();
    throw DeviceOomError(bytes, available());
  }
  used_ += bytes;
  m_allocs.add();
  m_alloc_bytes.add(bytes);
  return DeviceBuffer(this, bytes);
}

void Device::dma_to_device(DeviceBuffer& dst, const void* src,
                           std::size_t bytes, TrafficCounters& counters) {
  static auto& m_calls = metrics::Registry::global().counter(metric::kDeviceDmaCalls);
  static auto& m_bytes = metrics::Registry::global().counter(metric::kDeviceDmaBytes);
  static auto& m_errors =
      metrics::Registry::global().counter(metric::kDeviceDmaErrors);
  if (bytes > dst.size()) {
    throw Error(ErrorCode::kConfig, "dma_to_device: copy larger than buffer");
  }
  if (faults_ != nullptr && faults_->fires(fault_site::kDeviceDma)) {
    m_errors.add();
    throw DeviceDmaError();
  }
  std::memcpy(dst.data(), src, bytes);
  counters.add_dma(1, bytes);
  m_calls.add();
  m_bytes.add(bytes);
}

}  // namespace gcsm::gpusim
