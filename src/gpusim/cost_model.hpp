// Interconnect + compute cost model for the simulated GPU.
//
// The physical testbed of the paper (RTX3090 over PCIe) is not available in
// this environment, so GCSM runs on a *software device*: all engines execute
// on host threads, but every neighbor-list access is routed through this
// model, which accounts traffic in the same three CUDA transfer classes the
// paper analyzes (Sec. II-C):
//
//   * DMA        (cudaMemcpy)              — per-call setup latency + bytes
//                                            at PCIe bandwidth
//   * zero-copy  (pinned host mapping)     — 128-byte cache-line granularity
//                                            at a low effective random-access
//                                            bandwidth; stalls the kernel
//   * unified    (cudaMallocManaged)       — 4-KiB page granularity, per-
//                                            fault overhead, LRU device page
//                                            cache
//
// plus device-memory reads and SIMT compute. Benchmarks report the
// *simulated time* derived from these counters next to wall-clock time; the
// paper's performance shapes (who wins, by what factor) are determined by
// the traffic ratios, which we measure exactly rather than model.
#pragma once

#include <atomic>
#include <cstdint>

namespace gcsm::gpusim {

struct SimParams {
  // --- interconnect -------------------------------------------------------
  double dma_bandwidth_gbps = 12.0;   // effective PCIe 3.0 x16 DMA bandwidth
  double dma_latency_us = 10.0;       // per-cudaMemcpy setup cost
  std::uint32_t zero_copy_line_bytes = 128;  // GPU zero-copy access granule
  // Zero-copy reads are fine-grained but issued by thousands of concurrent
  // warps, so the achieved line-fetch bandwidth approaches the PCIe link
  // rate rather than a single-stream latency-bound figure.
  double zero_copy_bandwidth_gbps = 12.0;
  std::uint32_t um_page_bytes = 4096;      // unified-memory migration granule
  double um_fault_overhead_us = 15.0;      // GPU far-fault service latency
  double um_bandwidth_gbps = 12.0;         // page migration bandwidth
  std::uint64_t um_page_cache_bytes = 1ull << 30;  // resident pages on device

  // --- device -------------------------------------------------------------
  double device_bandwidth_gbps = 600.0;    // global-memory bandwidth
  // Abstract set-operation elements per second for the irregular,
  // divergence-heavy matching kernel (each "op" bundles compare + stack +
  // bookkeeping work). Calibrated so the device is a few times faster than
  // the 32-thread host on the same loops, as in the paper's measurements.
  double device_ops_per_sec = 1.2e10;
  std::uint64_t device_memory_bytes = 24ull << 30;  // RTX3090: 24 GB
  std::uint32_t num_blocks = 82;           // paper launch config
  std::uint32_t threads_per_block = 1024;

  // --- host ---------------------------------------------------------------
  double host_ops_per_sec_per_thread = 1.0e8;  // same abstract op unit
  std::uint32_t host_threads = 32;  // paper runs CPU baselines on 32 threads
  double host_mem_bandwidth_gbps = 50.0;
};

// Plain snapshot of traffic (copyable, no atomics).
struct Traffic {
  std::uint64_t device_bytes = 0;       // reads served from device memory
  std::uint64_t zero_copy_lines = 0;    // 128-B lines fetched from host
  std::uint64_t zero_copy_bytes = 0;    // useful bytes within those lines
  std::uint64_t dma_calls = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t um_faults = 0;          // page faults (misses in page cache)
  std::uint64_t um_hits = 0;            // page-cache hits
  std::uint64_t compute_ops = 0;        // intersection/compare operations
  std::uint64_t host_ops = 0;           // ops executed by CPU engines
  std::uint64_t host_bytes = 0;         // bytes read by CPU engines
  std::uint64_t cache_hits = 0;         // DCSR cache lookups that hit
  std::uint64_t cache_misses = 0;       // ... that fell back to zero-copy

  Traffic& operator+=(const Traffic& o);
  Traffic operator+(const Traffic& o) const;

  // Bytes fetched over the interconnect (what Fig. 8 labels as
  // "data access sizes from CPU").
  std::uint64_t cpu_access_bytes(const SimParams& p) const;
};

// Thread-safe accumulator used during kernel execution.
class TrafficCounters {
 public:
  void reset();
  Traffic snapshot() const;

  void add_device_bytes(std::uint64_t b) { device_bytes_.fetch_add(b, mo); }
  void add_zero_copy(std::uint64_t lines, std::uint64_t bytes) {
    zero_copy_lines_.fetch_add(lines, mo);
    zero_copy_bytes_.fetch_add(bytes, mo);
  }
  void add_dma(std::uint64_t calls, std::uint64_t bytes) {
    dma_calls_.fetch_add(calls, mo);
    dma_bytes_.fetch_add(bytes, mo);
  }
  void add_um_fault(std::uint64_t n = 1) { um_faults_.fetch_add(n, mo); }
  void add_um_hit(std::uint64_t n = 1) { um_hits_.fetch_add(n, mo); }
  void add_compute(std::uint64_t ops) { compute_ops_.fetch_add(ops, mo); }
  void add_host(std::uint64_t ops, std::uint64_t bytes) {
    host_ops_.fetch_add(ops, mo);
    host_bytes_.fetch_add(bytes, mo);
  }
  void add_cache_hit(std::uint64_t n = 1) { cache_hits_.fetch_add(n, mo); }
  void add_cache_miss(std::uint64_t n = 1) { cache_misses_.fetch_add(n, mo); }

 private:
  static constexpr auto mo = std::memory_order_relaxed;
  std::atomic<std::uint64_t> device_bytes_{0};
  std::atomic<std::uint64_t> zero_copy_lines_{0};
  std::atomic<std::uint64_t> zero_copy_bytes_{0};
  std::atomic<std::uint64_t> dma_calls_{0};
  std::atomic<std::uint64_t> dma_bytes_{0};
  std::atomic<std::uint64_t> um_faults_{0};
  std::atomic<std::uint64_t> um_hits_{0};
  std::atomic<std::uint64_t> compute_ops_{0};
  std::atomic<std::uint64_t> host_ops_{0};
  std::atomic<std::uint64_t> host_bytes_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
};

// Simulated time decomposition (seconds).
struct SimTime {
  double dma = 0.0;        // host->device bulk copies
  double zero_copy = 0.0;  // fine-grained host reads (stall the kernel)
  double um = 0.0;         // unified-memory page migrations
  double device_mem = 0.0;
  double compute = 0.0;
  double host = 0.0;       // CPU-engine execution

  double kernel() const { return compute + zero_copy + um + device_mem; }
  double total() const { return kernel() + dma + host; }
};

SimTime simulate_time(const Traffic& t, const SimParams& p);

}  // namespace gcsm::gpusim
