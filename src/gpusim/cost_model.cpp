#include "gpusim/cost_model.hpp"

namespace gcsm::gpusim {

Traffic& Traffic::operator+=(const Traffic& o) {
  device_bytes += o.device_bytes;
  zero_copy_lines += o.zero_copy_lines;
  zero_copy_bytes += o.zero_copy_bytes;
  dma_calls += o.dma_calls;
  dma_bytes += o.dma_bytes;
  um_faults += o.um_faults;
  um_hits += o.um_hits;
  compute_ops += o.compute_ops;
  host_ops += o.host_ops;
  host_bytes += o.host_bytes;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  return *this;
}

Traffic Traffic::operator+(const Traffic& o) const {
  Traffic r = *this;
  r += o;
  return r;
}

std::uint64_t Traffic::cpu_access_bytes(const SimParams& p) const {
  return zero_copy_lines * p.zero_copy_line_bytes + dma_bytes +
         um_faults * p.um_page_bytes;
}

void TrafficCounters::reset() {
  device_bytes_.store(0, mo);
  zero_copy_lines_.store(0, mo);
  zero_copy_bytes_.store(0, mo);
  dma_calls_.store(0, mo);
  dma_bytes_.store(0, mo);
  um_faults_.store(0, mo);
  um_hits_.store(0, mo);
  compute_ops_.store(0, mo);
  host_ops_.store(0, mo);
  host_bytes_.store(0, mo);
  cache_hits_.store(0, mo);
  cache_misses_.store(0, mo);
}

Traffic TrafficCounters::snapshot() const {
  Traffic t;
  t.device_bytes = device_bytes_.load(mo);
  t.zero_copy_lines = zero_copy_lines_.load(mo);
  t.zero_copy_bytes = zero_copy_bytes_.load(mo);
  t.dma_calls = dma_calls_.load(mo);
  t.dma_bytes = dma_bytes_.load(mo);
  t.um_faults = um_faults_.load(mo);
  t.um_hits = um_hits_.load(mo);
  t.compute_ops = compute_ops_.load(mo);
  t.host_ops = host_ops_.load(mo);
  t.host_bytes = host_bytes_.load(mo);
  t.cache_hits = cache_hits_.load(mo);
  t.cache_misses = cache_misses_.load(mo);
  return t;
}

SimTime simulate_time(const Traffic& t, const SimParams& p) {
  constexpr double kGiga = 1e9;
  SimTime s;
  s.dma = static_cast<double>(t.dma_calls) * p.dma_latency_us * 1e-6 +
          static_cast<double>(t.dma_bytes) / (p.dma_bandwidth_gbps * kGiga);
  s.zero_copy = static_cast<double>(t.zero_copy_lines) *
                static_cast<double>(p.zero_copy_line_bytes) /
                (p.zero_copy_bandwidth_gbps * kGiga);
  s.um = static_cast<double>(t.um_faults) *
             (p.um_fault_overhead_us * 1e-6 +
              static_cast<double>(p.um_page_bytes) /
                  (p.um_bandwidth_gbps * kGiga));
  s.device_mem = static_cast<double>(t.device_bytes) /
                 (p.device_bandwidth_gbps * kGiga);
  s.compute = static_cast<double>(t.compute_ops) / p.device_ops_per_sec;
  const double host_compute =
      static_cast<double>(t.host_ops) /
      (p.host_ops_per_sec_per_thread * static_cast<double>(p.host_threads));
  const double host_mem = static_cast<double>(t.host_bytes) /
                          (p.host_mem_bandwidth_gbps * kGiga);
  s.host = host_compute > host_mem ? host_compute : host_mem;
  return s;
}

}  // namespace gcsm::gpusim
