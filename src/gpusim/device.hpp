// The simulated GPU device: a bounded global-memory arena plus the pinned
// host-memory registry (the cudaHostAlloc / cudaHostGetDevicePointer analog
// used by the dynamic graph, paper Sec. V-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "util/error.hpp"

namespace gcsm {
class FaultInjector;
}  // namespace gcsm

namespace gcsm::gpusim {

class Device;

// A chunk of simulated device global memory. Owns host storage; the Device
// tracks the aggregate footprint against its capacity.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* dev, std::size_t bytes);
  ~DeviceBuffer();

  DeviceBuffer(DeviceBuffer&& o) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return bytes_; }
  bool valid() const { return data_ != nullptr; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_.get());
  }

 private:
  void release();

  Device* dev_ = nullptr;
  std::unique_ptr<std::byte[]> data_;
  std::size_t bytes_ = 0;
};

// Thrown when an allocation would exceed device capacity — the condition
// that forces VSGM-style k-hop copying to shrink its batch size (Sec. VI-B).
// A capacity fault in the taxonomy (ErrorCode::kDeviceOom): not retryable
// verbatim; the pipeline responds by shrinking its cache budget.
class DeviceOomError : public gcsm::Error {
 public:
  DeviceOomError(std::size_t requested, std::size_t available);
  std::size_t requested;
  std::size_t available;
};

// A host->device copy failed mid-transfer (the cudaMemcpy-returned-error
// analog). Transient: the pipeline rolls the batch back and retries.
class DeviceDmaError : public gcsm::Error {
 public:
  DeviceDmaError();
};

class Device {
 public:
  explicit Device(SimParams params = {});

  const SimParams& params() const { return params_; }
  SimParams& mutable_params() { return params_; }

  // Capacity accounting.
  std::size_t capacity() const { return params_.device_memory_bytes; }
  std::size_t used() const { return used_; }
  std::size_t available() const { return capacity() - used_; }

  // Allocates simulated global memory; throws DeviceOomError on exhaustion.
  DeviceBuffer alloc(std::size_t bytes);

  // DMA host->device copy (cudaMemcpyHostToDevice analog): moves bytes and
  // charges one DMA transaction on the counters.
  void dma_to_device(DeviceBuffer& dst, const void* src, std::size_t bytes,
                     TrafficCounters& counters);

  // Global traffic counters for kernels running on this device.
  TrafficCounters& counters() { return counters_; }

  // Arms fault injection on this device's alloc / DMA sites (and, via the
  // accessor, on consumers like the DCSR cache build). nullptr disarms.
  void set_fault_injector(gcsm::FaultInjector* faults) { faults_ = faults; }
  gcsm::FaultInjector* fault_injector() const { return faults_; }

 private:
  friend class DeviceBuffer;
  SimParams params_;
  std::size_t used_ = 0;
  TrafficCounters counters_;
  gcsm::FaultInjector* faults_ = nullptr;
};

// Pinned host allocation (cudaHostAlloc analog). In the simulation this is
// ordinary host memory; what matters is that engines *charge zero-copy cost*
// when a kernel dereferences it. A plain vector with the right semantics.
template <typename T>
class PinnedVector {
 public:
  PinnedVector() = default;
  explicit PinnedVector(std::size_t n) : v_(n) {}
  PinnedVector(std::size_t n, const T& init) : v_(n, init) {}

  T* data() { return v_.data(); }
  const T* data() const { return v_.data(); }
  std::size_t size() const { return v_.size(); }
  void resize(std::size_t n) { v_.resize(n); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void push_back(const T& x) { v_.push_back(x); }
  T& operator[](std::size_t i) { return v_[i]; }
  const T& operator[](std::size_t i) const { return v_[i]; }

  // The "device pointer" of this pinned region
  // (cudaHostGetDevicePointer analog): same address in the simulation, but
  // kept as a distinct accessor so call sites document which address space
  // they are in.
  const T* device_ptr() const { return v_.data(); }

 private:
  std::vector<T> v_;
};

}  // namespace gcsm::gpusim
