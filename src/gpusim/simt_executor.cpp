#include "gpusim/simt_executor.hpp"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm::gpusim {

KernelLaunchError::KernelLaunchError()
    : gcsm::Error(gcsm::ErrorCode::kKernelLaunch,
                  "kernel launch refused by the device (transient)") {}

KernelTimeoutError::KernelTimeoutError(double ms)
    : gcsm::Error(gcsm::ErrorCode::kKernelTimeout,
                  "watchdog cancelled a hung kernel after " +
                      std::to_string(ms) + " ms"),
      timeout_ms(ms) {}

SimtExecutor::SimtExecutor(std::size_t num_blocks, Schedule schedule)
    : pool_(std::make_unique<ThreadPool>(num_blocks)), schedule_(schedule) {}

void SimtExecutor::simulate_hung_kernel() {
  // The "kernel" spins without progress; a watchdog thread cancels it after
  // the timeout, exactly the shape of a real GPU watchdog recovery.
  std::atomic<bool> cancelled{false};
  std::thread watchdog([this, &cancelled] {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(watchdog_timeout_ms_));
    cancelled.store(true, std::memory_order_release);
  });
  while (!cancelled.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  watchdog.join();
  throw KernelTimeoutError(watchdog_timeout_ms_);
}

void SimtExecutor::for_each_item(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  static auto& m_launches =
      metrics::Registry::global().counter(metric::kKernelLaunches);
  static auto& m_items = metrics::Registry::global().counter(metric::kKernelItems);
  static auto& m_steals =
      metrics::Registry::global().counter(metric::kKernelStealChunks);
  static auto& m_launch_errors =
      metrics::Registry::global().counter(metric::kKernelLaunchErrors);
  static auto& m_timeouts =
      metrics::Registry::global().counter(metric::kKernelTimeouts);
  static auto& m_items_hist =
      metrics::Registry::global().histogram(metric::kKernelItemsPerLaunch);
  if (n == 0) return;
  if (faults_ != nullptr) {
    if (faults_->fires(fault_site::kKernelLaunch)) {
      m_launch_errors.add();
      throw KernelLaunchError();
    }
    if (faults_->fires(fault_site::kKernelHang)) {
      m_timeouts.add();
      simulate_hung_kernel();
    }
  }
  m_launches.add();
  m_items.add(n);
  m_items_hist.observe(static_cast<double>(n));
  if (schedule_ == Schedule::kWorkStealing) {
    // Each parallel_for callback is one chunk claimed from the shared
    // counter — the simulation's unit of "work stolen" by a block.
    pool_->parallel_for(n, grain,
                        [&](std::size_t begin, std::size_t end,
                            std::size_t block) {
                          m_steals.add();
                          for (std::size_t i = begin; i < end; ++i) {
                            body(i, block);
                          }
                        });
  } else {
    const std::size_t blocks = pool_->size();
    pool_->run_on_all([&](std::size_t block) {
      for (std::size_t i = block; i < n; i += blocks) {
        body(i, block);
      }
    });
  }
}

}  // namespace gcsm::gpusim
