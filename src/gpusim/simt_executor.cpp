#include "gpusim/simt_executor.hpp"

namespace gcsm::gpusim {

SimtExecutor::SimtExecutor(std::size_t num_blocks, Schedule schedule)
    : pool_(std::make_unique<ThreadPool>(num_blocks)), schedule_(schedule) {}

void SimtExecutor::for_each_item(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (schedule_ == Schedule::kWorkStealing) {
    pool_->parallel_for(n, grain,
                        [&](std::size_t begin, std::size_t end,
                            std::size_t block) {
                          for (std::size_t i = begin; i < end; ++i) {
                            body(i, block);
                          }
                        });
  } else {
    const std::size_t blocks = pool_->size();
    pool_->run_on_all([&](std::size_t block) {
      for (std::size_t i = block; i < n; i += blocks) {
        body(i, block);
      }
    });
  }
}

}  // namespace gcsm::gpusim
