// SIMT-style executor backing the simulated GPU kernels.
//
// The paper launches 82 thread blocks of 1024 threads and balances work
// among blocks with STMatch-style work stealing. In the simulation a
// "block" is a host worker; blocks claim work items (updated edges) from a
// shared queue. Two schedules are provided so the work-stealing choice can
// be ablated:
//   * kWorkStealing — blocks grab chunks from a shared atomic counter
//   * kStatic       — items are pre-partitioned round-robin across blocks
//
// Fault injection: when an injector is armed, a launch can be refused
// (kernel.launch → KernelLaunchError) or the kernel can hang
// (kernel.hang). A hung kernel spins until a watchdog thread cancels it
// after `watchdog_timeout_ms`, then surfaces as KernelTimeoutError — the
// cudaDeviceReset-after-timeout recovery path, in miniature. Both are
// transient in the error taxonomy: the pipeline rolls the batch back and
// retries.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace gcsm {
class FaultInjector;
}  // namespace gcsm

namespace gcsm::gpusim {

enum class Schedule { kWorkStealing, kStatic };

// The device refused the kernel launch (transient, e.g. a momentary
// resource shortage).
class KernelLaunchError : public gcsm::Error {
 public:
  KernelLaunchError();
};

// The watchdog cancelled a kernel that stopped making progress.
class KernelTimeoutError : public gcsm::Error {
 public:
  explicit KernelTimeoutError(double timeout_ms);
  double timeout_ms;
};

class SimtExecutor {
 public:
  // num_blocks == 0 uses one block per hardware thread.
  explicit SimtExecutor(std::size_t num_blocks = 0,
                        Schedule schedule = Schedule::kWorkStealing);

  std::size_t num_blocks() const { return pool_->size(); }
  Schedule schedule() const { return schedule_; }
  void set_schedule(Schedule s) { schedule_ = s; }

  // Arms the kernel fault sites. nullptr (the default) disarms.
  void set_fault_injector(gcsm::FaultInjector* faults) { faults_ = faults; }
  // How long the watchdog lets a hung kernel spin before cancelling it.
  void set_watchdog_timeout_ms(double ms) { watchdog_timeout_ms_ = ms; }
  double watchdog_timeout_ms() const { return watchdog_timeout_ms_; }

  // Executes body(item, block_id) for every item in [0, n); blocks claim
  // `grain` items at a time under kWorkStealing. Blocks until all items
  // complete. Throws KernelLaunchError / KernelTimeoutError when an armed
  // injector fires (always before any item runs, so no partial kernel
  // effects escape).
  void for_each_item(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>&
                         body);

 private:
  void simulate_hung_kernel();

  std::unique_ptr<ThreadPool> pool_;
  Schedule schedule_;
  gcsm::FaultInjector* faults_ = nullptr;
  double watchdog_timeout_ms_ = 25.0;
};

}  // namespace gcsm::gpusim
