// SIMT-style executor backing the simulated GPU kernels.
//
// The paper launches 82 thread blocks of 1024 threads and balances work
// among blocks with STMatch-style work stealing. In the simulation a
// "block" is a host worker; blocks claim work items (updated edges) from a
// shared queue. Two schedules are provided so the work-stealing choice can
// be ablated:
//   * kWorkStealing — blocks grab chunks from a shared atomic counter
//   * kStatic       — items are pre-partitioned round-robin across blocks
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "util/thread_pool.hpp"

namespace gcsm::gpusim {

enum class Schedule { kWorkStealing, kStatic };

class SimtExecutor {
 public:
  // num_blocks == 0 uses one block per hardware thread.
  explicit SimtExecutor(std::size_t num_blocks = 0,
                        Schedule schedule = Schedule::kWorkStealing);

  std::size_t num_blocks() const { return pool_->size(); }
  Schedule schedule() const { return schedule_; }
  void set_schedule(Schedule s) { schedule_ = s; }

  // Executes body(item, block_id) for every item in [0, n); blocks claim
  // `grain` items at a time under kWorkStealing. Blocks until all items
  // complete.
  void for_each_item(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>&
                         body);

 private:
  std::unique_ptr<ThreadPool> pool_;
  Schedule schedule_;
};

}  // namespace gcsm::gpusim
