#include "core/gpu_engine.hpp"

#include <algorithm>
#include <numeric>

#include "core/list_ref.hpp"

namespace gcsm {

std::vector<VertexId> select_by_frequency(const std::vector<double>& frequency,
                                          double min_frequency) {
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < frequency.size(); ++v) {
    if (frequency[v] > min_frequency) {
      out.push_back(static_cast<VertexId>(v));
    }
  }
  std::sort(out.begin(), out.end(), [&](VertexId a, VertexId b) {
    if (frequency[a] != frequency[b]) return frequency[a] > frequency[b];
    return a < b;
  });
  return out;
}

std::vector<VertexId> select_by_degree(const DynamicGraph& graph) {
  std::vector<VertexId> out(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(out.begin(), out.end(), 0);
  std::sort(out.begin(), out.end(), [&](VertexId a, VertexId b) {
    const std::uint32_t da = graph.live_degree(a);
    const std::uint32_t db = graph.live_degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return out;
}

std::vector<VertexId> khop_vertices(const DynamicGraph& graph,
                                    const EdgeBatch& batch,
                                    std::uint32_t hops) {
  std::vector<std::uint8_t> seen(
      static_cast<std::size_t>(graph.num_vertices()), 0);
  std::vector<VertexId> order;
  std::vector<VertexId> frontier;
  auto add = [&](VertexId v) {
    if (!seen[v]) {
      seen[v] = 1;
      order.push_back(v);
      frontier.push_back(v);
    }
  };
  for (const EdgeUpdate& e : batch.updates) {
    add(e.u);
    add(e.v);
  }
  std::vector<VertexId> nbrs;
  for (std::uint32_t hop = 0; hop < hops; ++hop) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier) {
      nbrs.clear();
      materialize_view(graph.view(u, ViewMode::kNew), nbrs);
      for (const VertexId v : nbrs) {
        if (!seen[v]) {
          seen[v] = 1;
          order.push_back(v);
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return order;
}

std::uint64_t total_list_bytes(const DynamicGraph& graph,
                               const std::vector<VertexId>& vertices) {
  std::uint64_t bytes = 0;
  for (const VertexId v : vertices) bytes += graph.list_bytes(v);
  return bytes;
}

}  // namespace gcsm
