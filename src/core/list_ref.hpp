// Materialization of neighbor-list views.
//
// A NeighborView is up to two sorted runs with tombstone semantics (see
// graph/dynamic_graph.hpp). The enumeration engines materialize views into
// per-worker scratch buffers of decoded live ids before intersecting; this
// is what the STMatch-style kernel does when it merges N and ΔN ("perform
// set operations involving N' separately for N and ΔN", paper Sec. V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"

namespace gcsm {

// Appends the live decoded ids of `view` to `out` in ascending order.
//  kOld: every prefix entry decoded (tombstones were live pre-batch).
//  kNew: prefix entries that are not tombstoned, merged with the appended
//        run (both sorted, so a linear merge).
void materialize_view(const NeighborView& view, std::vector<VertexId>& out);

// Number of live ids `materialize_view` would produce.
std::uint32_t view_live_size(const NeighborView& view);

// True if `target` is a live member of the view (binary search per run).
bool view_contains(const NeighborView& view, VertexId target);

}  // namespace gcsm
