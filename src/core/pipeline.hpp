// The end-to-end GCSM pipeline (paper Fig. 3) and every baseline engine
// behind one interface.
//
// For each batch ΔE_k the pipeline runs the paper's five steps:
//   1. append ΔE_k to the dynamic graph on the CPU;
//   2. random walks estimate per-vertex access frequency (GCSM only);
//   3. the frequent vertices' lists are DCSR-packed and DMA'd to the device
//      (GCSM / Naive / VSGM);
//   4. the incremental matching kernel runs on the (simulated) device — or
//      on host threads for the CPU baseline;
//   5. the touched neighbor lists are reorganized on the CPU.
//
// Engine kinds map one-to-one to the paper's comparison systems.
//
// process_batch is TRANSACTIONAL: before touching the graph it snapshots the
// state the batch can modify, and any failure (device OOM, DMA error, kernel
// launch refusal, watchdog timeout, a mid-apply crash) rolls the graph back
// and re-runs the batch. Recovery escalates along a ladder:
//   transient fault  -> rollback + exponential-backoff retry (bounded);
//   device OOM       -> halve the effective cache budget and retry (the
//                       budget heals back after enough clean batches);
//   retries exhausted / budget at floor -> re-run the batch on the CPU
//                       engine (kCpu), which needs no device at all.
// Only when even the CPU attempts fail does the error escape to the caller.
// See docs/ROBUSTNESS.md for the full taxonomy and recovery matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/durability.hpp"
#include "core/frequency_estimator.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace gcsm {

enum class EngineKind {
  kGcsm,           // frequency-estimated cache + zero-copy fallback
  kZeroCopy,       // baseline ZP: everything over PCIe in cache lines
  kUnifiedMemory,  // baseline UM: page-granular unified memory
  kNaiveDegree,    // baseline Naive: degree-ordered cache
  kVsgm,           // baseline VSGM: k-hop DMA precopy
  kCpu,            // CPU baseline: host threads, no device
};

const char* engine_kind_name(EngineKind kind);

// Knobs of the transactional retry / degradation ladder. The defaults favor
// forward progress: a handful of device retries, then a CPU re-run.
struct RecoveryOptions {
  // Attempts on the configured engine before escalating (>= 1; the first
  // run counts as one attempt).
  int max_attempts = 3;
  // Attempts granted to the CPU fallback once escalated.
  int max_cpu_attempts = 4;
  // Escalate to the CPU engine when device attempts are exhausted. With
  // this off, the last error is rethrown instead.
  bool cpu_fallback = true;
  // Exponential backoff between attempts; 0 disables sleeping (tests).
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 50.0;
  // Device-OOM degradation: each OOM halves the effective cache budget,
  // never below this floor; once at the floor, OOM escalates like an
  // exhausted retry.
  std::uint64_t min_cache_budget_bytes = 64ull << 10;
  // After this many consecutive clean device batches, the budget doubles
  // back toward the configured value (one step at a time).
  int heal_after_clean_batches = 8;
  // Screen incoming batches and quarantine malformed records instead of
  // letting apply_batch throw on them.
  bool sanitize_batches = true;
  // Watchdog deadline for hung kernels (forwarded to the executor).
  double watchdog_timeout_ms = 25.0;
};

struct PipelineOptions {
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // GPU cache budget (the paper's 14 GB buffer, scaled down by default).
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // simulated blocks / host threads (0 = auto)
  std::size_t grain = 2;
  gpusim::Schedule schedule = gpusim::Schedule::kWorkStealing;
  std::uint64_t seed = 7;
  // Validate DynamicGraph and DcsrCache at every batch boundary (throws
  // CheckFailure on corruption). Defaults on in GCSM_ENABLE_CHECKS builds;
  // can be toggled per pipeline regardless of the build flavor.
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
  RecoveryOptions recovery;
  // Crash durability: WAL + snapshots + recover-on-start (core/durability.hpp
  // and docs/ROBUSTNESS.md). Disabled while wal_dir is empty.
  DurabilityOptions durability;
  // Arms every fault site in the pipeline's components (device allocation
  // and DMA, kernel launch/hang, cache build, batch apply, batch
  // corruption). Non-owning; must outlive the pipeline. nullptr = disarmed.
  FaultInjector* fault_injector = nullptr;
};

struct BatchReport {
  MatchStats stats;
  gpusim::Traffic traffic;

  // Wall-clock phase times (milliseconds).
  double wall_update_ms = 0.0;
  double wall_estimate_ms = 0.0;  // Step 2 (FE in Table II)
  double wall_pack_ms = 0.0;      // Step 3 (DC in Table II)
  double wall_match_ms = 0.0;     // Step 4
  double wall_reorg_ms = 0.0;     // Step 5 (Table III)

  // Simulated phase times (seconds) from the cost model; the matching phase
  // is split as in Fig. 13's breakdown.
  double sim_estimate_s = 0.0;
  double sim_pack_s = 0.0;  // DMA of the DCSR blob
  double sim_match_s = 0.0;
  double sim_reorg_s = 0.0;

  double sim_total_s() const {
    return sim_estimate_s + sim_pack_s + sim_match_s + sim_reorg_s;
  }
  double wall_total_ms() const {
    return wall_update_ms + wall_estimate_ms + wall_pack_ms + wall_match_ms +
           wall_reorg_ms;
  }

  // Cache diagnostics.
  std::uint64_t cached_vertices = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t walks = 0;

  // Robustness diagnostics (phase times and traffic reflect the attempt
  // that succeeded; these record what it took to get there).
  std::uint32_t retries = 0;            // recovery attempts beyond the first
  std::uint32_t degradation_level = 0;  // budget halvings in effect
  std::uint64_t effective_cache_budget = 0;  // budget used by this batch
  bool cpu_fallback = false;            // batch completed on the CPU engine
  double backoff_ms = 0.0;              // total backoff slept for this batch
  std::uint64_t faults_observed = 0;    // injector fires during this batch
  QuarantineReport quarantine;          // malformed records screened out
  std::uint64_t wal_seq = 0;            // WAL sequence (0 = not durably logged)

  // Process-wide metrics after this batch (docs/OBSERVABILITY.md): the
  // cumulative registry state, so deltas between consecutive reports
  // attribute activity to one batch.
  metrics::Snapshot metrics;

  double cache_hit_rate() const {
    const auto total = traffic.cache_hits + traffic.cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(traffic.cache_hits) /
                            static_cast<double>(total);
  }
};

class Pipeline {
 public:
  Pipeline(const CsrGraph& initial, QueryGraph query, PipelineOptions options);

  BatchReport process_batch(const EdgeBatch& batch,
                            const MatchSink* sink = nullptr);

  const DynamicGraph& graph() const { return graph_; }
  DynamicGraph& mutable_graph() { return graph_; }
  const QueryGraph& query() const { return engine_.query(); }
  const PipelineOptions& options() const { return options_; }
  gpusim::Device& device() { return device_; }

  // Embedding count of the current graph by full (static) matching through
  // this pipeline's policy — used for initialization and validation. Fault
  // injection is suspended for the duration (it is a diagnostic, not a
  // batch).
  std::uint64_t count_current_embeddings();

  // The cache budget after degradation: cache_budget_bytes halved
  // degradation_level() times, floored at min_cache_budget_bytes.
  std::uint64_t effective_cache_budget() const;
  std::uint32_t degradation_level() const { return degradation_level_; }

  // Cumulative match totals across every committed batch (maintained with
  // or without durability). With durability on, exactly what the last WAL
  // commit marker recorded — a restarted client resumes submission from
  // cumulative().batches_committed.
  const durable::DurableCounters& cumulative() const { return cumulative_; }
  // What recover-on-start found (empty when durability is off or the start
  // was cold).
  const RecoveredState& recovery_info() const { return recovery_info_; }

 private:
  std::unique_ptr<AccessPolicy> make_policy(EngineKind kind);

  // One transactional attempt at the five steps. `use_cpu` re-runs the
  // batch on the CPU engine regardless of the configured kind.
  void run_attempt(const EdgeBatch& batch, const MatchSink* sink,
                   bool use_cpu, BatchReport& report);

  // Folds the finished batch into the process-wide metrics registry
  // (per-batch granularity so the fetch hot path stays untouched).
  static void record_batch_metrics(const BatchReport& report);

  PipelineOptions options_;
  DynamicGraph graph_;
  gpusim::Device device_;
  gpusim::SimtExecutor executor_;
  MatchEngine engine_;
  FrequencyEstimator estimator_;
  DcsrCache cache_;
  std::unique_ptr<UnifiedMemoryPolicy> um_policy_;  // persistent page cache
  Rng rng_;
  FaultInjector* faults_ = nullptr;
  DurabilityManager durability_;
  durable::DurableCounters cumulative_;
  RecoveredState recovery_info_;
  bool replaying_ = false;  // recovery replay: no sink, no re-logging
  std::uint32_t degradation_level_ = 0;
  int clean_device_batches_ = 0;  // streak feeding the budget-heal counter
};

}  // namespace gcsm
