// The end-to-end GCSM pipeline (paper Fig. 3) and every baseline engine
// behind one interface.
//
// For each batch ΔE_k the pipeline runs the paper's five steps:
//   1. append ΔE_k to the dynamic graph on the CPU;
//   2. random walks estimate per-vertex access frequency (GCSM only);
//   3. the frequent vertices' lists are DCSR-packed and DMA'd to the device
//      (GCSM / Naive / VSGM);
//   4. the incremental matching kernel runs on the (simulated) device — or
//      on host threads for the CPU baseline;
//   5. the touched neighbor lists are reorganized on the CPU.
//
// Engine kinds map one-to-one to the paper's comparison systems.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/frequency_estimator.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gcsm {

enum class EngineKind {
  kGcsm,           // frequency-estimated cache + zero-copy fallback
  kZeroCopy,       // baseline ZP: everything over PCIe in cache lines
  kUnifiedMemory,  // baseline UM: page-granular unified memory
  kNaiveDegree,    // baseline Naive: degree-ordered cache
  kVsgm,           // baseline VSGM: k-hop DMA precopy
  kCpu,            // CPU baseline: host threads, no device
};

const char* engine_kind_name(EngineKind kind);

struct PipelineOptions {
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // GPU cache budget (the paper's 14 GB buffer, scaled down by default).
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // simulated blocks / host threads (0 = auto)
  std::size_t grain = 2;
  gpusim::Schedule schedule = gpusim::Schedule::kWorkStealing;
  std::uint64_t seed = 7;
  // Validate DynamicGraph and DcsrCache at every batch boundary (throws
  // CheckFailure on corruption). Defaults on in GCSM_ENABLE_CHECKS builds;
  // can be toggled per pipeline regardless of the build flavor.
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
};

struct BatchReport {
  MatchStats stats;
  gpusim::Traffic traffic;

  // Wall-clock phase times (milliseconds).
  double wall_update_ms = 0.0;
  double wall_estimate_ms = 0.0;  // Step 2 (FE in Table II)
  double wall_pack_ms = 0.0;      // Step 3 (DC in Table II)
  double wall_match_ms = 0.0;     // Step 4
  double wall_reorg_ms = 0.0;     // Step 5 (Table III)

  // Simulated phase times (seconds) from the cost model; the matching phase
  // is split as in Fig. 13's breakdown.
  double sim_estimate_s = 0.0;
  double sim_pack_s = 0.0;  // DMA of the DCSR blob
  double sim_match_s = 0.0;
  double sim_reorg_s = 0.0;

  double sim_total_s() const {
    return sim_estimate_s + sim_pack_s + sim_match_s + sim_reorg_s;
  }
  double wall_total_ms() const {
    return wall_update_ms + wall_estimate_ms + wall_pack_ms + wall_match_ms +
           wall_reorg_ms;
  }

  // Cache diagnostics.
  std::uint64_t cached_vertices = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t walks = 0;
  double cache_hit_rate() const {
    const auto total = traffic.cache_hits + traffic.cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(traffic.cache_hits) /
                            static_cast<double>(total);
  }
};

class Pipeline {
 public:
  Pipeline(const CsrGraph& initial, QueryGraph query, PipelineOptions options);

  BatchReport process_batch(const EdgeBatch& batch,
                            const MatchSink* sink = nullptr);

  const DynamicGraph& graph() const { return graph_; }
  DynamicGraph& mutable_graph() { return graph_; }
  const QueryGraph& query() const { return engine_.query(); }
  const PipelineOptions& options() const { return options_; }
  gpusim::Device& device() { return device_; }

  // Embedding count of the current graph by full (static) matching through
  // this pipeline's policy — used for initialization and validation.
  std::uint64_t count_current_embeddings();

 private:
  std::unique_ptr<AccessPolicy> make_policy();

  PipelineOptions options_;
  DynamicGraph graph_;
  gpusim::Device device_;
  gpusim::SimtExecutor executor_;
  MatchEngine engine_;
  FrequencyEstimator estimator_;
  DcsrCache cache_;
  std::unique_ptr<UnifiedMemoryPolicy> um_policy_;  // persistent page cache
  Rng rng_;
};

}  // namespace gcsm
