// The end-to-end GCSM pipeline (paper Fig. 3) and every baseline engine
// behind one interface.
//
// For each batch ΔE_k the pipeline runs the paper's five steps (the phase
// bodies live in core/phases.hpp, shared with the multi-query serving engine
// in src/server/):
//   1. append ΔE_k to the dynamic graph on the CPU;
//   2. random walks estimate per-vertex access frequency (GCSM only);
//   3. the frequent vertices' lists are DCSR-packed and DMA'd to the device
//      (GCSM / Naive / VSGM);
//   4. the incremental matching kernel runs on the (simulated) device — or
//      on host threads for the CPU baseline;
//   5. the touched neighbor lists are reorganized on the CPU.
//
// Engine kinds map one-to-one to the paper's comparison systems.
//
// process_batch is TRANSACTIONAL: before touching the graph it snapshots the
// state the batch can modify, and any failure (device OOM, DMA error, kernel
// launch refusal, watchdog timeout, a mid-apply crash) rolls the graph back
// and re-runs the batch. Recovery escalates along a ladder:
//   transient fault  -> rollback + exponential-backoff retry (bounded);
//   device OOM       -> halve the effective cache budget and retry (the
//                       budget heals back after enough clean batches);
//   retries exhausted / budget at floor -> re-run the batch on the CPU
//                       engine (kCpu), which needs no device at all.
// Only when even the CPU attempts fail does the error escape to the caller.
// See docs/ROBUSTNESS.md for the full taxonomy and recovery matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/durability.hpp"
#include "core/frequency_estimator.hpp"
#include "core/phases.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/parking.hpp"
#include "util/rng.hpp"

namespace gcsm {

struct PipelineOptions {
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // GPU cache budget (the paper's 14 GB buffer, scaled down by default).
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // simulated blocks / host threads (0 = auto)
  std::size_t grain = 2;
  gpusim::Schedule schedule = gpusim::Schedule::kWorkStealing;
  std::uint64_t seed = 7;
  // Validate DynamicGraph and DcsrCache at every batch boundary (throws
  // CheckFailure on corruption). Defaults on in GCSM_ENABLE_CHECKS builds;
  // can be toggled per pipeline regardless of the build flavor.
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
  RecoveryOptions recovery;
  // Crash durability: WAL + snapshots + recover-on-start (core/durability.hpp
  // and docs/ROBUSTNESS.md). Disabled while wal_dir is empty.
  DurabilityOptions durability;
  // Arms every fault site in the pipeline's components (device allocation
  // and DMA, kernel launch/hang, cache build, batch apply, batch
  // corruption). Non-owning; must outlive the pipeline. nullptr = disarmed.
  FaultInjector* fault_injector = nullptr;
  // Metric/trace scope for this engine instance (e.g. "q3." yields
  // "q3.pipeline.match_ms"). Empty keeps the historical process-wide names,
  // so single-pipeline deployments are unchanged. Two engines sharing a
  // prefix interleave into the same series, exactly like before.
  std::string metric_prefix;
};

class Pipeline {
 public:
  Pipeline(const CsrGraph& initial, QueryGraph query, PipelineOptions options);

  BatchReport process_batch(const EdgeBatch& batch,
                            const MatchSink* sink = nullptr);

  const DynamicGraph& graph() const { return graph_; }
  DynamicGraph& mutable_graph() { return graph_; }
  const QueryGraph& query() const { return engine_.query(); }
  const PipelineOptions& options() const { return options_; }
  gpusim::Device& device() { return device_; }

  // Embedding count of the current graph by full (static) matching through
  // this pipeline's policy — used for initialization and validation. Fault
  // injection is suspended for the duration (it is a diagnostic, not a
  // batch).
  std::uint64_t count_current_embeddings();

  // The cache budget after degradation: cache_budget_bytes halved
  // degradation_level() times, floored at min_cache_budget_bytes.
  std::uint64_t effective_cache_budget() const;
  std::uint32_t degradation_level() const { return degradation_level_; }

  // Cumulative match totals across every committed batch (maintained with
  // or without durability). With durability on, exactly what the last WAL
  // commit marker recorded — a restarted client resumes submission from
  // cumulative().batches_committed.
  const durable::DurableCounters& cumulative() const { return cumulative_; }
  // What recover-on-start found (empty when durability is off or the start
  // was cold).
  const RecoveredState& recovery_info() const { return recovery_info_; }

 private:
  std::unique_ptr<AccessPolicy> make_policy(EngineKind kind);

  // One transactional attempt at the five steps. `use_cpu` re-runs the
  // batch on the CPU engine regardless of the configured kind.
  void run_attempt(const EdgeBatch& batch, const MatchSink* sink,
                   bool use_cpu, BatchReport& report);

  PipelineOptions options_;
  DynamicGraph graph_;
  gpusim::Device device_;
  gpusim::SimtExecutor executor_;
  MatchEngine engine_;
  FrequencyEstimator estimator_;
  DcsrCache cache_;
  std::unique_ptr<UnifiedMemoryPolicy> um_policy_;  // persistent page cache
  Rng rng_;
  FaultInjector* faults_ = nullptr;
  DurabilityManager durability_;
  PipelineMetrics metrics_;
  durable::DurableCounters cumulative_;
  RecoveredState recovery_info_;
  bool replaying_ = false;  // recovery replay: no sink, no re-logging
  std::uint32_t degradation_level_ = 0;
  int clean_device_batches_ = 0;  // streak feeding the budget-heal counter
  util::ParkingLot parker_;       // interruptible retry-ladder backoff
};

}  // namespace gcsm
