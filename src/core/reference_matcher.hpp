// Independent brute-force subgraph matcher used as the ground truth in
// tests. Deliberately implemented with a different algorithm from the main
// engine (plain backtracking over query vertices in id order, adjacency
// checked edge-by-edge with binary search) so the two can cross-validate.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

// Number of embeddings (injective label/adjacency-preserving mappings) of q
// in g. Exponential in |q|; for test-sized graphs only.
std::uint64_t reference_count_embeddings(const CsrGraph& g,
                                         const QueryGraph& q);

// The embeddings themselves; embedding[i] = data vertex matched to query
// vertex i.
std::vector<std::array<VertexId, kMaxQueryVertices>>
reference_list_embeddings(const CsrGraph& g, const QueryGraph& q);

}  // namespace gcsm
