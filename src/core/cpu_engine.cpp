#include "core/cpu_engine.hpp"

#include <mutex>

#include "core/intersect.hpp"
#include "core/list_ref.hpp"
#include "util/timer.hpp"

namespace gcsm {
namespace {

struct WorkerScratch {
  std::array<std::vector<VertexId>, kMaxQueryVertices> cand;
  std::array<std::uint32_t, kMaxQueryVertices> cursor{};
  std::vector<VertexId> tmp;
  MatchStats stats;
  double busy_seconds = 0.0;
};

// Charges intersection/materialization work to the right side of the cost
// model: SIMT compute for device policies, host ops for CPU policies.
void charge_ops(AccessPolicy& policy, gpusim::TrafficCounters& counters,
                std::uint64_t ops) {
  if (policy.on_device()) {
    counters.add_compute(ops);
  } else {
    counters.add_host(ops, 0);
  }
}

// Computes the candidate buffer for `level` of `plan` given the bindings so
// far. Returns false if the candidate set is empty.
bool compute_candidates(const MatchPlan& plan, std::uint32_t level,
                        const std::array<VertexId, kMaxQueryVertices>& bound,
                        AccessPolicy& policy,
                        gpusim::TrafficCounters& counters,
                        WorkerScratch& scratch) {
  const PlanLevel& pl = plan.levels[level];
  auto& out = scratch.cand[level];
  out.clear();
  std::uint64_t ops = 0;

  const auto& c0 = pl.constraints[0];
  const NeighborView v0 = policy.fetch(bound[c0.order_pos], c0.view, counters);
  materialize_view(v0, out);
  ops += out.size();

  for (std::size_t i = 1; i < pl.constraints.size() && !out.empty(); ++i) {
    const auto& c = pl.constraints[i];
    const NeighborView vi = policy.fetch(bound[c.order_pos], c.view, counters);
    scratch.tmp.clear();
    materialize_view(vi, scratch.tmp);
    ops += scratch.tmp.size();
    ops += intersect_into(out, scratch.tmp.data(), scratch.tmp.size());
  }
  charge_ops(policy, counters, ops);
  return !out.empty();
}

class SinkLock {
 public:
  explicit SinkLock(const MatchSink* sink) : sink_(sink) {}
  void emit(const MatchPlan& plan,
            std::span<const VertexId> binding, int sign) {
    if (sink_ == nullptr) return;
    std::lock_guard<std::mutex> lk(mu_);
    (*sink_)(plan, binding, sign);
  }

 private:
  const MatchSink* sink_;
  std::mutex mu_;
};

// Explicit-stack DFS from one bound seed edge (the STMatch kernel shape).
void enumerate_seed(const QueryGraph& query, const MatchPlan& plan,
                    const DynamicGraph& graph, VertexId xa, VertexId xb,
                    int sign, AccessPolicy& policy,
                    gpusim::TrafficCounters& counters, WorkerScratch& scratch,
                    SinkLock& sink, const CandidateFilter* filter) {
  const std::uint32_t num_levels = plan.num_levels();
  std::array<VertexId, kMaxQueryVertices> bound{};
  bound[0] = xa;
  bound[1] = xb;
  ++scratch.stats.seeds;

  auto emit = [&](std::uint32_t depth) {
    scratch.stats.signed_embeddings += sign;
    if (sign > 0) {
      ++scratch.stats.positive;
    } else {
      ++scratch.stats.negative;
    }
    sink.emit(plan, std::span<const VertexId>(bound.data(), depth), sign);
  };

  if (num_levels == 0) {
    emit(2);
    return;
  }

  std::int32_t level = 0;
  if (!compute_candidates(plan, 0, bound, policy, counters, scratch)) return;
  scratch.cursor[0] = 0;

  while (level >= 0) {
    auto& cand = scratch.cand[level];
    auto& cur = scratch.cursor[level];
    if (cur >= cand.size()) {
      --level;
      continue;
    }
    const VertexId v = cand[cur++];
    const PlanLevel& pl = plan.levels[level];

    // Label, injectivity, and optional index filters at bind time.
    if (!query.label_matches(pl.query_vertex, graph.label(v))) continue;
    bool duplicate = false;
    const std::uint32_t bound_count = 2 + static_cast<std::uint32_t>(level);
    for (std::uint32_t i = 0; i < bound_count; ++i) {
      if (bound[i] == v) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (filter != nullptr && !filter->admits(pl.query_vertex, v)) continue;

    bound[bound_count] = v;
    if (static_cast<std::uint32_t>(level) + 1 == num_levels) {
      emit(bound_count + 1);
      continue;
    }
    ++level;
    if (!compute_candidates(plan, static_cast<std::uint32_t>(level), bound,
                            policy, counters, scratch)) {
      --level;
      continue;
    }
    scratch.cursor[level] = 0;
  }
}

}  // namespace

MatchEngine::MatchEngine(QueryGraph query, gpusim::SimtExecutor& executor,
                         std::size_t grain)
    : query_(std::move(query)),
      static_plan_(make_static_plan(query_)),
      delta_plans_(make_delta_plans(query_)),
      executor_(executor),
      grain_(grain) {}

MatchStats MatchEngine::match_batch(const DynamicGraph& graph,
                                    const EdgeBatch& batch,
                                    AccessPolicy& policy,
                                    gpusim::TrafficCounters& counters,
                                    const MatchSink* sink,
                                    const CandidateFilter* filter) {
  return match_batch_with_plans(delta_plans_, graph, batch, policy, counters,
                                sink, filter);
}

MatchStats MatchEngine::match_batch_with_plans(
    const std::vector<MatchPlan>& plans, const DynamicGraph& graph,
    const EdgeBatch& batch, AccessPolicy& policy,
    gpusim::TrafficCounters& counters, const MatchSink* sink,
    const CandidateFilter* filter,
    std::vector<double>* per_block_busy_seconds) {
  // Work item space: plan x batch edge x orientation, flattened so work
  // stealing balances hot seed edges across blocks.
  const std::size_t per_plan = batch.updates.size() * 2;
  const std::size_t total = plans.size() * per_plan;

  std::vector<WorkerScratch> scratch(executor_.num_blocks());
  SinkLock sink_lock(sink);

  const bool record_busy = per_block_busy_seconds != nullptr;
  executor_.for_each_item(total, grain_, [&](std::size_t item,
                                             std::size_t block) {
    const std::size_t plan_idx = item / per_plan;
    const std::size_t rest = item % per_plan;
    const EdgeUpdate& e = batch.updates[rest / 2];
    const bool swap = (rest % 2) != 0;
    const VertexId xa = swap ? e.v : e.u;
    const VertexId xb = swap ? e.u : e.v;
    const MatchPlan& plan = plans[plan_idx];

    // ΔR_i: the update edge must match the seed query edge's labels.
    if (!query_.label_matches(plan.seed_a, graph.label(xa))) return;
    if (!query_.label_matches(plan.seed_b, graph.label(xb))) return;
    if (filter != nullptr && (!filter->admits(plan.seed_a, xa) ||
                              !filter->admits(plan.seed_b, xb))) {
      return;
    }
    Timer seed_timer;
    enumerate_seed(query_, plan, graph, xa, xb, e.sign, policy, counters,
                   scratch[block], sink_lock, filter);
    if (record_busy) scratch[block].busy_seconds += seed_timer.seconds();
  });

  MatchStats stats;
  for (const WorkerScratch& s : scratch) stats += s.stats;
  if (per_block_busy_seconds != nullptr) {
    per_block_busy_seconds->clear();
    for (const WorkerScratch& s : scratch) {
      per_block_busy_seconds->push_back(s.busy_seconds);
    }
  }
  return stats;
}

MatchStats MatchEngine::match_full(const DynamicGraph& graph,
                                   AccessPolicy& policy,
                                   gpusim::TrafficCounters& counters,
                                   const MatchSink* sink) {
  std::vector<WorkerScratch> scratch(executor_.num_blocks());
  SinkLock sink_lock(sink);
  const MatchPlan& plan = static_plan_;

  executor_.for_each_item(
      static_cast<std::size_t>(graph.num_vertices()), grain_ * 16,
      [&](std::size_t item, std::size_t block) {
        const auto xa = static_cast<VertexId>(item);
        if (!query_.label_matches(plan.seed_a, graph.label(xa))) return;
        // Scan xa's live neighbors as seed targets (both orientations are
        // covered because every ordered pair (xa, xb) is its own item).
        WorkerScratch& s = scratch[block];
        const NeighborView view = policy.fetch(xa, ViewMode::kNew, counters);
        s.tmp.clear();
        materialize_view(view, s.tmp);
        charge_ops(policy, counters, s.tmp.size());
        std::vector<VertexId> seeds = s.tmp;  // tmp is reused downstream
        for (const VertexId xb : seeds) {
          if (!query_.label_matches(plan.seed_b, graph.label(xb))) continue;
          enumerate_seed(query_, plan, graph, xa, xb, +1, policy, counters,
                         s, sink_lock, nullptr);
        }
      });

  MatchStats stats;
  for (const WorkerScratch& s : scratch) stats += s.stats;
  return stats;
}

}  // namespace gcsm
