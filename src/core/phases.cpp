#include "core/phases.hpp"

#include "core/gpu_engine.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace gcsm {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGcsm:
      return "GCSM";
    case EngineKind::kZeroCopy:
      return "ZP";
    case EngineKind::kUnifiedMemory:
      return "UM";
    case EngineKind::kNaiveDegree:
      return "Naive";
    case EngineKind::kVsgm:
      return "VSGM";
    case EngineKind::kCpu:
      return "CPU";
  }
  return "?";
}

PipelineMetrics::PipelineMetrics(std::string prefix)
    : prefix_(std::move(prefix)),
      span_batch_(prefix_ + "pipeline.batch"),
      span_update_(prefix_ + "pipeline.update"),
      span_estimate_(prefix_ + "pipeline.estimate"),
      span_pack_(prefix_ + "pipeline.pack"),
      span_match_(prefix_ + "pipeline.match"),
      span_reorg_(prefix_ + "pipeline.reorg"),
      batches_(metrics::Registry::global().counter(prefix_ +
                                                   metric::kPipelineBatches)),
      retries_(metrics::Registry::global().counter(prefix_ +
                                                   metric::kPipelineRetries)),
      fallbacks_(metrics::Registry::global().counter(
          prefix_ + metric::kPipelineCpuFallbacks)),
      degradations_(metrics::Registry::global().counter(
          prefix_ + metric::kPipelineDegradations)),
      quarantined_(metrics::Registry::global().counter(
          prefix_ + metric::kPipelineQuarantinedRecords)),
      faults_(metrics::Registry::global().counter(
          prefix_ + metric::kPipelineFaultsObserved)),
      cache_hits_(metrics::Registry::global().counter(prefix_ + metric::kCacheHits)),
      cache_misses_(metrics::Registry::global().counter(prefix_ +
                                                        metric::kCacheMisses)),
      zero_copy_bytes_(metrics::Registry::global().counter(
          prefix_ + metric::kCacheZeroCopyBytes)),
      compute_ops_(metrics::Registry::global().counter(
          prefix_ + metric::kKernelComputeOps)),
      host_ops_(metrics::Registry::global().counter(prefix_ + metric::kHostOps)),
      est_walks_(metrics::Registry::global().counter(prefix_ +
                                                     metric::kEstimatorWalks)),
      est_nodes_(metrics::Registry::global().counter(
          prefix_ + metric::kEstimatorNodesVisited)),
      est_ops_(metrics::Registry::global().counter(prefix_ + metric::kEstimatorOps)),
      budget_(metrics::Registry::global().gauge(
          prefix_ + metric::kPipelineEffectiveCacheBudgetBytes)),
      level_(metrics::Registry::global().gauge(
          prefix_ + metric::kPipelineDegradationLevel)),
      cached_(metrics::Registry::global().gauge(prefix_ +
                                                metric::kCacheCachedVertices)),
      wall_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineBatchWallMs)),
      sim_(metrics::Registry::global().histogram(prefix_ +
                                                 metric::kPipelineBatchSimMs)),
      update_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineUpdateMs)),
      estimate_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineEstimateMs)),
      pack_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelinePackMs)),
      match_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineMatchMs)),
      reorg_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineReorgMs)),
      backoff_ms_(metrics::Registry::global().histogram(
          prefix_ + metric::kPipelineBackoffMs)) {}

void PipelineMetrics::note_estimate(const EstimateResult& est) const {
  est_walks_.add(est.walks);
  est_nodes_.add(est.nodes_visited);
  est_ops_.add(est.ops);
}

void PipelineMetrics::note_degradation() const { degradations_.add(); }

void PipelineMetrics::record_batch(const BatchReport& report) const {
  batches_.add();
  retries_.add(report.retries);
  if (report.cpu_fallback) fallbacks_.add();
  quarantined_.add(report.quarantine.total());
  faults_.add(report.faults_observed);
  // Hot-path cache/kernel traffic is mirrored per batch from the traffic
  // counters — per-lookup metric updates would tax the fetch fast path.
  cache_hits_.add(report.traffic.cache_hits);
  cache_misses_.add(report.traffic.cache_misses);
  zero_copy_bytes_.add(report.traffic.zero_copy_bytes);
  compute_ops_.add(report.traffic.compute_ops);
  host_ops_.add(report.traffic.host_ops);
  budget_.set(static_cast<double>(report.effective_cache_budget));
  level_.set(static_cast<double>(report.degradation_level));
  cached_.set(static_cast<double>(report.cached_vertices));
  wall_.observe(report.wall_total_ms());
  sim_.observe(report.sim_total_s() * 1e3);
  update_ms_.observe(report.wall_update_ms);
  estimate_ms_.observe(report.wall_estimate_ms);
  pack_ms_.observe(report.wall_pack_ms);
  match_ms_.observe(report.wall_match_ms);
  reorg_ms_.observe(report.wall_reorg_ms);
  if (report.backoff_ms > 0.0) backoff_ms_.observe(report.backoff_ms);
}

void phase_update(DynamicGraph& graph, const EdgeBatch& batch,
                  bool check_invariants, const PipelineMetrics& pm,
                  BatchReport& report) {
  const Timer t;
  {
    const trace::Span span(pm.span_update());
    graph.apply_batch(batch);
  }
  report.wall_update_ms = t.millis();
  if (check_invariants) graph.validate();
}

std::vector<VertexId> phase_estimate(EngineKind kind,
                                     FrequencyEstimator& estimator,
                                     const DynamicGraph& graph,
                                     const EdgeBatch& batch, Rng& rng,
                                     int query_diameter,
                                     const gpusim::SimParams& sim,
                                     const PipelineMetrics& pm,
                                     BatchReport& report) {
  std::vector<VertexId> cache_order;
  if (kind == EngineKind::kGcsm) {
    const trace::Span span(pm.span_estimate());
    const Timer t;
    const EstimateResult est = estimator.estimate(graph, batch, rng);
    cache_order = select_by_frequency(est.frequency);
    report.walks = est.walks;
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(est.ops) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
    pm.note_estimate(est);
  } else if (kind == EngineKind::kNaiveDegree) {
    const trace::Span span(pm.span_estimate());
    const Timer t;
    cache_order = select_by_degree(graph);
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(graph.num_vertices()) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (kind == EngineKind::kVsgm) {
    const trace::Span span(pm.span_estimate());
    const Timer t;
    cache_order = khop_vertices(graph, batch, query_diameter);
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(total_list_bytes(graph, cache_order)) /
        (sim.host_mem_bandwidth_gbps * 1e9);
  }
  return cache_order;
}

void phase_pack(EngineKind kind, DcsrCache& cache, const DynamicGraph& graph,
                const std::vector<VertexId>& order,
                std::uint64_t effective_budget,
                std::uint64_t configured_budget, gpusim::Device& device,
                gpusim::TrafficCounters& counters, bool check_invariants,
                const gpusim::SimParams& sim, const PipelineMetrics& pm,
                BatchReport& report, bool staged) {
  const bool uses_cache = kind == EngineKind::kGcsm ||
                          kind == EngineKind::kNaiveDegree ||
                          kind == EngineKind::kVsgm;
  if (!uses_cache) return;
  const trace::Span span(pm.span_pack());
  const Timer t;
  if (!staged) cache.clear();
  // VSGM semantically requires the full k-hop data on the device; a budget
  // overflow is a genuine device-OOM (the reason the paper shrinks VSGM's
  // batches). Degradation cannot help, so the configured (not the
  // effective) budget is the bound.
  if (kind == EngineKind::kVsgm) {
    const std::uint64_t need = total_list_bytes(graph, order);
    if (need > configured_budget) {
      throw gpusim::DeviceOomError(need, configured_budget);
    }
  }
  const gpusim::Traffic before = counters.snapshot();
  if (staged) {
    // Pipelined schedule: pack the NEXT epoch while the active one keeps
    // serving the in-flight match. Validation against the (already updated)
    // graph happens after the caller publishes.
    cache.build_staged(graph, order, effective_budget, device, counters);
  } else {
    cache.build(graph, order, effective_budget, device, counters);
    if (check_invariants) cache.validate(&graph);
  }
  const gpusim::Traffic after = counters.snapshot();
  // Simulated pack time: the DMA this build charged to `counters`.
  gpusim::Traffic dma = after;
  dma.dma_calls -= before.dma_calls;
  dma.dma_bytes -= before.dma_bytes;
  report.sim_pack_s = simulate_time(dma, sim).dma;
  report.cached_vertices =
      staged ? cache.staged_num_cached() : cache.num_cached();
  report.cache_bytes = staged ? cache.staged_blob_bytes() : cache.blob_bytes();
  report.wall_pack_ms = t.millis();
}

void phase_match(EngineKind kind, MatchEngine& engine,
                 const DynamicGraph& graph, const EdgeBatch& batch,
                 AccessPolicy& policy, gpusim::TrafficCounters& counters,
                 const MatchSink* sink, const gpusim::SimParams& sim,
                 const PipelineMetrics& pm, BatchReport& report) {
  const Timer t;
  const trace::Span span(pm.span_match());
  const gpusim::Traffic before = counters.snapshot();
  report.stats = engine.match_batch(graph, batch, policy, counters, sink);
  report.wall_match_ms = t.millis();
  const gpusim::Traffic after = counters.snapshot();
  // Kernel-phase simulated time: everything but the DMA already charged
  // before the call (the pack blob's transfer when counters are shared).
  gpusim::Traffic kernel = after;
  kernel.dma_calls -= before.dma_calls;
  kernel.dma_bytes -= before.dma_bytes;
  const gpusim::SimTime st = simulate_time(kernel, sim);
  report.sim_match_s =
      kind == EngineKind::kCpu ? st.host : st.kernel() + st.dma;
}

void phase_reorg(DynamicGraph& graph, bool check_invariants,
                 const gpusim::SimParams& sim, const PipelineMetrics& pm,
                 BatchReport& report) {
  const Timer t;
  DynamicGraph::ReorgStats reorg;
  {
    const trace::Span span(pm.span_reorg());
    reorg = graph.reorganize();
  }
  report.wall_reorg_ms = t.millis();
  if (check_invariants) graph.validate();
  report.sim_reorg_s = static_cast<double>(reorg.entries) * sizeof(VertexId) /
                       (sim.host_mem_bandwidth_gbps * 1e9);
}

}  // namespace gcsm
