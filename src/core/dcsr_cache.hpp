// The GPU-side cache of frequent vertices (paper Sec. V-B).
//
// The neighbor lists of the selected vertices are packed in a Doubly
// Compressed Sparse Row (DCSR) blob with three arrays:
//   rowidx — the selected vertex ids, ascending (binary-searched by the
//            kernel before every list access);
//   rowptr — per selected vertex, TWO offsets into colidx: the start of the
//            original list and the start of the appended new neighbors
//            (-1 when the vertex gained none this batch); a final sentinel
//            entry holds the length of colidx;
//   colidx — the stored adjacency entries, copied verbatim after tombstoning
//            (step 3), so deleted neighbors stay marked and new neighbors
//            sit at the tail of each list.
//
// The arrays' sizes are known up front, so the blob is one host allocation
// and one DMA transaction, exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpusim/device.hpp"
#include "graph/dynamic_graph.hpp"

namespace gcsm {

// Double-buffered (docs/MULTI_QUERY.md, "Pipelined schedule"): the ACTIVE
// epoch is what lookup()/validate() serve — the blob the in-flight match
// kernel reads — while build_staged() packs the NEXT batch's image into a
// second slot without disturbing it. publish() swaps the staged epoch in.
// The serial build() keeps its original single-epoch semantics (both slots
// cleared first), so single-query pipelines are unchanged.
class DcsrCache {
 public:
  DcsrCache() = default;

  // Packs the lists of `vertices` (any order; deduplicated and sorted
  // internally) from `graph` and DMA-transfers the blob into `device`
  // memory, charging `counters`. Vertices whose lists would overflow
  // `byte_budget` are dropped (least-priority last: callers pass vertices in
  // descending priority). Throws DeviceOomError only if even the empty blob
  // does not fit. Exception-safe: if the allocation, the DMA, or the armed
  // cache.build fault site throws, the cache is left cleared (empty and
  // valid), never half-built. Discards any staged epoch.
  void build(const DynamicGraph& graph,
             const std::vector<VertexId>& vertices,
             std::uint64_t byte_budget, gpusim::Device& device,
             gpusim::TrafficCounters& counters);

  // Packs the next epoch into the staged slot without touching the active
  // one, for an atomic publish() swap. Charged the full `byte_budget`: the
  // active epoch's last consumer has finished before the pack phase runs,
  // so only the allocate-then-swap transient double-occupies the device
  // (bounded by one epoch, until publish() frees the old blob).
  // Exception-safe: a throw leaves the ACTIVE epoch intact and the staged
  // slot empty.
  void build_staged(const DynamicGraph& graph,
                    const std::vector<VertexId>& vertices,
                    std::uint64_t byte_budget, gpusim::Device& device,
                    gpusim::TrafficCounters& counters);

  // Swaps the staged epoch in as active and frees the previous active blob.
  // No-op when nothing is staged.
  void publish();

  // Drops the staged epoch (roles changed, rollback); active is untouched.
  void discard_staged();

  bool has_staged() const { return staged_valid_; }
  std::uint32_t staged_num_cached() const { return staged_.row_count; }
  std::uint64_t staged_blob_bytes() const { return staged_.blob_bytes; }

  void clear();

  bool empty() const { return active_.row_count == 0; }
  std::uint32_t num_cached() const { return active_.row_count; }
  std::uint64_t blob_bytes() const { return active_.blob_bytes; }

  // Kernel-side lookup: binary search on rowidx. Returns the cached view of
  // v (pointers into device memory) or nullopt on miss. `search_steps`
  // receives the number of binary-search probes (device-memory accounting).
  std::optional<NeighborView> lookup(VertexId v, ViewMode mode,
                                     std::uint32_t& search_steps) const;

  // Checks the DCSR invariants (docs/ANALYSIS.md): rowidx strictly
  // ascending, rowptr offsets monotone and within the colidx extent, the
  // sentinel equal to the colidx length, new_begin either -1 or inside its
  // row, every row's segments sorted, and the blob byte accounting exact.
  // When `graph` is non-null (valid until the graph reorganizes under the
  // cache), additionally checks each cached list is a verbatim copy of the
  // graph's stored list. Throws CheckFailure on the first violation.
  void validate(const DynamicGraph* graph = nullptr) const;

 private:
  struct RowPtr {
    std::int64_t begin = 0;      // start of the list in colidx
    std::int64_t new_begin = 0;  // start of appended entries, or -1
  };

  // One cache epoch: a packed blob plus its typed array views.
  struct Slot {
    gpusim::DeviceBuffer blob;
    const VertexId* rowidx = nullptr;
    const RowPtr* rowptr = nullptr;  // row_count + 1 entries (sentinel)
    const VertexId* colidx = nullptr;
    std::uint32_t row_count = 0;
    std::uint64_t blob_bytes = 0;

    void reset() { *this = Slot(); }
  };

  // Packs `vertices` into `slot` (replacing its contents only on success).
  void build_into(Slot& slot, const DynamicGraph& graph,
                  const std::vector<VertexId>& vertices,
                  std::uint64_t byte_budget, gpusim::Device& device,
                  gpusim::TrafficCounters& counters);

  Slot active_;
  Slot staged_;
  // True between a successful build_staged() and its publish()/discard —
  // distinct from staged_.row_count, which is legitimately zero when the
  // budget admitted no rows (the swap must still happen so the active epoch
  // matches the graph it was packed from).
  bool staged_valid_ = false;
};

}  // namespace gcsm
