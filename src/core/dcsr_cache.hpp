// The GPU-side cache of frequent vertices (paper Sec. V-B).
//
// The neighbor lists of the selected vertices are packed in a Doubly
// Compressed Sparse Row (DCSR) blob with three arrays:
//   rowidx — the selected vertex ids, ascending (binary-searched by the
//            kernel before every list access);
//   rowptr — per selected vertex, TWO offsets into colidx: the start of the
//            original list and the start of the appended new neighbors
//            (-1 when the vertex gained none this batch); a final sentinel
//            entry holds the length of colidx;
//   colidx — the stored adjacency entries, copied verbatim after tombstoning
//            (step 3), so deleted neighbors stay marked and new neighbors
//            sit at the tail of each list.
//
// The arrays' sizes are known up front, so the blob is one host allocation
// and one DMA transaction, exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpusim/device.hpp"
#include "graph/dynamic_graph.hpp"

namespace gcsm {

class DcsrCache {
 public:
  DcsrCache() = default;

  // Packs the lists of `vertices` (any order; deduplicated and sorted
  // internally) from `graph` and DMA-transfers the blob into `device`
  // memory, charging `counters`. Vertices whose lists would overflow
  // `byte_budget` are dropped (least-priority last: callers pass vertices in
  // descending priority). Throws DeviceOomError only if even the empty blob
  // does not fit. Exception-safe: if the allocation, the DMA, or the armed
  // cache.build fault site throws, the cache is left cleared (empty and
  // valid), never half-built.
  void build(const DynamicGraph& graph,
             const std::vector<VertexId>& vertices,
             std::uint64_t byte_budget, gpusim::Device& device,
             gpusim::TrafficCounters& counters);

  void clear();

  bool empty() const { return row_count_ == 0; }
  std::uint32_t num_cached() const { return row_count_; }
  std::uint64_t blob_bytes() const { return blob_bytes_; }

  // Kernel-side lookup: binary search on rowidx. Returns the cached view of
  // v (pointers into device memory) or nullopt on miss. `search_steps`
  // receives the number of binary-search probes (device-memory accounting).
  std::optional<NeighborView> lookup(VertexId v, ViewMode mode,
                                     std::uint32_t& search_steps) const;

  // Checks the DCSR invariants (docs/ANALYSIS.md): rowidx strictly
  // ascending, rowptr offsets monotone and within the colidx extent, the
  // sentinel equal to the colidx length, new_begin either -1 or inside its
  // row, every row's segments sorted, and the blob byte accounting exact.
  // When `graph` is non-null (valid until the graph reorganizes under the
  // cache), additionally checks each cached list is a verbatim copy of the
  // graph's stored list. Throws CheckFailure on the first violation.
  void validate(const DynamicGraph* graph = nullptr) const;

 private:
  struct RowPtr {
    std::int64_t begin = 0;      // start of the list in colidx
    std::int64_t new_begin = 0;  // start of appended entries, or -1
  };

  gpusim::DeviceBuffer blob_;
  const VertexId* rowidx_ = nullptr;
  const RowPtr* rowptr_ = nullptr;  // row_count_ + 1 entries (sentinel)
  const VertexId* colidx_ = nullptr;
  std::uint32_t row_count_ = 0;
  std::uint64_t blob_bytes_ = 0;
};

}  // namespace gcsm
