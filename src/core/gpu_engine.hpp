// Cache-content selection strategies for the device-side matching engines.
//
//   * select_by_frequency — GCSM: vertices ordered by estimated access
//     frequency (random-walk estimator), positive-frequency only;
//   * select_by_degree    — the Naive baseline: degree as a (poor) proxy for
//     access frequency;
//   * khop_vertices       — VSGM: every vertex within k hops of the batch,
//     k = query diameter, so the kernel never misses.
//
// The DcsrCache applies the byte budget in the order these return.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/types.hpp"

namespace gcsm {

// Vertices with frequency > min_frequency, descending frequency order.
std::vector<VertexId> select_by_frequency(const std::vector<double>& frequency,
                                          double min_frequency = 0.0);

// All vertices in descending live-degree order (ties by id).
std::vector<VertexId> select_by_degree(const DynamicGraph& graph);

// Every vertex reachable within `hops` hops (NEW view) of any endpoint of
// the batch, in BFS order from the batch (so nearer vertices survive the
// budget first).
std::vector<VertexId> khop_vertices(const DynamicGraph& graph,
                                    const EdgeBatch& batch,
                                    std::uint32_t hops);

// Total stored bytes of the given vertices' lists (what a DCSR pack would
// place in colidx).
std::uint64_t total_list_bytes(const DynamicGraph& graph,
                               const std::vector<VertexId>& vertices);

}  // namespace gcsm
