#include "core/rapidflow_like.hpp"

#include "query/plan.hpp"
#include "util/timer.hpp"

namespace gcsm {

CandidateIndex::CandidateIndex(const QueryGraph& query,
                               const DynamicGraph& graph)
    : query_(query),
      member_(query.num_vertices()),
      counts_(query.num_vertices(), 0) {
  for (auto& m : member_) {
    m.assign(static_cast<std::size_t>(graph.num_vertices()), 0);
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    evaluate(graph, v);
  }
}

void CandidateIndex::evaluate(const DynamicGraph& graph, VertexId v) {
  const Label label = graph.label(v);
  // The delta joins read both the OLD and NEW views, so the degree filter
  // must admit a vertex that qualifies in either snapshot; filtering on the
  // post-batch degree alone would wrongly prune deletion-side matches.
  const std::uint32_t degree =
      std::max(graph.live_degree(v), graph.pre_batch_degree(v));
  for (std::uint32_t u = 0; u < query_.num_vertices(); ++u) {
    const bool now = query_.label_matches(u, label) &&
                     degree >= query_.degree(u);
    auto& cell = member_[u][static_cast<std::size_t>(v)];
    if (now && !cell) {
      cell = 1;
      ++counts_[u];
    } else if (!now && cell) {
      cell = 0;
      --counts_[u];
    }
  }
}

void CandidateIndex::refresh(const DynamicGraph& graph,
                             const EdgeBatch& batch) {
  // Grow for vertices added by the batch.
  for (auto& m : member_) {
    if (m.size() < static_cast<std::size_t>(graph.num_vertices())) {
      m.resize(static_cast<std::size_t>(graph.num_vertices()), 0);
    }
  }
  for (const auto& [v, label] : batch.new_vertex_labels) {
    (void)label;
    evaluate(graph, v);
  }
  for (const EdgeUpdate& e : batch.updates) {
    evaluate(graph, e.u);
    evaluate(graph, e.v);
  }
}

std::uint64_t CandidateIndex::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (std::uint32_t u = 0; u < counts_.size(); ++u) {
    bytes += member_[u].size();           // bitmap
    bytes += counts_[u] * sizeof(VertexId);  // materialized candidate list
  }
  return bytes;
}

RapidFlowLikeEngine::RapidFlowLikeEngine(const CsrGraph& initial,
                                         QueryGraph query,
                                         std::size_t workers)
    : query_(std::move(query)),
      graph_(initial),
      executor_(workers, gpusim::Schedule::kWorkStealing),
      engine_(query_, executor_),
      index_(query_, graph_),
      policy_(graph_) {}

RapidFlowReport RapidFlowLikeEngine::process_batch(const EdgeBatch& batch,
                                                   const MatchSink* sink) {
  RapidFlowReport report;
  gpusim::TrafficCounters counters;

  Timer t;
  graph_.apply_batch(batch);
  report.wall_update_ms = t.millis();

  t.reset();
  index_.refresh(graph_, batch);
  // RF's matching-order optimization: extension order by ascending
  // candidate-set size, recomputed per batch from the refreshed index.
  std::vector<std::uint64_t> weights(query_.num_vertices());
  for (std::uint32_t u = 0; u < query_.num_vertices(); ++u) {
    weights[u] = index_.count(u);
  }
  std::vector<MatchPlan> plans;
  plans.reserve(query_.num_edges());
  for (std::uint32_t i = 0; i < query_.num_edges(); ++i) {
    plans.push_back(make_delta_plan_weighted(query_, i, weights));
  }
  report.index_bytes = index_.memory_bytes();
  report.wall_index_ms = t.millis();

  t.reset();
  report.stats = engine_.match_batch_with_plans(plans, graph_, batch, policy_,
                                                counters, sink, &index_);
  report.wall_match_ms = t.millis();

  t.reset();
  graph_.reorganize();
  report.wall_reorg_ms = t.millis();

  report.traffic = counters.snapshot();
  return report;
}

}  // namespace gcsm
