#include "core/access_policy.hpp"

namespace gcsm {
namespace {

std::uint64_t view_bytes(const NeighborView& v) {
  return (static_cast<std::uint64_t>(v.prefix.size) + v.appended.size) *
         sizeof(VertexId);
}

std::uint64_t lines_for(const NeighborSeg& seg, std::uint32_t line_bytes) {
  if (seg.size == 0) return 0;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(seg.size) * sizeof(VertexId);
  return (bytes + line_bytes - 1) / line_bytes +
         ((reinterpret_cast<std::uintptr_t>(seg.data) % line_bytes) != 0
              ? 1
              : 0);
}

}  // namespace

NeighborView HostPolicy::fetch(VertexId v, ViewMode mode,
                               gpusim::TrafficCounters& counters) {
  const NeighborView view = graph_.view(v, mode);
  counters.add_host(view.size_bound(), view_bytes(view));
  return view;
}

NeighborView ZeroCopyPolicy::fetch(VertexId v, ViewMode mode,
                                   gpusim::TrafficCounters& counters) {
  const NeighborView view = graph_.view(v, mode);
  const std::uint64_t lines = lines_for(view.prefix, line_bytes_) +
                              lines_for(view.appended, line_bytes_);
  counters.add_zero_copy(lines, view_bytes(view));
  return view;
}

NeighborView UnifiedMemoryPolicy::fetch(VertexId v, ViewMode mode,
                                        gpusim::TrafficCounters& counters) {
  const NeighborView view = graph_.view(v, mode);
  if (view.prefix.size > 0) {
    pages_.access(view.prefix.data,
                  view.prefix.size * sizeof(VertexId), counters);
  }
  if (view.appended.size > 0) {
    pages_.access(view.appended.data,
                  view.appended.size * sizeof(VertexId), counters);
  }
  return view;
}

NeighborView CachedPolicy::fetch(VertexId v, ViewMode mode,
                                 gpusim::TrafficCounters& counters) {
  std::uint32_t steps = 0;
  if (auto cached = cache_.lookup(v, mode, steps)) {
    // Binary-search probes plus the list itself: device-memory traffic.
    counters.add_device_bytes(steps * sizeof(VertexId) + view_bytes(*cached));
    counters.add_cache_hit();
    return *cached;
  }
  counters.add_device_bytes(steps * sizeof(VertexId));
  counters.add_cache_miss();
  // Miss: the kernel takes the vertex's device-mapped host address (the
  // pDevice array of Sec. V-A) and reads over PCIe by zero-copy.
  const NeighborView view = graph_.view(v, mode);
  const std::uint64_t lines = lines_for(view.prefix, line_bytes_) +
                              lines_for(view.appended, line_bytes_);
  counters.add_zero_copy(lines, view_bytes(view));
  return view;
}

NeighborView CountingPolicy::fetch(VertexId v, ViewMode mode,
                                   gpusim::TrafficCounters& counters) {
  const NeighborView view = graph_.view(v, mode);
  counters.add_host(view.size_bound(), view_bytes(view));
  counts_[static_cast<std::size_t>(v)].fetch_add(1,
                                                 std::memory_order_relaxed);
  return view;
}

std::vector<std::uint64_t> CountingPolicy::access_counts() const {
  std::vector<std::uint64_t> out(
      static_cast<std::size_t>(graph_.num_vertices()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace gcsm
