// The shared WCOJ enumeration engine.
//
// One engine implements the nested loops of Fig. 2 for both the CPU baseline
// and every (simulated) GPU variant; an AccessPolicy decides where neighbor
// lists come from and what traffic they cost, exactly mirroring the paper's
// fairness setup ("all the GPU versions use the same GPU kernel adapted from
// STMatch").
//
// Mechanics per seed edge, following STMatch: an explicit per-worker stack
// of candidate buffers (no recursion), one level per pattern vertex beyond
// the seed pair; candidates are produced by multi-way sorted intersection of
// the constraint views; injectivity and label checks filter at bind time.
// Work items (seed edges) are distributed across workers by work stealing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/access_policy.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "query/plan.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

struct MatchStats {
  std::int64_t signed_embeddings = 0;  // net change in embedding count
  std::uint64_t positive = 0;          // embeddings created by the batch
  std::uint64_t negative = 0;          // embeddings destroyed by the batch
  std::uint64_t seeds = 0;             // seed edges enumerated

  MatchStats& operator+=(const MatchStats& o) {
    signed_embeddings += o.signed_embeddings;
    positive += o.positive;
    negative += o.negative;
    seeds += o.seeds;
    return *this;
  }
};

// Called under a lock for every embedding found: binding[i] is the data
// vertex matched to the plan's vertex_order[i]; sign is +1/-1.
using MatchSink =
    std::function<void(const MatchPlan&, std::span<const VertexId>, int)>;

// Optional per-query-vertex candidate filter (used by the RapidFlow-like
// baseline's candidate index).
class CandidateFilter {
 public:
  virtual ~CandidateFilter() = default;
  virtual bool admits(std::uint32_t query_vertex, VertexId v) const = 0;
};

class MatchEngine {
 public:
  // Plans may come from make_delta_plans / make_static_plan or be custom
  // (e.g. candidate-size-ordered for the RF-like baseline).
  MatchEngine(QueryGraph query, gpusim::SimtExecutor& executor,
              std::size_t grain = 2);

  const QueryGraph& query() const { return query_; }
  const std::vector<MatchPlan>& delta_plans() const { return delta_plans_; }

  // Incremental matching: runs every delta plan over the batch. The returned
  // signed embedding count equals the embedding-count difference between the
  // post- and pre-batch graphs (the telescoping IVM identity).
  MatchStats match_batch(const DynamicGraph& graph, const EdgeBatch& batch,
                         AccessPolicy& policy,
                         gpusim::TrafficCounters& counters,
                         const MatchSink* sink = nullptr,
                         const CandidateFilter* filter = nullptr);

  // As above but with externally supplied plans (must be delta plans of
  // this query). When `per_block_busy_seconds` is non-null it receives one
  // entry per simulated block with the wall time that block spent on seed
  // work — the load-balance metric for the scheduling ablation.
  MatchStats match_batch_with_plans(const std::vector<MatchPlan>& plans,
                                    const DynamicGraph& graph,
                                    const EdgeBatch& batch,
                                    AccessPolicy& policy,
                                    gpusim::TrafficCounters& counters,
                                    const MatchSink* sink = nullptr,
                                    const CandidateFilter* filter = nullptr,
                                    std::vector<double>*
                                        per_block_busy_seconds = nullptr);

  // Full static matching (Fig. 2a) on the graph's NEW view.
  MatchStats match_full(const DynamicGraph& graph, AccessPolicy& policy,
                        gpusim::TrafficCounters& counters,
                        const MatchSink* sink = nullptr);

 private:
  QueryGraph query_;
  MatchPlan static_plan_;
  std::vector<MatchPlan> delta_plans_;
  gpusim::SimtExecutor& executor_;
  std::size_t grain_;
};

}  // namespace gcsm
