// Maintained view of the current match set.
//
// The incremental engine emits *signed embeddings* per batch; applications
// like the paper's fraud/rumor monitoring scenarios usually want the live
// set of matched subgraphs instead. MatchStore consumes the engine's sink
// events and maintains exactly that: embeddings are canonicalized by the
// query's automorphism group so each matched *subgraph* is stored once
// (with multiplicity |Aut(Q)| worth of embeddings behind it).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/cpu_engine.hpp"
#include "query/automorphism.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

// Reorders an engine binding (plan order) into query-vertex order:
// result[i] = data vertex matched to query vertex i.
std::vector<VertexId> embedding_from_binding(const MatchPlan& plan,
                                             std::span<const VertexId>
                                                 binding);

class MatchStore {
 public:
  explicit MatchStore(const QueryGraph& query);

  // Sink to pass to MatchEngine::match_batch / Pipeline::process_batch.
  // The engine serializes sink calls, so no extra locking is needed here.
  MatchSink sink();

  // Applies one signed embedding directly (embedding in query-vertex
  // order). Exposed for testing and for feeding stored snapshots.
  void apply(std::span<const VertexId> embedding, int sign);

  // Net embeddings currently matched relative to the state at attach time
  // (= subgraphs * |Aut| when the store observed the stream from an empty
  // graph or was seeded with the initial matches via apply()).
  std::int64_t embedding_count() const { return embeddings_; }
  // Distinct subgraphs with positive multiplicity.
  std::uint64_t subgraph_count() const { return positive_subgraphs_; }
  std::uint64_t automorphisms() const { return aut_count_; }

  // True if this embedding's subgraph is currently matched.
  bool contains(std::span<const VertexId> embedding) const;

  // Canonical embeddings (the lexicographically smallest automorphism
  // image) of all current subgraphs. Order unspecified.
  std::vector<std::vector<VertexId>> subgraphs() const;

  void clear();

  // Checks the store's invariants (docs/ANALYSIS.md): every key is a
  // canonical, injective embedding of the right arity; no entry holds a zero
  // count (apply() erases them); no subgraph accumulates more than |Aut(Q)|
  // embeddings in either direction (a duplicate embedding event would);
  // and the embedding / positive-subgraph counters match the table. Counts
  // may be negative when the store attached to a non-empty graph without
  // seeding. Throws CheckFailure on the first violation.
  void validate() const;

 private:
  std::vector<VertexId> canonicalize(std::span<const VertexId> embedding)
      const;

  struct VecHash {
    std::size_t operator()(const std::vector<VertexId>& v) const;
  };

  QueryGraph query_;
  std::vector<std::vector<std::uint32_t>> automorphisms_;
  std::uint64_t aut_count_ = 0;
  std::int64_t embeddings_ = 0;
  std::uint64_t positive_subgraphs_ = 0;
  // canonical embedding -> number of embeddings currently accumulated
  // (reaches aut_count_ when the subgraph is fully present).
  std::unordered_map<std::vector<VertexId>, std::int64_t, VecHash> subgraphs_;
};

}  // namespace gcsm
