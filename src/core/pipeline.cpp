#include "core/pipeline.hpp"

#include <stdexcept>

#include "core/gpu_engine.hpp"
#include "util/timer.hpp"

namespace gcsm {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGcsm:
      return "GCSM";
    case EngineKind::kZeroCopy:
      return "ZP";
    case EngineKind::kUnifiedMemory:
      return "UM";
    case EngineKind::kNaiveDegree:
      return "Naive";
    case EngineKind::kVsgm:
      return "VSGM";
    case EngineKind::kCpu:
      return "CPU";
  }
  return "?";
}

Pipeline::Pipeline(const CsrGraph& initial, QueryGraph query,
                   PipelineOptions options)
    : options_(options),
      graph_(initial),
      device_(options.sim),
      executor_(options.workers, options.schedule),
      engine_(std::move(query), executor_, options.grain),
      estimator_(engine_.query(), options.estimator),
      rng_(options.seed) {
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // The unified-memory resident set gets the same device buffer the
    // cached engines use (the paper's setting: the graph far exceeds what
    // the device can hold, so UM thrashes pages). Without this the page
    // cache would silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    um_policy_ = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }
}

std::unique_ptr<AccessPolicy> Pipeline::make_policy() {
  switch (options_.kind) {
    case EngineKind::kCpu:
      return std::make_unique<HostPolicy>(graph_);
    case EngineKind::kZeroCopy:
      return std::make_unique<ZeroCopyPolicy>(graph_, options_.sim);
    case EngineKind::kUnifiedMemory:
      // Returned fresh each call but sharing the persistent page cache via
      // um_policy_ would double-charge; instead hand out a non-owning view.
      return nullptr;  // handled specially in process_batch
    case EngineKind::kGcsm:
    case EngineKind::kNaiveDegree:
    case EngineKind::kVsgm:
      return std::make_unique<CachedPolicy>(graph_, cache_, options_.sim);
  }
  throw std::logic_error("unknown engine kind");
}

BatchReport Pipeline::process_batch(const EdgeBatch& batch,
                                    const MatchSink* sink) {
  BatchReport report;
  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;

  // Step 1: dynamic graph maintenance on the CPU.
  Timer t;
  graph_.apply_batch(batch);
  report.wall_update_ms = t.millis();
  if (options_.check_invariants) graph_.validate();

  // Step 2: frequency estimation (GCSM only).
  std::vector<VertexId> cache_order;
  if (options_.kind == EngineKind::kGcsm) {
    t.reset();
    const EstimateResult est = estimator_.estimate(graph_, batch, rng_);
    cache_order = select_by_frequency(est.frequency);
    report.walks = est.walks;
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(est.ops) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (options_.kind == EngineKind::kNaiveDegree) {
    t.reset();
    cache_order = select_by_degree(graph_);
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(graph_.num_vertices()) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (options_.kind == EngineKind::kVsgm) {
    t.reset();
    cache_order = khop_vertices(graph_, batch, engine_.query().diameter());
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(total_list_bytes(graph_, cache_order)) /
        (sim.host_mem_bandwidth_gbps * 1e9);
  }

  // Step 3: pack the selected lists as DCSR and DMA to the device.
  const bool uses_cache = options_.kind == EngineKind::kGcsm ||
                          options_.kind == EngineKind::kNaiveDegree ||
                          options_.kind == EngineKind::kVsgm;
  if (uses_cache) {
    t.reset();
    cache_.clear();
    // VSGM semantically requires the full k-hop data on the device; a
    // budget overflow is a genuine device-OOM (the reason the paper shrinks
    // VSGM's batches).
    if (options_.kind == EngineKind::kVsgm) {
      const std::uint64_t need = total_list_bytes(graph_, cache_order);
      if (need > options_.cache_budget_bytes) {
        throw gpusim::DeviceOomError(need, options_.cache_budget_bytes);
      }
    }
    cache_.build(graph_, cache_order, options_.cache_budget_bytes, device_,
                 counters);
    if (options_.check_invariants) cache_.validate(&graph_);
    report.cached_vertices = cache_.num_cached();
    report.cache_bytes = cache_.blob_bytes();
    report.wall_pack_ms = t.millis();
  }

  // Step 4: incremental matching.
  t.reset();
  {
    const gpusim::Traffic before = counters.snapshot();
    if (options_.kind == EngineKind::kUnifiedMemory) {
      report.stats =
          engine_.match_batch(graph_, batch, *um_policy_, counters, sink);
    } else {
      auto policy = make_policy();
      report.stats =
          engine_.match_batch(graph_, batch, *policy, counters, sink);
    }
    report.wall_match_ms = t.millis();
    const gpusim::Traffic after = counters.snapshot();
    // Kernel-phase simulated time: everything but the pack DMA.
    gpusim::Traffic kernel = after;
    kernel.dma_calls -= before.dma_calls;
    kernel.dma_bytes -= before.dma_bytes;
    const gpusim::SimTime st = simulate_time(kernel, sim);
    report.sim_match_s = options_.kind == EngineKind::kCpu
                             ? st.host
                             : st.kernel() + st.dma;
    const gpusim::SimTime pack = simulate_time(before, sim);
    report.sim_pack_s = pack.dma;
  }

  // Step 5: reorganize the touched lists on the CPU.
  t.reset();
  const DynamicGraph::ReorgStats reorg = graph_.reorganize();
  report.wall_reorg_ms = t.millis();
  if (options_.check_invariants) graph_.validate();
  report.sim_reorg_s =
      static_cast<double>(reorg.entries) * sizeof(VertexId) /
      (sim.host_mem_bandwidth_gbps * 1e9);

  report.traffic = counters.snapshot();
  return report;
}

std::uint64_t Pipeline::count_current_embeddings() {
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  const MatchStats stats = engine_.match_full(graph_, policy, scratch);
  return stats.positive;
}

}  // namespace gcsm
