#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/gpu_engine.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace gcsm {

Pipeline::Pipeline(const CsrGraph& initial, QueryGraph query,
                   PipelineOptions options)
    : options_(options),
      graph_(initial),
      device_(options.sim),
      executor_(options.workers, options.schedule),
      engine_(std::move(query), executor_, options.grain),
      estimator_(engine_.query(), options.estimator),
      rng_(options.seed),
      faults_(options.fault_injector),
      durability_(options.durability, options.fault_injector),
      metrics_(options.metric_prefix) {
  device_.set_fault_injector(faults_);
  executor_.set_fault_injector(faults_);
  executor_.set_watchdog_timeout_ms(options_.recovery.watchdog_timeout_ms);
  graph_.set_fault_injector(faults_);
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // The unified-memory resident set gets the same device buffer the
    // cached engines use (the paper's setting: the graph far exceeds what
    // the device can hold, so UM thrashes pages). Without this the page
    // cache would silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    um_policy_ = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }

  if (options_.durability.enabled()) {
    recovery_info_ = durability_.recover();
    if (recovery_info_.snapshot_loaded) {
      graph_.restore(recovery_info_.graph);
      if (options_.check_invariants) graph_.validate();
      cumulative_ = recovery_info_.counters;
    }
    if (!recovery_info_.replay.empty()) {
      // Deterministic replay of committed-but-unsnapshotted batches. Fault
      // injection is suspended (the batches already survived production once)
      // and `replaying_` keeps process_batch from re-logging them.
      const FaultSuspendGuard suspend(faults_);
      replaying_ = true;
      try {
        for (const auto& [seq, batch] : recovery_info_.replay) {
          process_batch(batch);
          cumulative_.last_seq = seq;
        }
      } catch (...) {
        replaying_ = false;
        throw;
      }
      replaying_ = false;
    }
    // Integrity gate: the replayed totals must reproduce the last commit
    // marker exactly — otherwise the durable state is inconsistent (e.g. a
    // compacted WAL with a corrupt snapshot) and serving it would be wrong.
    if (recovery_info_.have_expected &&
        cumulative_ != recovery_info_.expected) {
      throw Error(
          ErrorCode::kRecovery,
          "recovery replay does not reproduce the committed counters "
          "(batches " +
              std::to_string(cumulative_.batches_committed) + " vs " +
              std::to_string(recovery_info_.expected.batches_committed) +
              ", signed " + std::to_string(cumulative_.cum_signed) + " vs " +
              std::to_string(recovery_info_.expected.cum_signed) + ")");
    }
  }
}

std::uint64_t Pipeline::effective_cache_budget() const {
  const std::uint64_t shrunk =
      options_.cache_budget_bytes >> degradation_level_;
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

std::unique_ptr<AccessPolicy> Pipeline::make_policy(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCpu:
      return std::make_unique<HostPolicy>(graph_);
    case EngineKind::kZeroCopy:
      return std::make_unique<ZeroCopyPolicy>(graph_, options_.sim);
    case EngineKind::kUnifiedMemory:
      // Returned fresh each call but sharing the persistent page cache via
      // um_policy_ would double-charge; instead hand out a non-owning view.
      return nullptr;  // handled specially in process_batch
    case EngineKind::kGcsm:
    case EngineKind::kNaiveDegree:
    case EngineKind::kVsgm:
      return std::make_unique<CachedPolicy>(graph_, cache_, options_.sim);
  }
  GCSM_CHECK(false, "unknown engine kind");
}

void Pipeline::run_attempt(const EdgeBatch& batch, const MatchSink* sink,
                           bool use_cpu, BatchReport& report) {
  const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
  // Kernel fault sites model device failures: they stay armed for device
  // attempts and are disarmed on the CPU path (which shares the executor as
  // a plain thread pool), so the fallback is genuinely more reliable. The
  // graph.apply site stays armed either way.
  executor_.set_fault_injector(use_cpu ? nullptr : faults_);

  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;

  // Step 1: dynamic graph maintenance on the CPU.
  phase_update(graph_, batch, options_.check_invariants, metrics_, report);

  // Step 2: frequency estimation (GCSM; degree / k-hop for the baselines).
  const std::vector<VertexId> cache_order =
      phase_estimate(kind, estimator_, graph_, batch, rng_,
                     engine_.query().diameter(), sim, metrics_, report);

  // Step 3: pack the selected lists as DCSR and DMA to the device.
  phase_pack(kind, cache_, graph_, cache_order, effective_cache_budget(),
             options_.cache_budget_bytes, device_, counters,
             options_.check_invariants, sim, metrics_, report);

  // Step 4: incremental matching.
  if (kind == EngineKind::kUnifiedMemory) {
    phase_match(kind, engine_, graph_, batch, *um_policy_, counters, sink,
                sim, metrics_, report);
  } else {
    auto policy = make_policy(kind);
    phase_match(kind, engine_, graph_, batch, *policy, counters, sink, sim,
                metrics_, report);
  }

  // Step 5: reorganize the touched lists on the CPU.
  phase_reorg(graph_, options_.check_invariants, sim, metrics_, report);

  report.traffic = counters.snapshot();
}

BatchReport Pipeline::process_batch(const EdgeBatch& batch,
                                    const MatchSink* sink) {
  const trace::Span batch_span(metrics_.span_batch());
  BatchReport report;
  const RecoveryOptions& rec = options_.recovery;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen. `owned` keeps whichever
  // modified copy is in play; the caller's batch is never mutated.
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (faults_ != nullptr) {
    owned = batch;
    inject_batch_corruption(owned, faults_);
    use = &owned;
  }
  if (rec.sanitize_batches) {
    QuarantineReport quarantine;
    EdgeBatch clean = sanitize_batch(graph_, *use, quarantine);
    if (!quarantine.empty()) {
      owned = std::move(clean);
      use = &owned;
    }
    report.quarantine = std::move(quarantine);
  }

  // Durable logging (step 1 of the commit protocol): the sanitized batch
  // reaches stable storage before the graph is touched, so recovery replays
  // exactly the bytes that ran. Recovery replay itself is not re-logged.
  std::uint64_t wal_seq = 0;
  if (options_.durability.enabled() && !replaying_) {
    wal_seq = durability_.begin_batch(*use);
    report.wal_seq = wal_seq;
  }

  // The transaction: everything the batch can touch, restorable even from a
  // half-applied state.
  const DynamicGraph::Snapshot snap = graph_.snapshot_for(*use);
  auto rollback = [&] {
    graph_.restore(snap);
    cache_.clear();
    if (options_.check_invariants) graph_.validate();
  };

  bool use_cpu = options_.kind == EngineKind::kCpu;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;

  // Consumes one attempt; when the current mode is out of attempts, either
  // escalates to the CPU engine or gives up by rethrowing `error`.
  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++report.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!use_cpu && rec.cpu_fallback) {
        use_cpu = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
        report.cpu_fallback = true;
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      // Interruptible parking, not a blocking sleep: the delay is bounded
      // but teardown (or an eager caller) can cut it short.
      parker_.park_for_ms(backoff_ms);
      report.backoff_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                            rec.backoff_max_ms);
    }
  };

  for (;;) {
    try {
      run_attempt(*use, sink, use_cpu, report);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: the k-hop neighborhood must be device-resident, so
        // no amount of shrinking or retrying helps.
        throw;
      }
      if (!use_cpu &&
          effective_cache_budget() > rec.min_cache_budget_bytes) {
        ++degradation_level_;
        metrics_.note_degradation();
        clean_device_batches_ = 0;
        ++report.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      // Unclassified failures (CheckFailure, logic errors) still leave a
      // consistent graph behind, but are not retried.
      rollback();
      throw;
    }
  }

  // Degradation heals: enough consecutive clean device batches earn the
  // budget one doubling back toward the configured value. A batch that
  // needed any recovery is not clean (including the one that shrank) and
  // restarts the streak.
  if (!use_cpu && degradation_level_ > 0) {
    if (report.retries != 0) {
      clean_device_batches_ = 0;
    } else if (++clean_device_batches_ >=
               std::max(1, rec.heal_after_clean_batches)) {
      --degradation_level_;
      clean_device_batches_ = 0;
    }
  }

  report.degradation_level = degradation_level_;
  report.effective_cache_budget = effective_cache_budget();
  if (faults_ != nullptr) {
    report.faults_observed = faults_->fired_count() - faults_before;
  }

  // Commit (step 3): the cumulative totals including this batch go into the
  // commit marker; only after it is durable does the in-memory cumulative
  // state advance.
  durable::DurableCounters next = cumulative_;
  next.batches_committed += 1;
  next.cum_signed += report.stats.signed_embeddings;
  next.cum_positive += report.stats.positive;
  next.cum_negative += report.stats.negative;
  if (wal_seq != 0) {
    next.last_seq = wal_seq;
    try {
      durability_.commit_batch(wal_seq, next);
    } catch (...) {
      // The batch never became durable: roll the graph back so memory agrees
      // with disk, and let the client re-submit. (Sink callbacks already made
      // cannot be retracted — see docs/ROBUSTNESS.md.)
      rollback();
      throw;
    }
  }
  cumulative_ = next;
  metrics_.record_batch(report);
  // Snapshot + WAL compaction (step 4) runs after the commit, so a crash
  // inside it can only lose the snapshot, never the batch.
  if (wal_seq != 0) durability_.maybe_snapshot(graph_, next);
  report.metrics = metrics::Registry::global().snapshot();
  return report;
}

std::uint64_t Pipeline::count_current_embeddings() {
  // A diagnostic pass, not a batch: fault injection pauses so it cannot fail
  // or consume the injector's hit sequence.
  FaultSuspendGuard suspend(faults_);
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  const MatchStats stats = engine_.match_full(graph_, policy, scratch);
  return stats.positive;
}

}  // namespace gcsm
