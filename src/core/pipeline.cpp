#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/gpu_engine.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace gcsm {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGcsm:
      return "GCSM";
    case EngineKind::kZeroCopy:
      return "ZP";
    case EngineKind::kUnifiedMemory:
      return "UM";
    case EngineKind::kNaiveDegree:
      return "Naive";
    case EngineKind::kVsgm:
      return "VSGM";
    case EngineKind::kCpu:
      return "CPU";
  }
  return "?";
}

Pipeline::Pipeline(const CsrGraph& initial, QueryGraph query,
                   PipelineOptions options)
    : options_(options),
      graph_(initial),
      device_(options.sim),
      executor_(options.workers, options.schedule),
      engine_(std::move(query), executor_, options.grain),
      estimator_(engine_.query(), options.estimator),
      rng_(options.seed),
      faults_(options.fault_injector),
      durability_(options.durability, options.fault_injector) {
  device_.set_fault_injector(faults_);
  executor_.set_fault_injector(faults_);
  executor_.set_watchdog_timeout_ms(options_.recovery.watchdog_timeout_ms);
  graph_.set_fault_injector(faults_);
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // The unified-memory resident set gets the same device buffer the
    // cached engines use (the paper's setting: the graph far exceeds what
    // the device can hold, so UM thrashes pages). Without this the page
    // cache would silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    um_policy_ = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }

  if (options_.durability.enabled()) {
    recovery_info_ = durability_.recover();
    if (recovery_info_.snapshot_loaded) {
      graph_.restore(recovery_info_.graph);
      if (options_.check_invariants) graph_.validate();
      cumulative_ = recovery_info_.counters;
    }
    if (!recovery_info_.replay.empty()) {
      // Deterministic replay of committed-but-unsnapshotted batches. Fault
      // injection is suspended (the batches already survived production once)
      // and `replaying_` keeps process_batch from re-logging them.
      const FaultSuspendGuard suspend(faults_);
      replaying_ = true;
      try {
        for (const auto& [seq, batch] : recovery_info_.replay) {
          process_batch(batch);
          cumulative_.last_seq = seq;
        }
      } catch (...) {
        replaying_ = false;
        throw;
      }
      replaying_ = false;
    }
    // Integrity gate: the replayed totals must reproduce the last commit
    // marker exactly — otherwise the durable state is inconsistent (e.g. a
    // compacted WAL with a corrupt snapshot) and serving it would be wrong.
    if (recovery_info_.have_expected &&
        cumulative_ != recovery_info_.expected) {
      throw Error(
          ErrorCode::kRecovery,
          "recovery replay does not reproduce the committed counters "
          "(batches " +
              std::to_string(cumulative_.batches_committed) + " vs " +
              std::to_string(recovery_info_.expected.batches_committed) +
              ", signed " + std::to_string(cumulative_.cum_signed) + " vs " +
              std::to_string(recovery_info_.expected.cum_signed) + ")");
    }
  }
}

std::uint64_t Pipeline::effective_cache_budget() const {
  const std::uint64_t shrunk =
      options_.cache_budget_bytes >> degradation_level_;
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

std::unique_ptr<AccessPolicy> Pipeline::make_policy(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCpu:
      return std::make_unique<HostPolicy>(graph_);
    case EngineKind::kZeroCopy:
      return std::make_unique<ZeroCopyPolicy>(graph_, options_.sim);
    case EngineKind::kUnifiedMemory:
      // Returned fresh each call but sharing the persistent page cache via
      // um_policy_ would double-charge; instead hand out a non-owning view.
      return nullptr;  // handled specially in process_batch
    case EngineKind::kGcsm:
    case EngineKind::kNaiveDegree:
    case EngineKind::kVsgm:
      return std::make_unique<CachedPolicy>(graph_, cache_, options_.sim);
  }
  throw std::logic_error("unknown engine kind");
}

void Pipeline::run_attempt(const EdgeBatch& batch, const MatchSink* sink,
                           bool use_cpu, BatchReport& report) {
  const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
  // Kernel fault sites model device failures: they stay armed for device
  // attempts and are disarmed on the CPU path (which shares the executor as
  // a plain thread pool), so the fallback is genuinely more reliable. The
  // graph.apply site stays armed either way.
  executor_.set_fault_injector(use_cpu ? nullptr : faults_);

  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;

  // Step 1: dynamic graph maintenance on the CPU.
  Timer t;
  {
    const trace::Span span("pipeline.update");
    graph_.apply_batch(batch);
  }
  report.wall_update_ms = t.millis();
  if (options_.check_invariants) graph_.validate();

  // Step 2: frequency estimation (GCSM only).
  std::vector<VertexId> cache_order;
  if (kind == EngineKind::kGcsm) {
    const trace::Span span("pipeline.estimate");
    t.reset();
    const EstimateResult est = estimator_.estimate(graph_, batch, rng_);
    cache_order = select_by_frequency(est.frequency);
    report.walks = est.walks;
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(est.ops) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
    static auto& m_walks =
        metrics::Registry::global().counter("estimator.walks");
    static auto& m_nodes =
        metrics::Registry::global().counter("estimator.nodes_visited");
    static auto& m_ops = metrics::Registry::global().counter("estimator.ops");
    m_walks.add(est.walks);
    m_nodes.add(est.nodes_visited);
    m_ops.add(est.ops);
  } else if (kind == EngineKind::kNaiveDegree) {
    const trace::Span span("pipeline.estimate");
    t.reset();
    cache_order = select_by_degree(graph_);
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(graph_.num_vertices()) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (kind == EngineKind::kVsgm) {
    const trace::Span span("pipeline.estimate");
    t.reset();
    cache_order = khop_vertices(graph_, batch, engine_.query().diameter());
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(total_list_bytes(graph_, cache_order)) /
        (sim.host_mem_bandwidth_gbps * 1e9);
  }

  // Step 3: pack the selected lists as DCSR and DMA to the device.
  const bool uses_cache = kind == EngineKind::kGcsm ||
                          kind == EngineKind::kNaiveDegree ||
                          kind == EngineKind::kVsgm;
  if (uses_cache) {
    const trace::Span span("pipeline.pack");
    t.reset();
    cache_.clear();
    // VSGM semantically requires the full k-hop data on the device; a
    // budget overflow is a genuine device-OOM (the reason the paper shrinks
    // VSGM's batches). Degradation cannot help, so the configured (not the
    // effective) budget is the bound.
    if (kind == EngineKind::kVsgm) {
      const std::uint64_t need = total_list_bytes(graph_, cache_order);
      if (need > options_.cache_budget_bytes) {
        throw gpusim::DeviceOomError(need, options_.cache_budget_bytes);
      }
    }
    cache_.build(graph_, cache_order, effective_cache_budget(), device_,
                 counters);
    if (options_.check_invariants) cache_.validate(&graph_);
    report.cached_vertices = cache_.num_cached();
    report.cache_bytes = cache_.blob_bytes();
    report.wall_pack_ms = t.millis();
  }

  // Step 4: incremental matching.
  t.reset();
  {
    const trace::Span span("pipeline.match");
    const gpusim::Traffic before = counters.snapshot();
    if (kind == EngineKind::kUnifiedMemory) {
      report.stats =
          engine_.match_batch(graph_, batch, *um_policy_, counters, sink);
    } else {
      auto policy = make_policy(kind);
      report.stats =
          engine_.match_batch(graph_, batch, *policy, counters, sink);
    }
    report.wall_match_ms = t.millis();
    const gpusim::Traffic after = counters.snapshot();
    // Kernel-phase simulated time: everything but the pack DMA.
    gpusim::Traffic kernel = after;
    kernel.dma_calls -= before.dma_calls;
    kernel.dma_bytes -= before.dma_bytes;
    const gpusim::SimTime st = simulate_time(kernel, sim);
    report.sim_match_s =
        kind == EngineKind::kCpu ? st.host : st.kernel() + st.dma;
    const gpusim::SimTime pack = simulate_time(before, sim);
    report.sim_pack_s = pack.dma;
  }

  // Step 5: reorganize the touched lists on the CPU.
  t.reset();
  DynamicGraph::ReorgStats reorg;
  {
    const trace::Span span("pipeline.reorg");
    reorg = graph_.reorganize();
  }
  report.wall_reorg_ms = t.millis();
  if (options_.check_invariants) graph_.validate();
  report.sim_reorg_s =
      static_cast<double>(reorg.entries) * sizeof(VertexId) /
      (sim.host_mem_bandwidth_gbps * 1e9);

  report.traffic = counters.snapshot();
}

BatchReport Pipeline::process_batch(const EdgeBatch& batch,
                                    const MatchSink* sink) {
  const trace::Span batch_span("pipeline.batch");
  BatchReport report;
  const RecoveryOptions& rec = options_.recovery;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen. `owned` keeps whichever
  // modified copy is in play; the caller's batch is never mutated.
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (faults_ != nullptr) {
    owned = batch;
    inject_batch_corruption(owned, faults_);
    use = &owned;
  }
  if (rec.sanitize_batches) {
    QuarantineReport quarantine;
    EdgeBatch clean = sanitize_batch(graph_, *use, quarantine);
    if (!quarantine.empty()) {
      owned = std::move(clean);
      use = &owned;
    }
    report.quarantine = std::move(quarantine);
  }

  // Durable logging (step 1 of the commit protocol): the sanitized batch
  // reaches stable storage before the graph is touched, so recovery replays
  // exactly the bytes that ran. Recovery replay itself is not re-logged.
  std::uint64_t wal_seq = 0;
  if (options_.durability.enabled() && !replaying_) {
    wal_seq = durability_.begin_batch(*use);
    report.wal_seq = wal_seq;
  }

  // The transaction: everything the batch can touch, restorable even from a
  // half-applied state.
  const DynamicGraph::Snapshot snap = graph_.snapshot_for(*use);
  auto rollback = [&] {
    graph_.restore(snap);
    cache_.clear();
    if (options_.check_invariants) graph_.validate();
  };

  bool use_cpu = options_.kind == EngineKind::kCpu;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;

  // Consumes one attempt; when the current mode is out of attempts, either
  // escalates to the CPU engine or gives up by rethrowing `error`.
  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++report.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!use_cpu && rec.cpu_fallback) {
        use_cpu = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
        report.cpu_fallback = true;
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      report.backoff_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                            rec.backoff_max_ms);
    }
  };

  for (;;) {
    try {
      run_attempt(*use, sink, use_cpu, report);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: the k-hop neighborhood must be device-resident, so
        // no amount of shrinking or retrying helps.
        throw;
      }
      if (!use_cpu &&
          effective_cache_budget() > rec.min_cache_budget_bytes) {
        ++degradation_level_;
        metrics::Registry::global().counter("pipeline.degradations").add();
        clean_device_batches_ = 0;
        ++report.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      // Unclassified failures (CheckFailure, logic errors) still leave a
      // consistent graph behind, but are not retried.
      rollback();
      throw;
    }
  }

  // Degradation heals: enough consecutive clean device batches earn the
  // budget one doubling back toward the configured value. A batch that
  // needed any recovery is not clean (including the one that shrank) and
  // restarts the streak.
  if (!use_cpu && degradation_level_ > 0) {
    if (report.retries != 0) {
      clean_device_batches_ = 0;
    } else if (++clean_device_batches_ >=
               std::max(1, rec.heal_after_clean_batches)) {
      --degradation_level_;
      clean_device_batches_ = 0;
    }
  }

  report.degradation_level = degradation_level_;
  report.effective_cache_budget = effective_cache_budget();
  if (faults_ != nullptr) {
    report.faults_observed = faults_->fired_count() - faults_before;
  }

  // Commit (step 3): the cumulative totals including this batch go into the
  // commit marker; only after it is durable does the in-memory cumulative
  // state advance.
  durable::DurableCounters next = cumulative_;
  next.batches_committed += 1;
  next.cum_signed += report.stats.signed_embeddings;
  next.cum_positive += report.stats.positive;
  next.cum_negative += report.stats.negative;
  if (wal_seq != 0) {
    next.last_seq = wal_seq;
    try {
      durability_.commit_batch(wal_seq, next);
    } catch (...) {
      // The batch never became durable: roll the graph back so memory agrees
      // with disk, and let the client re-submit. (Sink callbacks already made
      // cannot be retracted — see docs/ROBUSTNESS.md.)
      rollback();
      throw;
    }
  }
  cumulative_ = next;
  record_batch_metrics(report);
  // Snapshot + WAL compaction (step 4) runs after the commit, so a crash
  // inside it can only lose the snapshot, never the batch.
  if (wal_seq != 0) durability_.maybe_snapshot(graph_, next);
  report.metrics = metrics::Registry::global().snapshot();
  return report;
}

void Pipeline::record_batch_metrics(const BatchReport& report) {
  metrics::Registry& reg = metrics::Registry::global();
  static auto& m_batches = reg.counter("pipeline.batches");
  static auto& m_retries = reg.counter("pipeline.retries");
  static auto& m_fallbacks = reg.counter("pipeline.cpu_fallbacks");
  static auto& m_quarantined = reg.counter("pipeline.quarantined_records");
  static auto& m_faults = reg.counter("pipeline.faults_observed");
  static auto& m_cache_hits = reg.counter("cache.hits");
  static auto& m_cache_misses = reg.counter("cache.misses");
  static auto& m_zero_copy_bytes = reg.counter("cache.zero_copy_bytes");
  static auto& m_compute_ops = reg.counter("kernel.compute_ops");
  static auto& m_host_ops = reg.counter("host.ops");
  static auto& g_budget = reg.gauge("pipeline.effective_cache_budget_bytes");
  static auto& g_level = reg.gauge("pipeline.degradation_level");
  static auto& g_cached = reg.gauge("cache.cached_vertices");
  static auto& h_wall = reg.histogram("pipeline.batch_wall_ms");
  static auto& h_sim = reg.histogram("pipeline.batch_sim_ms");
  static auto& h_update = reg.histogram("pipeline.phase.update_ms");
  static auto& h_estimate = reg.histogram("pipeline.phase.estimate_ms");
  static auto& h_pack = reg.histogram("pipeline.phase.pack_ms");
  static auto& h_match = reg.histogram("pipeline.phase.match_ms");
  static auto& h_reorg = reg.histogram("pipeline.phase.reorg_ms");
  static auto& h_backoff = reg.histogram("pipeline.backoff_ms");

  m_batches.add();
  m_retries.add(report.retries);
  if (report.cpu_fallback) m_fallbacks.add();
  m_quarantined.add(report.quarantine.total());
  m_faults.add(report.faults_observed);
  // Hot-path cache/kernel traffic is mirrored per batch from the traffic
  // counters — per-lookup metric updates would tax the fetch fast path.
  m_cache_hits.add(report.traffic.cache_hits);
  m_cache_misses.add(report.traffic.cache_misses);
  m_zero_copy_bytes.add(report.traffic.zero_copy_bytes);
  m_compute_ops.add(report.traffic.compute_ops);
  m_host_ops.add(report.traffic.host_ops);
  g_budget.set(static_cast<double>(report.effective_cache_budget));
  g_level.set(static_cast<double>(report.degradation_level));
  g_cached.set(static_cast<double>(report.cached_vertices));
  h_wall.observe(report.wall_total_ms());
  h_sim.observe(report.sim_total_s() * 1e3);
  h_update.observe(report.wall_update_ms);
  h_estimate.observe(report.wall_estimate_ms);
  h_pack.observe(report.wall_pack_ms);
  h_match.observe(report.wall_match_ms);
  h_reorg.observe(report.wall_reorg_ms);
  if (report.backoff_ms > 0.0) h_backoff.observe(report.backoff_ms);
}

std::uint64_t Pipeline::count_current_embeddings() {
  // A diagnostic pass, not a batch: fault injection pauses so it cannot fail
  // or consume the injector's hit sequence.
  FaultSuspendGuard suspend(faults_);
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  const MatchStats stats = engine_.match_full(graph_, policy, scratch);
  return stats.positive;
}

}  // namespace gcsm
