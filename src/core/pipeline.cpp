#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/gpu_engine.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace gcsm {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGcsm:
      return "GCSM";
    case EngineKind::kZeroCopy:
      return "ZP";
    case EngineKind::kUnifiedMemory:
      return "UM";
    case EngineKind::kNaiveDegree:
      return "Naive";
    case EngineKind::kVsgm:
      return "VSGM";
    case EngineKind::kCpu:
      return "CPU";
  }
  return "?";
}

Pipeline::Pipeline(const CsrGraph& initial, QueryGraph query,
                   PipelineOptions options)
    : options_(options),
      graph_(initial),
      device_(options.sim),
      executor_(options.workers, options.schedule),
      engine_(std::move(query), executor_, options.grain),
      estimator_(engine_.query(), options.estimator),
      rng_(options.seed),
      faults_(options.fault_injector) {
  device_.set_fault_injector(faults_);
  executor_.set_fault_injector(faults_);
  executor_.set_watchdog_timeout_ms(options_.recovery.watchdog_timeout_ms);
  graph_.set_fault_injector(faults_);
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // The unified-memory resident set gets the same device buffer the
    // cached engines use (the paper's setting: the graph far exceeds what
    // the device can hold, so UM thrashes pages). Without this the page
    // cache would silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    um_policy_ = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }
}

std::uint64_t Pipeline::effective_cache_budget() const {
  const std::uint64_t shrunk =
      options_.cache_budget_bytes >> degradation_level_;
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

std::unique_ptr<AccessPolicy> Pipeline::make_policy(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCpu:
      return std::make_unique<HostPolicy>(graph_);
    case EngineKind::kZeroCopy:
      return std::make_unique<ZeroCopyPolicy>(graph_, options_.sim);
    case EngineKind::kUnifiedMemory:
      // Returned fresh each call but sharing the persistent page cache via
      // um_policy_ would double-charge; instead hand out a non-owning view.
      return nullptr;  // handled specially in process_batch
    case EngineKind::kGcsm:
    case EngineKind::kNaiveDegree:
    case EngineKind::kVsgm:
      return std::make_unique<CachedPolicy>(graph_, cache_, options_.sim);
  }
  throw std::logic_error("unknown engine kind");
}

void Pipeline::run_attempt(const EdgeBatch& batch, const MatchSink* sink,
                           bool use_cpu, BatchReport& report) {
  const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
  // Kernel fault sites model device failures: they stay armed for device
  // attempts and are disarmed on the CPU path (which shares the executor as
  // a plain thread pool), so the fallback is genuinely more reliable. The
  // graph.apply site stays armed either way.
  executor_.set_fault_injector(use_cpu ? nullptr : faults_);

  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;

  // Step 1: dynamic graph maintenance on the CPU.
  Timer t;
  graph_.apply_batch(batch);
  report.wall_update_ms = t.millis();
  if (options_.check_invariants) graph_.validate();

  // Step 2: frequency estimation (GCSM only).
  std::vector<VertexId> cache_order;
  if (kind == EngineKind::kGcsm) {
    t.reset();
    const EstimateResult est = estimator_.estimate(graph_, batch, rng_);
    cache_order = select_by_frequency(est.frequency);
    report.walks = est.walks;
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(est.ops) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (kind == EngineKind::kNaiveDegree) {
    t.reset();
    cache_order = select_by_degree(graph_);
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(graph_.num_vertices()) /
        (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (kind == EngineKind::kVsgm) {
    t.reset();
    cache_order = khop_vertices(graph_, batch, engine_.query().diameter());
    report.wall_estimate_ms = t.millis();
    report.sim_estimate_s =
        static_cast<double>(total_list_bytes(graph_, cache_order)) /
        (sim.host_mem_bandwidth_gbps * 1e9);
  }

  // Step 3: pack the selected lists as DCSR and DMA to the device.
  const bool uses_cache = kind == EngineKind::kGcsm ||
                          kind == EngineKind::kNaiveDegree ||
                          kind == EngineKind::kVsgm;
  if (uses_cache) {
    t.reset();
    cache_.clear();
    // VSGM semantically requires the full k-hop data on the device; a
    // budget overflow is a genuine device-OOM (the reason the paper shrinks
    // VSGM's batches). Degradation cannot help, so the configured (not the
    // effective) budget is the bound.
    if (kind == EngineKind::kVsgm) {
      const std::uint64_t need = total_list_bytes(graph_, cache_order);
      if (need > options_.cache_budget_bytes) {
        throw gpusim::DeviceOomError(need, options_.cache_budget_bytes);
      }
    }
    cache_.build(graph_, cache_order, effective_cache_budget(), device_,
                 counters);
    if (options_.check_invariants) cache_.validate(&graph_);
    report.cached_vertices = cache_.num_cached();
    report.cache_bytes = cache_.blob_bytes();
    report.wall_pack_ms = t.millis();
  }

  // Step 4: incremental matching.
  t.reset();
  {
    const gpusim::Traffic before = counters.snapshot();
    if (kind == EngineKind::kUnifiedMemory) {
      report.stats =
          engine_.match_batch(graph_, batch, *um_policy_, counters, sink);
    } else {
      auto policy = make_policy(kind);
      report.stats =
          engine_.match_batch(graph_, batch, *policy, counters, sink);
    }
    report.wall_match_ms = t.millis();
    const gpusim::Traffic after = counters.snapshot();
    // Kernel-phase simulated time: everything but the pack DMA.
    gpusim::Traffic kernel = after;
    kernel.dma_calls -= before.dma_calls;
    kernel.dma_bytes -= before.dma_bytes;
    const gpusim::SimTime st = simulate_time(kernel, sim);
    report.sim_match_s =
        kind == EngineKind::kCpu ? st.host : st.kernel() + st.dma;
    const gpusim::SimTime pack = simulate_time(before, sim);
    report.sim_pack_s = pack.dma;
  }

  // Step 5: reorganize the touched lists on the CPU.
  t.reset();
  const DynamicGraph::ReorgStats reorg = graph_.reorganize();
  report.wall_reorg_ms = t.millis();
  if (options_.check_invariants) graph_.validate();
  report.sim_reorg_s =
      static_cast<double>(reorg.entries) * sizeof(VertexId) /
      (sim.host_mem_bandwidth_gbps * 1e9);

  report.traffic = counters.snapshot();
}

BatchReport Pipeline::process_batch(const EdgeBatch& batch,
                                    const MatchSink* sink) {
  BatchReport report;
  const RecoveryOptions& rec = options_.recovery;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen. `owned` keeps whichever
  // modified copy is in play; the caller's batch is never mutated.
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (faults_ != nullptr) {
    owned = batch;
    inject_batch_corruption(owned, faults_);
    use = &owned;
  }
  if (rec.sanitize_batches) {
    QuarantineReport quarantine;
    EdgeBatch clean = sanitize_batch(graph_, *use, quarantine);
    if (!quarantine.empty()) {
      owned = std::move(clean);
      use = &owned;
    }
    report.quarantine = std::move(quarantine);
  }

  // The transaction: everything the batch can touch, restorable even from a
  // half-applied state.
  const DynamicGraph::Snapshot snap = graph_.snapshot_for(*use);
  auto rollback = [&] {
    graph_.restore(snap);
    cache_.clear();
    if (options_.check_invariants) graph_.validate();
  };

  bool use_cpu = options_.kind == EngineKind::kCpu;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;

  // Consumes one attempt; when the current mode is out of attempts, either
  // escalates to the CPU engine or gives up by rethrowing `error`.
  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++report.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!use_cpu && rec.cpu_fallback) {
        use_cpu = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
        report.cpu_fallback = true;
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      report.backoff_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                            rec.backoff_max_ms);
    }
  };

  for (;;) {
    try {
      run_attempt(*use, sink, use_cpu, report);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: the k-hop neighborhood must be device-resident, so
        // no amount of shrinking or retrying helps.
        throw;
      }
      if (!use_cpu &&
          effective_cache_budget() > rec.min_cache_budget_bytes) {
        ++degradation_level_;
        clean_device_batches_ = 0;
        ++report.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      // Unclassified failures (CheckFailure, logic errors) still leave a
      // consistent graph behind, but are not retried.
      rollback();
      throw;
    }
  }

  // Degradation heals: enough consecutive clean device batches earn the
  // budget one doubling back toward the configured value. A batch that
  // needed any recovery is not clean (including the one that shrank) and
  // restarts the streak.
  if (!use_cpu && degradation_level_ > 0) {
    if (report.retries != 0) {
      clean_device_batches_ = 0;
    } else if (++clean_device_batches_ >=
               std::max(1, rec.heal_after_clean_batches)) {
      --degradation_level_;
      clean_device_batches_ = 0;
    }
  }

  report.degradation_level = degradation_level_;
  report.effective_cache_budget = effective_cache_budget();
  if (faults_ != nullptr) {
    report.faults_observed = faults_->fired_count() - faults_before;
  }
  return report;
}

std::uint64_t Pipeline::count_current_embeddings() {
  // A diagnostic pass, not a batch: fault injection pauses so it cannot fail
  // or consume the injector's hit sequence.
  FaultSuspendGuard suspend(faults_);
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  const MatchStats stats = engine_.match_full(graph_, policy, scratch);
  return stats.positive;
}

}  // namespace gcsm
