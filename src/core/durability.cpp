#include "core/durability.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm {
namespace {

void warn(RecoveredState* state, const std::string& message) {
  std::fprintf(stderr, "[gcsm] warning: %s\n", message.c_str());
  if (state != nullptr) {
    if (!state->warning.empty()) state->warning += "; ";
    state->warning += message;
  }
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     FaultInjector* faults)
    : options_(std::move(options)), faults_(faults) {
  if (!options_.enabled()) return;
  io::ensure_dir(options_.wal_dir);
  wal_path_ = options_.wal_dir + "/gcsm.wal";
  snapshot_path_ = options_.wal_dir + "/graph.snap";
}

DurabilityManager::~DurabilityManager() {
  {
    const std::lock_guard<std::mutex> lock(commit_mu_);
    committer_stop_ = true;
  }
  commit_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

void DurabilityManager::ensure_writer() {
  if (writer_ == nullptr) {
    writer_ = std::make_unique<wal::Writer>(wal_path_, options_.fsync, faults_);
  }
}

RecoveredState DurabilityManager::recover() {
  static auto& m_replayed =
      metrics::Registry::global().counter(metric::kRecoveryReplayedBatches);
  static auto& m_dropped =
      metrics::Registry::global().counter(metric::kRecoveryDroppedUncommitted);
  static auto& m_truncations =
      metrics::Registry::global().counter(metric::kRecoveryWalTailTruncations);
  RecoveredState state;
  if (!options_.enabled()) return state;

  if (!options_.recover_on_start) {
    // Fresh start: stale durable state must not replay into a later run.
    if (io::read_file_if_exists(wal_path_).has_value()) {
      wal::truncate_log(wal_path_, 0);
    }
    std::remove(snapshot_path_.c_str());
    return state;
  }

  std::string snap_why;
  if (auto loaded = durable::load_snapshot_file(snapshot_path_, &snap_why)) {
    state.snapshot_loaded = true;
    state.graph = std::move(loaded->graph);
    state.counters = loaded->counters;
    state.expected = loaded->counters;
    state.have_expected = true;
    next_seq_ = state.counters.last_seq + 1;
  } else if (snap_why != "no snapshot file") {
    // A damaged snapshot is ignored, not fatal: if the WAL still covers the
    // committed history the replay integrity check passes; if it was
    // compacted, the check fails and recovery reports kRecovery instead of
    // serving wrong state.
    warn(&state, "ignoring snapshot " + snapshot_path_ + ": " + snap_why);
  }

  wal::ReadResult log = wal::read_all(wal_path_);
  if (log.tail_damaged) {
    warn(&state, "WAL tail damaged (" + log.tail_reason + "); truncating " +
                     wal_path_ + " to " + std::to_string(log.valid_bytes) +
                     " bytes");
    wal::truncate_log(wal_path_, log.valid_bytes);
    state.wal_tail_truncated = true;
    m_truncations.add();
  }

  std::unordered_map<std::uint64_t, const std::string*> batch_payloads;
  std::unordered_set<std::uint64_t> committed;
  std::uint64_t max_seq = state.counters.last_seq;
  for (const wal::Record& rec : log.records) {
    max_seq = std::max(max_seq, rec.seq);
    if (rec.type == wal::RecordType::kBatch) {
      batch_payloads[rec.seq] = &rec.payload;
      continue;
    }
    if (rec.type == wal::RecordType::kServerState) {
      // Health transitions are opaque here; the multi-query engine decodes
      // and applies them against the registry image during its own replay.
      state.server_states.emplace_back(rec.seq, rec.payload);
      continue;
    }
    if (rec.type == wal::RecordType::kShed) {
      // Admission-control audit record: the seq was consumed but the batch
      // was intentionally dropped. Reported so callers (and the integrity
      // gate) can tell a shed gap from a lost batch; never replayed.
      state.shed_seqs.push_back(rec.seq);
      continue;
    }
    // Commit marker: its counters are the integrity target; its batch is
    // replayed when the snapshot does not already cover it.
    const auto counters = durable::decode_counters(rec.payload);
    if (!counters.has_value()) {
      throw Error(ErrorCode::kRecovery,
                  "commit marker seq " + std::to_string(rec.seq) +
                      " has undecodable counters");
    }
    committed.insert(rec.seq);
    state.expected = *counters;
    state.have_expected = true;
    if (rec.seq <= state.counters.last_seq) continue;
    const auto it = batch_payloads.find(rec.seq);
    if (it == batch_payloads.end()) {
      throw Error(ErrorCode::kRecovery,
                  "commit marker seq " + std::to_string(rec.seq) +
                      " has no batch record");
    }
    auto batch = durable::decode_batch(*it->second);
    if (!batch.has_value()) {
      throw Error(ErrorCode::kRecovery,
                  "batch record seq " + std::to_string(rec.seq) +
                      " failed to decode");
    }
    state.replay.emplace_back(rec.seq, std::move(*batch));
  }
  for (const auto& [seq, payload] : batch_payloads) {
    if (committed.count(seq) == 0) ++state.dropped_uncommitted;
  }
  if (state.dropped_uncommitted > 0) {
    warn(&state, std::to_string(state.dropped_uncommitted) +
                     " uncommitted WAL batch(es) dropped; the client resumes "
                     "from batches_committed");
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  m_replayed.add(state.replay.size());
  m_dropped.add(state.dropped_uncommitted);
  return state;
}

void DurabilityManager::append_and_sync(wal::RecordType type,
                                        std::uint64_t seq,
                                        const std::string& payload) {
  ensure_writer();
  int attempts = std::max(1, options_.max_write_attempts);
  bool written = false;
  for (;;) {
    try {
      // append throws BEFORE any byte reaches the file, so re-appending on
      // retry is safe; a failed fsync retry must NOT re-append.
      if (!written) writer_->append(type, seq, payload);
      written = true;
      writer_->sync();
      return;
    } catch (const CrashError&) {
      throw;
    } catch (const Error& e) {
      if (!e.transient() || --attempts <= 0) throw;
    }
  }
}

void DurabilityManager::append_with_retry(wal::RecordType type,
                                          std::uint64_t seq,
                                          const std::string& payload) {
  ensure_writer();
  int attempts = std::max(1, options_.max_write_attempts);
  for (;;) {
    try {
      // append throws BEFORE any byte reaches the file, so re-appending on
      // a transient refusal is safe.
      writer_->append(type, seq, payload);
      return;
    } catch (const CrashError&) {
      throw;
    } catch (const Error& e) {
      if (!e.transient() || --attempts <= 0) throw;
    }
  }
}

void DurabilityManager::sync_with_retry() {
  ensure_writer();
  int attempts = std::max(1, options_.max_write_attempts);
  for (;;) {
    try {
      writer_->sync();
      return;
    } catch (const CrashError&) {
      throw;
    } catch (const Error& e) {
      if (!e.transient() || --attempts <= 0) throw;
    }
  }
}

void DurabilityManager::committer_loop() {
  static auto& m_groups =
      metrics::Registry::global().counter(metric::kWalGroupCommitGroups);
  static auto& m_batches =
      metrics::Registry::global().counter(metric::kWalGroupCommitBatches);
  static auto& h_size =
      metrics::Registry::global().histogram(metric::kWalGroupCommitSize);
  const std::uint64_t window = std::max<std::uint64_t>(
      1, options_.group_commit_batches);
  for (;;) {
    std::vector<CommitUnit> group;
    {
      std::unique_lock<std::mutex> lock(commit_mu_);
      commit_cv_.wait(lock,
                      [&] { return committer_stop_ || !commit_queue_.empty(); });
      // Stop discards queued units (crash-equivalent; see ~DurabilityManager).
      if (committer_stop_) return;
      while (!commit_queue_.empty() && group.size() < window) {
        group.push_back(std::move(commit_queue_.front()));
        commit_queue_.pop_front();
      }
    }
    try {
      // Serial record order is preserved per batch: the batch's server-state
      // transitions land before its commit marker. One fsync covers the
      // whole group — that is the entire point of coalescing.
      for (const CommitUnit& unit : group) {
        for (const std::string& payload : unit.server_states) {
          append_with_retry(wal::RecordType::kServerState, unit.seq, payload);
        }
        append_with_retry(wal::RecordType::kCommit, unit.seq,
                          durable::encode_counters(unit.counters));
      }
      sync_with_retry();
    } catch (...) {
      // Sticky failure: everything at or beyond the first non-durable seq is
      // crash-equivalent. Waiters rethrow; the thread exits.
      const std::lock_guard<std::mutex> lock(commit_mu_);
      committer_error_ = std::current_exception();
      durable_cv_.notify_all();
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(commit_mu_);
      durable_seq_ = group.back().seq;
    }
    durable_cv_.notify_all();
    m_groups.add();
    m_batches.add(group.size());
    h_size.observe(static_cast<double>(group.size()));
  }
}

void DurabilityManager::enqueue_commit(CommitUnit unit) {
  {
    const std::lock_guard<std::mutex> lock(commit_mu_);
    if (committer_error_ != nullptr) std::rethrow_exception(committer_error_);
    enqueued_seq_ = unit.seq;
    commit_queue_.push_back(std::move(unit));
    if (!committer_.joinable()) {
      committer_ = std::thread([this] { committer_loop(); });
    }
  }
  commit_cv_.notify_one();
  // The snapshot cadence counts ENQUEUED commits: the engine consults it
  // only at drain points, where enqueued == durable.
  ++commits_since_snapshot_;
}

std::uint64_t DurabilityManager::durable_seq() const {
  const std::lock_guard<std::mutex> lock(commit_mu_);
  return durable_seq_;
}

void DurabilityManager::wait_durable(std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(commit_mu_);
  durable_cv_.wait(lock, [&] {
    return durable_seq_ >= seq || committer_error_ != nullptr;
  });
  if (durable_seq_ >= seq) return;
  std::rethrow_exception(committer_error_);
}

void DurabilityManager::drain() {
  std::uint64_t target = 0;
  {
    const std::lock_guard<std::mutex> lock(commit_mu_);
    if (!committer_.joinable()) {
      if (committer_error_ != nullptr) std::rethrow_exception(committer_error_);
      return;
    }
    target = enqueued_seq_;
  }
  wait_durable(target);
}

std::uint64_t DurabilityManager::begin_batch(const EdgeBatch& batch) {
  const std::uint64_t seq = next_seq_++;
  append_and_sync(wal::RecordType::kBatch, seq, durable::encode_batch(batch));
  return seq;
}

void DurabilityManager::commit_batch(std::uint64_t seq,
                                     const durable::DurableCounters& counters) {
  append_and_sync(wal::RecordType::kCommit, seq,
                  durable::encode_counters(counters));
  ++commits_since_snapshot_;
}

std::uint64_t DurabilityManager::log_shed(const std::string& payload) {
  const std::uint64_t seq = next_seq_++;
  append_and_sync(wal::RecordType::kShed, seq, payload);
  return seq;
}

void DurabilityManager::log_server_state(std::uint64_t seq,
                                         const std::string& payload) {
  append_and_sync(wal::RecordType::kServerState, seq, payload);
}

bool DurabilityManager::maybe_snapshot(
    const DynamicGraph& graph, const durable::DurableCounters& counters) {
  if (options_.snapshot_interval == 0 ||
      commits_since_snapshot_ < options_.snapshot_interval) {
    return false;
  }
  return snapshot_now(graph, counters);
}

bool DurabilityManager::snapshot_now(
    const DynamicGraph& graph, const durable::DurableCounters& counters) {
  static auto& m_failures =
      metrics::Registry::global().counter(metric::kSnapshotFailures);
  static auto& m_compactions =
      metrics::Registry::global().counter(metric::kWalCompactions);
  int attempts = std::max(1, options_.max_write_attempts);
  for (;;) {
    try {
      durable::write_snapshot_file(snapshot_path_, graph.snapshot_full(),
                                   counters, options_.fsync, faults_);
      break;
    } catch (const CrashError&) {
      throw;
    } catch (const Error& e) {
      if (e.transient() && --attempts > 0) continue;
      // A failed snapshot never loses data: the WAL still covers every
      // committed batch. Skip this interval and try again at the next one.
      warn(nullptr, std::string("snapshot skipped: ") + e.what());
      m_failures.add();
      return false;
    }
  }
  commits_since_snapshot_ = 0;
  try {
    // Compaction: the snapshot was written right after a commit, so every
    // WAL record is covered by it — drop the whole prefix.
    ensure_writer();
    writer_->reset();
    m_compactions.add();
  } catch (const Error& e) {
    // Failed truncation keeps stale records; recovery's seq filter ignores
    // them, so this is wasted space, not incorrectness.
    warn(nullptr, std::string("WAL compaction skipped: ") + e.what());
  }
  return true;
}

}  // namespace gcsm
