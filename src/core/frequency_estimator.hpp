// Random-walk access-frequency estimation (paper Sec. IV).
//
// The estimator predicts, per data vertex, how often the exact incremental
// matching of a batch will read that vertex's neighbor list — without
// running the matching. It samples paths of the WCOJ execution tree:
// a walk starts at a uniformly chosen seed edge of ΔE (probability 1/S) and,
// at each level, descends into a uniformly chosen child with total continue
// probability |V|/D (so each specific child is taken with probability 1/D,
// D = max degree). A vertex access observed at tree level i is reweighted by
// S * D^(i-1), which makes the estimate unbiased (paper Eq. 3, Theorem 1).
//
// Instead of running M independent walks, all M are merged into one
// traversal (paper Sec. IV-B): each loop iteration draws
// B_child ~ Binomial(B_parent, 1/D) and recurses only where B_child > 0 —
// equivalent in distribution, with one set-intersection per visited node
// instead of M.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "query/plan.hpp"
#include "query/query_graph.hpp"
#include "util/rng.hpp"

namespace gcsm {

struct EstimatorOptions {
  // 0 uses the paper's setting M = |ΔE| * D^(n-2) / 32^n, clamped below.
  std::uint64_t num_walks = 0;
  // Clamps on the default M (see default_num_walks: the paper's formula
  // capped at |ΔE| * D / 4 so the merged execution explores at most ~1/8 of
  // the level-1 execution tree). Explicit num_walks ignores the clamps.
  std::uint64_t min_walks = 1u << 12;
  std::uint64_t max_walks = 1u << 24;
};

struct EstimateResult {
  // Estimated access count per vertex (0 for never-sampled vertices).
  std::vector<double> frequency;
  std::uint64_t walks = 0;          // M actually used
  std::uint64_t nodes_visited = 0;  // sampled execution-tree nodes
  std::uint64_t ops = 0;            // set-operation work (for sim time)
};

class FrequencyEstimator {
 public:
  explicit FrequencyEstimator(const QueryGraph& query,
                              EstimatorOptions options = {});

  // Estimates access frequency for matching `batch` against `graph` (which
  // must already have the batch applied, pre-reorganization, so that OLD and
  // NEW views are both visible — the same state the matcher will see).
  //
  // `walk_scale` multiplies the resolved walk count M (clamped to keep at
  // least one walk). The overload controller's degradation ladder shrinks it
  // below 1.0 under sustained load: fewer walks cost less sim time but only
  // coarsen the cache's row ranking — match counts never depend on cache
  // content, so scaling is count-neutral (docs/ROBUSTNESS.md, "Overload &
  // admission control").
  EstimateResult estimate(const DynamicGraph& graph, const EdgeBatch& batch,
                          Rng& rng, double walk_scale = 1.0) const;

  // Reference implementation that runs `num_walks` genuinely independent
  // random walks (one root-to-stop path each), as described in Sec. IV-A
  // *before* the merged-execution optimization. Same estimator in
  // distribution as estimate(); kept for the Sec. IV-B ablation (the merged
  // execution is much faster because it shares set operations and has
  // better locality) and as a cross-check in tests.
  EstimateResult estimate_independent(const DynamicGraph& graph,
                                      const EdgeBatch& batch,
                                      Rng& rng) const;

  // The paper's iterative refinement (end of Sec. IV-A): start from a small
  // M, estimate, plug the smallest estimated frequency of interest into
  // Eq. 5 as C_y, and re-estimate with a larger M until the bound is
  // satisfied (or max_walks is reached). `alpha` is the frequency-gap
  // parameter and `confidence` the target ranking confidence δ.
  EstimateResult estimate_adaptive(const DynamicGraph& graph,
                                   const EdgeBatch& batch, Rng& rng,
                                   double alpha = 1.0,
                                   double confidence = 0.9) const;

  // The paper's default M (Sec. VI-A "Settings"), clamped to
  // [min_walks, max_walks].
  static std::uint64_t default_num_walks(std::uint64_t delta_edges,
                                         std::uint32_t max_degree,
                                         std::uint32_t pattern_size,
                                         std::uint64_t min_walks,
                                         std::uint64_t max_walks);

  // Minimum M for ranking confidence delta given frequency gap alpha and
  // the smallest frequency of interest C_y (paper Eq. 5).
  static double min_walks_for_confidence(std::uint64_t delta_edges,
                                         std::uint32_t max_degree,
                                         std::uint32_t pattern_size,
                                         double alpha, double delta,
                                         double c_y);

 private:
  QueryGraph query_;
  std::vector<MatchPlan> plans_;
  EstimatorOptions options_;
};

}  // namespace gcsm
