#include "core/reference_matcher.hpp"

#include <functional>

namespace gcsm {
namespace {

template <typename Emit>
void backtrack(const CsrGraph& g, const QueryGraph& q,
               std::array<VertexId, kMaxQueryVertices>& binding,
               std::uint32_t depth, const Emit& emit) {
  const std::uint32_t n = q.num_vertices();
  if (depth == n) {
    emit(binding);
    return;
  }
  // Candidate source: neighbors of an already-bound adjacent query vertex
  // when one exists (query is connected, so depth > 0 always has one);
  // otherwise all vertices.
  std::int32_t anchor = -1;
  for (std::uint32_t i = 0; i < depth; ++i) {
    if (q.adjacent(i, depth)) {
      anchor = static_cast<std::int32_t>(i);
      break;
    }
  }

  auto try_vertex = [&](VertexId v) {
    if (!q.label_matches(depth, g.label(v))) return;
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (binding[i] == v) return;  // injectivity
      const bool need = q.adjacent(i, depth);
      if (need && !g.has_edge(binding[i], v)) return;
      // Non-adjacent query vertices impose no constraint (subgraph
      // isomorphism, not induced).
    }
    binding[depth] = v;
    backtrack(g, q, binding, depth + 1, emit);
  };

  if (anchor >= 0) {
    for (const VertexId v : g.neighbors(binding[anchor])) try_vertex(v);
  } else {
    for (VertexId v = 0; v < g.num_vertices(); ++v) try_vertex(v);
  }
}

}  // namespace

std::uint64_t reference_count_embeddings(const CsrGraph& g,
                                         const QueryGraph& q) {
  std::uint64_t count = 0;
  std::array<VertexId, kMaxQueryVertices> binding{};
  backtrack(g, q, binding, 0, [&](const auto&) { ++count; });
  return count;
}

std::vector<std::array<VertexId, kMaxQueryVertices>>
reference_list_embeddings(const CsrGraph& g, const QueryGraph& q) {
  std::vector<std::array<VertexId, kMaxQueryVertices>> out;
  std::array<VertexId, kMaxQueryVertices> binding{};
  backtrack(g, q, binding, 0,
            [&](const std::array<VertexId, kMaxQueryVertices>& b) {
              out.push_back(b);
            });
  return out;
}

}  // namespace gcsm
