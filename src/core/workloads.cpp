#include "core/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gcsm {

const std::vector<WorkloadSpec>& workload_specs() {
  static const std::vector<WorkloadSpec> specs = {
      {"AZ", "ba", "0.4M vertices / 2.4M edges"},
      {"PA", "road", "1.08M vertices / 1.5M edges"},
      {"CA", "road", "1.96M vertices / 2.7M edges"},
      {"LJ", "ba", "3.1M vertices / 77.1M edges"},
      {"FR", "ba", "65.6M vertices / 3612M edges"},
      {"SF3K", "rmat", "33.4M vertices / 5824M edges"},
      {"SF10K", "rmat", "100.2M vertices / 18809M edges"},
  };
  return specs;
}

CsrGraph make_workload_graph(const std::string& name, double scale,
                             std::uint32_t num_labels, std::uint64_t seed) {
  Rng rng(seed ^ 0xa5a5a5a5ULL);
  auto scaled = [scale](double base) {
    return static_cast<VertexId>(std::max(64.0, base * scale));
  };
  auto scaled_dim = [scale](double base) {
    return static_cast<std::uint32_t>(
        std::max(8.0, base * std::sqrt(scale)));
  };
  if (name == "AZ") {
    // Amazon: moderate-size co-purchase graph, avg degree ~6, skewed.
    return generate_barabasi_albert(scaled(40000), 3, num_labels, rng);
  }
  if (name == "PA") {
    // RoadNetPA: 1.08M vertices, max degree 9 — low-degree planar-ish grid.
    return generate_road_network(scaled_dim(280), scaled_dim(280), 0.92,
                                 0.06, num_labels, rng);
  }
  if (name == "CA") {
    return generate_road_network(scaled_dim(380), scaled_dim(380), 0.92,
                                 0.06, num_labels, rng);
  }
  if (name == "LJ") {
    // LiveJournal: avg degree ~25, heavy tail, strong community structure.
    const VertexId n = scaled(80000);
    return generate_community_ba(n, 10, std::max<std::uint32_t>(8, n / 400),
                                 0.92, num_labels, rng);
  }
  if (name == "FR") {
    // Friendster: the paper's largest SNAP graph. Community-structured so
    // that global degree is a poor access-frequency proxy (the property the
    // Naive baseline comparison hinges on).
    const VertexId n = scaled(120000);
    return generate_community_ba(n, 12, std::max<std::uint32_t>(8, n / 400),
                                 0.95, num_labels, rng);
  }
  // R-MAT parameters for the LDBC analogs: a=0.45 keeps a heavy-tailed
  // degree distribution while holding the hub degree at a few thousand —
  // the same hub-to-graph ratio regime as LDBC datagen's output (Table I
  // lists max degrees of only ~4.3-4.5k on graphs of 33-100M vertices).
  if (name == "SF3K") {
    const auto sc = static_cast<std::uint32_t>(
        std::clamp(17.0 + std::log2(std::max(scale, 0.05)), 10.0, 24.0));
    return generate_rmat(sc, 16, 0.45, 0.183, 0.183, num_labels, rng);
  }
  if (name == "SF10K") {
    const auto sc = static_cast<std::uint32_t>(
        std::clamp(18.0 + std::log2(std::max(scale, 0.05)), 10.0, 24.0));
    return generate_rmat(sc, 16, 0.45, 0.183, 0.183, num_labels, rng);
  }
  throw Error(ErrorCode::kConfig, "unknown workload: " + name);
}

UpdateStreamOptions default_stream_options(const std::string& name,
                                           std::size_t batch_size,
                                           std::uint64_t seed) {
  UpdateStreamOptions opt;
  opt.batch_size = batch_size;
  opt.seed = seed;
  if (name == "FR" || name == "SF3K" || name == "SF10K") {
    // Paper: 12 * 8192 randomly selected edges for the large graphs.
    opt.pool_edge_count = 12ull * 8192;
    opt.pool_edge_fraction = 0.0;
  } else {
    // Paper: 10% of the edges for AZ, LJ, PA, CA.
    opt.pool_edge_count = 0;
    opt.pool_edge_fraction = 0.10;
  }
  return opt;
}

}  // namespace gcsm
