#include "core/intersect.hpp"

#include <algorithm>

namespace gcsm {
namespace {

// Galloping lower_bound: doubles the step from `from` before binary
// searching; O(log distance) when the target is near.
std::size_t gallop(const VertexId* data, std::size_t n, std::size_t from,
                   VertexId target) {
  std::size_t step = 1;
  std::size_t hi = from;
  while (hi < n && data[hi] < target) {
    hi += step;
    step *= 2;
  }
  const std::size_t lo = hi >= step ? hi - step : 0;
  const VertexId* it = std::lower_bound(data + std::min(lo, n),
                                        data + std::min(hi, n), target);
  return static_cast<std::size_t>(it - data);
}

}  // namespace

std::uint64_t intersect_sorted(const VertexId* a, std::size_t na,
                               const VertexId* b, std::size_t nb,
                               std::vector<VertexId>& out) {
  out.clear();
  if (na == 0 || nb == 0) return 0;
  std::uint64_t ops = 0;

  // Galloping path when one list is much shorter.
  if (na * 32 < nb || nb * 32 < na) {
    const VertexId* small = na <= nb ? a : b;
    const std::size_t ns = na <= nb ? na : nb;
    const VertexId* big = na <= nb ? b : a;
    const std::size_t nbig = na <= nb ? nb : na;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < ns; ++i) {
      pos = gallop(big, nbig, pos, small[i]);
      ops += 8;  // amortized gallop cost
      if (pos == nbig) break;
      if (big[pos] == small[i]) out.push_back(small[i]);
    }
    return ops;
  }

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na && j < nb) {
    ++ops;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return ops;
}

std::uint64_t intersect_into(std::vector<VertexId>& acc, const VertexId* b,
                             std::size_t nb) {
  if (acc.empty()) return 0;
  if (nb == 0) {
    acc.clear();
    return 0;
  }
  std::uint64_t ops = 0;
  std::size_t w = 0;
  if (acc.size() * 32 < nb) {
    std::size_t pos = 0;
    for (const VertexId x : acc) {
      pos = gallop(b, nb, pos, x);
      ops += 8;
      if (pos == nb) break;
      if (b[pos] == x) acc[w++] = x;
    }
  } else {
    std::size_t j = 0;
    for (std::size_t i = 0; i < acc.size() && j < nb;) {
      ++ops;
      if (acc[i] < b[j]) {
        ++i;
      } else if (b[j] < acc[i]) {
        ++j;
      } else {
        acc[w++] = acc[i];
        ++i;
        ++j;
      }
    }
  }
  acc.resize(w);
  return ops;
}

}  // namespace gcsm
