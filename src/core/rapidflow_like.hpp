// RapidFlow-like CPU baseline (paper Sec. VI, Fig. 14).
//
// RapidFlow (Sun et al., VLDB'22) is the state-of-the-art CPU CSM system the
// paper compares against. It was closed-source relative to this codebase, so
// we implement an analog with the two features the paper attributes its
// behavior to:
//   1. a per-query-vertex *candidate index* (label + degree filtered vertex
//     sets) that prunes the search — and whose memory footprint is what made
//     RapidFlow crash on large graphs;
//   2. an *optimized matching order* driven by candidate-set sizes (smallest
//     candidate sets matched first).
// Matching itself reuses the shared WCOJ engine with a candidate filter, the
// same way the paper's RF comparison was run with RF's own matching core.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "graph/dynamic_graph.hpp"
#include "query/query_graph.hpp"

namespace gcsm {

// Candidate index: for each query vertex u, the set of data vertices with a
// matching label and live degree >= deg_Q(u).
class CandidateIndex final : public CandidateFilter {
 public:
  CandidateIndex(const QueryGraph& query, const DynamicGraph& graph);

  // Re-evaluates membership for vertices touched by the batch (degrees
  // changed); full rebuild on new vertices.
  void refresh(const DynamicGraph& graph, const EdgeBatch& batch);

  bool admits(std::uint32_t query_vertex, VertexId v) const override {
    return member_[query_vertex][static_cast<std::size_t>(v)] != 0;
  }
  std::uint64_t count(std::uint32_t query_vertex) const {
    return counts_[query_vertex];
  }

  // The RF-style memory footprint: materialized candidate lists (4 bytes per
  // candidate per query vertex) plus the membership bitmaps.
  std::uint64_t memory_bytes() const;

 private:
  void evaluate(const DynamicGraph& graph, VertexId v);

  const QueryGraph& query_;
  std::vector<std::vector<std::uint8_t>> member_;  // [query vertex][vertex]
  std::vector<std::uint64_t> counts_;
};

struct RapidFlowReport {
  MatchStats stats;
  double wall_update_ms = 0.0;
  double wall_index_ms = 0.0;
  double wall_match_ms = 0.0;
  double wall_reorg_ms = 0.0;
  std::uint64_t index_bytes = 0;
  gpusim::Traffic traffic;

  double wall_total_ms() const {
    return wall_update_ms + wall_index_ms + wall_match_ms + wall_reorg_ms;
  }
};

class RapidFlowLikeEngine {
 public:
  RapidFlowLikeEngine(const CsrGraph& initial, QueryGraph query,
                      std::size_t workers = 0);

  RapidFlowReport process_batch(const EdgeBatch& batch,
                                const MatchSink* sink = nullptr);

  const DynamicGraph& graph() const { return graph_; }
  const CandidateIndex& index() const { return index_; }

 private:
  QueryGraph query_;
  DynamicGraph graph_;
  gpusim::SimtExecutor executor_;
  MatchEngine engine_;
  CandidateIndex index_;
  HostPolicy policy_;
};

}  // namespace gcsm
