// Sorted set intersection kernels.
//
// STMatch's GPU kernel uses unrolled SIMD merge intersection; the host
// analog here is a branch-light two-pointer merge with a galloping fast path
// when the lists are very different in length (the common case around hub
// vertices in power-law graphs). The returned op count feeds the simulated
// compute-time model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace gcsm {

// out = a ∩ b (both ascending, duplicate-free). Returns the number of
// comparison operations performed (for compute accounting).
std::uint64_t intersect_sorted(const VertexId* a, std::size_t na,
                               const VertexId* b, std::size_t nb,
                               std::vector<VertexId>& out);

// In-place variant used by multi-way intersections: keeps only the elements
// of `acc` present in [b, b+nb). Returns op count.
std::uint64_t intersect_into(std::vector<VertexId>& acc, const VertexId* b,
                             std::size_t nb);

}  // namespace gcsm
