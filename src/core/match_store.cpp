#include "core/match_store.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/check.hpp"
#include "util/error.hpp"

namespace gcsm {

std::vector<VertexId> embedding_from_binding(
    const MatchPlan& plan, std::span<const VertexId> binding) {
  std::vector<VertexId> embedding(binding.size());
  for (std::size_t pos = 0; pos < binding.size(); ++pos) {
    embedding[plan.vertex_order[pos]] = binding[pos];
  }
  return embedding;
}

std::size_t MatchStore::VecHash::operator()(
    const std::vector<VertexId>& v) const {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (const VertexId x : v) {
    h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

MatchStore::MatchStore(const QueryGraph& query)
    : query_(query),
      automorphisms_(list_automorphisms(query)),
      aut_count_(automorphisms_.size()) {}

MatchSink MatchStore::sink() {
  return [this](const MatchPlan& plan, std::span<const VertexId> binding,
                int sign) {
    const std::vector<VertexId> embedding =
        embedding_from_binding(plan, binding);
    apply(std::span<const VertexId>(embedding.data(), embedding.size()),
          sign);
  };
}

std::vector<VertexId> MatchStore::canonicalize(
    std::span<const VertexId> embedding) const {
  // The canonical form is the lexicographically smallest image of the
  // embedding under Aut(Q): image[i] = embedding[perm^{-1}(i)], i.e. the
  // data vertex matched to the query vertex that perm maps onto i.
  std::vector<VertexId> best(embedding.begin(), embedding.end());
  std::vector<VertexId> image(embedding.size());
  for (const auto& perm : automorphisms_) {
    for (std::size_t i = 0; i < embedding.size(); ++i) {
      image[perm[i]] = embedding[i];
    }
    if (image < best) best = image;
  }
  return best;
}

void MatchStore::apply(std::span<const VertexId> embedding, int sign) {
  if (embedding.size() != query_.num_vertices()) {
    throw Error(ErrorCode::kConfig, "embedding size mismatch");
  }
  auto key = canonicalize(embedding);
  auto& count = subgraphs_[key];
  const std::int64_t before = count;
  count += sign > 0 ? 1 : -1;
  embeddings_ += sign > 0 ? 1 : -1;
  GCSM_ASSERT(count <= static_cast<std::int64_t>(aut_count_) &&
                  -count <= static_cast<std::int64_t>(aut_count_),
              "duplicate embedding event for one subgraph");
  // A subgraph is "present" once its embedding multiplicity is positive;
  // full presence is |Aut| embeddings, but the first positive one already
  // identifies the subgraph (events within a batch arrive in any order).
  if (before <= 0 && count > 0) ++positive_subgraphs_;
  if (before > 0 && count <= 0) --positive_subgraphs_;
  if (count == 0) subgraphs_.erase(key);
}

bool MatchStore::contains(std::span<const VertexId> embedding) const {
  const auto it = subgraphs_.find(canonicalize(embedding));
  return it != subgraphs_.end() && it->second > 0;
}

std::vector<std::vector<VertexId>> MatchStore::subgraphs() const {
  std::vector<std::vector<VertexId>> out;
  out.reserve(subgraphs_.size());
  for (const auto& [key, count] : subgraphs_) {
    if (count > 0) out.push_back(key);
  }
  return out;
}

void MatchStore::clear() {
  subgraphs_.clear();
  embeddings_ = 0;
  positive_subgraphs_ = 0;
}

void MatchStore::validate() const {
  std::int64_t total = 0;
  std::uint64_t positive = 0;
  for (const auto& [key, count] : subgraphs_) {
    GCSM_CHECK(key.size() == query_.num_vertices(),
               "stored embedding has the wrong arity");
    std::unordered_set<VertexId> distinct(key.begin(), key.end());
    GCSM_CHECK(distinct.size() == key.size(),
               "stored embedding binds a data vertex twice");
    for (const VertexId v : key) {
      GCSM_CHECK(v >= 0, "stored embedding binds a negative vertex id");
    }
    GCSM_CHECK(canonicalize(std::span<const VertexId>(key.data(),
                                                      key.size())) == key,
               "stored key is not the canonical automorphism image");
    GCSM_CHECK(count != 0, "zero-count subgraph was not erased");
    const std::int64_t aut = static_cast<std::int64_t>(aut_count_);
    GCSM_CHECK(count <= aut && count >= -aut,
               "subgraph holds more than |Aut(Q)| embeddings — duplicate "
               "embedding events");
    total += count;
    if (count > 0) ++positive;
  }
  GCSM_CHECK(total == embeddings_,
             "embedding counter disagrees with the stored multiplicities");
  GCSM_CHECK(positive == positive_subgraphs_,
             "positive-subgraph counter disagrees with the table");
}

}  // namespace gcsm
