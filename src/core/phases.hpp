// The five GCSM pipeline phases (paper Fig. 3) as reusable building blocks,
// plus the per-engine metric scope they report into.
//
// core/pipeline.hpp composes these into the classic one-query Pipeline; the
// multi-query serving engine (src/server/) composes the same pieces with a
// different schedule — one shared update/estimate/pack per batch, then the
// match phase fanned out across registered queries. Keeping the phase bodies
// here means the two schedulers cannot drift apart semantically.
//
// PipelineMetrics solves the process-global metric aliasing problem: the
// original implementation resolved metric names through function-local
// statics, so two engines in one process interleaved into the same series.
// Each engine now owns a PipelineMetrics whose names are resolved once at
// construction from an optional prefix — "" preserves the historical
// single-pipeline names ("pipeline.match_ms"), while a multi-query engine
// scopes each query ("q3.pipeline.match_ms").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/frequency_estimator.hpp"
#include "gpusim/device.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace gcsm {

enum class EngineKind {
  kGcsm,           // frequency-estimated cache + zero-copy fallback
  kZeroCopy,       // baseline ZP: everything over PCIe in cache lines
  kUnifiedMemory,  // baseline UM: page-granular unified memory
  kNaiveDegree,    // baseline Naive: degree-ordered cache
  kVsgm,           // baseline VSGM: k-hop DMA precopy
  kCpu,            // CPU baseline: host threads, no device
};

const char* engine_kind_name(EngineKind kind);

// Knobs of the transactional retry / degradation ladder. The defaults favor
// forward progress: a handful of device retries, then a CPU re-run.
struct RecoveryOptions {
  // Attempts on the configured engine before escalating (>= 1; the first
  // run counts as one attempt).
  int max_attempts = 3;
  // Attempts granted to the CPU fallback once escalated.
  int max_cpu_attempts = 4;
  // Escalate to the CPU engine when device attempts are exhausted. With
  // this off, the last error is rethrown instead.
  bool cpu_fallback = true;
  // Exponential backoff between attempts; 0 disables sleeping (tests).
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 50.0;
  // Device-OOM degradation: each OOM halves the effective cache budget,
  // never below this floor; once at the floor, OOM escalates like an
  // exhausted retry.
  std::uint64_t min_cache_budget_bytes = 64ull << 10;
  // After this many consecutive clean device batches, the budget doubles
  // back toward the configured value (one step at a time).
  int heal_after_clean_batches = 8;
  // Screen incoming batches and quarantine malformed records instead of
  // letting apply_batch throw on them.
  bool sanitize_batches = true;
  // Watchdog deadline for hung kernels (forwarded to the executor).
  double watchdog_timeout_ms = 25.0;
};

struct BatchReport {
  MatchStats stats;
  gpusim::Traffic traffic;

  // Wall-clock phase times (milliseconds).
  double wall_update_ms = 0.0;
  double wall_estimate_ms = 0.0;  // Step 2 (FE in Table II)
  double wall_pack_ms = 0.0;      // Step 3 (DC in Table II)
  double wall_match_ms = 0.0;     // Step 4
  double wall_reorg_ms = 0.0;     // Step 5 (Table III)

  // Simulated phase times (seconds) from the cost model; the matching phase
  // is split as in Fig. 13's breakdown.
  double sim_estimate_s = 0.0;
  double sim_pack_s = 0.0;  // DMA of the DCSR blob
  double sim_match_s = 0.0;
  double sim_reorg_s = 0.0;

  double sim_total_s() const {
    return sim_estimate_s + sim_pack_s + sim_match_s + sim_reorg_s;
  }
  double wall_total_ms() const {
    return wall_update_ms + wall_estimate_ms + wall_pack_ms + wall_match_ms +
           wall_reorg_ms;
  }

  // Cache diagnostics.
  std::uint64_t cached_vertices = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t walks = 0;

  // Robustness diagnostics (phase times and traffic reflect the attempt
  // that succeeded; these record what it took to get there).
  std::uint32_t retries = 0;            // recovery attempts beyond the first
  std::uint32_t degradation_level = 0;  // budget halvings in effect
  std::uint64_t effective_cache_budget = 0;  // budget used by this batch
  bool cpu_fallback = false;            // batch completed on the CPU engine
  double backoff_ms = 0.0;              // total backoff slept for this batch
  std::uint64_t faults_observed = 0;    // injector fires during this batch
  QuarantineReport quarantine;          // malformed records screened out
  std::uint64_t wal_seq = 0;            // WAL sequence (0 = not durably logged)

  // Process-wide metrics after this batch (docs/OBSERVABILITY.md): the
  // cumulative registry state, so deltas between consecutive reports
  // attribute activity to one batch.
  metrics::Snapshot metrics;

  double cache_hit_rate() const {
    const auto total = traffic.cache_hits + traffic.cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(traffic.cache_hits) /
                            static_cast<double>(total);
  }
};

// One engine instance's metric handles and trace-span names, resolved once
// from `prefix` against the process-wide registry. Copy-free references stay
// valid for the registry's lifetime; the span-name strings live here because
// trace::Span keeps the char* until the span closes.
class PipelineMetrics {
 public:
  explicit PipelineMetrics(std::string prefix = "");

  const std::string& prefix() const { return prefix_; }

  const char* span_batch() const { return span_batch_.c_str(); }
  const char* span_update() const { return span_update_.c_str(); }
  const char* span_estimate() const { return span_estimate_.c_str(); }
  const char* span_pack() const { return span_pack_.c_str(); }
  const char* span_match() const { return span_match_.c_str(); }
  const char* span_reorg() const { return span_reorg_.c_str(); }

  // Estimator activity for one estimate() call.
  void note_estimate(const EstimateResult& est) const;
  // Device-OOM degradation ladder took one step down.
  void note_degradation() const;
  // Folds a finished batch into the registry (per-batch granularity so the
  // fetch hot path stays untouched).
  void record_batch(const BatchReport& report) const;

 private:
  std::string prefix_;
  std::string span_batch_;
  std::string span_update_;
  std::string span_estimate_;
  std::string span_pack_;
  std::string span_match_;
  std::string span_reorg_;

  metrics::Counter& batches_;
  metrics::Counter& retries_;
  metrics::Counter& fallbacks_;
  metrics::Counter& degradations_;
  metrics::Counter& quarantined_;
  metrics::Counter& faults_;
  metrics::Counter& cache_hits_;
  metrics::Counter& cache_misses_;
  metrics::Counter& zero_copy_bytes_;
  metrics::Counter& compute_ops_;
  metrics::Counter& host_ops_;
  metrics::Counter& est_walks_;
  metrics::Counter& est_nodes_;
  metrics::Counter& est_ops_;
  metrics::Gauge& budget_;
  metrics::Gauge& level_;
  metrics::Gauge& cached_;
  metrics::Histogram& wall_;
  metrics::Histogram& sim_;
  metrics::Histogram& update_ms_;
  metrics::Histogram& estimate_ms_;
  metrics::Histogram& pack_ms_;
  metrics::Histogram& match_ms_;
  metrics::Histogram& reorg_ms_;
  metrics::Histogram& backoff_ms_;
};

// Step 1: dynamic graph maintenance on the CPU. Fills wall_update_ms.
void phase_update(DynamicGraph& graph, const EdgeBatch& batch,
                  bool check_invariants, const PipelineMetrics& pm,
                  BatchReport& report);

// Step 2: choose the cache residency order for `kind`. GCSM runs the
// random-walk estimator (deterministic given `rng`), Naive orders by degree,
// VSGM collects the k-hop neighborhood (`query_diameter` hops around the
// batch); the remaining kinds cache nothing and return empty. Fills
// wall_estimate_ms / sim_estimate_s / walks.
std::vector<VertexId> phase_estimate(EngineKind kind,
                                     FrequencyEstimator& estimator,
                                     const DynamicGraph& graph,
                                     const EdgeBatch& batch, Rng& rng,
                                     int query_diameter,
                                     const gpusim::SimParams& sim,
                                     const PipelineMetrics& pm,
                                     BatchReport& report);

// Step 3: pack `order`'s lists as DCSR under `effective_budget` and DMA the
// blob to the device, charging `counters`. VSGM semantically requires the
// full k-hop data resident, so its bound is the configured (undegraded)
// budget and overflow throws DeviceOomError. No-op for kinds that do not
// cache. Fills wall_pack_ms / sim_pack_s / cached_vertices / cache_bytes.
// With `staged` set (the pipelined schedule), the build goes into the
// cache's staged epoch — the active epoch keeps serving the in-flight
// match — and the caller publishes it when the previous batch retires; the
// shared budget is split across both epochs (DcsrCache::build_staged).
void phase_pack(EngineKind kind, DcsrCache& cache, const DynamicGraph& graph,
                const std::vector<VertexId>& order,
                std::uint64_t effective_budget,
                std::uint64_t configured_budget, gpusim::Device& device,
                gpusim::TrafficCounters& counters, bool check_invariants,
                const gpusim::SimParams& sim, const PipelineMetrics& pm,
                BatchReport& report, bool staged = false);

// Step 4: incremental matching through `policy`, charging `counters`. Fills
// stats / wall_match_ms / sim_match_s, attributing to the kernel everything
// `counters` gained during the call except DMA already present beforehand
// (the pack blob's transfer).
void phase_match(EngineKind kind, MatchEngine& engine,
                 const DynamicGraph& graph, const EdgeBatch& batch,
                 AccessPolicy& policy, gpusim::TrafficCounters& counters,
                 const MatchSink* sink, const gpusim::SimParams& sim,
                 const PipelineMetrics& pm, BatchReport& report);

// Step 5: reorganize the touched neighbor lists on the CPU. Fills
// wall_reorg_ms / sim_reorg_s.
void phase_reorg(DynamicGraph& graph, bool check_invariants,
                 const gpusim::SimParams& sim, const PipelineMetrics& pm,
                 BatchReport& report);

}  // namespace gcsm
