#include "core/list_ref.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gcsm {

void materialize_view(const NeighborView& view, std::vector<VertexId>& out) {
  const NeighborSeg& p = view.prefix;
  if (view.mode == ViewMode::kOld) {
    GCSM_ASSERT(view.appended.size == 0, "OLD view carries an appended run");
    for (std::uint32_t i = 0; i < p.size; ++i) {
      out.push_back(decode_neighbor(p.data[i]));
    }
    return;
  }
  // kNew: merge live prefix entries with the appended run. Tombstones must
  // never reach the candidate buffers — only prefix entries can carry them,
  // and the merge below skips those.
  const NeighborSeg& a = view.appended;
  GCSM_ASSERT(a.size == 0 || !is_deleted_neighbor(a.data[0]),
              "tombstone at the head of an appended run");
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  while (i < p.size && j < a.size) {
    if (is_deleted_neighbor(p.data[i])) {
      ++i;
      continue;
    }
    if (p.data[i] < a.data[j]) {
      out.push_back(p.data[i++]);
    } else {
      out.push_back(a.data[j++]);
    }
  }
  for (; i < p.size; ++i) {
    if (!is_deleted_neighbor(p.data[i])) out.push_back(p.data[i]);
  }
  for (; j < a.size; ++j) out.push_back(a.data[j]);
}

std::uint32_t view_live_size(const NeighborView& view) {
  if (view.mode == ViewMode::kOld) return view.prefix.size;
  std::uint32_t live = view.appended.size;
  for (std::uint32_t i = 0; i < view.prefix.size; ++i) {
    if (!is_deleted_neighbor(view.prefix.data[i])) ++live;
  }
  return live;
}

bool view_contains(const NeighborView& view, VertexId target) {
  const NeighborSeg& p = view.prefix;
  // The prefix is sorted by decoded id whether or not entries are
  // tombstoned, so binary search on decoded values works for both modes.
  std::uint32_t lo = 0;
  std::uint32_t hi = p.size;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (decode_neighbor(p.data[mid]) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < p.size && decode_neighbor(p.data[lo]) == target) {
    if (view.mode == ViewMode::kOld) return true;
    if (!is_deleted_neighbor(p.data[lo])) return true;
    // Tombstoned in the prefix: fall through to the appended run (an edge
    // deleted and re-inserted in different batches).
  }
  if (view.mode == ViewMode::kNew && view.appended.size > 0) {
    return std::binary_search(view.appended.data,
                              view.appended.data + view.appended.size,
                              target);
  }
  return false;
}

}  // namespace gcsm
