#include "core/frequency_estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/intersect.hpp"
#include "core/list_ref.hpp"
#include "util/binomial.hpp"

namespace gcsm {
namespace {

struct WalkState {
  const QueryGraph* query = nullptr;
  const MatchPlan* plan = nullptr;
  const DynamicGraph* graph = nullptr;
  std::vector<double>* freq = nullptr;
  Rng* rng = nullptr;
  double inv_degree = 0.0;  // 1/D
  std::uint64_t nodes = 0;
  std::uint64_t ops = 0;
  std::array<VertexId, kMaxQueryVertices> bound{};
  std::array<std::vector<VertexId>, kMaxQueryVertices> cand;
  std::vector<VertexId> tmp;
};

// Visits the execution-tree node whose bindings are bound[0 .. 2+level-1]
// with multiplicity `walks` and importance weight `weight`; records the
// neighbor-list accesses needed to compute the next level's candidates and
// recurses into binomially sampled children.
void walk_extend(WalkState& st, std::uint32_t level, std::uint64_t walks,
                 double weight) {
  const MatchPlan& plan = *st.plan;
  if (level >= plan.num_levels()) return;
  ++st.nodes;

  const PlanLevel& pl = plan.levels[level];
  // Record accesses (paper Eq. 3 contribution: weight per walk, `walks`
  // walks pass through this node).
  for (const BackwardConstraint& c : pl.constraints) {
    (*st.freq)[st.bound[c.order_pos]] += static_cast<double>(walks) * weight;
  }

  // Compute the candidate set V exactly as the matcher would.
  auto& out = st.cand[level];
  out.clear();
  const auto& c0 = pl.constraints[0];
  materialize_view(st.graph->view(st.bound[c0.order_pos], c0.view), out);
  st.ops += out.size();
  for (std::size_t i = 1; i < pl.constraints.size() && !out.empty(); ++i) {
    const auto& c = pl.constraints[i];
    st.tmp.clear();
    materialize_view(st.graph->view(st.bound[c.order_pos], c.view), st.tmp);
    st.ops += st.tmp.size();
    st.ops += intersect_into(out, st.tmp.data(), st.tmp.size());
  }

  const std::uint32_t bound_count = 2 + level;
  for (const VertexId v : out) {
    if (!st.query->label_matches(pl.query_vertex, st.graph->label(v))) {
      continue;
    }
    bool duplicate = false;
    for (std::uint32_t i = 0; i < bound_count; ++i) {
      if (st.bound[i] == v) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    const std::uint64_t child_walks = binomial(*st.rng, walks, st.inv_degree);
    ++st.ops;
    if (child_walks == 0) continue;
    st.bound[bound_count] = v;
    walk_extend(st, level + 1, child_walks, weight / st.inv_degree);
  }
}

}  // namespace

FrequencyEstimator::FrequencyEstimator(const QueryGraph& query,
                                       EstimatorOptions options)
    : query_(query),
      plans_(make_delta_plans(query)),
      options_(options) {}

EstimateResult FrequencyEstimator::estimate(const DynamicGraph& graph,
                                            const EdgeBatch& batch,
                                            Rng& rng,
                                            double walk_scale) const {
  EstimateResult result;
  result.frequency.assign(static_cast<std::size_t>(graph.num_vertices()),
                          0.0);
  const std::uint32_t max_degree = std::max(1u, graph.max_degree_bound());
  std::uint64_t walks =
      options_.num_walks != 0
          ? options_.num_walks
          : default_num_walks(batch.updates.size(), max_degree,
                              query_.num_vertices(), options_.min_walks,
                              options_.max_walks);
  if (walk_scale > 0.0 && walk_scale < 1.0) {
    walks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(walks) *
                                      walk_scale));
  }
  result.walks = walks;

  WalkState st;
  st.query = &query_;
  st.graph = &graph;
  st.freq = &result.frequency;
  st.rng = &rng;
  st.inv_degree = 1.0 / static_cast<double>(max_degree);

  for (const MatchPlan& plan : plans_) {
    // Seed candidates for this plan: directed batch edges whose endpoint
    // labels match the seed query edge. The seed loop samples each with
    // probability 1/S and reweights by S.
    std::vector<std::pair<VertexId, VertexId>> seeds;
    seeds.reserve(batch.updates.size() * 2);
    for (const EdgeUpdate& e : batch.updates) {
      if (query_.label_matches(plan.seed_a, graph.label(e.u)) &&
          query_.label_matches(plan.seed_b, graph.label(e.v))) {
        seeds.emplace_back(e.u, e.v);
      }
      if (query_.label_matches(plan.seed_a, graph.label(e.v)) &&
          query_.label_matches(plan.seed_b, graph.label(e.u))) {
        seeds.emplace_back(e.v, e.u);
      }
    }
    if (seeds.empty()) continue;
    const double s = static_cast<double>(seeds.size());
    st.plan = &plan;

    for (const auto& [xa, xb] : seeds) {
      const std::uint64_t b1 = binomial(rng, walks, 1.0 / s);
      ++st.ops;
      if (b1 == 0) continue;
      st.bound[0] = xa;
      st.bound[1] = xb;
      walk_extend(st, 0, b1, s);
    }
  }

  // Average over the M walks (Eq. 3's estimate is per walk).
  const double inv_m = 1.0 / static_cast<double>(walks);
  for (double& f : result.frequency) f *= inv_m;
  result.nodes_visited = st.nodes;
  result.ops = st.ops;
  return result;
}

EstimateResult FrequencyEstimator::estimate_independent(
    const DynamicGraph& graph, const EdgeBatch& batch, Rng& rng) const {
  EstimateResult result;
  result.frequency.assign(static_cast<std::size_t>(graph.num_vertices()),
                          0.0);
  const std::uint32_t max_degree = std::max(1u, graph.max_degree_bound());
  const double d = static_cast<double>(max_degree);
  const std::uint64_t walks =
      options_.num_walks != 0
          ? options_.num_walks
          : default_num_walks(batch.updates.size(), max_degree,
                              query_.num_vertices(), options_.min_walks,
                              options_.max_walks);
  result.walks = walks;

  // Per-plan seed lists (computed once; the walk itself is per-iteration).
  std::vector<std::vector<std::pair<VertexId, VertexId>>> seeds(
      plans_.size());
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    for (const EdgeUpdate& e : batch.updates) {
      if (query_.label_matches(plans_[p].seed_a, graph.label(e.u)) &&
          query_.label_matches(plans_[p].seed_b, graph.label(e.v))) {
        seeds[p].emplace_back(e.u, e.v);
      }
      if (query_.label_matches(plans_[p].seed_a, graph.label(e.v)) &&
          query_.label_matches(plans_[p].seed_b, graph.label(e.u))) {
        seeds[p].emplace_back(e.v, e.u);
      }
    }
  }

  std::array<VertexId, kMaxQueryVertices> bound{};
  std::vector<VertexId> cand;
  std::vector<VertexId> tmp;
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    const MatchPlan& plan = plans_[p];
    if (seeds[p].empty()) continue;
    const double s = static_cast<double>(seeds[p].size());
    for (std::uint64_t w = 0; w < walks; ++w) {
      // One independent walk: uniform seed, then at each level compute V,
      // continue with probability |V|/D into a uniform child.
      const auto& [xa, xb] = seeds[p][rng.bounded(seeds[p].size())];
      bound[0] = xa;
      bound[1] = xb;
      double weight = s;
      for (std::uint32_t level = 0; level < plan.num_levels(); ++level) {
        const PlanLevel& pl = plan.levels[level];
        ++result.nodes_visited;
        for (const BackwardConstraint& c : pl.constraints) {
          result.frequency[bound[c.order_pos]] += weight;
        }
        cand.clear();
        const auto& c0 = pl.constraints[0];
        materialize_view(graph.view(bound[c0.order_pos], c0.view), cand);
        result.ops += cand.size();
        for (std::size_t i = 1; i < pl.constraints.size() && !cand.empty();
             ++i) {
          const auto& c = pl.constraints[i];
          tmp.clear();
          materialize_view(graph.view(bound[c.order_pos], c.view), tmp);
          result.ops += tmp.size();
          result.ops += intersect_into(cand, tmp.data(), tmp.size());
        }
        // Filter to valid matching vertices.
        std::size_t wpos = 0;
        const std::uint32_t bound_count = 2 + level;
        for (const VertexId v : cand) {
          if (!query_.label_matches(pl.query_vertex, graph.label(v))) {
            continue;
          }
          bool dup = false;
          for (std::uint32_t i = 0; i < bound_count; ++i) {
            if (bound[i] == v) {
              dup = true;
              break;
            }
          }
          if (!dup) cand[wpos++] = v;
        }
        cand.resize(wpos);
        if (cand.empty()) break;
        // Continue with probability |V|/D, child uniform in V.
        if (!rng.bernoulli(static_cast<double>(cand.size()) / d)) break;
        bound[bound_count] = cand[rng.bounded(cand.size())];
        weight *= d;
      }
    }
  }
  const double inv_m = 1.0 / static_cast<double>(walks);
  for (double& f : result.frequency) f *= inv_m;
  return result;
}

EstimateResult FrequencyEstimator::estimate_adaptive(
    const DynamicGraph& graph, const EdgeBatch& batch, Rng& rng, double alpha,
    double confidence) const {
  EstimatorOptions opts = options_;
  std::uint64_t walks = std::max<std::uint64_t>(options_.min_walks, 1024);
  EstimateResult result;
  for (;;) {
    opts.num_walks = walks;
    result = FrequencyEstimator(query_, opts).estimate(graph, batch, rng);
    if (walks >= options_.max_walks) break;

    // C_y: the smallest positive estimated frequency — the hardest vertex
    // to rank correctly among those we would consider caching.
    double c_y = 0.0;
    for (const double f : result.frequency) {
      if (f > 0.0 && (c_y == 0.0 || f < c_y)) c_y = f;
    }
    if (c_y <= 0.0) break;  // nothing sampled: more walks will not rank

    const double needed = min_walks_for_confidence(
        batch.updates.size(), std::max(1u, graph.max_degree_bound()),
        query_.num_vertices(), alpha, confidence, c_y);
    if (static_cast<double>(walks) >= needed) break;
    const double bumped =
        std::min(needed, 2.0 * static_cast<double>(walks));
    walks = std::min<std::uint64_t>(
        options_.max_walks,
        static_cast<std::uint64_t>(std::max(bumped,
                                            static_cast<double>(walks) + 1)));
  }
  return result;
}

std::uint64_t FrequencyEstimator::default_num_walks(
    std::uint64_t delta_edges, std::uint32_t max_degree,
    std::uint32_t pattern_size, std::uint64_t min_walks,
    std::uint64_t max_walks) {
  // M = |ΔE| * D^(n-2) / 32^n (paper Sec. VI-A), evaluated in floating
  // point to avoid overflow. We additionally cap M at |ΔE| * D / 4: in the
  // merged execution the expected fraction of level-1 execution-tree nodes
  // explored is ~M / (2|ΔE| * D), so this cap bounds the estimator at
  // ~1/8 of one matching level. The paper's uncapped formula presumes
  // evaluation-scale graphs whose deep levels dwarf level 1 (Table II keeps
  // FE under ~17%); at this library's scales the cap preserves that share.
  const double m = static_cast<double>(delta_edges) *
                   std::pow(static_cast<double>(max_degree),
                            static_cast<double>(pattern_size) - 2.0) /
                   std::pow(32.0, static_cast<double>(pattern_size));
  // The raw formula spans many orders of magnitude at library scale (it was
  // tuned for billion-edge graphs), so it is clamped into a window that
  // keeps both coverage and cost sane:
  //  * floor 64 * |ΔE|  — enough walks that every seed's subtree is sampled
  //    (coverage needs M at a healthy multiple of the ~2|ΔE| seeds,
  //    especially on low-degree graphs where single walks are cheap);
  //  * ceiling |ΔE| * max(D/4, 64) — bounds the expected fraction of the
  //    level-1 execution tree the merged run explores, keeping the FE share
  //    of total time in the paper's Table-II range.
  const double d = static_cast<double>(max_degree);
  const double de = static_cast<double>(delta_edges);
  const double floor_walks = 64.0 * de;
  const double ceiling_walks = de * std::max(d / 4.0, 64.0);
  double walks = std::isfinite(m) ? m : ceiling_walks;
  walks = std::clamp(walks, std::min(floor_walks, ceiling_walks),
                     ceiling_walks);
  walks = std::min(walks, static_cast<double>(max_walks));
  walks = std::max(walks, static_cast<double>(min_walks));
  return static_cast<std::uint64_t>(walks);
}

double FrequencyEstimator::min_walks_for_confidence(
    std::uint64_t delta_edges, std::uint32_t max_degree,
    std::uint32_t pattern_size, double alpha, double delta, double c_y) {
  // Paper Eq. 5.
  const double n = static_cast<double>(pattern_size);
  return (n - 1.0) * (2.0 + alpha) * static_cast<double>(delta_edges) *
         std::pow(static_cast<double>(max_degree), n - 2.0) /
         (alpha * alpha * (1.0 - delta) * c_y);
}

}  // namespace gcsm
