// Access policies: how a matching kernel obtains neighbor lists, and what
// interconnect traffic that costs.
//
// All engines share one enumeration core; a policy is the ONLY difference
// between GCSM and the paper's baselines (mirroring the paper's fairness
// rule that every GPU version uses the same STMatch-derived kernel):
//
//   HostPolicy         — the CPU baseline: plain host reads.
//   ZeroCopyPolicy     — baseline ZP: every list is read from pinned host
//                        memory in 128-B cache lines.
//   UnifiedMemoryPolicy— baseline UM: every access goes through a 4-KiB
//                        LRU page cache; misses are page faults.
//   CachedPolicy       — GCSM and Naive: look the vertex up in a DCSR cache
//                        in device memory, fall back to zero-copy on miss.
//                        (VSGM reuses this with a k-hop cache that never
//                        misses.)
#pragma once

#include <memory>

#include "core/dcsr_cache.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/page_cache.hpp"
#include "graph/dynamic_graph.hpp"

namespace gcsm {

class AccessPolicy {
 public:
  virtual ~AccessPolicy() = default;

  // Returns the neighbor view of v and charges the traffic of reading it.
  virtual NeighborView fetch(VertexId v, ViewMode mode,
                             gpusim::TrafficCounters& counters) = 0;

  // True for policies that execute on the (simulated) device.
  virtual bool on_device() const = 0;
};

// CPU engine: reads host memory directly.
class HostPolicy final : public AccessPolicy {
 public:
  explicit HostPolicy(const DynamicGraph& graph) : graph_(graph) {}
  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override;
  bool on_device() const override { return false; }

 private:
  const DynamicGraph& graph_;
};

// GPU zero-copy baseline: cache-line granular reads over PCIe.
class ZeroCopyPolicy final : public AccessPolicy {
 public:
  ZeroCopyPolicy(const DynamicGraph& graph, const gpusim::SimParams& params)
      : graph_(graph), line_bytes_(params.zero_copy_line_bytes) {}
  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override;
  bool on_device() const override { return true; }

 private:
  const DynamicGraph& graph_;
  std::uint32_t line_bytes_;
};

// GPU unified-memory baseline: page-granular migration with an LRU resident
// set on the device.
class UnifiedMemoryPolicy final : public AccessPolicy {
 public:
  UnifiedMemoryPolicy(const DynamicGraph& graph,
                      const gpusim::SimParams& params)
      : graph_(graph),
        pages_(params.um_page_cache_bytes, params.um_page_bytes) {}
  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override;
  bool on_device() const override { return true; }
  gpusim::PageCache& page_cache() { return pages_; }

 private:
  const DynamicGraph& graph_;
  gpusim::PageCache pages_;
};

// GCSM / Naive / VSGM: DCSR cache hit -> device memory; miss -> zero-copy.
class CachedPolicy final : public AccessPolicy {
 public:
  CachedPolicy(const DynamicGraph& graph, const DcsrCache& cache,
               const gpusim::SimParams& params)
      : graph_(graph),
        cache_(cache),
        line_bytes_(params.zero_copy_line_bytes) {}
  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override;
  bool on_device() const override { return true; }

 private:
  const DynamicGraph& graph_;
  const DcsrCache& cache_;
  std::uint32_t line_bytes_;
};

// Instrumentation policy for Fig. 15: host reads, but also records the exact
// per-vertex access counts and bytes of an exact matching run (the ground
// truth the random-walk estimator is validated against).
class CountingPolicy final : public AccessPolicy {
 public:
  explicit CountingPolicy(const DynamicGraph& graph)
      : graph_(graph),
        counts_(std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(graph.num_vertices()))) {}
  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override;
  bool on_device() const override { return false; }

  std::vector<std::uint64_t> access_counts() const;

 private:
  const DynamicGraph& graph_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

}  // namespace gcsm
