// Crash durability for the streaming pipeline: WAL + snapshots + recovery
// (docs/ROBUSTNESS.md, "Durability & recovery").
//
// Commit protocol, per batch (batch-granular exactly-once):
//   1. begin_batch  — the sanitized batch is appended to the WAL as a
//      kBatch record and fsynced BEFORE the graph is touched;
//   2. the pipeline applies and matches the batch (its own transactional
//      rollback handles in-flight failures);
//   3. commit_batch — a kCommit marker carrying the cumulative durable
//      counters is appended and fsynced AFTER the report is produced;
//   4. maybe_snapshot — every snapshot_interval commits, a full graph
//      snapshot is written atomically and the WAL prefix is compacted
//      (truncated to zero: every logged record is now covered).
//
// Recovery (recover()): load the latest valid snapshot, truncate any torn
// or corrupt WAL tail (warning, not a crash), then hand back the COMMITTED
// batch records with seq beyond the snapshot for deterministic replay.
// Batch records without a commit marker are dropped — their effects never
// made it into a report, so the client re-submits them (it resumes from
// `counters.batches_committed`). The last commit marker's counters are the
// integrity check: replay must reproduce them exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/snapshot.hpp"
#include "util/wal.hpp"

namespace gcsm {

class FaultInjector;

struct DurabilityOptions {
  // Directory for gcsm.wal and graph.snap. Empty = durability disabled.
  std::string wal_dir;
  // Snapshot + compact the WAL every N committed batches (0 = never).
  std::uint64_t snapshot_interval = 8;
  // Recover from wal_dir at pipeline construction. Off = start fresh (any
  // existing WAL is truncated so stale records cannot replay later).
  bool recover_on_start = true;
  // fsync on commit boundaries. Off skips the syscall (tests) but keeps the
  // protocol and fault sites identical.
  bool fsync = true;
  // Bounded internal retries for transient WAL/snapshot write faults.
  int max_write_attempts = 3;
  // Group commit (pipelined schedule only): commit markers handed to
  // enqueue_commit are fsynced by a dedicated committer thread that
  // coalesces up to this many batches per fsync. The synchronous
  // commit_batch path ignores it. 1 = one fsync per commit (no coalescing,
  // still asynchronous).
  std::uint64_t group_commit_batches = 1;

  bool enabled() const { return !wal_dir.empty(); }
};

// One batch's durable-commit work, handed to the group-commit committer
// thread: any server-state transition payloads for this batch (appended
// BEFORE the marker, preserving the serial record order) plus the commit
// marker's counters.
struct CommitUnit {
  std::uint64_t seq = 0;
  durable::DurableCounters counters;
  std::vector<std::string> server_states;
};

// What recover() found; the pipeline restores `graph` (if loaded) and
// replays `replay` in order.
struct RecoveredState {
  bool snapshot_loaded = false;
  DynamicGraph::Snapshot graph;        // valid when snapshot_loaded
  durable::DurableCounters counters;   // as of the snapshot (zero if none)

  // Committed batches beyond the snapshot, ascending seq.
  std::vector<std::pair<std::uint64_t, EdgeBatch>> replay;
  // Counters from the last commit marker — what replay must reproduce.
  durable::DurableCounters expected;
  bool have_expected = false;

  // kServerState payloads in log order (multi-query health transitions;
  // see server/query_health.hpp). A trailing state record without a
  // following commit marker is still included: the transition itself was
  // durable even if the batch that carried it never committed.
  std::vector<std::pair<std::uint64_t, std::string>> server_states;

  // Sequence numbers the admission layer shed under overload (kShed audit
  // records, ascending log order). Never replayed, never counted as dropped:
  // the gap in the committed stream is explained, not anomalous
  // (docs/ROBUSTNESS.md, "Overload & admission control").
  std::vector<std::uint64_t> shed_seqs;

  std::size_t dropped_uncommitted = 0;  // logged but never committed
  bool wal_tail_truncated = false;
  std::string warning;  // accumulated recovery warnings (also on stderr)
};

class DurabilityManager {
 public:
  // Creates wal_dir if needed. The injector is non-owning (nullptr =
  // disarmed) and must outlive the manager.
  DurabilityManager(DurabilityOptions options, FaultInjector* faults);
  // Stops and joins the committer thread. Units still queued are DISCARDED
  // (never swallowed silently into the log): destruction without a prior
  // drain() is crash-equivalent, and recovery re-exposes the uncommitted
  // tail exactly as it would after a real kill.
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  const DurabilityOptions& options() const { return options_; }
  const std::string& wal_path() const { return wal_path_; }
  const std::string& snapshot_path() const { return snapshot_path_; }

  // Reads the snapshot and the WAL, repairs a damaged tail, and returns the
  // state to restore + replay. Call once, before the first begin_batch.
  // When recover_on_start is off, discards any existing WAL instead.
  RecoveredState recover();

  // Step 1: durably logs the batch under the next sequence number (returned)
  // before the pipeline touches the graph. Transient write faults retry up
  // to max_write_attempts; CrashError always escapes.
  std::uint64_t begin_batch(const EdgeBatch& batch);

  // Step 3: durably logs the commit marker for `seq`.
  void commit_batch(std::uint64_t seq,
                    const durable::DurableCounters& counters);

  // Group commit (docs/ROBUSTNESS.md, "Group commit"): hands one batch's
  // commit work to the committer thread and returns immediately. The
  // committer appends the unit's server-state records, then its commit
  // marker, coalescing up to group_commit_batches units per fsync. The
  // batch is durable — and its report may be surfaced — only once
  // durable_seq() reaches its seq. A committer failure is sticky: it is
  // rethrown (CrashError included) from the next wait_durable()/drain().
  // The committer thread starts lazily on the first enqueue.
  void enqueue_commit(CommitUnit unit);

  // Highest seq whose commit marker has durably landed via the committer.
  std::uint64_t durable_seq() const;

  // Blocks until durable_seq() >= seq or the committer failed (rethrows).
  void wait_durable(std::uint64_t seq);

  // Blocks until every enqueued unit is durable; rethrows a committer
  // failure. MUST be called before snapshot_now/maybe_snapshot or any
  // direct read of the WAL file while group commit is in flight: compaction
  // truncates the whole log, which is only sound once every queued marker
  // has landed. No-op when the committer was never started.
  void drain();

  // Durably logs a kShed audit record (admission control dropped a batch
  // under overload) and returns the sequence number it consumed. The seq is
  // allocated from the SAME space as begin_batch so every gap in the
  // committed stream has a durable explanation; the record is never
  // replayed and never advances the aggregate counters. Engine-thread only
  // (shares next_seq_ with begin_batch, which has no extra synchronization).
  // Same retry contract as begin_batch.
  std::uint64_t log_shed(const std::string& payload);

  // Durably logs a kServerState record (multi-query health transition)
  // under `seq` — the wal_seq of the batch the transition belongs to.
  // Appended BEFORE that batch's commit marker so recovery sees the
  // transition when (and only when) it was made durable. Same retry
  // contract as begin_batch.
  void log_server_state(std::uint64_t seq, const std::string& payload);

  // Step 4: snapshot + compact when the interval has elapsed. A CrashError
  // escapes (the process is "dead"); any other failure is swallowed with a
  // warning — the WAL still covers everything, so correctness is intact.
  // Returns true when a snapshot was actually written (the caller may need
  // to refresh snapshot-relative baselines).
  bool maybe_snapshot(const DynamicGraph& graph,
                      const durable::DurableCounters& counters);

  // Forces the snapshot + WAL compaction regardless of the interval. Same
  // failure contract as maybe_snapshot; returns false when the snapshot was
  // skipped after exhausting retries (the WAL remains authoritative). Used
  // by the multi-query engine when the query registry changes: batches
  // committed under the old registry must never replay into the new one.
  bool snapshot_now(const DynamicGraph& graph,
                    const durable::DurableCounters& counters);

  std::uint64_t next_seq() const { return next_seq_; }
  // Commits since the last snapshot — lets the multi-query engine tell when
  // a deferred maybe_snapshot would actually have fired (snapshot deferral
  // while catch-up debt is outstanding; docs/ROBUSTNESS.md).
  std::uint64_t commits_since_snapshot() const {
    return commits_since_snapshot_;
  }

 private:
  void ensure_writer();
  // Append + fsync with bounded retries for transient faults. `written`
  // tracking ensures a failed fsync retry does not duplicate the record.
  void append_and_sync(wal::RecordType type, std::uint64_t seq,
                       const std::string& payload);
  // The two halves separately, for the committer's one-fsync-per-group
  // schedule: bounded retries per step, CrashError always escapes.
  void append_with_retry(wal::RecordType type, std::uint64_t seq,
                         const std::string& payload);
  void sync_with_retry();
  void committer_loop();

  DurabilityOptions options_;
  std::string wal_path_;
  std::string snapshot_path_;
  FaultInjector* faults_;
  std::unique_ptr<wal::Writer> writer_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t commits_since_snapshot_ = 0;

  // Group-commit state. commit_mu_ guards the queue, durable_seq_, the
  // stored failure, and the stop flag; commit_cv_ wakes the committer,
  // durable_cv_ wakes waiters in wait_durable/drain.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::condition_variable durable_cv_;
  std::deque<CommitUnit> commit_queue_;
  std::uint64_t durable_seq_ = 0;
  std::uint64_t enqueued_seq_ = 0;
  std::exception_ptr committer_error_;
  bool committer_stop_ = false;
  std::thread committer_;
};

}  // namespace gcsm
