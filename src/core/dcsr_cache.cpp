#include "core/dcsr_cache.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace gcsm {

void DcsrCache::build(const DynamicGraph& graph,
                      const std::vector<VertexId>& vertices,
                      std::uint64_t byte_budget, gpusim::Device& device,
                      gpusim::TrafficCounters& counters) {
  clear();
  build_into(active_, graph, vertices, byte_budget, device, counters);
}

void DcsrCache::build_staged(const DynamicGraph& graph,
                             const std::vector<VertexId>& vertices,
                             std::uint64_t byte_budget, gpusim::Device& device,
                             gpusim::TrafficCounters& counters) {
  staged_.reset();
  staged_valid_ = false;
  // The staged build gets the FULL budget: the previous epoch's last
  // consumer (the prior batch's match fan-out) has already completed by the
  // time the pack phase runs, so the old blob is garbage awaiting the swap.
  // Charging it against the new epoch starves alternate batches to an empty
  // cache whenever one epoch fills the budget. The allocate-then-swap
  // transient does double-occupy the device by up to one epoch until
  // publish() frees the old blob — steady-state residency stays within
  // budget, and the OOM ladder still governs genuine device exhaustion.
  build_into(staged_, graph, vertices, byte_budget, device, counters);
  staged_valid_ = true;
}

void DcsrCache::publish() {
  if (!staged_valid_) return;
  active_ = std::move(staged_);
  staged_.reset();
  staged_valid_ = false;
}

void DcsrCache::discard_staged() {
  staged_.reset();
  staged_valid_ = false;
}

void DcsrCache::build_into(Slot& slot, const DynamicGraph& graph,
                           const std::vector<VertexId>& vertices,
                           std::uint64_t byte_budget, gpusim::Device& device,
                           gpusim::TrafficCounters& counters) {
  static auto& m_builds = metrics::Registry::global().counter(metric::kCacheBuilds);
  static auto& m_failures =
      metrics::Registry::global().counter(metric::kCacheBuildFailures);
  static auto& m_vertices =
      metrics::Registry::global().counter(metric::kCacheBuiltVertices);
  static auto& m_bytes =
      metrics::Registry::global().counter(metric::kCacheBuiltBytes);
  static auto& m_blob_gauge =
      metrics::Registry::global().gauge(metric::kCacheBlobBytes);
  // The span shares the canonical fault-site name so a trace of a faulted
  // run lines up with the injector's observations (and so gcsm_lint has a
  // single spelling to hold the tree to).
  const trace::Span span(fault_site::kCacheBuild);

  if (FaultInjector* faults = device.fault_injector();
      faults != nullptr && faults->fires(fault_site::kCacheBuild)) {
    m_failures.add();
    throw Error(ErrorCode::kCacheBuild,
                "injected fault: DCSR cache build aborted (transient)");
  }

  // Respect the byte budget in the caller's priority order, then sort the
  // survivors so rowidx is binary-searchable.
  std::vector<VertexId> selected;
  selected.reserve(vertices.size());
  std::uint64_t colidx_bytes = 0;
  for (const VertexId v : vertices) {
    const std::uint64_t lb = graph.list_bytes(v);
    const std::uint64_t row_overhead = sizeof(VertexId) + sizeof(RowPtr);
    if (colidx_bytes + lb +
            (selected.size() + 2) * row_overhead >
        byte_budget) {
      continue;
    }
    selected.push_back(v);
    colidx_bytes += lb;
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  // An empty hot set (every update quarantined, or a budget too small for a
  // single row) leaves the slot cleared instead of packing a sentinel-only
  // blob: validate() pins "no rows" to "no arrays, no blob".
  if (selected.empty()) {
    slot.reset();
    m_builds.add();
    m_blob_gauge.set(0.0);
    return;
  }

  // Everything below works on locals; the slot is assigned only once the
  // allocation and the DMA have both succeeded, so a throw from either
  // leaves it in its cleared (valid, empty) state.
  const auto row_count = static_cast<std::uint32_t>(selected.size());
  const std::uint64_t rowptr_bytes =
      (static_cast<std::uint64_t>(row_count) + 1) * sizeof(RowPtr);
  const std::uint64_t rowidx_bytes =
      static_cast<std::uint64_t>(row_count) * sizeof(VertexId);
  // Recompute colidx_bytes over the deduplicated set.
  colidx_bytes = 0;
  for (const VertexId v : selected) colidx_bytes += graph.list_bytes(v);
  const std::uint64_t blob_bytes = rowptr_bytes + rowidx_bytes + colidx_bytes;

  // Host staging buffer: one allocation, then one DMA (paper Sec. V-B).
  std::vector<std::byte> staging(blob_bytes);
  auto* rowptr = reinterpret_cast<RowPtr*>(staging.data());
  auto* rowidx = reinterpret_cast<VertexId*>(staging.data() + rowptr_bytes);
  auto* colidx = reinterpret_cast<VertexId*>(staging.data() + rowptr_bytes +
                                             rowidx_bytes);

  std::int64_t cursor = 0;
  for (std::uint32_t i = 0; i < row_count; ++i) {
    const VertexId v = selected[i];
    rowidx[i] = v;
    const NeighborView view = graph.view(v, ViewMode::kNew);
    rowptr[i].begin = cursor;
    rowptr[i].new_begin =
        view.appended.size > 0 ? cursor + view.prefix.size : -1;
    std::memcpy(colidx + cursor, view.prefix.data,
                view.prefix.size * sizeof(VertexId));
    cursor += view.prefix.size;
    std::memcpy(colidx + cursor, view.appended.data,
                view.appended.size * sizeof(VertexId));
    cursor += view.appended.size;
  }
  rowptr[row_count].begin = cursor;  // sentinel: length of colidx
  rowptr[row_count].new_begin = -1;

  // alloc / DMA throw on (injected) device failure; count those as build
  // failures too so the metric mirrors every aborted pack.
  gpusim::DeviceBuffer blob;
  try {
    blob = device.alloc(blob_bytes);
    device.dma_to_device(blob, staging.data(), blob_bytes, counters);
  } catch (...) {
    m_failures.add();
    throw;
  }

  m_builds.add();
  m_vertices.add(row_count);
  m_bytes.add(blob_bytes);
  m_blob_gauge.set(static_cast<double>(blob_bytes));

  slot.blob = std::move(blob);
  slot.row_count = row_count;
  slot.blob_bytes = blob_bytes;
  slot.rowptr = reinterpret_cast<const RowPtr*>(slot.blob.data());
  slot.rowidx =
      reinterpret_cast<const VertexId*>(slot.blob.data() + rowptr_bytes);
  slot.colidx = reinterpret_cast<const VertexId*>(slot.blob.data() +
                                                  rowptr_bytes + rowidx_bytes);
}

void DcsrCache::clear() {
  active_.reset();
  staged_.reset();
  staged_valid_ = false;
}

std::optional<NeighborView> DcsrCache::lookup(
    VertexId v, ViewMode mode, std::uint32_t& search_steps) const {
  const Slot& s = active_;
  search_steps = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = s.row_count;
  while (lo < hi) {
    ++search_steps;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (s.rowidx[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= s.row_count || s.rowidx[lo] != v) return std::nullopt;

  const std::int64_t begin = s.rowptr[lo].begin;
  const std::int64_t new_begin = s.rowptr[lo].new_begin;
  const std::int64_t end = s.rowptr[lo + 1].begin;
  const std::int64_t prefix_end = new_begin < 0 ? end : new_begin;
  GCSM_ASSERT(begin <= prefix_end && prefix_end <= end,
              "DCSR row offsets out of order");

  NeighborView view;
  view.mode = mode;
  view.prefix = {s.colidx + begin,
                 static_cast<std::uint32_t>(prefix_end - begin)};
  if (mode == ViewMode::kNew && new_begin >= 0) {
    view.appended = {s.colidx + new_begin,
                     static_cast<std::uint32_t>(end - new_begin)};
  }
  return view;
}

void DcsrCache::validate(const DynamicGraph* graph) const {
  const Slot& s = active_;
  if (s.row_count == 0) {
    GCSM_CHECK(s.rowidx == nullptr && s.rowptr == nullptr &&
                   s.colidx == nullptr,
               "empty cache holds dangling array pointers");
    GCSM_CHECK(s.blob_bytes == 0, "empty cache reports a non-zero blob");
    return;
  }

  GCSM_CHECK(s.blob.valid(), "cache rows without a device blob");
  const std::uint64_t rowptr_bytes =
      (static_cast<std::uint64_t>(s.row_count) + 1) * sizeof(RowPtr);
  const std::uint64_t rowidx_bytes =
      static_cast<std::uint64_t>(s.row_count) * sizeof(VertexId);
  GCSM_CHECK(s.blob_bytes == s.blob.size(),
             "blob byte counter disagrees with the device buffer");
  GCSM_CHECK(s.blob_bytes >= rowptr_bytes + rowidx_bytes,
             "blob smaller than its own header arrays");
  const auto colidx_len = static_cast<std::int64_t>(
      (s.blob_bytes - rowptr_bytes - rowidx_bytes) / sizeof(VertexId));

  // The three arrays must tile the blob in rowptr / rowidx / colidx order.
  const auto* base = s.blob.data();
  GCSM_CHECK(reinterpret_cast<const std::byte*>(s.rowptr) == base,
             "rowptr does not start the blob");
  GCSM_CHECK(reinterpret_cast<const std::byte*>(s.rowidx) ==
                 base + rowptr_bytes,
             "rowidx not contiguous after rowptr");
  GCSM_CHECK(reinterpret_cast<const std::byte*>(s.colidx) ==
                 base + rowptr_bytes + rowidx_bytes,
             "colidx not contiguous after rowidx");

  GCSM_CHECK(s.rowptr[0].begin == 0, "first row does not start at offset 0");
  GCSM_CHECK(s.rowptr[s.row_count].begin == colidx_len,
             "rowptr sentinel does not equal the colidx length");
  GCSM_CHECK(s.rowptr[s.row_count].new_begin == -1,
             "rowptr sentinel carries an appended offset");

  for (std::uint32_t i = 0; i < s.row_count; ++i) {
    const std::string ctx = "cached row " + std::to_string(i);
    if (i > 0) {
      GCSM_CHECK(s.rowidx[i - 1] < s.rowidx[i],
                 ctx + ": rowidx not strictly ascending");
    }
    const std::int64_t begin = s.rowptr[i].begin;
    const std::int64_t end = s.rowptr[i + 1].begin;
    const std::int64_t new_begin = s.rowptr[i].new_begin;
    GCSM_CHECK(begin <= end, ctx + ": row offsets not monotone");
    GCSM_CHECK(begin >= 0 && end <= colidx_len,
               ctx + ": row offsets outside the colidx extent");
    const std::int64_t prefix_end = new_begin < 0 ? end : new_begin;
    if (new_begin >= 0) {
      GCSM_CHECK(begin <= new_begin && new_begin <= end,
                 ctx + ": appended offset outside the row");
      // A non-negative new_begin promises appended entries exist.
      GCSM_CHECK(new_begin < end, ctx + ": appended offset marks an empty run");
    }
    // Prefix sorted by decoded id, appended run sorted and live — the same
    // layout DynamicGraph::validate() enforces on the source lists.
    for (std::int64_t j = begin + 1; j < prefix_end; ++j) {
      GCSM_CHECK(
          decode_neighbor(s.colidx[j - 1]) < decode_neighbor(s.colidx[j]),
          ctx + ": prefix not strictly sorted by decoded id");
    }
    for (std::int64_t j = prefix_end; j < end; ++j) {
      GCSM_CHECK(!is_deleted_neighbor(s.colidx[j]),
                 ctx + ": tombstone in appended run");
      if (j > prefix_end) {
        GCSM_CHECK(s.colidx[j - 1] < s.colidx[j],
                   ctx + ": appended run not strictly sorted");
      }
    }

    if (graph != nullptr) {
      const VertexId v = s.rowidx[i];
      GCSM_CHECK(v >= 0 && v < graph->num_vertices(),
                 ctx + ": cached vertex not in the graph");
      const NeighborView src = graph->view(v, ViewMode::kNew);
      GCSM_CHECK(static_cast<std::int64_t>(src.prefix.size) ==
                     prefix_end - begin,
                 ctx + ": cached prefix length differs from the graph");
      GCSM_CHECK(static_cast<std::int64_t>(src.appended.size) ==
                     end - prefix_end,
                 ctx + ": cached appended length differs from the graph");
      GCSM_CHECK(std::memcmp(s.colidx + begin, src.prefix.data,
                             src.prefix.size * sizeof(VertexId)) == 0,
                 ctx + ": cached prefix is not a verbatim copy");
      GCSM_CHECK(std::memcmp(s.colidx + prefix_end, src.appended.data,
                             src.appended.size * sizeof(VertexId)) == 0,
                 ctx + ": cached appended run is not a verbatim copy");
    }
  }
}

}  // namespace gcsm
