// Named dataset analogs for the paper's Table I, scaled to this machine.
//
// Each workload names a paper dataset and builds a synthetic graph with the
// same structural regime (see generators.hpp and DESIGN.md §2). `scale`
// multiplies the vertex count (1.0 = the benchmark default size); every
// bench prints the realized |V|/|E|/max-degree next to its results so runs
// are self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/update_stream.hpp"

namespace gcsm {

struct WorkloadSpec {
  std::string name;          // paper dataset it stands in for
  std::string generator;     // "ba", "rmat", or "road"
  std::string paper_size;    // the original's |V|/|E| for the logs
};

// Names: AZ, PA, CA, LJ, FR, SF3K, SF10K (paper Table I).
const std::vector<WorkloadSpec>& workload_specs();

// Builds the analog graph. Throws on unknown name.
CsrGraph make_workload_graph(const std::string& name, double scale,
                             std::uint32_t num_labels, std::uint64_t seed);

// The paper's update-stream settings for this dataset (Sec. VI-A): large
// graphs pool 12*8192 random edges; small graphs pool 10% of edges.
UpdateStreamOptions default_stream_options(const std::string& name,
                                           std::size_t batch_size,
                                           std::uint64_t seed);

}  // namespace gcsm
