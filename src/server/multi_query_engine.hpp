// Multi-query serving engine: one dynamic graph, one (simulated) device,
// one DCSR cache — many standing queries (docs/MULTI_QUERY.md).
//
// The single-query Pipeline runs the paper's five phases per batch for one
// pattern. A production deployment serves many concurrent subscriptions over
// the same stream, and three of the five phases are query-independent or
// shareable:
//
//   shared, once per batch            per registered query
//   ------------------------------    ---------------------------------
//   1. apply ΔE_k to the graph        4. incremental delta-match, fanned
//   2. ONE frequency estimation          out on a util::ThreadPool (each
//      (per-query walk estimates         query owns its executor, metrics
//      combined by weight)               scope "q<id>.", optional sink)
//   3. ONE DCSR pack + DMA under
//      the shared budget
//   5. reorganize touched lists
//
// Cache arbitration: per-query estimates are weight-normalized and summed
// into one frequency vector; select_by_frequency orders the combined vector
// and the one cache build packs greedily under the shared budget, so the
// existing OOM degradation ladder (halve budget, heal on clean streaks)
// arbitrates budget across ALL queries at once. Because a cache miss falls
// back to zero-copy, cache content never changes match counts — per-query
// counts are bit-identical to N independent single-query Pipelines
// (tests/multi_query_test.cpp proves it, with and without injected faults).
//
// Recovery composes with the existing ladder: shared-phase failures roll
// the graph back and retry (device OOM shrinks the shared budget; exhausted
// retries drop the cache and serve zero-copy); per-query match failures
// retry and CPU-fall-back for that query alone. Durability logs each batch
// ONCE, commits the aggregate counters, and persists the registry next to
// the WAL — a registry change forces a snapshot + WAL compaction so batches
// committed under the old query set can never replay into the new one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/durability.hpp"
#include "core/frequency_estimator.hpp"
#include "core/phases.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "server/query_registry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace gcsm::server {

struct MultiQueryOptions {
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // Shared device cache budget arbitrated across every registered query.
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // simulated blocks / host threads per query
  std::size_t grain = 2;
  gpusim::Schedule schedule = gpusim::Schedule::kWorkStealing;
  std::uint64_t seed = 7;
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
  RecoveryOptions recovery;
  // One WAL for the whole engine; the registry is persisted beside it.
  DurabilityOptions durability;
  FaultInjector* fault_injector = nullptr;
  // Scope of the SHARED phases' metrics/traces. Per-query series live under
  // metric_prefix + "q<id>." (e.g. "q3.pipeline.match_ms" with the default
  // empty prefix).
  std::string metric_prefix;
  // Host threads fanning the match phase out across queries (0 = auto).
  // Each query's match additionally uses its own executor with `workers`
  // simulated blocks.
  std::size_t match_parallelism = 0;
};

struct QueryReport {
  QueryId id = 0;
  std::string name;
  // stats / match times / traffic / retries / cpu_fallback are per query;
  // shared-phase fields stay zero here.
  BatchReport report;
};

struct ServerBatchReport {
  // Shared-phase attribution: update/estimate/pack/reorg times, pack
  // traffic, quarantine, WAL seq, shared retries and the degradation state.
  // stats is the AGGREGATE across queries (what the commit marker records);
  // walks is the total across per-query estimates.
  BatchReport shared;
  // Registration order (ascending QueryId).
  std::vector<QueryReport> queries;
  // The shared ladder's terminal degradation fired: this batch was served
  // zero-copy with no cache build.
  bool cache_dropped = false;
};

class MultiQueryEngine {
 public:
  // With durability enabled and recover_on_start set, the constructor
  // restores the registry image, then the graph snapshot, then replays
  // committed WAL batches through the restored query set (sinks are not yet
  // attached, so no subscriber callback fires twice). The same integrity
  // gate as Pipeline applies: replay must reproduce the committed aggregate
  // counters exactly or Error(kRecovery) is thrown.
  MultiQueryEngine(const CsrGraph& initial, MultiQueryOptions options);

  // Registers a standing query. `sink` (optional) receives this query's
  // embeddings; `weight` is its share in cache arbitration. With durability
  // on, the change is persisted before returning (forcing a snapshot + WAL
  // compaction when batches were committed since the last one).
  QueryId register_query(QueryGraph query, MatchSink sink = {},
                         double weight = 1.0);
  // Unregisters; false when unknown. Durable like register_query.
  bool unregister_query(QueryId id);
  // (Re-)attaches a subscriber callback, e.g. after recovery restored the
  // registry sink-less. Pass {} to detach.
  void attach_sink(QueryId id, MatchSink sink);

  const QueryRegistry& registry() const { return registry_; }

  // One update batch through all five phases; throws Error(kConfig) when no
  // query is registered. Not thread-safe: one batch in flight at a time
  // (the engine parallelizes internally).
  ServerBatchReport process_batch(const EdgeBatch& batch);

  // Full static embedding count of the current graph for one registered
  // query (diagnostic; fault injection suspended).
  std::uint64_t count_current_embeddings(QueryId id);

  const DynamicGraph& graph() const { return graph_; }
  gpusim::Device& device() { return device_; }
  const MultiQueryOptions& options() const { return options_; }
  std::uint64_t effective_cache_budget() const;
  std::uint32_t degradation_level() const { return degradation_level_; }
  const durable::DurableCounters& cumulative() const { return cumulative_; }
  const RecoveredState& recovery_info() const { return recovery_info_; }
  const std::string& registry_path() const { return registry_path_; }

 private:
  // Everything one standing query owns: its own executor (so matches fan
  // out without sharing a pool), estimator, RNG stream, metric scope, and
  // optional sink.
  struct QueryState {
    QueryId id = 0;
    double weight = 1.0;
    std::unique_ptr<gpusim::SimtExecutor> executor;
    std::unique_ptr<MatchEngine> engine;
    std::unique_ptr<FrequencyEstimator> estimator;
    std::unique_ptr<UnifiedMemoryPolicy> um_policy;  // kUnifiedMemory only
    std::unique_ptr<PipelineMetrics> metrics;        // "q<id>." scope
    Rng rng;
    MatchSink sink;
  };

  std::unique_ptr<QueryState> make_state(const RegisteredQuery& entry);
  QueryState* state_for(QueryId id);
  // Persists the registry image; with committed batches outstanding, forces
  // the snapshot + compaction first. Throws on failure (the in-memory
  // mutation is rolled back by the caller).
  void persist_registry();
  // Phases 1-3 (one transactional attempt). `drop_cache` skips estimate +
  // pack: the terminal degradation of the shared ladder.
  void run_shared_attempt(const EdgeBatch& batch, bool drop_cache,
                          BatchReport& shared);
  // Phase 4 for one query, with the per-query retry/CPU-fallback ladder.
  void match_one(QueryState& qs, const EdgeBatch& batch, BatchReport& qr);

  MultiQueryOptions options_;
  DynamicGraph graph_;
  gpusim::Device device_;
  DcsrCache cache_;
  FaultInjector* faults_ = nullptr;
  DurabilityManager durability_;
  PipelineMetrics metrics_;  // shared-phase scope
  QueryRegistry registry_;
  std::string registry_path_;  // empty when durability is off
  std::vector<std::unique_ptr<QueryState>> states_;  // registration order
  ThreadPool match_pool_;
  Rng seed_root_;  // split per QueryId for deterministic per-query streams
  durable::DurableCounters cumulative_;
  RecoveredState recovery_info_;
  bool replaying_ = false;
  std::uint32_t degradation_level_ = 0;
  int clean_device_batches_ = 0;
};

}  // namespace gcsm::server
