// Multi-query serving engine: one dynamic graph, one (simulated) device,
// one DCSR cache — many standing queries (docs/MULTI_QUERY.md).
//
// The single-query Pipeline runs the paper's five phases per batch for one
// pattern. A production deployment serves many concurrent subscriptions over
// the same stream, and three of the five phases are query-independent or
// shareable:
//
//   shared, once per batch            per registered query
//   ------------------------------    ---------------------------------
//   1. apply ΔE_k to the graph        4. incremental delta-match, fanned
//   2. ONE frequency estimation          out on a util::ThreadPool (each
//      (per-query walk estimates         query owns its executor, metrics
//      combined by weight)               scope "q<id>.", optional sink)
//   3. ONE DCSR pack + DMA under
//      the shared budget
//   5. reorganize touched lists
//
// Cache arbitration: per-query estimates are weight-normalized and summed
// into one frequency vector; select_by_frequency orders the combined vector
// and the one cache build packs greedily under the shared budget, so the
// existing OOM degradation ladder (halve budget, heal on clean streaks)
// arbitrates budget across ALL queries at once. Because a cache miss falls
// back to zero-copy, cache content never changes match counts — per-query
// counts are bit-identical to N independent single-query Pipelines
// (tests/multi_query_test.cpp proves it, with and without injected faults).
//
// Tenant isolation (docs/ROBUSTNESS.md, "Tenant isolation & circuit
// breaker"): every query carries a QueryHealth state machine. A query that
// exhausts its whole per-query retry ladder (or blows the optional match
// deadline) on `breaker.trip_after_failures` consecutive batches trips to
// Quarantined: it is skipped in the phase-4 fan-out and the batch COMMITS
// for the healthy tenants instead of failing as a unit. A quarantined
// query's WAL position freezes; after `cooldown_batches` committed batches
// it half-open probes (results discarded), and a passing probe re-admits it
// through exact catch-up: the latest snapshot is restored into a shadow
// DynamicGraph and the query's missed committed batches are replayed
// match-only (sink delivery included) before atomic re-admission. Snapshot
// compaction is deferred while any query owes such catch-up debt; once the
// debt exceeds `max_debt_batches` (or durability is off) re-join falls back
// to a full static recount re-baseline instead.
//
// Recovery composes with the existing ladder: shared-phase failures roll
// the graph back and retry (device OOM shrinks the shared budget; exhausted
// retries drop the cache and serve zero-copy); per-query match failures
// retry and CPU-fall-back for that query alone. Durability logs each batch
// ONCE; health transitions ride the WAL as kServerState records sequenced
// against the batch stream, and the registry image (per-query health +
// counters + an aggregate anchor) is rewritten after every commit so
// recovery can restart per-query bookkeeping from the last image and replay
// only the suffix (batches at or below the anchor replay graph-only).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/durability.hpp"
#include "core/frequency_estimator.hpp"
#include "core/phases.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "server/query_registry.hpp"
#include "util/check.hpp"
#include "util/parking.hpp"
#include "util/thread_pool.hpp"

namespace gcsm::server {

struct MultiQueryOptions {
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // Shared device cache budget arbitrated across every registered query.
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // simulated blocks / host threads per query
  std::size_t grain = 2;
  gpusim::Schedule schedule = gpusim::Schedule::kWorkStealing;
  std::uint64_t seed = 7;
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
  RecoveryOptions recovery;
  // One WAL for the whole engine; the registry is persisted beside it.
  DurabilityOptions durability;
  // Per-query circuit breaker (server/query_health.hpp). `enabled` gates
  // TRIPPING only — probe/re-join machinery always runs, so a registry
  // recovered with quarantined queries heals even under breaker.enabled =
  // false.
  BreakerOptions breaker;
  FaultInjector* fault_injector = nullptr;
  // Scope of the SHARED phases' metrics/traces. Per-query series live under
  // metric_prefix + "q<id>." (e.g. "q3.pipeline.match_ms" with the default
  // empty prefix).
  std::string metric_prefix;
  // Host threads fanning the match phase out across queries (0 = auto).
  // Each query's match additionally uses its own executor with `workers`
  // simulated blocks.
  std::size_t match_parallelism = 0;
};

struct QueryReport {
  QueryId id = 0;
  std::string name;
  // stats / match times / traffic / retries / cpu_fallback are per query;
  // shared-phase fields stay zero here. Skipped / probed / tripped reports
  // carry ZERO stats (the aggregate is always the sum of the per-query
  // stats below).
  BatchReport report;
  // Breaker activity for this query on this batch.
  bool skipped = false;      // quarantined: no match ran
  bool probed = false;       // half-open probe ran (results discarded)
  bool tripped = false;      // this batch tripped the query to quarantine
  bool rejoined = false;     // re-admitted (stats are its batch delta again)
  bool rebaselined = false;  // re-join used the full static recount path
};

struct ServerBatchReport {
  // Shared-phase attribution: update/estimate/pack/reorg times, pack
  // traffic, quarantine, WAL seq, shared retries and the degradation state.
  // stats is the AGGREGATE across queries (what the commit marker records);
  // walks is the total across per-query estimates.
  BatchReport shared;
  // Registration order (ascending QueryId).
  std::vector<QueryReport> queries;
  // The shared ladder's terminal degradation fired: this batch was served
  // zero-copy with no cache build.
  bool cache_dropped = false;
};

// Receives each batch's report from process_stream once its commit is
// durable (immediately, when durability is off).
using BatchReportSink = std::function<void(ServerBatchReport&&)>;

class MultiQueryEngine {
 public:
  // With durability enabled and recover_on_start set, the constructor
  // restores the registry image, then the graph snapshot, then replays
  // committed WAL batches through the restored query set (sinks are not yet
  // attached, so no subscriber callback fires twice). Replay anchors the
  // aggregate counters at the newer of {registry-image anchor, snapshot
  // counters}: batches at or below the anchor replay graph-only (update +
  // reorg, no matching), the rest replay fully with per-query participation
  // decided by each query's recovered health and position, applying WAL
  // health-transition records in log order (only those with a revision
  // newer than the image's). The same integrity gate as Pipeline applies:
  // replay must reproduce the committed aggregate counters exactly or
  // Error(kRecovery) is thrown.
  MultiQueryEngine(const CsrGraph& initial, MultiQueryOptions options);

  // Registers a standing query. `sink` (optional) receives this query's
  // embeddings; `weight` is its share in cache arbitration. With durability
  // on, the change is persisted before returning. When batches were
  // committed since the last snapshot, the change forces a snapshot + WAL
  // compaction — unless a quarantined query still owes exact catch-up debt,
  // in which case the compaction is deferred until the first debt-free
  // commit (the image's per-query positions keep replay correct meanwhile).
  QueryId register_query(QueryGraph query, MatchSink sink = {},
                         double weight = 1.0);
  // Unregisters; false when unknown. Durable like register_query. Legal on
  // a quarantined id (its debt is simply forgotten).
  bool unregister_query(QueryId id);
  // (Re-)attaches a subscriber callback, e.g. after recovery restored the
  // registry sink-less. Pass {} to detach. Legal on a quarantined id — the
  // sink starts firing once the query re-joins.
  void attach_sink(QueryId id, MatchSink sink);

  const QueryRegistry& registry() const { return registry_; }
  // Current breaker state of one registered query; throws Error(kConfig)
  // for an unknown id.
  const QueryHealth& query_health(QueryId id) const;

  // One update batch through all five phases; throws Error(kConfig) when no
  // query is registered. Not thread-safe: one batch in flight at a time
  // (the engine parallelizes internally).
  ServerBatchReport process_batch(const EdgeBatch& batch);

  // Pipelined batch loop (docs/MULTI_QUERY.md, "Pipelined schedule"): batch
  // t+1's CPU-side front half — corruption screening, WAL batch append, and
  // the frequency estimation — is staged on the match pool while batch t's
  // fan-out is in flight, the DCSR pack goes through the cache's staged
  // epoch (published only when the previous epoch retires), and commit
  // markers are made durable by the group-commit committer thread
  // (DurabilityOptions::group_commit_batches markers per fsync). Reports
  // are surfaced through `on_batch` — and sink callbacks are flushed — only
  // after their commit durably lands, so a crash never exposes results of a
  // batch recovery would re-expose. Counts are bit-identical to calling
  // process_batch per batch (cache content never changes match counts).
  // On error the failing batch rolls back exactly as in process_batch;
  // reports of earlier batches whose commit already landed are still
  // surfaced, the rest are dropped (re-derivable from the WAL).
  void process_stream(const std::vector<EdgeBatch>& batches,
                      const BatchReportSink& on_batch = {});

  // Full static embedding count of the current graph for one registered
  // query (diagnostic; fault injection suspended).
  std::uint64_t count_current_embeddings(QueryId id);

  // Degradation-ladder walk scale (docs/ROBUSTNESS.md, "Overload &
  // admission control"): the admission controller shrinks it below 1.0
  // under sustained overload, multiplying every per-query walk count in the
  // shared estimate. Count-neutral — cache content never changes match
  // counts. Clamped to (0, 1]. Call between batches (same thread contract
  // as process_batch).
  void set_walk_scale(double scale);
  double walk_scale() const { return walk_scale_; }

  // Durably logs a kShed audit record for a batch the admission layer
  // dropped, consuming the next WAL seq (so the committed stream's seq gap
  // is explained; see DurabilityManager::log_shed). Returns the seq, or 0
  // when durability is off. Engine-thread only, between batches.
  std::uint64_t log_shed_batch(const std::string& payload);

  const DynamicGraph& graph() const { return graph_; }
  gpusim::Device& device() { return device_; }
  const MultiQueryOptions& options() const { return options_; }
  std::uint64_t effective_cache_budget() const;
  std::uint32_t degradation_level() const { return degradation_level_; }
  const durable::DurableCounters& cumulative() const { return cumulative_; }
  const RecoveredState& recovery_info() const { return recovery_info_; }
  const std::string& registry_path() const { return registry_path_; }

 private:
  // Everything one standing query owns: its own executor (so matches fan
  // out without sharing a pool), estimator, RNG stream, metric scope, and
  // optional sink. Breaker bookkeeping that is deliberately NOT durable
  // lives here too: the consecutive-failure streak and the cooldown
  // progress reset on restart (the conservative direction — a restarted
  // engine re-earns a trip).
  struct QueryState {
    QueryId id = 0;
    double weight = 1.0;
    std::unique_ptr<gpusim::SimtExecutor> executor;
    std::unique_ptr<MatchEngine> engine;
    std::unique_ptr<FrequencyEstimator> estimator;
    std::unique_ptr<UnifiedMemoryPolicy> um_policy;  // kUnifiedMemory only
    std::unique_ptr<PipelineMetrics> metrics;        // "q<id>." scope
    Rng rng;
    MatchSink sink;
    std::uint64_t consecutive_failures = 0;
    std::uint64_t cooldown_remaining = 0;
  };

  // What phase 4 does with each query on this batch.
  enum class MatchRole : std::uint8_t {
    kMatch,  // healthy participant (or replay participant)
    kProbe,  // quarantined, cooldown elapsed: half-open probe
    kSkip,   // quarantined (cooldown pending) or replay non-participant
  };

  // Terminal outcome of one query's phase-4 ladder.
  struct MatchOutcome {
    std::exception_ptr error;        // null on success
    bool ladder_exhausted = false;   // error after a full retryable ladder
  };

  // A precomputed shared estimate (phase 2) for one batch — either built
  // inline by run_shared_attempt or staged ahead of time by the pipelined
  // schedule during the previous batch's fan-out.
  struct StagedEstimate {
    bool valid = false;
    std::vector<VertexId> order;
    std::uint64_t walks = 0;
    double sim_estimate_s = 0.0;
    double wall_estimate_ms = 0.0;
  };

  // Per-batch pipelined-schedule context threaded through the batch body by
  // process_stream; null means the serial process_batch semantics. Defined
  // in the .cpp (holds the staged front and the deferred sink buffers).
  struct PipelineCtx;

  std::unique_ptr<QueryState> make_state(const RegisteredQuery& entry);
  QueryState* state_for(QueryId id);
  // The engine's position on the batch stream: the last committed WAL seq,
  // or the committed-batch ordinal when durability is off.
  std::uint64_t current_position() const;
  // Recomputes the breaker gauges (quarantined count, summed debt).
  void refresh_breaker_gauges() const;
  // Persists the registry image; with committed batches outstanding, forces
  // the snapshot + compaction first. A registration (`allow_defer`) defers
  // that compaction while exact catch-up debt is owed — the image's
  // per-query positions keep replay correct meanwhile; an unregistration
  // never defers, because the removed query's contributions are baked into
  // the commit markers and the WAL prefix must be compacted away. Throws on
  // failure (the in-memory mutation is rolled back by the caller).
  void persist_registry(bool allow_defer);
  // Post-commit image rewrite: best-effort. Swallows non-crash failures
  // with a warning and returns false — correctness never depends on image
  // freshness (recovery replays from the last good image), but a snapshot
  // must NOT be written after a failed image write (the image's per-query
  // anchor would fall behind the snapshot's graph). CrashError escapes.
  bool write_registry_image();
  // Any quarantined query still owed an exact (non-overflowed) catch-up —
  // while true, snapshot compaction is deferred so the WAL keeps the debt.
  bool any_exact_catchup_debt() const;
  // Phase 2 alone: the weight-combined per-query frequency estimation (or
  // the baseline orderings) on the CURRENT graph. Pure reads plus per-query
  // estimator/RNG state, so the pipelined schedule may run it on a pool
  // thread while matches are in flight.
  StagedEstimate compute_shared_estimate(const EdgeBatch& batch,
                                         const std::vector<MatchRole>& roles);
  // Phases 1-3 (one transactional attempt). `drop_cache` skips estimate +
  // pack: the terminal degradation of the shared ladder. Only queries whose
  // role is kMatch contribute to (and pay for) the shared estimate. When
  // `staged_est` is valid its order is used instead of re-estimating; with
  // `staged_pack` the build goes through the cache's staged epoch and is
  // published (then validated) before returning.
  void run_shared_attempt(const EdgeBatch& batch, bool drop_cache,
                          const std::vector<MatchRole>& roles,
                          BatchReport& shared,
                          const StagedEstimate* staged_est = nullptr,
                          bool staged_pack = false);
  // One phase-4 attempt for one query (no retry logic). Probes the
  // match.query fault site keyed by the QueryId, then matches and enforces
  // breaker.match_deadline_ms post-hoc.
  void match_attempt(QueryState& qs, const EdgeBatch& batch, bool use_cpu,
                     const MatchSink* sink, BatchReport& qr);
  // Phase-4 fan-out: runs every kMatch/kProbe query through its retry
  // ladder on the match pool. Backoff never holds a pool slot — a retrying
  // query parks in the shared task queue with a ready-at deadline while
  // other queries use the worker (the head-of-line fix).
  // `staging` (pipelined schedule) is the next batch's CPU front half: the
  // first free worker claims and runs it alongside the match tasks (inline
  // when there are no tasks). `sink_override`, when non-null, substitutes
  // per-query sinks (the deferred-delivery buffers).
  void run_match_fanout(const EdgeBatch& batch,
                        const std::vector<MatchRole>& roles,
                        ServerBatchReport& out,
                        std::vector<MatchOutcome>& outcomes,
                        const std::function<void()>& staging = {},
                        const std::vector<MatchSink>* sink_override = nullptr);
  // Exact catch-up for a re-joining query: shadow graph from the latest
  // snapshot (or the initial graph), apply batches up to the frozen
  // position, then apply+match (position, cumulative_.last_seq] with sink
  // delivery. Returns false when the WAL no longer covers the debt (caller
  // falls back to re-baseline). Fault injection suspended throughout.
  // `sink` (may be null) receives the replayed embeddings — the query's own
  // sink on the serial path, the deferred buffer on the pipelined one.
  bool replay_missed_batches(QueryState& qs, const QueryHealth& health,
                             QueryCounters* delta, const MatchSink* sink);

  // The whole batch body shared by process_batch (ctx == nullptr) and
  // process_stream (ctx set: staged ingestion/estimate consumed, pack via
  // the staged cache epoch, transitions + commit routed through the group
  // committer, sinks buffered, and the durable tail deferred to the
  // stream's drain points).
  ServerBatchReport process_batch_inner(const EdgeBatch& batch,
                                        PipelineCtx* ctx);

  MultiQueryOptions options_;
  DynamicGraph graph_;
  gpusim::Device device_;
  DcsrCache cache_;
  FaultInjector* faults_ = nullptr;
  DurabilityManager durability_;
  PipelineMetrics metrics_;  // shared-phase scope
  QueryRegistry registry_;
  std::string registry_path_;  // empty when durability is off
  std::vector<std::unique_ptr<QueryState>> states_;  // registration order
  ThreadPool match_pool_;
  util::ParkingLot parker_;  // interruptible shared-ladder backoff
  Rng seed_root_;  // split per QueryId for deterministic per-query streams
  durable::DurableCounters cumulative_;
  RecoveredState recovery_info_;
  // Pristine copy of the construction-time graph: the shadow-replay base
  // when no snapshot has been written yet. Kept only under durability.
  CsrGraph initial_;
  bool replaying_ = false;
  // Recovery replay position: seq of the batch being replayed, and whether
  // it is at or below the aggregate anchor (graph-only: update + reorg, no
  // matching, no counter advance).
  std::uint64_t replay_seq_ = 0;
  bool replay_graph_only_ = false;
  // A registry change happened while catch-up debt deferred its snapshot;
  // the snapshot fires at the first debt-free commit.
  bool force_snapshot_pending_ = false;
  std::uint32_t degradation_level_ = 0;
  int clean_device_batches_ = 0;
  // Overload degradation: multiplies every per-query walk count in the
  // shared estimate (1.0 = no degradation; see set_walk_scale).
  double walk_scale_ = 1.0;
};

}  // namespace gcsm::server
