// The set of standing query patterns a MultiQueryEngine serves.
//
// Each registration gets a process-stable QueryId (monotonic, never reused
// within one registry lifetime) and a weight used by the cross-query cache
// arbitration: per-query frequency estimates are combined as a
// weight-normalized sum before the single shared top-k cache build, so a
// heavy subscriber can claim a proportionally larger share of the device
// cache budget.
//
// The registry is durable alongside the WAL (docs/MULTI_QUERY.md): encode()
// produces a versioned, CRC-checked byte image ("GQRY") the engine writes
// atomically on every mutation, and decode() restores it at recovery so
// replayed batches run against exactly the query set they were committed
// under. MatchSinks are deliberately NOT part of the durable image — they
// are process-local callbacks a restarted subscriber re-attaches.
//
// Format v2 adds the circuit-breaker state (query_health.hpp): a
// health_revision and an aggregate-counter anchor in the header, plus
// per-entry {state, debt flag, position, trip count, per-query counters}.
// The engine rewrites the image after EVERY committed batch (and on every
// registration change), so the stored counters are normally current; when a
// crash loses the most recent rewrite, recovery anchors at whichever of
// {image aggregate, snapshot counters} is newer and replays committed WAL
// batches forward from the per-query positions — image freshness is a
// replay-cost optimization, never a correctness dependency. v1 images still
// decode (every query healthy, zero baselines, counters re-anchored by
// replay).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "query/query_graph.hpp"
#include "server/query_health.hpp"

namespace gcsm::server {

struct RegisteredQuery {
  QueryId id = 0;
  double weight = 1.0;  // relative share in the combined frequency estimate
  QueryGraph query;
  QueryHealth health;  // circuit-breaker state + per-query counters
};

class QueryRegistry {
 public:
  // Registers `query` under the next free id (returned). Weights must be
  // positive and finite; throws Error(kConfig) otherwise.
  QueryId add(QueryGraph query, double weight = 1.0);

  // Removes the registration; false when the id is unknown. Ids are never
  // reused afterwards.
  bool remove(QueryId id);

  // Re-inserts an entry previously obtained from this registry (rollback of
  // a failed durable remove). The id must be free and below the high-water
  // mark; throws Error(kConfig) otherwise.
  void restore(RegisteredQuery entry);

  const RegisteredQuery* find(QueryId id) const;
  // Mutable lookup for health updates (the engine owns the state machine;
  // the registry just persists it). nullptr when the id is unknown.
  RegisteredQuery* find_mutable(QueryId id);
  // Registration order (ascending id).
  const std::vector<RegisteredQuery>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Monotonic health-transition revision; compared against WAL
  // kServerState records at recovery (query_health.hpp).
  std::uint64_t health_revision() const { return health_revision_; }
  void set_health_revision(std::uint64_t rev) { health_revision_ = rev; }

  // Aggregate counters as of the commit this image was written after. Atomic
  // with the per-query table (same CRC'd image), so recovery can anchor its
  // cumulative counters here when the image is newer than the snapshot.
  const durable::DurableCounters& aggregate() const { return aggregate_; }
  void set_aggregate(const durable::DurableCounters& agg) { aggregate_ = agg; }

  // Versioned durable image: "GQRY" magic, format version, next id, health
  // revision, aggregate anchor, then per entry {id, weight, name, labels,
  // edges, health}; trailing CRC32C. Always encodes the current version;
  // decode() also accepts v1 images (pre-breaker: healthy defaults, revision
  // 0, zero anchor).
  std::string encode() const;
  // nullopt on damage, with a human-readable reason in *why.
  static std::optional<QueryRegistry> decode(std::string_view bytes,
                                             std::string* why);

 private:
  std::vector<RegisteredQuery> entries_;
  QueryId next_id_ = 1;
  std::uint64_t health_revision_ = 0;
  durable::DurableCounters aggregate_;
};

}  // namespace gcsm::server
