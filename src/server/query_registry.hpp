// The set of standing query patterns a MultiQueryEngine serves.
//
// Each registration gets a process-stable QueryId (monotonic, never reused
// within one registry lifetime) and a weight used by the cross-query cache
// arbitration: per-query frequency estimates are combined as a
// weight-normalized sum before the single shared top-k cache build, so a
// heavy subscriber can claim a proportionally larger share of the device
// cache budget.
//
// The registry is durable alongside the WAL (docs/MULTI_QUERY.md): encode()
// produces a versioned, CRC-checked byte image ("GQRY") the engine writes
// atomically on every mutation, and decode() restores it at recovery so
// replayed batches run against exactly the query set they were committed
// under. MatchSinks are deliberately NOT part of the durable image — they
// are process-local callbacks a restarted subscriber re-attaches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "query/query_graph.hpp"

namespace gcsm::server {

using QueryId = std::uint32_t;

struct RegisteredQuery {
  QueryId id = 0;
  double weight = 1.0;  // relative share in the combined frequency estimate
  QueryGraph query;
};

class QueryRegistry {
 public:
  // Registers `query` under the next free id (returned). Weights must be
  // positive and finite; throws Error(kConfig) otherwise.
  QueryId add(QueryGraph query, double weight = 1.0);

  // Removes the registration; false when the id is unknown. Ids are never
  // reused afterwards.
  bool remove(QueryId id);

  // Re-inserts an entry previously obtained from this registry (rollback of
  // a failed durable remove). The id must be free and below the high-water
  // mark; throws Error(kConfig) otherwise.
  void restore(RegisteredQuery entry);

  const RegisteredQuery* find(QueryId id) const;
  // Registration order (ascending id).
  const std::vector<RegisteredQuery>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Versioned durable image: "GQRY" magic, format version, next id, then
  // per entry {id, weight, name, labels, edges}; trailing CRC32C.
  std::string encode() const;
  // nullopt on damage, with a human-readable reason in *why.
  static std::optional<QueryRegistry> decode(std::string_view bytes,
                                             std::string* why);

 private:
  std::vector<RegisteredQuery> entries_;
  QueryId next_id_ = 1;
};

}  // namespace gcsm::server
