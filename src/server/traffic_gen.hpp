// Seeded adversarial traffic generator for overload testing
// (docs/ROBUSTNESS.md, "Overload & admission control").
//
// Takes a prepared, well-formed batch stream and turns it into a timed,
// multi-source arrival schedule shaped to hurt: Poisson or self-similar
// bursty interarrivals driven at a configurable multiple of capacity, a hot
// source that concentrates (and periodically churns) the traffic, and
// probabilistic floods — all-duplicate batches (every record re-applies an
// edge the stream already inserted) and all-invalid batches (out-of-range
// endpoints and self-loops) that the sanitizer quarantines wholesale. The
// whole schedule is a pure function of (options, base stream): one seed
// reproduces the same arrivals, sources, and floods bit-for-bit.
//
// The self-similar mode alternates ON/OFF periods with Pareto-distributed
// durations (the classic heavy-tailed on-off construction whose aggregate is
// self-similar); ON periods emit at a multiple of the mean rate, OFF periods
// emit nothing. The `source.burst` fault site, when armed, additionally
// collapses individual interarrival gaps to zero — a worst-case stampede a
// fault sweep can inject anywhere.
//
// Register/unregister churn of standing queries is a schedule here, not an
// action: churn_plan() deterministically marks, per arrival, how many
// register and unregister operations the driver should perform before
// offering that batch (bench/overload and the churn tests own the engine
// calls).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace gcsm::server {

enum class ArrivalKind : std::uint8_t {
  kUniform = 0,  // fixed interarrival 1/rate
  kPoisson,      // exponential interarrivals
  kBursty,       // self-similar Pareto on-off
};

const char* arrival_kind_name(ArrivalKind kind);
// "uniform" / "poisson" / "bursty"; anything else throws Error(kConfig)
// with the CLI contract message "arrival: <text>".
ArrivalKind parse_arrival(const std::string& text);

// What a TrafficItem carries besides a plain stream batch.
enum class TrafficKind : std::uint8_t {
  kNormal = 0,
  kDuplicateFlood,  // every record re-applies an already-present edge
  kInvalidFlood,    // out-of-range endpoints and self-loops only
};

struct TrafficOptions {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  // Mean arrival rate, batches per second (> 0).
  double rate = 100.0;
  std::uint32_t num_sources = 4;
  // Fraction of batches attributed to the hot source (the rest spread
  // uniformly over the others). The hot source's identity rotates every
  // `hot_churn_every` batches (0 = never) — hot-key churn.
  double hot_source_fraction = 0.5;
  std::uint64_t hot_churn_every = 0;
  // Bursty mode: ON-period rate multiplier and Pareto shape of the period
  // durations (1 < alpha < 2 gives the self-similar heavy tail).
  double burst_factor = 8.0;
  double pareto_alpha = 1.5;
  // Per-batch probability of replacing the batch with a flood.
  double duplicate_flood_prob = 0.0;
  double invalid_flood_prob = 0.0;
  // Vertex-id space of the base stream; invalid floods aim past it.
  std::uint64_t num_vertices = 0;
  std::uint64_t seed = 1;
};

struct TrafficItem {
  EdgeBatch batch;
  double arrival_s = 0.0;
  std::uint32_t source = 0;
  TrafficKind kind = TrafficKind::kNormal;
};

// Per-arrival query-churn instruction (see churn_plan()).
struct ChurnStep {
  std::uint32_t registers = 0;
  std::uint32_t unregisters = 0;
};

class TrafficGenerator {
 public:
  // Validates options: rate must be positive, num_sources nonzero,
  // probabilities in [0, 1] (Error(kConfig) otherwise). The injector is
  // non-owning and optional; only `source.burst` is probed.
  explicit TrafficGenerator(TrafficOptions options,
                            FaultInjector* faults = nullptr);

  // Schedules one timed arrival per base batch, in base order (the stream's
  // batch order is the engine's replay order, so it is preserved; only
  // timing, attribution, and flood substitution are adversarial).
  std::vector<TrafficItem> generate(const std::vector<EdgeBatch>& base);

  // Deterministic register/unregister churn schedule: `total_registers`
  // query registrations spread over `arrivals` steps, each later mirrored
  // by an unregistration (so the standing set returns to its initial size).
  // Unregistrations trail registrations by roughly `lag` steps.
  std::vector<ChurnStep> churn_plan(std::size_t arrivals,
                                    std::uint32_t total_registers,
                                    std::size_t lag) const;

  const TrafficOptions& options() const { return options_; }

 private:
  double next_gap();  // interarrival time ahead of the next batch

  TrafficOptions options_;
  FaultInjector* faults_;
  Rng rng_;
  // Bursty on-off state: time left in the current period.
  bool burst_on_ = true;
  double period_left_s_ = 0.0;
};

}  // namespace gcsm::server
