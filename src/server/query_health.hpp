// Per-query health state machine for the multi-query engine's circuit
// breaker (docs/ROBUSTNESS.md, "Tenant isolation & circuit breaker").
//
// Every standing query carries a QueryHealth record: its breaker state,
// its last-applied WAL sequence number (the "position"), a lifetime trip
// count, and its own cumulative match counters. Healthy queries track the
// engine's aggregate position implicitly; a quarantined query's position
// freezes at the last batch it committed, so its catch-up debt is the
// contiguous seq range (position, engine.last_seq].
//
// State machine (in-memory; only kHealthy/kQuarantined are durable —
// a probe interrupted by a crash recovers as quarantined):
//
//   Healthy --K consecutive ladder exhaustions--> Quarantined
//   Quarantined --cooldown elapsed--> (half-open probe, results discarded)
//       probe fails  --> Quarantined (cooldown restarts)
//       probe passes --> exact catch-up replay --> Healthy
//   Quarantined + debt > window --> debt_overflow (snapshot deferral lifted;
//       re-join falls back to a full static recount re-baseline)
//
// Durability: transitions are sequenced against the batch stream as WAL
// kServerState records (a HealthTransition: the full post-transition health
// table plus the post-transition aggregate counters) and mirrored into the
// registry image (query_registry.hpp, format v2). Both carry a monotonic
// `revision`; recovery applies a WAL transition only when its revision is
// newer than the image's, so a crash between the WAL append and the image
// rewrite converges to the same state as a crash after both.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/snapshot.hpp"
#include "util/durable_io.hpp"

namespace gcsm::server {

using QueryId = std::uint32_t;

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kQuarantined = 1,
};

const char* to_string(HealthState state);

// Per-query cumulative match counters — the tenant-scoped analogue of the
// aggregate durable::DurableCounters. Kept engine-independent (embedding
// counts, not timings) so catch-up replay on a shadow graph can reproduce
// them bit-identically.
struct QueryCounters {
  std::int64_t signed_embeddings = 0;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint64_t seeds = 0;

  QueryCounters& operator+=(const QueryCounters& o) {
    signed_embeddings += o.signed_embeddings;
    positive += o.positive;
    negative += o.negative;
    seeds += o.seeds;
    return *this;
  }
  friend bool operator==(const QueryCounters&, const QueryCounters&) = default;
};

// The durable slice of a query's breaker state. In-memory bookkeeping that
// is deliberately NOT durable (consecutive-failure streak, cooldown
// progress) lives in the engine's QueryState and resets on restart — the
// conservative direction: a restarted engine re-earns a trip rather than
// inheriting half a streak.
struct QueryHealth {
  HealthState state = HealthState::kHealthy;
  // Debt exceeded BreakerOptions::max_debt_batches: exact catch-up is no
  // longer owed, snapshot deferral is lifted, and re-join re-baselines.
  bool debt_overflow = false;
  // Last WAL seq whose committed effects include this query (with
  // durability off, the committed-batch ordinal instead). The engine
  // refreshes it on every commit the query participated in; for a
  // quarantined query it is the frozen position, and a registration's
  // initial value anchors the new query PAST every batch already in the
  // WAL so replay can never feed it history it was not registered for.
  std::uint64_t last_applied_seq = 0;
  std::uint64_t trips = 0;  // lifetime trip count (monotonic)
  QueryCounters counters;   // cumulative, this query only

  friend bool operator==(const QueryHealth&, const QueryHealth&) = default;
};

// Circuit-breaker tuning (MultiQueryOptions::breaker).
struct BreakerOptions {
  bool enabled = true;
  // Trip to Quarantined after this many CONSECUTIVE batches in which the
  // query exhausted its retry ladder (or blew match_deadline_ms). Batches
  // before the trip still fail as a unit — pre-trip semantics are exactly
  // PR 5's, so a quarantined query's debt starts contiguous.
  std::uint64_t trip_after_failures = 2;
  // Committed batches to wait before the half-open probe.
  std::uint64_t cooldown_batches = 4;
  // Debt window: once a quarantined query owes more than this many batches,
  // it overflows — snapshotting resumes and re-join means re-baseline.
  // 0 = overflow immediately (never defer snapshots).
  std::uint64_t max_debt_batches = 64;
  // Wall-clock deadline for ONE match attempt; exceeding it counts as a
  // ladder failure for the breaker. 0 = no deadline.
  std::uint64_t match_deadline_ms = 0;
};

// A durable health transition: the WAL kServerState payload. Carries the
// full post-transition table (absolute values, not deltas) so recovery
// application is idempotent and self-contained.
struct HealthTransition {
  enum class Reason : std::uint8_t {
    kTrip = 1,    // query tripped to Quarantined
    kRejoin = 2,  // probe passed; catch-up deltas folded in; query healthy
  };

  Reason reason = Reason::kTrip;
  std::uint64_t revision = 0;  // monotonic; compared with the image's
  QueryId query = 0;           // the query that transitioned
  // Post-transition health of EVERY registered query, ascending id.
  std::vector<std::pair<QueryId, QueryHealth>> table;
  // Post-transition aggregate counters. For a trip this matches the running
  // aggregate; for a re-join it includes the catch-up correction (the
  // missed per-query deltas folded back in), which recovery replay cannot
  // recompute from batch records alone.
  durable::DurableCounters aggregate;
};

std::string encode_transition(const HealthTransition& t);
// nullopt on damage, with a human-readable reason in *why.
std::optional<HealthTransition> decode_transition(std::string_view bytes,
                                                  std::string* why);

// Shared per-entry health codec, used by both the transition records above
// and the registry image (kept here so the two can never drift).
void encode_health(std::string& out, const QueryHealth& h);
// Decodes in place; returns false on a malformed state byte (the caller
// still checks the reader's ok()).
bool decode_health(io::ByteReader& r, QueryHealth* h);

}  // namespace gcsm::server
