#include "server/query_health.hpp"

namespace gcsm::server {
namespace {

constexpr char kMagic[4] = {'G', 'S', 'R', 'V'};
constexpr std::uint32_t kVersion = 1;

// A registry is capped at 1<<20 entries (query_registry.cpp); mirror the
// bound so a damaged count cannot drive a giant allocation here either.
constexpr std::uint64_t kMaxEntries = 1u << 20;

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void encode_health(std::string& out, const QueryHealth& h) {
  io::put_u8(out, static_cast<std::uint8_t>(h.state));
  io::put_u8(out, h.debt_overflow ? 1 : 0);
  io::put_u64(out, h.last_applied_seq);
  io::put_u64(out, h.trips);
  io::put_i64(out, h.counters.signed_embeddings);
  io::put_u64(out, h.counters.positive);
  io::put_u64(out, h.counters.negative);
  io::put_u64(out, h.counters.seeds);
}

bool decode_health(io::ByteReader& r, QueryHealth* h) {
  const std::uint8_t state = r.get_u8();
  const std::uint8_t overflow = r.get_u8();
  h->last_applied_seq = r.get_u64();
  h->trips = r.get_u64();
  h->counters.signed_embeddings = r.get_i64();
  h->counters.positive = r.get_u64();
  h->counters.negative = r.get_u64();
  h->counters.seeds = r.get_u64();
  if (state > static_cast<std::uint8_t>(HealthState::kQuarantined)) {
    return false;
  }
  if (overflow > 1) return false;
  h->state = static_cast<HealthState>(state);
  h->debt_overflow = overflow == 1;
  return true;
}

std::string encode_transition(const HealthTransition& t) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  io::put_u32(out, kVersion);
  io::put_u8(out, static_cast<std::uint8_t>(t.reason));
  io::put_u64(out, t.revision);
  io::put_u32(out, t.query);
  io::put_u64(out, t.aggregate.batches_committed);
  io::put_u64(out, t.aggregate.last_seq);
  io::put_i64(out, t.aggregate.cum_signed);
  io::put_u64(out, t.aggregate.cum_positive);
  io::put_u64(out, t.aggregate.cum_negative);
  io::put_u64(out, t.table.size());
  for (const auto& [id, health] : t.table) {
    io::put_u32(out, id);
    encode_health(out, health);
  }
  return out;
}

std::optional<HealthTransition> decode_transition(std::string_view bytes,
                                                  std::string* why) {
  auto fail = [&](const std::string& reason) -> std::optional<HealthTransition> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    return fail("transition record truncated");
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad transition magic");
  }
  io::ByteReader r(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = r.get_u32();
  if (version != kVersion) {
    return fail("unsupported transition version " + std::to_string(version));
  }
  HealthTransition t;
  const std::uint8_t reason = r.get_u8();
  if (reason != static_cast<std::uint8_t>(HealthTransition::Reason::kTrip) &&
      reason != static_cast<std::uint8_t>(HealthTransition::Reason::kRejoin)) {
    return fail("unknown transition reason " + std::to_string(reason));
  }
  t.reason = static_cast<HealthTransition::Reason>(reason);
  t.revision = r.get_u64();
  t.query = r.get_u32();
  t.aggregate.batches_committed = r.get_u64();
  t.aggregate.last_seq = r.get_u64();
  t.aggregate.cum_signed = r.get_i64();
  t.aggregate.cum_positive = r.get_u64();
  t.aggregate.cum_negative = r.get_u64();
  const std::uint64_t count = r.get_u64();
  if (count > kMaxEntries) return fail("transition table count implausible");
  t.table.reserve(count);
  QueryId prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const QueryId id = r.get_u32();
    QueryHealth h;
    if (!decode_health(r, &h)) return fail("transition health entry damaged");
    if (!r.ok()) return fail("transition record truncated mid-entry");
    if (id == 0 || (i > 0 && id <= prev)) {
      return fail("transition table ids not ascending");
    }
    prev = id;
    t.table.emplace_back(id, h);
  }
  if (!r.ok() || r.remaining() != 0) {
    return fail("transition record has trailing or missing bytes");
  }
  return t;
}

}  // namespace gcsm::server
