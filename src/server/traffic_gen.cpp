#include "server/traffic_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gcsm::server {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

ArrivalKind parse_arrival(const std::string& text) {
  if (text == "uniform") return ArrivalKind::kUniform;
  if (text == "poisson") return ArrivalKind::kPoisson;
  if (text == "bursty") return ArrivalKind::kBursty;
  throw Error(ErrorCode::kConfig, "arrival: " + text);
}

TrafficGenerator::TrafficGenerator(TrafficOptions options,
                                   FaultInjector* faults)
    : options_(options), faults_(faults), rng_(options.seed) {
  if (!(options_.rate > 0.0)) {
    throw Error(ErrorCode::kConfig,
                "rate: " + std::to_string(options_.rate));
  }
  if (options_.num_sources == 0) {
    throw Error(ErrorCode::kConfig, "sources: 0");
  }
  if (options_.hot_source_fraction < 0.0 ||
      options_.hot_source_fraction > 1.0) {
    throw Error(ErrorCode::kConfig,
                "hot-fraction: " +
                    std::to_string(options_.hot_source_fraction));
  }
  if (options_.duplicate_flood_prob < 0.0 ||
      options_.invalid_flood_prob < 0.0 ||
      options_.duplicate_flood_prob + options_.invalid_flood_prob > 1.0) {
    throw Error(ErrorCode::kConfig,
                "flood-prob: " +
                    std::to_string(options_.duplicate_flood_prob) + "+" +
                    std::to_string(options_.invalid_flood_prob));
  }
  if (options_.burst_factor < 1.0) {
    throw Error(ErrorCode::kConfig,
                "burst-factor: " + std::to_string(options_.burst_factor));
  }
  if (options_.pareto_alpha <= 1.0) {
    throw Error(ErrorCode::kConfig,
                "pareto-alpha: " + std::to_string(options_.pareto_alpha));
  }
}

double TrafficGenerator::next_gap() {
  auto exponential = [&](double rate) {
    return -std::log(1.0 - rng_.uniform()) / rate;
  };
  // Pareto(x_m, alpha) period durations; ON periods get x_m scaled so the
  // duty cycle is ~1/burst_factor and the long-run mean rate stays `rate`.
  auto pareto = [&](double x_m) {
    return x_m / std::pow(1.0 - rng_.uniform(), 1.0 / options_.pareto_alpha);
  };
  double gap = 0.0;
  switch (options_.arrival) {
    case ArrivalKind::kUniform:
      gap = 1.0 / options_.rate;
      break;
    case ArrivalKind::kPoisson:
      gap = exponential(options_.rate);
      break;
    case ArrivalKind::kBursty: {
      const double x_m_on = 4.0 / options_.rate;
      const double x_m_off = x_m_on * (options_.burst_factor - 1.0);
      for (;;) {
        if (period_left_s_ <= 0.0) {
          burst_on_ = !burst_on_;
          period_left_s_ = pareto(burst_on_ ? x_m_on : x_m_off);
        }
        if (!burst_on_) {
          // Silence: the whole OFF period precedes the next arrival.
          gap += period_left_s_;
          period_left_s_ = 0.0;
          continue;
        }
        const double g = exponential(options_.rate * options_.burst_factor);
        if (g <= period_left_s_) {
          period_left_s_ -= g;
          gap += g;
          break;
        }
        gap += period_left_s_;
        period_left_s_ = 0.0;
      }
      break;
    }
  }
  if (faults_ != nullptr && faults_->fires(fault_site::kSourceBurst)) {
    gap = 0.0;  // injected stampede: this batch lands with the previous one
  }
  return gap;
}

std::vector<TrafficItem> TrafficGenerator::generate(
    const std::vector<EdgeBatch>& base) {
  std::vector<TrafficItem> out;
  out.reserve(base.size());
  double t = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    t += next_gap();
    TrafficItem item;
    item.arrival_s = t;

    // Source attribution: one hot source concentrates hot_source_fraction
    // of the traffic; its identity rotates every hot_churn_every batches.
    std::uint32_t hot = 0;
    if (options_.hot_churn_every != 0) {
      hot = static_cast<std::uint32_t>(
          (i / options_.hot_churn_every) % options_.num_sources);
    }
    item.source = rng_.bernoulli(options_.hot_source_fraction)
                      ? hot
                      : static_cast<std::uint32_t>(
                            rng_.bounded(options_.num_sources));

    const double flood = rng_.uniform();
    if (flood < options_.duplicate_flood_prob) {
      // All-duplicate flood: the batch's own first record repeated, so the
      // sanitizer quarantines everything past the first application.
      item.kind = TrafficKind::kDuplicateFlood;
      EdgeUpdate seed{0, 1, +1};
      if (!base[i].updates.empty()) seed = base[i].updates.front();
      seed.sign = +1;
      item.batch.updates.assign(std::max<std::size_t>(
                                    1, base[i].updates.size()),
                                seed);
      item.batch.new_vertex_labels = base[i].new_vertex_labels;
    } else if (flood < options_.duplicate_flood_prob +
                           options_.invalid_flood_prob) {
      // All-invalid flood: self-loops and out-of-range endpoints only;
      // sanitize_batches screens the whole batch into quarantine.
      item.kind = TrafficKind::kInvalidFlood;
      const std::size_t n = std::max<std::size_t>(1, base[i].updates.size());
      const VertexId beyond =
          static_cast<VertexId>(options_.num_vertices + 1 + rng_.bounded(64));
      item.batch.updates.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        if (k % 2 == 0) {
          item.batch.updates.push_back(EdgeUpdate{beyond, beyond, +1});
        } else {
          item.batch.updates.push_back(
              EdgeUpdate{static_cast<VertexId>(beyond + k), beyond, +1});
        }
      }
    } else {
      item.batch = base[i];
    }
    out.push_back(std::move(item));
  }
  return out;
}

std::vector<ChurnStep> TrafficGenerator::churn_plan(
    std::size_t arrivals, std::uint32_t total_registers,
    std::size_t lag) const {
  std::vector<ChurnStep> plan(arrivals);
  if (arrivals == 0 || total_registers == 0) return plan;
  // Spread registrations evenly over the prefix that leaves room for the
  // trailing unregistrations, each unregistration `lag` steps behind its
  // registration (clamped into the schedule).
  const std::size_t span =
      arrivals > lag ? arrivals - lag : std::size_t{1};
  for (std::uint32_t i = 0; i < total_registers; ++i) {
    const std::size_t reg_step =
        std::min(arrivals - 1, static_cast<std::size_t>(i) * span /
                                   total_registers);
    const std::size_t unreg_step = std::min(arrivals - 1, reg_step + lag);
    ++plan[reg_step].registers;
    ++plan[unreg_step].unregisters;
  }
  return plan;
}

}  // namespace gcsm::server
