#include "server/multi_query_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/gpu_engine.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"
#include "util/wal.hpp"

namespace gcsm::server {
namespace {

QueryCounters to_query_counters(const MatchStats& s) {
  return QueryCounters{s.signed_embeddings, s.positive, s.negative, s.seeds};
}

}  // namespace

// Per-batch state threaded through process_batch_inner by the pipelined
// schedule (process_stream); a null ctx means serial process_batch
// semantics.
struct MultiQueryEngine::PipelineCtx {
  // One deferred sink callback: deliverable verbatim once the batch's
  // commit durably lands. The plan pointer stays valid for the engine's
  // lifetime (plans are owned by the query's MatchEngine).
  struct SinkRecord {
    const MatchPlan* plan = nullptr;
    std::vector<VertexId> bindings;
    int sign = 0;
  };

  // The CPU front half of one batch, staged on the match pool while the
  // previous batch's fan-out is in flight: corruption screening and the
  // shared frequency estimation. The WAL append stays on the engine thread
  // so snapshot compaction at drain points can never truncate a staged
  // batch record.
  struct Front {
    bool valid = false;
    EdgeBatch batch;              // corrupted + sanitized next batch
    QuarantineReport quarantine;
    std::vector<MatchRole> roles;  // role snapshot the estimate assumed
    StagedEstimate est;
    std::exception_ptr error;      // staging failed; rethrown on consume
  };

  Front* front = nullptr;            // consumed by this batch (may be null)
  const EdgeBatch* next_batch = nullptr;  // staged during this fan-out
  Front* next_front = nullptr;
  // Deferred sink buffers, one per registered query (registration order).
  std::vector<std::vector<SinkRecord>>* buffers = nullptr;
  // Health-transition payloads collected for the commit unit instead of
  // being logged inline (the committer appends them before the marker).
  std::vector<std::string>* server_states = nullptr;
};

MultiQueryEngine::MultiQueryEngine(const CsrGraph& initial,
                                   MultiQueryOptions options)
    : options_(std::move(options)),
      graph_(initial),
      device_(options_.sim),
      faults_(options_.fault_injector),
      durability_(options_.durability, options_.fault_injector),
      metrics_(options_.metric_prefix),
      match_pool_(options_.match_parallelism),
      seed_root_(options_.seed),
      initial_(options_.durability.enabled() ? initial : CsrGraph{}) {
  device_.set_fault_injector(faults_);
  graph_.set_fault_injector(faults_);
  if (!options_.durability.enabled()) return;
  registry_path_ = options_.durability.wal_dir + "/queries.reg";

  if (!options_.durability.recover_on_start) {
    // Fresh start: scrub durable state (recover() truncates the WAL and
    // removes the snapshot) including the registry image.
    recovery_info_ = durability_.recover();
    std::remove(registry_path_.c_str());
    return;
  }

  // The registry restores FIRST: replayed batches must run against exactly
  // the query set they were committed under. The image carries every
  // query's breaker state and counters plus an aggregate anchor, all under
  // one CRC — a damaged image is fatal (kRecovery), never silently ignored.
  if (const auto bytes = io::read_file_if_exists(registry_path_)) {
    std::string why;
    auto reg = QueryRegistry::decode(*bytes, &why);
    if (!reg.has_value()) {
      throw Error(ErrorCode::kRecovery,
                  "registry image " + registry_path_ + " damaged: " + why);
    }
    registry_ = std::move(*reg);
    for (const RegisteredQuery& entry : registry_.entries()) {
      states_.push_back(make_state(entry));
    }
  }

  recovery_info_ = durability_.recover();
  if (recovery_info_.snapshot_loaded) {
    graph_.restore(recovery_info_.graph);
    if (options_.check_invariants) graph_.validate();
    cumulative_ = recovery_info_.counters;
  }

  // Anchor selection: the image is rewritten after every commit, so its
  // aggregate is normally ahead of the snapshot's and lets most of the
  // replay run graph-only (no matching). The image anchor is trusted past
  // the snapshot only when the replay actually REACHES it — the WAL's
  // prefix property then guarantees every batch in between is present. A
  // fresher-looking image whose seq the (possibly compacted) WAL cannot
  // reach would otherwise let a damaged snapshot slip past the integrity
  // gate with a graph that silently skipped batches.
  const durable::DurableCounters& image_anchor = registry_.aggregate();
  if (image_anchor.last_seq >= cumulative_.last_seq &&
      image_anchor.batches_committed >= cumulative_.batches_committed) {
    bool reachable = image_anchor.last_seq == cumulative_.last_seq;
    for (const auto& [seq, batch] : recovery_info_.replay) {
      if (seq == image_anchor.last_seq) {
        reachable = true;
        break;
      }
    }
    if (reachable) cumulative_ = image_anchor;
  }
  const std::uint64_t anchor_seq = cumulative_.last_seq;

  // Health-transition records are applied in log order, each one before the
  // equal-seq batch it belongs to, and only when its revision is newer than
  // the image's (a crash between the WAL append and the image rewrite
  // converges to the same state as a crash after both). Tables are
  // absolute, so a duplicate revision from a failed-then-retried batch is
  // harmless. The aggregate carried by a record (which folds a re-join's
  // catch-up correction — unreconstructible from batch records alone) only
  // ever moves the anchor forward.
  auto apply_record = [&](std::uint64_t seq, const std::string& payload) {
    std::string why;
    auto t = decode_transition(payload, &why);
    if (!t.has_value()) {
      throw Error(ErrorCode::kRecovery, "WAL health transition at seq " +
                                            std::to_string(seq) +
                                            " damaged: " + why);
    }
    if (t->revision <= registry_.health_revision()) return;
    for (const auto& [id, health] : t->table) {
      if (RegisteredQuery* entry = registry_.find_mutable(id)) {
        entry->health = health;
      }
      // Unknown ids were unregistered after the record was written; their
      // state is gone with them.
    }
    registry_.set_health_revision(t->revision);
    if (t->aggregate.last_seq >= cumulative_.last_seq) {
      cumulative_ = t->aggregate;
    }
  };
  const auto& records = recovery_info_.server_states;
  std::size_t ri = 0;

  if (!recovery_info_.replay.empty() || !records.empty()) {
    if (states_.empty()) {
      throw Error(ErrorCode::kRecovery,
                  "WAL holds committed batches but no query is registered");
    }
    // Deterministic replay through the restored query set. Sinks are not
    // attached yet, so no subscriber callback fires twice; faults are
    // suspended and `replaying_` prevents re-logging. Batches at or below
    // the anchor replay graph-only; the rest replay fully, each query
    // participating iff it is healthy at that point in the log and its
    // position is behind the batch.
    const FaultSuspendGuard suspend(faults_);
    replaying_ = true;
    try {
      for (const auto& [seq, batch] : recovery_info_.replay) {
        while (ri < records.size() && records[ri].first <= seq) {
          apply_record(records[ri].first, records[ri].second);
          ++ri;
        }
        replay_seq_ = seq;
        replay_graph_only_ = seq <= anchor_seq;
        process_batch(batch);
        if (!replay_graph_only_) cumulative_.last_seq = seq;
      }
      // Trailing records (a transition made durable whose batch never
      // committed) still apply: the durable side is conservatively ahead.
      while (ri < records.size()) {
        apply_record(records[ri].first, records[ri].second);
        ++ri;
      }
    } catch (...) {
      replaying_ = false;
      throw;
    }
    replaying_ = false;
    replay_graph_only_ = false;
  }
  if (recovery_info_.have_expected && cumulative_ != recovery_info_.expected) {
    throw Error(
        ErrorCode::kRecovery,
        "recovery replay does not reproduce the committed counters "
        "(batches " +
            std::to_string(cumulative_.batches_committed) + " vs " +
            std::to_string(recovery_info_.expected.batches_committed) +
            ", signed " + std::to_string(cumulative_.cum_signed) + " vs " +
            std::to_string(recovery_info_.expected.cum_signed) + ")");
  }
  // Post-gate normalization: healthy queries participated in everything
  // that replayed, so their positions land on the aggregate's (v1 images
  // and snapshot-anchored replays leave them stale). Quarantined debt is
  // re-measured against the final position — a snapshot written past a
  // frozen position (or a debt window crossed while down) means re-join
  // must re-baseline.
  for (const RegisteredQuery& e : registry_.entries()) {
    RegisteredQuery* entry = registry_.find_mutable(e.id);
    if (entry->health.state == HealthState::kHealthy) {
      entry->health.last_applied_seq = cumulative_.last_seq;
    } else if (!entry->health.debt_overflow &&
               cumulative_.last_seq - entry->health.last_applied_seq >
                   options_.breaker.max_debt_batches) {
      entry->health.debt_overflow = true;
    }
  }
  refresh_breaker_gauges();
}

std::uint64_t MultiQueryEngine::effective_cache_budget() const {
  const std::uint64_t shrunk =
      options_.cache_budget_bytes >> degradation_level_;
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

std::unique_ptr<MultiQueryEngine::QueryState> MultiQueryEngine::make_state(
    const RegisteredQuery& entry) {
  auto qs = std::make_unique<QueryState>();
  qs->id = entry.id;
  qs->weight = entry.weight;
  qs->executor = std::make_unique<gpusim::SimtExecutor>(options_.workers,
                                                        options_.schedule);
  qs->executor->set_fault_injector(faults_);
  qs->executor->set_watchdog_timeout_ms(
      options_.recovery.watchdog_timeout_ms);
  qs->engine =
      std::make_unique<MatchEngine>(entry.query, *qs->executor,
                                    options_.grain);
  qs->estimator = std::make_unique<FrequencyEstimator>(qs->engine->query(),
                                                       options_.estimator);
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // Same resident-set clamp as the single-query Pipeline: the page cache
    // must not silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    qs->um_policy = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }
  qs->metrics = std::make_unique<PipelineMetrics>(
      options_.metric_prefix + "q" + std::to_string(entry.id) + ".");
  // Independent deterministic stream per query id, so registration order
  // and the shared engine's own draws never shift a query's walks.
  qs->rng = seed_root_.split(entry.id);
  return qs;
}

MultiQueryEngine::QueryState* MultiQueryEngine::state_for(QueryId id) {
  for (auto& qs : states_) {
    if (qs->id == id) return qs.get();
  }
  return nullptr;
}

std::uint64_t MultiQueryEngine::current_position() const {
  return options_.durability.enabled() ? cumulative_.last_seq
                                       : cumulative_.batches_committed;
}

bool MultiQueryEngine::any_exact_catchup_debt() const {
  for (const RegisteredQuery& e : registry_.entries()) {
    if (e.health.state == HealthState::kQuarantined &&
        !e.health.debt_overflow) {
      return true;
    }
  }
  return false;
}

void MultiQueryEngine::refresh_breaker_gauges() const {
  auto& quarantined = metrics::Registry::global().gauge(
      options_.metric_prefix + metric::kServerBreakerQuarantined);
  auto& debt = metrics::Registry::global().gauge(
      options_.metric_prefix + metric::kServerCatchupDebtBatches);
  const std::uint64_t position = current_position();
  double quarantined_count = 0.0;
  double debt_sum = 0.0;
  for (const RegisteredQuery& e : registry_.entries()) {
    if (e.health.state != HealthState::kQuarantined) continue;
    quarantined_count += 1.0;
    if (!e.health.debt_overflow && position > e.health.last_applied_seq) {
      debt_sum += static_cast<double>(position - e.health.last_applied_seq);
    }
  }
  quarantined.set(quarantined_count);
  debt.set(debt_sum);
}

void MultiQueryEngine::persist_registry(bool allow_defer) {
  if (!options_.durability.enabled()) return;
  if (cumulative_.batches_committed > 0) {
    // Compact batches committed under the previous registry into a snapshot
    // so they can never replay into the new one. While a quarantined query
    // still owes exact catch-up, a REGISTRATION defers the compaction (the
    // image's per-query positions anchor the new query past every batch
    // already in the WAL, so replay stays correct) and the snapshot fires
    // at the first debt-free commit. An UNREGISTRATION can never defer: the
    // removed query's contributions are baked into the commit markers, so
    // the WAL prefix must be compacted away — outstanding debt holders fall
    // back to re-baseline when the WAL no longer covers them.
    if (allow_defer && any_exact_catchup_debt()) {
      force_snapshot_pending_ = true;
    } else if (!durability_.snapshot_now(graph_, cumulative_)) {
      throw Error(ErrorCode::kSnapshotWrite,
                  "registry change needs a snapshot and the write failed");
    }
  }
  registry_.set_aggregate(cumulative_);
  io::atomic_write_file(registry_path_, registry_.encode(),
                        options_.durability.fsync, faults_);
}

bool MultiQueryEngine::write_registry_image() {
  if (registry_path_.empty()) return false;
  registry_.set_aggregate(cumulative_);
  try {
    io::atomic_write_file(registry_path_, registry_.encode(),
                          options_.durability.fsync, faults_);
    return true;
  } catch (const CrashError&) {
    throw;
  } catch (const Error& e) {
    // Best-effort: a stale image only costs replay work at recovery (the
    // anchor falls behind), never correctness. But a snapshot must NOT be
    // written after a failed image rewrite — the snapshot would advance the
    // graph past per-query counters the image can no longer account for.
    std::fprintf(stderr, "[gcsm] warning: registry image rewrite failed: %s\n",
                 e.what());
    return false;
  }
}

QueryId MultiQueryEngine::register_query(QueryGraph query, MatchSink sink,
                                         double weight) {
  const QueryId id = registry_.add(std::move(query), weight);
  // Anchor the new query at the current position: recovery replay must
  // never feed it batches committed before it existed.
  registry_.find_mutable(id)->health.last_applied_seq = current_position();
  try {
    states_.push_back(make_state(*registry_.find(id)));
    states_.back()->sink = std::move(sink);
    persist_registry(/*allow_defer=*/true);
  } catch (...) {
    if (!states_.empty() && states_.back()->id == id) states_.pop_back();
    registry_.remove(id);
    throw;
  }
  return id;
}

bool MultiQueryEngine::unregister_query(QueryId id) {
  const RegisteredQuery* entry = registry_.find(id);
  if (entry == nullptr) return false;
  RegisteredQuery saved = *entry;
  registry_.remove(id);
  std::unique_ptr<QueryState> saved_state;
  for (auto it = states_.begin(); it != states_.end(); ++it) {
    if ((*it)->id == id) {
      saved_state = std::move(*it);
      states_.erase(it);
      break;
    }
  }
  try {
    persist_registry(/*allow_defer=*/false);
  } catch (...) {
    registry_.restore(std::move(saved));
    auto it = states_.begin();
    while (it != states_.end() && (*it)->id < id) ++it;
    states_.insert(it, std::move(saved_state));
    throw;
  }
  refresh_breaker_gauges();
  return true;
}

void MultiQueryEngine::attach_sink(QueryId id, MatchSink sink) {
  QueryState* qs = state_for(id);
  if (qs == nullptr) {
    throw Error(ErrorCode::kConfig,
                "unknown query id " + std::to_string(id));
  }
  qs->sink = std::move(sink);
}

const QueryHealth& MultiQueryEngine::query_health(QueryId id) const {
  const RegisteredQuery* entry = registry_.find(id);
  if (entry == nullptr) {
    throw Error(ErrorCode::kConfig,
                "unknown query id " + std::to_string(id));
  }
  return entry->health;
}

MultiQueryEngine::StagedEstimate MultiQueryEngine::compute_shared_estimate(
    const EdgeBatch& batch, const std::vector<MatchRole>& roles) {
  // ONE cross-query estimation. GCSM combines per-query random-walk
  // estimates by weight into a single frequency vector; the baselines'
  // orders are query-independent (degree) or take the worst case over the
  // registered patterns (VSGM's k = max diameter). Only queries actually
  // matching this batch contribute — a quarantined tenant neither spends
  // walk budget nor biases the shared cache (safe: cache content never
  // changes match counts, and each query draws from its own rng stream).
  // Pure reads on the graph plus per-query estimator/rng state, so the
  // pipelined schedule stages it on a pool thread while the previous
  // batch's matches are in flight (pre-apply: the estimate then sees the
  // graph one update earlier than the serial schedule — a cache-content
  // difference only, never a count difference).
  const gpusim::SimParams& sim = options_.sim;
  StagedEstimate out;
  const trace::Span span(metrics_.span_estimate());
  const Timer t;
  if (options_.kind == EngineKind::kGcsm) {
    std::vector<double> combined(
        static_cast<std::size_t>(graph_.num_vertices()), 0.0);
    std::uint64_t total_ops = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (roles[i] != MatchRole::kMatch) continue;
      QueryState& qs = *states_[i];
      const EstimateResult est =
          qs.estimator->estimate(graph_, batch, qs.rng, walk_scale_);
      qs.metrics->note_estimate(est);
      out.walks += est.walks;
      total_ops += est.ops;
      const std::size_t m = std::min(combined.size(), est.frequency.size());
      for (std::size_t v = 0; v < m; ++v) {
        combined[v] += qs.weight * est.frequency[v];
      }
    }
    out.order = select_by_frequency(combined);
    out.sim_estimate_s = static_cast<double>(total_ops) /
                         (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else if (options_.kind == EngineKind::kNaiveDegree) {
    out.order = select_by_degree(graph_);
    out.sim_estimate_s = static_cast<double>(graph_.num_vertices()) /
                         (sim.host_ops_per_sec_per_thread * sim.host_threads);
  } else {  // kVsgm
    // Hop count stays the max over ALL registered queries (including
    // quarantined ones): VSGM's residency is a semantic requirement and a
    // re-joining tenant must find its k-hop data present immediately.
    std::uint32_t hops = 0;
    for (const auto& qsp : states_) {
      hops = std::max(hops, qsp->engine->query().diameter());
    }
    out.order = khop_vertices(graph_, batch, hops);
    out.sim_estimate_s = static_cast<double>(total_list_bytes(graph_, out.order)) /
                         (sim.host_mem_bandwidth_gbps * 1e9);
  }
  out.wall_estimate_ms = t.millis();
  out.valid = true;
  return out;
}

void MultiQueryEngine::run_shared_attempt(const EdgeBatch& batch,
                                          bool drop_cache,
                                          const std::vector<MatchRole>& roles,
                                          BatchReport& shared,
                                          const StagedEstimate* staged_est,
                                          bool staged_pack) {
  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;
  // A retried attempt starts from clean per-attempt fields.
  shared.wall_update_ms = 0.0;
  shared.wall_estimate_ms = 0.0;
  shared.wall_pack_ms = 0.0;
  shared.sim_estimate_s = 0.0;
  shared.sim_pack_s = 0.0;
  shared.walks = 0;
  shared.cached_vertices = 0;
  shared.cache_bytes = 0;

  // Step 1: dynamic graph maintenance — once for every query.
  phase_update(graph_, batch, options_.check_invariants, metrics_, shared);

  const bool uses_cache = options_.kind == EngineKind::kGcsm ||
                          options_.kind == EngineKind::kNaiveDegree ||
                          options_.kind == EngineKind::kVsgm;
  if (drop_cache || !uses_cache) {
    // Terminal degradation under the pipelined schedule also clears the
    // previous ACTIVE epoch, so "served zero-copy" means the same thing on
    // both schedules (an empty cache, not a stale one).
    if (staged_pack) cache_.clear();
    return;
  }

  // Step 2: the shared estimate — precomputed by the pipelined schedule
  // during the previous fan-out when its role snapshot held, recomputed
  // inline otherwise (and on every serial attempt, matching the original
  // retry semantics).
  StagedEstimate local;
  if (staged_est == nullptr || !staged_est->valid) {
    local = compute_shared_estimate(batch, roles);
    staged_est = &local;
  }
  shared.walks = staged_est->walks;
  shared.sim_estimate_s = staged_est->sim_estimate_s;
  shared.wall_estimate_ms = staged_est->wall_estimate_ms;

  // Step 3: ONE DCSR pack + DMA under the shared (possibly degraded)
  // budget. The pipelined schedule packs through the staged epoch (the
  // active one conceptually still serves the in-flight previous match) and
  // publishes before the fan-out needs it; validation runs post-publish
  // because the staged blob is checked against the already-updated graph.
  phase_pack(options_.kind, cache_, graph_, staged_est->order,
             effective_cache_budget(), options_.cache_budget_bytes, device_,
             counters, options_.check_invariants, sim, metrics_, shared,
             staged_pack);
  if (staged_pack) {
    cache_.publish();
    if (options_.check_invariants) cache_.validate(&graph_);
  }
}

void MultiQueryEngine::match_attempt(QueryState& qs, const EdgeBatch& batch,
                                     bool use_cpu, const MatchSink* sink,
                                     BatchReport& qr) {
  const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
  // Like the Pipeline, kernel fault sites stay armed only on device
  // attempts; the CPU path is genuinely more reliable. The match.query site
  // is the exception: it models a poison QUERY (a pattern that breaks the
  // match kernel wherever it runs), so it is probed on every attempt — the
  // CPU escalation cannot outrun it and the ladder genuinely exhausts.
  qs.executor->set_fault_injector(use_cpu ? nullptr : faults_);
  if (faults_ != nullptr &&
      faults_->fires_for(fault_site::kMatchQuery, qs.id)) {
    throw Error(ErrorCode::kKernelLaunch,
                "injected match.query fault for query " +
                    std::to_string(qs.id));
  }
  qr.stats = MatchStats{};
  gpusim::TrafficCounters qcounters;
  std::unique_ptr<AccessPolicy> owned;
  AccessPolicy* policy = nullptr;
  switch (kind) {
    case EngineKind::kCpu:
      owned = std::make_unique<HostPolicy>(graph_);
      break;
    case EngineKind::kZeroCopy:
      owned = std::make_unique<ZeroCopyPolicy>(graph_, options_.sim);
      break;
    case EngineKind::kUnifiedMemory:
      policy = qs.um_policy.get();
      break;
    case EngineKind::kGcsm:
    case EngineKind::kNaiveDegree:
    case EngineKind::kVsgm:
      owned = std::make_unique<CachedPolicy>(graph_, cache_, options_.sim);
      break;
  }
  if (policy == nullptr) policy = owned.get();
  phase_match(kind, *qs.engine, graph_, batch, *policy, qcounters, sink,
              options_.sim, *qs.metrics, qr);
  if (options_.breaker.match_deadline_ms > 0 &&
      qr.wall_match_ms >
          static_cast<double>(options_.breaker.match_deadline_ms)) {
    // Post-hoc deadline: the attempt DID complete (and a sink, if any,
    // already saw its embeddings — retried deadline batches deliver
    // at-least-once), but a tenant this slow counts as a ladder failure so
    // the breaker can isolate it.
    throw Error(ErrorCode::kKernelTimeout,
                "query " + std::to_string(qs.id) + " exceeded the " +
                    std::to_string(options_.breaker.match_deadline_ms) +
                    "ms match deadline");
  }
  qr.traffic = qcounters.snapshot();
}

void MultiQueryEngine::run_match_fanout(
    const EdgeBatch& batch, const std::vector<MatchRole>& roles,
    ServerBatchReport& out, std::vector<MatchOutcome>& outcomes,
    const std::function<void()>& staging,
    const std::vector<MatchSink>* sink_override) {
  using Clock = std::chrono::steady_clock;
  const RecoveryOptions& rec = options_.recovery;

  // One shared ready-queue instead of a static partition: a retrying query
  // parks here with a ready-at deadline while its backoff elapses, so the
  // backoff sleep never holds a pool slot hostage (the head-of-line fix —
  // with N queries and N workers, one flaky tenant used to serialize
  // everyone behind its exponential backoff).
  struct Task {
    std::size_t index = 0;
    bool use_cpu = false;
    int attempts_left = 0;
    double backoff_ms = 0.0;
    // Backoff accumulated by THIS task so far. Folded into the query's
    // report exactly once, at a terminal outcome — the report field is
    // shared with the completion bookkeeping, and accumulating it from the
    // retry path on every park interleaved with other workers' reads.
    double backoff_total = 0.0;
    Clock::time_point ready_at;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Task> queue;
  std::size_t in_flight = 0;

  const Clock::time_point now0 = Clock::now();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    out.queries[i].id = states_[i]->id;
    out.queries[i].name = states_[i]->engine->query().name();
    if (roles[i] == MatchRole::kSkip) {
      out.queries[i].skipped = true;
      continue;
    }
    queue.push_back(Task{i, options_.kind == EngineKind::kCpu,
                         std::max(1, rec.max_attempts),
                         rec.backoff_initial_ms, 0.0, now0});
  }
  if (queue.empty()) {
    // No match work this batch, but the pipelined schedule may still owe
    // the next batch's front half.
    if (staging) staging();
    return;
  }

  // The pipelined schedule's overlap point: the first worker to claim it
  // runs the next batch's CPU front half (sanitize + estimate) alongside —
  // not after — this batch's matches.
  std::atomic<bool> staging_claimed{!static_cast<bool>(staging)};

  match_pool_.run_on_all([&](std::size_t) {
    if (!staging_claimed.exchange(true)) staging();
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
          if (queue.empty()) {
            if (in_flight == 0) {
              cv.notify_all();
              return;
            }
            cv.wait(lk);
            continue;
          }
          auto it = std::min_element(queue.begin(), queue.end(),
                                     [](const Task& a, const Task& b) {
                                       return a.ready_at < b.ready_at;
                                     });
          if (it->ready_at > Clock::now()) {
            // Nothing ready yet: wait out the earliest deadline (or a state
            // change — a finishing worker may re-enqueue something sooner).
            cv.wait_until(lk, it->ready_at);
            continue;
          }
          task = *it;
          queue.erase(it);
          ++in_flight;
          break;
        }
      }

      QueryState& qs = *states_[task.index];
      QueryReport& q = out.queries[task.index];
      const MatchSink* sink = nullptr;
      if (!replaying_ && roles[task.index] == MatchRole::kMatch) {
        const MatchSink& chosen = sink_override != nullptr
                                      ? (*sink_override)[task.index]
                                      : qs.sink;
        if (chosen) sink = &chosen;
      }
      bool ok = false;
      bool retryable = false;
      std::exception_ptr error;
      try {
        match_attempt(qs, batch, task.use_cpu, sink, q.report);
        ok = true;
      } catch (const Error& e) {
        // The match phase is read-only on the shared graph, so no rollback
        // is needed — a failed attempt simply re-runs this one query.
        // Device OOM counts as retryable for the query (the shared budget
        // ladder owns capacity decisions).
        error = std::current_exception();
        retryable = e.transient() || e.code() == ErrorCode::kDeviceOom;
      } catch (...) {
        error = std::current_exception();
      }

      const std::lock_guard<std::mutex> lk(mu);
      --in_flight;
      if (ok) {
        q.report.backoff_ms += task.backoff_total;
        if (roles[task.index] == MatchRole::kMatch) {
          q.report.degradation_level = degradation_level_;
          q.report.effective_cache_budget = effective_cache_budget();
          qs.metrics->record_batch(q.report);
        }
      } else if (!retryable) {
        q.report.backoff_ms += task.backoff_total;
        outcomes[task.index] = MatchOutcome{error, false};
      } else {
        ++q.report.retries;
        Task next = task;
        --next.attempts_left;
        if (next.attempts_left <= 0) {
          if (!next.use_cpu && rec.cpu_fallback) {
            next.use_cpu = true;
            next.attempts_left = std::max(1, rec.max_cpu_attempts);
            q.report.cpu_fallback = true;
          } else {
            q.report.backoff_ms += task.backoff_total;
            outcomes[task.index] = MatchOutcome{error, true};
            cv.notify_all();
            continue;
          }
        }
        // Park until the backoff elapses instead of sleeping on a slot. The
        // backoff stays task-local (backoff_total) until a terminal outcome
        // merges it into the report in one step.
        next.ready_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   next.backoff_ms));
        next.backoff_total += next.backoff_ms;
        next.backoff_ms = std::min(next.backoff_ms * rec.backoff_multiplier,
                                   rec.backoff_max_ms);
        queue.push_back(next);
      }
      cv.notify_all();
    }
  });
}

bool MultiQueryEngine::replay_missed_batches(QueryState& qs,
                                             const QueryHealth& health,
                                             QueryCounters* delta,
                                             const MatchSink* sink) {
  auto& replayed = metrics::Registry::global().counter(
      options_.metric_prefix + metric::kServerCatchupBatchesReplayed);
  const std::uint64_t target = cumulative_.last_seq;
  *delta = QueryCounters{};
  if (health.last_applied_seq >= target) return true;  // no debt after all

  // Shadow base: the latest snapshot, but only when it does not overshoot
  // the frozen position (a snapshot past the position has already folded
  // batches this query still needs to MATCH — snapshot deferral makes that
  // rare, but an unregistration's forced compaction can cause it).
  const FaultSuspendGuard suspend(faults_);
  DynamicGraph shadow(initial_);
  std::uint64_t shadow_seq = 0;
  std::string why;
  if (auto snap =
          durable::load_snapshot_file(durability_.snapshot_path(), &why)) {
    if (snap->counters.last_seq > health.last_applied_seq) return false;
    shadow.restore(snap->graph);
    shadow_seq = snap->counters.last_seq;
  }

  wal::ReadResult log = wal::read_all(durability_.wal_path());
  std::unordered_map<std::uint64_t, const std::string*> batches;
  std::unordered_set<std::uint64_t> committed;
  std::unordered_set<std::uint64_t> shed;
  for (const wal::Record& rec : log.records) {
    if (rec.type == wal::RecordType::kBatch) {
      batches[rec.seq] = &rec.payload;
    } else if (rec.type == wal::RecordType::kCommit) {
      committed.insert(rec.seq);
    } else if (rec.type == wal::RecordType::kShed) {
      shed.insert(rec.seq);
    }
  }

  // (shadow_seq, position] rebuilds the graph the query last saw;
  // (position, target] is the debt proper: apply + match, with sink
  // delivery (a subscriber that lived through the outage receives the
  // missed embeddings now — at-least-once across crashes, since a crash
  // before this batch commits repeats the catch-up).
  HostPolicy policy(shadow);
  gpusim::TrafficCounters scratch;
  for (std::uint64_t seq = shadow_seq + 1; seq <= target; ++seq) {
    // A shed seq is an explained gap in the committed stream (the admission
    // layer dropped that batch for every query): nothing to apply or match.
    if (shed.count(seq) != 0) continue;
    const auto it = batches.find(seq);
    if (it == batches.end() || committed.count(seq) == 0) return false;
    auto batch = durable::decode_batch(*it->second);
    if (!batch.has_value()) return false;
    shadow.apply_batch(*batch);
    if (seq > health.last_applied_seq) {
      // Match against the pending-batch graph state — the same state the
      // live phase-4 matches in (reorg comes after the match).
      const MatchStats stats =
          qs.engine->match_batch(shadow, *batch, policy, scratch, sink);
      *delta += to_query_counters(stats);
      replayed.add();
    }
    shadow.reorganize();
  }
  return true;
}

ServerBatchReport MultiQueryEngine::process_batch(const EdgeBatch& batch) {
  return process_batch_inner(batch, nullptr);
}

void MultiQueryEngine::set_walk_scale(double scale) {
  walk_scale_ = std::min(1.0, std::max(scale, 1.0 / 1024.0));
}

std::uint64_t MultiQueryEngine::log_shed_batch(const std::string& payload) {
  static auto& m_records =
      metrics::Registry::global().counter(metric::kServerShedWalRecords);
  if (!durability_.options().enabled() || replaying_) return 0;
  const std::uint64_t seq = durability_.log_shed(payload);
  m_records.add();
  return seq;
}

ServerBatchReport MultiQueryEngine::process_batch_inner(const EdgeBatch& batch,
                                                        PipelineCtx* ctx) {
  if (registry_.empty()) {
    throw Error(ErrorCode::kConfig,
                "no query registered; register_query before process_batch");
  }
  const trace::Span batch_span(metrics_.span_batch());
  ServerBatchReport out;
  BatchReport& shared = out.shared;
  const RecoveryOptions& rec = options_.recovery;
  const BreakerOptions& breaker = options_.breaker;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen — once for all queries.
  // The pipelined schedule already did both while the previous batch's
  // fan-out was in flight; a staging failure is rethrown HERE, before any
  // state is touched, so it fails this batch exactly like an inline one.
  PipelineCtx::Front* front =
      ctx != nullptr && ctx->front != nullptr && ctx->front->valid
          ? ctx->front
          : nullptr;
  if (front != nullptr && front->error != nullptr) {
    std::rethrow_exception(front->error);
  }
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (front != nullptr) {
    owned = std::move(front->batch);
    use = &owned;
    shared.quarantine = std::move(front->quarantine);
  } else {
    if (faults_ != nullptr) {
      owned = batch;
      inject_batch_corruption(owned, faults_);
      use = &owned;
    }
    if (rec.sanitize_batches) {
      QuarantineReport quarantine;
      EdgeBatch clean = sanitize_batch(graph_, *use, quarantine);
      if (!quarantine.empty()) {
        owned = std::move(clean);
        use = &owned;
      }
      shared.quarantine = std::move(quarantine);
    }
  }

  // Recovery fast path: a replayed batch at or below the aggregate anchor
  // is already folded into every counter the image carries — it only needs
  // to move the GRAPH forward (update + reorg, no estimation, no matching).
  if (replaying_ && replay_graph_only_) {
    phase_update(graph_, *use, options_.check_invariants, metrics_, shared);
    phase_reorg(graph_, options_.check_invariants, options_.sim, metrics_,
                shared);
    out.queries.resize(states_.size());
    for (std::size_t i = 0; i < states_.size(); ++i) {
      out.queries[i].id = states_[i]->id;
      out.queries[i].skipped = true;
    }
    return out;
  }

  // Role classification. Live: healthy queries match, quarantined queries
  // whose cooldown elapsed run a half-open probe, the rest are skipped.
  // Replay: participation is decided by the recovered health and position
  // (probes never run under replay — cooldown is in-memory only and resets
  // conservatively on restart).
  const std::size_t n = states_.size();
  std::vector<MatchRole> roles(n, MatchRole::kSkip);
  for (std::size_t i = 0; i < n; ++i) {
    const QueryHealth& h = registry_.find(states_[i]->id)->health;
    if (replaying_) {
      roles[i] = (h.state == HealthState::kHealthy &&
                  h.last_applied_seq < replay_seq_)
                     ? MatchRole::kMatch
                     : MatchRole::kSkip;
    } else if (h.state == HealthState::kHealthy) {
      roles[i] = MatchRole::kMatch;
    } else if (states_[i]->cooldown_remaining == 0) {
      roles[i] = MatchRole::kProbe;
    }
  }

  // Staged-estimate validity: the front's estimate assumed the role set as
  // of the previous fan-out. Epilogue transitions (trips, re-joins) since
  // then change which queries contribute walks, so a changed kMatch set
  // discards the staged order and re-estimates inline — cache content is
  // count-neutral, but walk budget and arbitration must follow the roles
  // that actually match.
  const StagedEstimate* staged_est = nullptr;
  if (front != nullptr && front->est.valid) {
    bool same = front->roles.size() == n;
    for (std::size_t i = 0; same && i < n; ++i) {
      same = (front->roles[i] == MatchRole::kMatch) ==
             (roles[i] == MatchRole::kMatch);
    }
    if (same) {
      staged_est = &front->est;
    } else {
      metrics::Registry::global()
          .counter(options_.metric_prefix +
                   metric::kPipelineOverlapStagedDiscards)
          .add();
    }
  }

  // Durable logging: ONE WAL record per batch regardless of query count.
  // Deliberately NOT staged on the pool: the append stays on the engine
  // thread, after the previous batch's drain-point snapshot could have
  // compacted the WAL — a staged append could be truncated away by that
  // compaction while its commit marker survives.
  std::uint64_t wal_seq = 0;
  if (options_.durability.enabled() && !replaying_) {
    wal_seq = durability_.begin_batch(*use);
    shared.wal_seq = wal_seq;
  }

  const DynamicGraph::Snapshot snap = graph_.snapshot_for(*use);
  auto rollback = [&] {
    graph_.restore(snap);
    if (ctx != nullptr) {
      // Only the half-built staged epoch goes. The previous active epoch is
      // safe to keep across the retry (misses fall back to zero-copy, so a
      // stale cache can never change counts) and is replaced by the retry's
      // own publish before any match reads it.
      cache_.discard_staged();
    } else {
      cache_.clear();
    }
    if (options_.check_invariants) graph_.validate();
  };

  // Shared phases 1-3 under the shared recovery ladder. The terminal
  // escalation is not a CPU re-run (matching has not happened yet) but
  // dropping the cache: the batch is served zero-copy, which cannot change
  // any query's counts.
  bool drop_cache = false;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;
  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++shared.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!drop_cache && rec.cpu_fallback) {
        drop_cache = true;
        out.cache_dropped = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      // Interruptible parking, not std::this_thread::sleep_for: the shared
      // ladder runs on the engine thread, and a blocking sleep here stalled
      // every queued batch behind one flaky shared phase (the same
      // head-of-line bug the fan-out's ready-at queue already fixed).
      parker_.park_for_ms(backoff_ms);
      shared.backoff_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                            rec.backoff_max_ms);
    }
  };

  for (;;) {
    try {
      run_shared_attempt(*use, drop_cache, roles, shared, staged_est,
                         /*staged_pack=*/ctx != nullptr);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: every registered query needs the k-hop data
        // resident; shrinking cannot help.
        throw;
      }
      if (!drop_cache &&
          effective_cache_budget() > rec.min_cache_budget_bytes) {
        ++degradation_level_;
        metrics_.note_degradation();
        clean_device_batches_ = 0;
        ++shared.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      rollback();
      throw;
    }
  }

  // Phase 4: fan the match out across the participating queries. Each
  // query runs on a pool thread with its own executor, counters, and
  // metric scope; the graph and cache are read-only here, so the only
  // shared mutable state is thread-safe (metrics, traces, the injector).
  //
  // Pipelined extras: per-query sinks are swapped for deferred buffers
  // (flushed by process_stream only once this batch's commit durably
  // lands), and the NEXT batch's CPU front half rides the same pool as one
  // more task — its sanitize + estimate overlap these matches.
  out.queries.resize(n);
  std::vector<MatchOutcome> outcomes(n);
  std::vector<MatchSink> wrapped;
  const std::vector<MatchSink>* sink_override = nullptr;
  if (ctx != nullptr) {
    wrapped.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!states_[i]->sink) continue;
      auto* buf = &(*ctx->buffers)[i];
      wrapped[i] = [buf](const MatchPlan& plan,
                         std::span<const VertexId> bindings, int sign) {
        buf->push_back(PipelineCtx::SinkRecord{
            &plan, {bindings.begin(), bindings.end()}, sign});
      };
    }
    sink_override = &wrapped;
  }
  std::function<void()> staging;
  if (ctx != nullptr && ctx->next_batch != nullptr) {
    PipelineCtx::Front* nf = ctx->next_front;
    *nf = PipelineCtx::Front{};
    staging = [this, nf, next = ctx->next_batch, roles] {
      try {
        nf->batch = *next;
        if (faults_ != nullptr) {
          inject_batch_corruption(nf->batch, faults_);
        }
        if (options_.recovery.sanitize_batches) {
          QuarantineReport quarantine;
          EdgeBatch clean = sanitize_batch(graph_, nf->batch, quarantine);
          if (!quarantine.empty()) nf->batch = std::move(clean);
          nf->quarantine = std::move(quarantine);
        }
        nf->roles = roles;
        const bool uses_cache = options_.kind == EngineKind::kGcsm ||
                                options_.kind == EngineKind::kNaiveDegree ||
                                options_.kind == EngineKind::kVsgm;
        if (uses_cache) {
          // Pre-apply estimation: sees the graph one update earlier than
          // the serial schedule would (count-neutral; the rng draw order
          // per query is unchanged, one estimate per batch).
          nf->est = compute_shared_estimate(nf->batch, roles);
          metrics::Registry::global()
              .counter(options_.metric_prefix +
                       metric::kPipelineOverlapStagedEstimates)
              .add();
        }
        nf->valid = true;
      } catch (...) {
        // Surfaces when the next batch consumes the front — same failure
        // point an inline ingestion error would have.
        nf->error = std::current_exception();
        nf->valid = true;
      }
    };
  }
  run_match_fanout(*use, roles, out, outcomes, staging, sink_override);

  // Terminal per-query outcomes. A full-ladder exhaustion extends the
  // query's consecutive-failure streak; reaching the trip threshold stages
  // a trip (the batch then commits WITHOUT the poison tenant). Anything
  // short of a trip keeps the pre-breaker contract: the batch fails as a
  // unit, no trip is applied on a failed batch (streaks persist in memory,
  // so the NEXT failure trips), and non-retryable errors never trip.
  std::exception_ptr fatal;
  std::vector<std::size_t> tripped_idx;
  std::vector<std::size_t> probe_passed_idx;
  for (std::size_t i = 0; i < n; ++i) {
    QueryState& qs = *states_[i];
    if (roles[i] == MatchRole::kMatch) {
      if (outcomes[i].error == nullptr) {
        qs.consecutive_failures = 0;
        continue;
      }
      out.queries[i].report.stats = MatchStats{};  // a deadline trip may
                                                   // have left stats behind
      if (outcomes[i].ladder_exhausted) {
        ++qs.consecutive_failures;
        if (breaker.enabled && !replaying_ &&
            qs.consecutive_failures >= breaker.trip_after_failures) {
          tripped_idx.push_back(i);
          continue;
        }
      }
      if (fatal == nullptr) fatal = outcomes[i].error;
    } else if (roles[i] == MatchRole::kProbe) {
      auto& probes = metrics::Registry::global().counter(
          options_.metric_prefix + metric::kServerBreakerProbes);
      probes.add();
      out.queries[i].probed = true;
      out.queries[i].report.stats = MatchStats{};  // results discarded
      if (outcomes[i].error == nullptr) {
        probe_passed_idx.push_back(i);
      } else {
        // Still poisoned: back to full cooldown; the batch is unaffected.
        qs.cooldown_remaining = breaker.cooldown_batches;
      }
    }
  }
  if (fatal != nullptr) {
    // Sink callbacks other queries already made cannot be retracted — the
    // same caveat as the single-query commit protocol (docs/ROBUSTNESS.md).
    rollback();
    std::rethrow_exception(fatal);
  }

  // Re-join staging for passed probes. Exact catch-up replays the missed
  // committed batches on a shadow graph (sink delivery included), then the
  // re-joining query matches THIS batch on the live graph so it re-enters
  // the commit it re-joins in. Overflowed debt (or durability off, or a WAL
  // that no longer covers the debt) re-baselines post-commit instead.
  struct StagedRejoin {
    std::size_t index = 0;
    QueryHealth health;      // post-transition value (as of the previous batch)
    QueryCounters missed;    // catch-up correction folded into the commit
  };
  std::vector<StagedRejoin> rejoins;
  std::vector<std::size_t> rebase_idx;
  QueryCounters total_missed;
  if (ctx != nullptr && !probe_passed_idx.empty() &&
      options_.durability.enabled()) {
    // Catch-up replay reads the WAL file directly; every group-committed
    // marker must land first or the debt window would look uncommitted. A
    // committer failure is crash-equivalent and fails this batch.
    try {
      durability_.drain();
    } catch (...) {
      rollback();
      throw;
    }
  }
  for (const std::size_t i : probe_passed_idx) {
    QueryState& qs = *states_[i];
    const QueryHealth& h = registry_.find(qs.id)->health;
    // Pipelined: the re-joined subscriber's catch-up embeddings go through
    // the deferred buffer like everything else in this batch.
    const MatchSink* rejoin_sink = nullptr;
    if (ctx != nullptr) {
      if (wrapped[i]) rejoin_sink = &wrapped[i];
    } else if (qs.sink) {
      rejoin_sink = &qs.sink;
    }
    QueryCounters missed;
    if (h.debt_overflow || !options_.durability.enabled() ||
        !replay_missed_batches(qs, h, &missed, rejoin_sink)) {
      rebase_idx.push_back(i);
      continue;
    }
    StagedRejoin staged;
    staged.index = i;
    staged.health = h;
    staged.health.state = HealthState::kHealthy;
    staged.health.debt_overflow = false;
    staged.health.counters += missed;
    staged.health.last_applied_seq = cumulative_.last_seq;
    staged.missed = missed;
    total_missed += missed;
    rejoins.push_back(std::move(staged));
    // Participate in this batch: deterministic host re-match, sink on.
    const FaultSuspendGuard suspend(faults_);
    QueryReport& q = out.queries[i];
    q.report.stats = MatchStats{};
    gpusim::TrafficCounters qcounters;
    HostPolicy policy(graph_);
    phase_match(EngineKind::kCpu, *qs.engine, graph_, *use, policy,
                qcounters, rejoin_sink, options_.sim, *qs.metrics, q.report);
    q.report.traffic = qcounters.snapshot();
    qs.metrics->record_batch(q.report);
  }

  // Phase 5: reorganize once.
  phase_reorg(graph_, options_.check_invariants, options_.sim, metrics_,
              shared);
  shared.traffic = device_.counters().snapshot();

  // The shared budget heals on clean streaks, exactly like the Pipeline.
  if (!out.cache_dropped && degradation_level_ > 0) {
    if (shared.retries != 0) {
      clean_device_batches_ = 0;
    } else if (++clean_device_batches_ >=
               std::max(1, rec.heal_after_clean_batches)) {
      --degradation_level_;
      clean_device_batches_ = 0;
    }
  }

  shared.degradation_level = degradation_level_;
  shared.effective_cache_budget = effective_cache_budget();
  if (faults_ != nullptr) {
    shared.faults_observed = faults_->fired_count() - faults_before;
  }
  for (const QueryReport& q : out.queries) shared.stats += q.report.stats;

  // Health transitions ride the WAL BEFORE the commit marker, at the same
  // seq as the batch they belong to — re-joins first, then trips, each
  // carrying the full post-transition table (absolute, ascending ids) and
  // the post-transition aggregate as of the PREVIOUS batch (a re-join's
  // folds in the catch-up correction replay cannot recompute). Failure here
  // fails the whole batch: the marker must never land without them.
  std::uint64_t pending_revision = registry_.health_revision();
  if (wal_seq != 0 && (!rejoins.empty() || !tripped_idx.empty())) {
    std::map<QueryId, QueryHealth> working;
    for (const RegisteredQuery& e : registry_.entries()) {
      working.emplace(e.id, e.health);
    }
    durable::DurableCounters staged_aggregate = cumulative_;
    auto log_transition = [&](HealthTransition::Reason reason, QueryId id) {
      HealthTransition t;
      t.reason = reason;
      t.revision = ++pending_revision;
      t.query = id;
      t.aggregate = staged_aggregate;
      t.table.assign(working.begin(), working.end());
      if (ctx != nullptr) {
        // Group commit: the payload rides the commit unit; the committer
        // appends it before the marker at the same seq, so the "marker
        // never lands without its transitions" invariant holds at every
        // crash point — a committer write failure simply means neither
        // becomes durable.
        ctx->server_states->push_back(encode_transition(t));
        return;
      }
      try {
        durability_.log_server_state(wal_seq, encode_transition(t));
      } catch (...) {
        rollback();
        throw;
      }
    };
    for (const StagedRejoin& r : rejoins) {
      working[states_[r.index]->id] = r.health;
      staged_aggregate.cum_signed += r.missed.signed_embeddings;
      staged_aggregate.cum_positive += r.missed.positive;
      staged_aggregate.cum_negative += r.missed.negative;
      log_transition(HealthTransition::Reason::kRejoin, states_[r.index]->id);
    }
    for (const std::size_t i : tripped_idx) {
      QueryHealth& h = working[states_[i]->id];
      h.state = HealthState::kQuarantined;
      h.trips += 1;
      // The position stays frozen where the query last participated.
      log_transition(HealthTransition::Reason::kTrip, states_[i]->id);
    }
  }

  // Commit ONE marker carrying the aggregate counters across queries —
  // quarantined tenants contribute nothing, re-joining ones contribute
  // their batch delta plus the folded catch-up correction, so the
  // aggregate stays the sum of what every query durably observed.
  durable::DurableCounters next = cumulative_;
  next.batches_committed += 1;
  next.cum_signed +=
      shared.stats.signed_embeddings + total_missed.signed_embeddings;
  next.cum_positive += shared.stats.positive + total_missed.positive;
  next.cum_negative += shared.stats.negative + total_missed.negative;
  if (wal_seq != 0) {
    next.last_seq = wal_seq;
    if (ctx != nullptr) {
      // Group commit: hand the marker (and this batch's transition
      // payloads) to the committer thread. In-memory state advances
      // immediately — crash-safe because nothing is SURFACED (reports,
      // sinks) until durable_seq() reaches this batch, so a crash before
      // the marker lands re-exposes exactly what recovery replays.
      CommitUnit unit;
      unit.seq = wal_seq;
      unit.counters = next;
      unit.server_states = std::move(*ctx->server_states);
      try {
        durability_.enqueue_commit(std::move(unit));
      } catch (...) {
        rollback();
        throw;
      }
    } else {
      try {
        durability_.commit_batch(wal_seq, next);
      } catch (...) {
        rollback();
        throw;
      }
    }
  }
  cumulative_ = next;
  metrics_.record_batch(shared);

  // The batch is committed: apply the staged breaker effects. Position
  // bookkeeping uses the WAL seq (replay position under recovery, batch
  // ordinal without durability).
  const std::uint64_t pos_seq =
      replaying_ ? replay_seq_
                 : (wal_seq != 0 ? wal_seq : cumulative_.batches_committed);
  registry_.set_health_revision(pending_revision);
  for (std::size_t i = 0; i < n; ++i) {
    if (roles[i] != MatchRole::kMatch || outcomes[i].error != nullptr) {
      continue;
    }
    QueryHealth& h = registry_.find_mutable(states_[i]->id)->health;
    h.counters += to_query_counters(out.queries[i].report.stats);
    h.last_applied_seq = pos_seq;
  }
  for (const StagedRejoin& r : rejoins) {
    QueryState& qs = *states_[r.index];
    QueryHealth& h = registry_.find_mutable(qs.id)->health;
    h = r.health;
    h.counters += to_query_counters(out.queries[r.index].report.stats);
    h.last_applied_seq = pos_seq;
    qs.consecutive_failures = 0;
    qs.cooldown_remaining = 0;
    out.queries[r.index].rejoined = true;
    metrics::Registry::global()
        .counter(options_.metric_prefix + metric::kServerBreakerRejoins)
        .add();
  }
  for (const std::size_t i : tripped_idx) {
    QueryState& qs = *states_[i];
    QueryHealth& h = registry_.find_mutable(qs.id)->health;
    h.state = HealthState::kQuarantined;
    h.trips += 1;
    qs.cooldown_remaining = breaker.cooldown_batches;
    out.queries[i].tripped = true;
    metrics::Registry::global()
        .counter(options_.metric_prefix + metric::kServerBreakerTrips)
        .add();
  }

  // Re-baselines run post-commit on the live graph: a full static recount
  // replaces the query's counters outright (no sink — a re-baselined
  // subscriber missed its outage window by definition, which is exactly
  // why the debt window bounds the exact path). The commit marker above
  // deliberately carries no correction for them: the aggregate tracks what
  // was durably observed batch-by-batch, and a recount is not a batch
  // delta (the asymmetry is documented in docs/MULTI_QUERY.md).
  for (const std::size_t i : rebase_idx) {
    QueryState& qs = *states_[i];
    const FaultSuspendGuard suspend(faults_);
    gpusim::TrafficCounters scratch;
    HostPolicy policy(graph_);
    const MatchStats full = qs.engine->match_full(graph_, policy, scratch);
    QueryHealth& h = registry_.find_mutable(qs.id)->health;
    h.state = HealthState::kHealthy;
    h.debt_overflow = false;
    h.counters =
        QueryCounters{static_cast<std::int64_t>(full.positive),
                      full.positive, 0, full.seeds};
    h.last_applied_seq = pos_seq;
    qs.consecutive_failures = 0;
    qs.cooldown_remaining = 0;
    out.queries[i].rejoined = true;
    out.queries[i].rebaselined = true;
    metrics::Registry::global()
        .counter(options_.metric_prefix + metric::kServerBreakerRejoins)
        .add();
    metrics::Registry::global()
        .counter(options_.metric_prefix + metric::kServerCatchupRebaselines)
        .add();
  }

  if (!replaying_) {
    // Quarantine housekeeping: cooldowns tick on committed batches the
    // query sat out (a fresh trip or a failed probe starts a full window);
    // debt that outgrew the window overflows, which lifts the snapshot
    // deferral and downgrades the eventual re-join to a re-baseline.
    for (std::size_t i = 0; i < n; ++i) {
      QueryHealth& h = registry_.find_mutable(states_[i]->id)->health;
      if (h.state != HealthState::kQuarantined) continue;
      if (roles[i] == MatchRole::kSkip &&
          states_[i]->cooldown_remaining > 0) {
        --states_[i]->cooldown_remaining;
      }
      if (!h.debt_overflow &&
          current_position() - h.last_applied_seq > breaker.max_debt_batches) {
        h.debt_overflow = true;
      }
    }
    refresh_breaker_gauges();
  }

  if (wal_seq != 0 && ctx == nullptr) {
    // Durable tail (serial schedule only — the pipelined one defers both
    // the image rewrite and the snapshot to its committer drain points,
    // where the image's aggregate cannot run ahead of the durable markers
    // and compaction cannot truncate an in-flight commit).
    //
    // The registry image (per-query health + counters + the
    // aggregate anchor) is rewritten after EVERY commit. The snapshot is
    // attempted only when the image write succeeded — a snapshot past a
    // stale image would advance the graph beyond per-query counters the
    // image can still account for — and is deferred entirely while any
    // query owes exact catch-up debt (the WAL must keep those batches).
    const bool image_ok = write_registry_image();
    if (image_ok) {
      if (any_exact_catchup_debt()) {
        const std::uint64_t interval = options_.durability.snapshot_interval;
        if (interval > 0 &&
            durability_.commits_since_snapshot() >= interval) {
          metrics::Registry::global()
              .counter(options_.metric_prefix +
                       metric::kServerCatchupDeferredSnapshots)
              .add();
        }
      } else if (force_snapshot_pending_) {
        if (durability_.snapshot_now(graph_, cumulative_)) {
          force_snapshot_pending_ = false;
        }
      } else {
        durability_.maybe_snapshot(graph_, cumulative_);
      }
    }
  }
  shared.metrics = metrics::Registry::global().snapshot();
  return out;
}

void MultiQueryEngine::process_stream(const std::vector<EdgeBatch>& batches,
                                      const BatchReportSink& on_batch) {
  auto& overlap_batches = metrics::Registry::global().counter(
      options_.metric_prefix + metric::kPipelineOverlapBatches);

  // A finished batch parked until its commit marker durably lands.
  struct Pending {
    std::uint64_t seq = 0;
    ServerBatchReport report;
    std::vector<std::vector<PipelineCtx::SinkRecord>> buffers;
  };
  std::deque<Pending> pending;

  // Surfaces (sinks first, then the report — the serial per-batch order)
  // every pending batch whose commit is durable; `all` forces the rest out
  // after a drain. With durability off nothing defers.
  const bool durable_on = options_.durability.enabled();
  auto surface_ready = [&](bool all) {
    const std::uint64_t durable = durable_on ? durability_.durable_seq() : 0;
    while (!pending.empty()) {
      Pending& p = pending.front();
      if (!all && durable_on && p.seq != 0 && p.seq > durable) break;
      for (std::size_t i = 0; i < p.buffers.size() && i < states_.size();
           ++i) {
        const MatchSink& sink = states_[i]->sink;
        if (!sink) continue;
        for (const PipelineCtx::SinkRecord& r : p.buffers[i]) {
          sink(*r.plan, std::span<const VertexId>(r.bindings), r.sign);
        }
      }
      if (on_batch) on_batch(std::move(p.report));
      pending.pop_front();
    }
  };

  PipelineCtx::Front fronts[2];
  PipelineCtx::Front* front = &fronts[0];
  PipelineCtx::Front* next_front = &fronts[1];

  for (std::size_t k = 0; k < batches.size(); ++k) {
    PipelineCtx ctx;
    ctx.front = front->valid ? front : nullptr;
    ctx.next_batch = k + 1 < batches.size() ? &batches[k + 1] : nullptr;
    ctx.next_front = next_front;
    *next_front = PipelineCtx::Front{};
    Pending p;
    p.buffers.assign(states_.size(), {});
    ctx.buffers = &p.buffers;
    std::vector<std::string> server_states;
    ctx.server_states = &server_states;
    try {
      p.report = process_batch_inner(batches[k], &ctx);
    } catch (...) {
      // The failed batch rolled back (or the committer died — crash-
      // equivalent either way). Surface what already durably landed, drop
      // the rest (recovery re-derives them from the WAL), and propagate.
      try {
        surface_ready(false);
      } catch (...) {
        // A throwing subscriber must not mask the original failure.
      }
      throw;
    }
    p.seq = p.report.shared.wal_seq;
    pending.push_back(std::move(p));
    std::swap(front, next_front);
    overlap_batches.add();
    surface_ready(false);

    // Drain points: the snapshot cadence (and the registry-image rewrite
    // the serial schedule does per commit) runs only once every queued
    // marker has landed — compaction truncates the whole WAL, and the
    // image's aggregate anchor must never outrun the durable markers.
    if (durable_on) {
      const std::uint64_t interval = options_.durability.snapshot_interval;
      const bool due =
          force_snapshot_pending_ ||
          (interval > 0 && durability_.commits_since_snapshot() >= interval);
      if (!due) continue;
      if (any_exact_catchup_debt()) {
        metrics::Registry::global()
            .counter(options_.metric_prefix +
                     metric::kServerCatchupDeferredSnapshots)
            .add();
        continue;
      }
      durability_.drain();
      surface_ready(true);
      if (write_registry_image()) {
        if (force_snapshot_pending_) {
          if (durability_.snapshot_now(graph_, cumulative_)) {
            force_snapshot_pending_ = false;
          }
        } else {
          durability_.maybe_snapshot(graph_, cumulative_);
        }
      }
    }
  }

  // Stream tail: everything durable, every report surfaced, image fresh.
  if (durable_on) {
    durability_.drain();
    write_registry_image();
  }
  surface_ready(true);
}

std::uint64_t MultiQueryEngine::count_current_embeddings(QueryId id) {
  QueryState* qs = state_for(id);
  if (qs == nullptr) {
    throw Error(ErrorCode::kConfig,
                "unknown query id " + std::to_string(id));
  }
  const FaultSuspendGuard suspend(faults_);
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  return qs->engine->match_full(graph_, policy, scratch).positive;
}

}  // namespace gcsm::server
