#include "server/multi_query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "core/gpu_engine.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace gcsm::server {

MultiQueryEngine::MultiQueryEngine(const CsrGraph& initial,
                                   MultiQueryOptions options)
    : options_(std::move(options)),
      graph_(initial),
      device_(options_.sim),
      faults_(options_.fault_injector),
      durability_(options_.durability, options_.fault_injector),
      metrics_(options_.metric_prefix),
      match_pool_(options_.match_parallelism),
      seed_root_(options_.seed) {
  device_.set_fault_injector(faults_);
  graph_.set_fault_injector(faults_);
  if (!options_.durability.enabled()) return;
  registry_path_ = options_.durability.wal_dir + "/queries.reg";

  if (!options_.durability.recover_on_start) {
    // Fresh start: scrub durable state (recover() truncates the WAL and
    // removes the snapshot) including the registry image.
    recovery_info_ = durability_.recover();
    std::remove(registry_path_.c_str());
    return;
  }

  // The registry restores FIRST: replayed batches must run against exactly
  // the query set they were committed under (a registry change forces a
  // snapshot, so the WAL can only hold batches of the current set).
  if (const auto bytes = io::read_file_if_exists(registry_path_)) {
    std::string why;
    auto reg = QueryRegistry::decode(*bytes, &why);
    if (!reg.has_value()) {
      throw Error(ErrorCode::kRecovery,
                  "registry image " + registry_path_ + " damaged: " + why);
    }
    registry_ = std::move(*reg);
    for (const RegisteredQuery& entry : registry_.entries()) {
      states_.push_back(make_state(entry));
    }
  }

  recovery_info_ = durability_.recover();
  if (recovery_info_.snapshot_loaded) {
    graph_.restore(recovery_info_.graph);
    if (options_.check_invariants) graph_.validate();
    cumulative_ = recovery_info_.counters;
  }
  if (!recovery_info_.replay.empty()) {
    if (states_.empty()) {
      throw Error(ErrorCode::kRecovery,
                  "WAL holds committed batches but no query is registered");
    }
    // Deterministic replay through the restored query set. Sinks are not
    // attached yet, so no subscriber callback fires twice; faults are
    // suspended and `replaying_` prevents re-logging.
    const FaultSuspendGuard suspend(faults_);
    replaying_ = true;
    try {
      for (const auto& [seq, batch] : recovery_info_.replay) {
        process_batch(batch);
        cumulative_.last_seq = seq;
      }
    } catch (...) {
      replaying_ = false;
      throw;
    }
    replaying_ = false;
  }
  if (recovery_info_.have_expected && cumulative_ != recovery_info_.expected) {
    throw Error(
        ErrorCode::kRecovery,
        "recovery replay does not reproduce the committed counters "
        "(batches " +
            std::to_string(cumulative_.batches_committed) + " vs " +
            std::to_string(recovery_info_.expected.batches_committed) +
            ", signed " + std::to_string(cumulative_.cum_signed) + " vs " +
            std::to_string(recovery_info_.expected.cum_signed) + ")");
  }
}

std::uint64_t MultiQueryEngine::effective_cache_budget() const {
  const std::uint64_t shrunk =
      options_.cache_budget_bytes >> degradation_level_;
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

std::unique_ptr<MultiQueryEngine::QueryState> MultiQueryEngine::make_state(
    const RegisteredQuery& entry) {
  auto qs = std::make_unique<QueryState>();
  qs->id = entry.id;
  qs->weight = entry.weight;
  qs->executor = std::make_unique<gpusim::SimtExecutor>(options_.workers,
                                                        options_.schedule);
  qs->executor->set_fault_injector(faults_);
  qs->executor->set_watchdog_timeout_ms(
      options_.recovery.watchdog_timeout_ms);
  qs->engine =
      std::make_unique<MatchEngine>(entry.query, *qs->executor,
                                    options_.grain);
  qs->estimator = std::make_unique<FrequencyEstimator>(qs->engine->query(),
                                                       options_.estimator);
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // Same resident-set clamp as the single-query Pipeline: the page cache
    // must not silently swallow a scaled-down graph whole.
    gpusim::SimParams um_params = options_.sim;
    um_params.um_page_cache_bytes =
        std::min<std::uint64_t>(um_params.um_page_cache_bytes,
                                options_.cache_budget_bytes);
    qs->um_policy = std::make_unique<UnifiedMemoryPolicy>(graph_, um_params);
  }
  qs->metrics = std::make_unique<PipelineMetrics>(
      options_.metric_prefix + "q" + std::to_string(entry.id) + ".");
  // Independent deterministic stream per query id, so registration order
  // and the shared engine's own draws never shift a query's walks.
  qs->rng = seed_root_.split(entry.id);
  return qs;
}

MultiQueryEngine::QueryState* MultiQueryEngine::state_for(QueryId id) {
  for (auto& qs : states_) {
    if (qs->id == id) return qs.get();
  }
  return nullptr;
}

void MultiQueryEngine::persist_registry() {
  if (!options_.durability.enabled()) return;
  if (cumulative_.batches_committed > 0) {
    // Compact batches committed under the previous registry into a snapshot
    // so they can never replay into the new one.
    if (!durability_.snapshot_now(graph_, cumulative_)) {
      throw Error(ErrorCode::kSnapshotWrite,
                  "registry change needs a snapshot and the write failed");
    }
  }
  io::atomic_write_file(registry_path_, registry_.encode(),
                        options_.durability.fsync, faults_);
}

QueryId MultiQueryEngine::register_query(QueryGraph query, MatchSink sink,
                                         double weight) {
  const QueryId id = registry_.add(std::move(query), weight);
  try {
    states_.push_back(make_state(*registry_.find(id)));
    states_.back()->sink = std::move(sink);
    persist_registry();
  } catch (...) {
    if (!states_.empty() && states_.back()->id == id) states_.pop_back();
    registry_.remove(id);
    throw;
  }
  return id;
}

bool MultiQueryEngine::unregister_query(QueryId id) {
  const RegisteredQuery* entry = registry_.find(id);
  if (entry == nullptr) return false;
  RegisteredQuery saved = *entry;
  registry_.remove(id);
  std::unique_ptr<QueryState> saved_state;
  for (auto it = states_.begin(); it != states_.end(); ++it) {
    if ((*it)->id == id) {
      saved_state = std::move(*it);
      states_.erase(it);
      break;
    }
  }
  try {
    persist_registry();
  } catch (...) {
    registry_.restore(std::move(saved));
    auto it = states_.begin();
    while (it != states_.end() && (*it)->id < id) ++it;
    states_.insert(it, std::move(saved_state));
    throw;
  }
  return true;
}

void MultiQueryEngine::attach_sink(QueryId id, MatchSink sink) {
  QueryState* qs = state_for(id);
  if (qs == nullptr) {
    throw Error(ErrorCode::kConfig,
                "unknown query id " + std::to_string(id));
  }
  qs->sink = std::move(sink);
}

void MultiQueryEngine::run_shared_attempt(const EdgeBatch& batch,
                                          bool drop_cache,
                                          BatchReport& shared) {
  gpusim::TrafficCounters& counters = device_.counters();
  counters.reset();
  const gpusim::SimParams& sim = options_.sim;
  // A retried attempt starts from clean per-attempt fields.
  shared.wall_update_ms = 0.0;
  shared.wall_estimate_ms = 0.0;
  shared.wall_pack_ms = 0.0;
  shared.sim_estimate_s = 0.0;
  shared.sim_pack_s = 0.0;
  shared.walks = 0;
  shared.cached_vertices = 0;
  shared.cache_bytes = 0;

  // Step 1: dynamic graph maintenance — once for every query.
  phase_update(graph_, batch, options_.check_invariants, metrics_, shared);

  const bool uses_cache = options_.kind == EngineKind::kGcsm ||
                          options_.kind == EngineKind::kNaiveDegree ||
                          options_.kind == EngineKind::kVsgm;
  if (drop_cache || !uses_cache) return;

  // Step 2: ONE cross-query estimation. GCSM combines per-query random-walk
  // estimates by weight into a single frequency vector; the baselines'
  // orders are query-independent (degree) or take the worst case over the
  // registered patterns (VSGM's k = max diameter).
  std::vector<VertexId> order;
  {
    const trace::Span span(metrics_.span_estimate());
    const Timer t;
    if (options_.kind == EngineKind::kGcsm) {
      std::vector<double> combined(
          static_cast<std::size_t>(graph_.num_vertices()), 0.0);
      std::uint64_t total_ops = 0;
      for (auto& qsp : states_) {
        QueryState& qs = *qsp;
        const EstimateResult est =
            qs.estimator->estimate(graph_, batch, qs.rng);
        qs.metrics->note_estimate(est);
        shared.walks += est.walks;
        total_ops += est.ops;
        const std::size_t m =
            std::min(combined.size(), est.frequency.size());
        for (std::size_t v = 0; v < m; ++v) {
          combined[v] += qs.weight * est.frequency[v];
        }
      }
      order = select_by_frequency(combined);
      shared.sim_estimate_s =
          static_cast<double>(total_ops) /
          (sim.host_ops_per_sec_per_thread * sim.host_threads);
    } else if (options_.kind == EngineKind::kNaiveDegree) {
      order = select_by_degree(graph_);
      shared.sim_estimate_s =
          static_cast<double>(graph_.num_vertices()) /
          (sim.host_ops_per_sec_per_thread * sim.host_threads);
    } else {  // kVsgm
      std::uint32_t hops = 0;
      for (const auto& qsp : states_) {
        hops = std::max(hops, qsp->engine->query().diameter());
      }
      order = khop_vertices(graph_, batch, hops);
      shared.sim_estimate_s =
          static_cast<double>(total_list_bytes(graph_, order)) /
          (sim.host_mem_bandwidth_gbps * 1e9);
    }
    shared.wall_estimate_ms = t.millis();
  }

  // Step 3: ONE DCSR pack + DMA under the shared (possibly degraded) budget.
  phase_pack(options_.kind, cache_, graph_, order, effective_cache_budget(),
             options_.cache_budget_bytes, device_, counters,
             options_.check_invariants, sim, metrics_, shared);
}

void MultiQueryEngine::match_one(QueryState& qs, const EdgeBatch& batch,
                                 BatchReport& qr) {
  const RecoveryOptions& rec = options_.recovery;
  const gpusim::SimParams& sim = options_.sim;
  bool use_cpu = options_.kind == EngineKind::kCpu;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;
  const MatchSink* sink = (qs.sink && !replaying_) ? &qs.sink : nullptr;
  for (;;) {
    const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
    // Like the Pipeline, kernel fault sites stay armed only on device
    // attempts; the CPU path is genuinely more reliable.
    qs.executor->set_fault_injector(use_cpu ? nullptr : faults_);
    try {
      qr.stats = MatchStats{};
      gpusim::TrafficCounters qcounters;
      std::unique_ptr<AccessPolicy> owned;
      AccessPolicy* policy = nullptr;
      switch (kind) {
        case EngineKind::kCpu:
          owned = std::make_unique<HostPolicy>(graph_);
          break;
        case EngineKind::kZeroCopy:
          owned = std::make_unique<ZeroCopyPolicy>(graph_, sim);
          break;
        case EngineKind::kUnifiedMemory:
          policy = qs.um_policy.get();
          break;
        case EngineKind::kGcsm:
        case EngineKind::kNaiveDegree:
        case EngineKind::kVsgm:
          owned = std::make_unique<CachedPolicy>(graph_, cache_, sim);
          break;
      }
      if (policy == nullptr) policy = owned.get();
      phase_match(kind, *qs.engine, graph_, batch, *policy, qcounters, sink,
                  sim, *qs.metrics, qr);
      qr.traffic = qcounters.snapshot();
      break;
    } catch (const Error& e) {
      // The match phase is read-only on the shared graph, so no rollback is
      // needed — a failed attempt simply re-runs this one query. Device OOM
      // here counts as retryable for the query (the shared budget ladder
      // owns capacity decisions).
      const bool retryable =
          e.transient() || e.code() == ErrorCode::kDeviceOom;
      if (!retryable) throw;
      ++qr.retries;
      --attempts_left;
      if (attempts_left <= 0) {
        if (!use_cpu && rec.cpu_fallback) {
          use_cpu = true;
          attempts_left = std::max(1, rec.max_cpu_attempts);
          qr.cpu_fallback = true;
        } else {
          throw;
        }
      }
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        qr.backoff_ms += backoff_ms;
        backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                              rec.backoff_max_ms);
      }
    }
  }
  qr.degradation_level = degradation_level_;
  qr.effective_cache_budget = effective_cache_budget();
  qs.metrics->record_batch(qr);
}

ServerBatchReport MultiQueryEngine::process_batch(const EdgeBatch& batch) {
  if (registry_.empty()) {
    throw Error(ErrorCode::kConfig,
                "no query registered; register_query before process_batch");
  }
  const trace::Span batch_span(metrics_.span_batch());
  ServerBatchReport out;
  BatchReport& shared = out.shared;
  const RecoveryOptions& rec = options_.recovery;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen — once for all queries.
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (faults_ != nullptr) {
    owned = batch;
    inject_batch_corruption(owned, faults_);
    use = &owned;
  }
  if (rec.sanitize_batches) {
    QuarantineReport quarantine;
    EdgeBatch clean = sanitize_batch(graph_, *use, quarantine);
    if (!quarantine.empty()) {
      owned = std::move(clean);
      use = &owned;
    }
    shared.quarantine = std::move(quarantine);
  }

  // Durable logging: ONE WAL record per batch regardless of query count.
  std::uint64_t wal_seq = 0;
  if (options_.durability.enabled() && !replaying_) {
    wal_seq = durability_.begin_batch(*use);
    shared.wal_seq = wal_seq;
  }

  const DynamicGraph::Snapshot snap = graph_.snapshot_for(*use);
  auto rollback = [&] {
    graph_.restore(snap);
    cache_.clear();
    if (options_.check_invariants) graph_.validate();
  };

  // Shared phases 1-3 under the shared recovery ladder. The terminal
  // escalation is not a CPU re-run (matching has not happened yet) but
  // dropping the cache: the batch is served zero-copy, which cannot change
  // any query's counts.
  bool drop_cache = false;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;
  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++shared.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!drop_cache && rec.cpu_fallback) {
        drop_cache = true;
        out.cache_dropped = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      shared.backoff_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * rec.backoff_multiplier,
                            rec.backoff_max_ms);
    }
  };

  for (;;) {
    try {
      run_shared_attempt(*use, drop_cache, shared);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: every registered query needs the k-hop data
        // resident; shrinking cannot help.
        throw;
      }
      if (!drop_cache &&
          effective_cache_budget() > rec.min_cache_budget_bytes) {
        ++degradation_level_;
        metrics_.note_degradation();
        clean_device_batches_ = 0;
        ++shared.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      rollback();
      throw;
    }
  }

  // Phase 4: fan the match out across the registered queries. Each query
  // runs on a pool thread with its own executor, counters, and metric
  // scope; the graph and cache are read-only here, so the only shared
  // mutable state is thread-safe (metrics, traces, the fault injector).
  const std::size_t n = states_.size();
  out.queries.resize(n);
  std::vector<std::exception_ptr> errors(n);
  match_pool_.parallel_for(
      n, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          out.queries[i].id = states_[i]->id;
          out.queries[i].name = states_[i]->engine->query().name();
          try {
            match_one(*states_[i], *use, out.queries[i].report);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i] != nullptr) {
      // A query failed past its whole per-query ladder: the batch fails as
      // a unit (memory must agree with the durable log). Sink callbacks
      // other queries already made cannot be retracted — the same caveat
      // as the single-query commit protocol (docs/ROBUSTNESS.md).
      rollback();
      std::rethrow_exception(errors[i]);
    }
  }

  // Phase 5: reorganize once.
  phase_reorg(graph_, options_.check_invariants, options_.sim, metrics_,
              shared);
  shared.traffic = device_.counters().snapshot();

  // The shared budget heals on clean streaks, exactly like the Pipeline.
  if (!out.cache_dropped && degradation_level_ > 0) {
    if (shared.retries != 0) {
      clean_device_batches_ = 0;
    } else if (++clean_device_batches_ >=
               std::max(1, rec.heal_after_clean_batches)) {
      --degradation_level_;
      clean_device_batches_ = 0;
    }
  }

  shared.degradation_level = degradation_level_;
  shared.effective_cache_budget = effective_cache_budget();
  if (faults_ != nullptr) {
    shared.faults_observed = faults_->fired_count() - faults_before;
  }
  for (const QueryReport& q : out.queries) shared.stats += q.report.stats;

  // Commit ONE marker carrying the aggregate counters across queries.
  durable::DurableCounters next = cumulative_;
  next.batches_committed += 1;
  next.cum_signed += shared.stats.signed_embeddings;
  next.cum_positive += shared.stats.positive;
  next.cum_negative += shared.stats.negative;
  if (wal_seq != 0) {
    next.last_seq = wal_seq;
    try {
      durability_.commit_batch(wal_seq, next);
    } catch (...) {
      rollback();
      throw;
    }
  }
  cumulative_ = next;
  metrics_.record_batch(shared);
  if (wal_seq != 0) durability_.maybe_snapshot(graph_, next);
  shared.metrics = metrics::Registry::global().snapshot();
  return out;
}

std::uint64_t MultiQueryEngine::count_current_embeddings(QueryId id) {
  QueryState* qs = state_for(id);
  if (qs == nullptr) {
    throw Error(ErrorCode::kConfig,
                "unknown query id " + std::to_string(id));
  }
  const FaultSuspendGuard suspend(faults_);
  gpusim::TrafficCounters scratch;
  HostPolicy policy(graph_);
  return qs->engine->match_full(graph_, policy, scratch).positive;
}

}  // namespace gcsm::server
