// Overload controller in front of MultiQueryEngine (docs/ROBUSTNESS.md,
// "Overload & admission control").
//
// The engine itself assumes batches arrive at a rate the device can absorb;
// this layer makes a standing-query service survive bursty, adversarial, and
// sustained-overload traffic with bounded memory and an explicit, audited
// degradation story. Four mechanisms, engaged in a documented order:
//
//   1. degrade   — sustained high queue occupancy shrinks the walk-count
//                  scale (MultiQueryEngine::set_walk_scale) step by step
//                  toward walk_scale_floor: cheaper estimates, identical
//                  match counts (cache content never changes counts);
//   2. shed      — a batch whose queue wait exceeds queue_deadline_s is
//                  dropped whole by policy (oldest-first, or lowest-impact:
//                  the queued batch with the fewest edges goes first). Every
//                  shed batch is durably logged as a kShed WAL record, so
//                  the committed stream's seq gaps stay explained and
//                  recovery plus exact catch-up remain exactly-once;
//   3. reject    — a full ingress queue refuses the submission outright:
//                  kOverload for callers that asked not to block;
//   4. backpressure — blocking callers park on a util::ParkingLot until a
//                  slot frees; the queue NEVER grows past max_queue.
//
// Admission pacing is a global token bucket plus one bucket per source
// (util/token_bucket.hpp): tokens gate when a queued batch may START
// service, so a flooding source is throttled without starving the rest.
//
// Two driving modes share one controller and one accounting:
//
//   * virtual clock (offer/pump/finish) — the caller advances an explicit
//     clock and service time is the batch's deterministic SIMULATED cost,
//     so a seeded overload run reproduces the same admit/shed/reject
//     sequence bit-for-bit (bench/overload, tests);
//   * wall clock (submit/serve_pending/close) — producer threads submit
//     with real backpressure while the engine thread serves (csm_cli).
//
// Conservation invariants (stats()): offered == admitted + rejected, and
// admitted == committed + shed + queue_depth (== committed + shed once
// finish()/close() drained the queue).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "server/multi_query_engine.hpp"
#include "util/parking.hpp"
#include "util/timer.hpp"
#include "util/token_bucket.hpp"

namespace gcsm::server {

// Which queued batch is dropped when the head has outlived the deadline.
enum class ShedPolicy : std::uint8_t {
  kOldestFirst = 1,   // drop the expired head itself
  kLowestImpact = 2,  // drop the queued batch with the fewest edges
};

const char* shed_policy_name(ShedPolicy policy);
// "oldest" / "lowest-impact"; anything else throws Error(kConfig) with the
// CLI contract message "shed-policy: <text>".
ShedPolicy parse_shed_policy(const std::string& text);

struct AdmissionOptions {
  // Bounded ingress queue: the hard memory cap (> 0).
  std::size_t max_queue = 64;
  // Global admission governor, batches per second (0 = unlimited).
  double admit_rate = 0.0;
  double admit_burst = 8.0;
  // Per-source token bucket (0 = unlimited).
  double per_source_rate = 0.0;
  double per_source_burst = 4.0;
  ShedPolicy shed_policy = ShedPolicy::kOldestFirst;
  // Shed a batch whose queue wait would exceed this (0 = never shed).
  double queue_deadline_s = 0.0;
  // Wall-clock submit(): block on backpressure (true) or refuse with
  // kOverload (false). The virtual-clock offer() always refuses when full —
  // its caller owns the clock, so blocking is meaningless there.
  bool block_on_full = true;
  // Degradation ladder: occupancy at or above `high` for sustain_ticks
  // consecutive arrivals halves the walk scale (down to the floor);
  // occupancy at or below `low` for sustain_ticks arrivals doubles it back
  // toward 1.0.
  double overload_high_watermark = 0.75;
  double overload_low_watermark = 0.25;
  int sustain_ticks = 4;
  double walk_scale_floor = 0.125;
};

enum class AdmitResult : std::uint8_t {
  kAdmitted = 0,
  kRejectedQueueFull,  // bounded queue full (kOverload to throwing callers)
  kRejectedClosed,     // controller closed while the caller was blocked
};

// Decoded kShed WAL payload (util serialization; stable on-disk order:
// source, ordinal, edges, reason, arrival_us).
struct ShedPayload {
  std::uint32_t source = 0;
  std::uint64_t ordinal = 0;  // 1-based submission ordinal
  std::uint64_t edges = 0;
  std::uint8_t reason = 0;  // ShedPolicy that selected the victim
  std::uint64_t arrival_us = 0;
};

std::string encode_shed_payload(const ShedPayload& payload);
// False on truncated/garbled bytes.
bool decode_shed_payload(const std::string& bytes, ShedPayload* out);

// One shed decision, for audits and tests (mirrors the WAL payload plus the
// seq the audit record consumed; 0 when durability is off).
struct ShedEvent {
  std::uint64_t wal_seq = 0;
  ShedPayload payload;
  double shed_s = 0.0;  // controller clock when the drop happened
};

struct AdmissionStats {
  std::uint64_t offered = 0;    // submit()/offer() calls
  std::uint64_t admitted = 0;   // entered the bounded queue
  std::uint64_t committed = 0;  // served through the engine
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t throttled = 0;  // submissions that blocked at least once
  std::uint64_t scale_downs = 0;
  std::uint64_t scale_ups = 0;
  // 1-based submission ordinal at each first escalation (0 = never); the
  // degradation ladder contract is first_scale_down <= first_shed <=
  // first_reject under a monotonically building overload.
  std::uint64_t first_scale_down_ordinal = 0;
  std::uint64_t first_shed_ordinal = 0;
  std::uint64_t first_reject_ordinal = 0;
  // Admission-to-commit latency per committed batch, in admission order.
  std::vector<double> latency_s;
};

// Per-commit notification: the admitted batch's engine report plus its
// admission-to-commit latency on the controller's clock.
struct AdmissionCommit {
  std::uint64_t ordinal = 0;
  std::uint32_t source = 0;
  double arrival_s = 0.0;
  double commit_s = 0.0;
  double latency_s = 0.0;
  ServerBatchReport report;
};
using AdmissionCommitSink = std::function<void(AdmissionCommit&&)>;

class AdmissionController {
 public:
  // Validates options (Error(kConfig) on a zero queue, negative rates, or
  // inverted watermarks). The engine must outlive the controller; the
  // controller owns the engine's walk scale while alive.
  AdmissionController(MultiQueryEngine& engine, AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // --- Deterministic virtual-clock mode (single engine thread) ----------
  // Offers one batch arriving at `now_s`. Admits into the bounded queue or
  // refuses when full. now_s must be non-decreasing across calls.
  AdmitResult offer(EdgeBatch batch, std::uint32_t source, double now_s);
  // Services every queued batch whose (arrival, server-busy, token) start
  // time lands at or before now_s, shedding expired batches first. The sink
  // sees each commit in service order.
  void pump(double now_s, const AdmissionCommitSink& on_commit = {});
  // Drains the queue completely (deadline shedding still applies, measured
  // at each batch's would-be service start).
  void finish(const AdmissionCommitSink& on_commit = {});

  // --- Wall-clock mode (producer threads + one engine thread) -----------
  // Thread-safe producer entry: admits, blocks on backpressure (when
  // block_on_full), or refuses. Arrival time is the controller's wall clock.
  AdmitResult submit(EdgeBatch batch, std::uint32_t source);
  // submit() that converts a refusal into Error(kOverload).
  void submit_or_throw(EdgeBatch batch, std::uint32_t source);
  // Engine-thread service loop body: serves (and sheds) what is currently
  // queued, waiting out token-bucket pacing, then returns. Returns the
  // number of batches served.
  std::size_t serve_pending(const AdmissionCommitSink& on_commit = {});
  // Wakes every blocked submitter with kRejectedClosed and refuses all
  // future submissions. serve_pending may still drain the queue afterwards.
  void close();

  const AdmissionOptions& options() const { return options_; }
  const AdmissionStats& stats() const { return stats_; }
  const std::vector<ShedEvent>& shed_events() const { return shed_events_; }
  std::size_t queue_depth() const;
  double walk_scale() const { return scale_; }
  // The virtual clock's server-free time (when the last service finished).
  double server_free_s() const { return server_free_s_; }

 private:
  struct Queued {
    EdgeBatch batch;
    std::uint32_t source = 0;
    std::uint64_t ordinal = 0;
    double arrival_s = 0.0;
  };

  // All *_locked helpers require mu_ held.
  util::TokenBucket& source_bucket_locked(std::uint32_t source);
  // Earliest time the queue head could start service at or after `from_s`
  // (server-busy + global + per-source tokens). Queue must be non-empty.
  double head_start_locked(double from_s);
  // Drops one batch per policy because the head's wait blew the deadline.
  void shed_one_locked(double now_s);
  // Occupancy tick of the degradation ladder, at each arrival.
  void ladder_tick_locked(std::uint64_t ordinal);
  // Serves queued batches until the head's start exceeds now_s; `wait`
  // (wall-clock mode) parks until pacing allows the head to start instead
  // of returning. Returns batches served.
  std::size_t run_queue(double now_s, bool wait,
                        const AdmissionCommitSink& on_commit);

  MultiQueryEngine& engine_;
  AdmissionOptions options_;
  Timer clock_;  // wall-clock mode arrival/commit timestamps

  mutable std::mutex mu_;
  std::deque<Queued> queue_;
  util::TokenBucket global_bucket_;
  std::unordered_map<std::uint32_t, util::TokenBucket> source_buckets_;
  util::ParkingLot not_full_;  // blocked submitters park here
  bool closed_ = false;

  // Engine-thread state (virtual clock, ladder, accounting). The wall-clock
  // mode shares it: serve_pending runs on the single engine thread.
  double server_free_s_ = 0.0;
  double scale_ = 1.0;
  int high_ticks_ = 0;
  int low_ticks_ = 0;
  AdmissionStats stats_;
  std::vector<ShedEvent> shed_events_;
};

}  // namespace gcsm::server
