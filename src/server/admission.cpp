#include "server/admission.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace gcsm::server {
namespace {

// Deterministic simulated service time of one batch: the shared phases once,
// plus every query's match (the same accounting bench/multi_query uses).
double simulated_service_s(const ServerBatchReport& report) {
  double s = report.shared.sim_total_s();
  for (const QueryReport& q : report.queries) s += q.report.sim_match_s;
  return s;
}

constexpr std::size_t kShedPayloadBytes = 4 + 8 + 8 + 1 + 8;

}  // namespace

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kOldestFirst:
      return "oldest";
    case ShedPolicy::kLowestImpact:
      return "lowest-impact";
  }
  return "?";
}

ShedPolicy parse_shed_policy(const std::string& text) {
  if (text == "oldest") return ShedPolicy::kOldestFirst;
  if (text == "lowest-impact") return ShedPolicy::kLowestImpact;
  throw Error(ErrorCode::kConfig, "shed-policy: " + text);
}

std::string encode_shed_payload(const ShedPayload& payload) {
  std::string out;
  out.reserve(kShedPayloadBytes);
  io::put_u32(out, payload.source);
  io::put_u64(out, payload.ordinal);
  io::put_u64(out, payload.edges);
  io::put_u8(out, payload.reason);
  io::put_u64(out, payload.arrival_us);
  return out;
}

bool decode_shed_payload(const std::string& bytes, ShedPayload* out) {
  if (bytes.size() != kShedPayloadBytes) return false;
  io::ByteReader r(bytes);
  out->source = r.get_u32();
  out->ordinal = r.get_u64();
  out->edges = r.get_u64();
  out->reason = r.get_u8();
  out->arrival_us = r.get_u64();
  return true;
}

AdmissionController::AdmissionController(MultiQueryEngine& engine,
                                         AdmissionOptions options)
    : engine_(engine),
      options_(options),
      global_bucket_(options.admit_rate, options.admit_burst) {
  if (options_.max_queue == 0) {
    throw Error(ErrorCode::kConfig, "max-queue: 0");
  }
  if (options_.admit_rate < 0.0) {
    throw Error(ErrorCode::kConfig,
                "admit-rate: " + std::to_string(options_.admit_rate));
  }
  if (options_.per_source_rate < 0.0) {
    throw Error(ErrorCode::kConfig,
                "per-source-rate: " + std::to_string(options_.per_source_rate));
  }
  if (options_.queue_deadline_s < 0.0) {
    throw Error(ErrorCode::kConfig,
                "shed-deadline: " + std::to_string(options_.queue_deadline_s));
  }
  if (options_.overload_low_watermark < 0.0 ||
      options_.overload_high_watermark > 1.0 ||
      options_.overload_low_watermark >= options_.overload_high_watermark) {
    throw Error(ErrorCode::kConfig,
                "overload-watermarks: " +
                    std::to_string(options_.overload_low_watermark) + ".." +
                    std::to_string(options_.overload_high_watermark));
  }
  if (options_.sustain_ticks < 1) {
    throw Error(ErrorCode::kConfig,
                "sustain-ticks: " + std::to_string(options_.sustain_ticks));
  }
  if (options_.walk_scale_floor <= 0.0 || options_.walk_scale_floor > 1.0) {
    throw Error(ErrorCode::kConfig,
                "walk-scale-floor: " +
                    std::to_string(options_.walk_scale_floor));
  }
  metrics::Registry::global()
      .gauge(metric::kServerAdmissionWalkScale)
      .set(scale_);
}

util::TokenBucket& AdmissionController::source_bucket_locked(
    std::uint32_t source) {
  auto it = source_buckets_.find(source);
  if (it == source_buckets_.end()) {
    it = source_buckets_
             .emplace(source, util::TokenBucket(options_.per_source_rate,
                                                options_.per_source_burst))
             .first;
  }
  return it->second;
}

double AdmissionController::head_start_locked(double from_s) {
  const Queued& head = queue_.front();
  double t = std::max(head.arrival_s, std::max(from_s, server_free_s_));
  t += global_bucket_.seconds_until(t);
  t += source_bucket_locked(head.source).seconds_until(t);
  return t;
}

void AdmissionController::shed_one_locked(double now_s) {
  static auto& m_batches =
      metrics::Registry::global().counter(metric::kServerShedBatches);
  static auto& m_edges =
      metrics::Registry::global().counter(metric::kServerShedEdges);
  static auto& g_depth =
      metrics::Registry::global().gauge(metric::kServerAdmissionQueueDepth);
  // Pick the victim: the expired head, or the cheapest batch in the queue
  // (fewest edges; ties keep the oldest so the choice is deterministic).
  std::size_t victim = 0;
  if (options_.shed_policy == ShedPolicy::kLowestImpact) {
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].batch.updates.size() <
          queue_[victim].batch.updates.size()) {
        victim = i;
      }
    }
  }
  const Queued& q = queue_[victim];
  ShedEvent ev;
  ev.payload.source = q.source;
  ev.payload.ordinal = q.ordinal;
  ev.payload.edges = q.batch.updates.size();
  ev.payload.reason = static_cast<std::uint8_t>(options_.shed_policy);
  ev.payload.arrival_us =
      static_cast<std::uint64_t>(std::max(0.0, q.arrival_s) * 1e6);
  ev.shed_s = now_s;
  // Durable audit first: the kShed record consumes the seq the batch would
  // have taken, so recovery and catch-up see an explained gap, never a
  // missing batch (no-op when durability is off).
  ev.wal_seq = engine_.log_shed_batch(encode_shed_payload(ev.payload));
  ++stats_.shed;
  if (stats_.first_shed_ordinal == 0) stats_.first_shed_ordinal = q.ordinal;
  m_batches.add();
  m_edges.add(ev.payload.edges);
  shed_events_.push_back(std::move(ev));
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
  g_depth.set(static_cast<double>(queue_.size()));
  not_full_.interrupt_all();
}

void AdmissionController::ladder_tick_locked(std::uint64_t ordinal) {
  static auto& g_scale =
      metrics::Registry::global().gauge(metric::kServerAdmissionWalkScale);
  const double occupancy = static_cast<double>(queue_.size()) /
                           static_cast<double>(options_.max_queue);
  if (occupancy >= options_.overload_high_watermark) {
    low_ticks_ = 0;
    if (++high_ticks_ >= options_.sustain_ticks) {
      high_ticks_ = 0;
      if (scale_ > options_.walk_scale_floor) {
        scale_ = std::max(options_.walk_scale_floor, scale_ * 0.5);
        ++stats_.scale_downs;
        if (stats_.first_scale_down_ordinal == 0) {
          stats_.first_scale_down_ordinal = ordinal;
        }
        g_scale.set(scale_);
      }
    }
  } else if (occupancy <= options_.overload_low_watermark) {
    high_ticks_ = 0;
    if (++low_ticks_ >= options_.sustain_ticks) {
      low_ticks_ = 0;
      if (scale_ < 1.0) {
        scale_ = std::min(1.0, scale_ * 2.0);
        ++stats_.scale_ups;
        g_scale.set(scale_);
      }
    }
  } else {
    high_ticks_ = 0;
    low_ticks_ = 0;
  }
}

AdmitResult AdmissionController::offer(EdgeBatch batch, std::uint32_t source,
                                       double now_s) {
  static auto& m_admitted =
      metrics::Registry::global().counter(metric::kServerAdmissionAdmitted);
  static auto& m_rejected =
      metrics::Registry::global().counter(metric::kServerAdmissionRejected);
  static auto& g_depth =
      metrics::Registry::global().gauge(metric::kServerAdmissionQueueDepth);
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t ordinal = ++stats_.offered;
  if (closed_ || queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    if (stats_.first_reject_ordinal == 0) {
      stats_.first_reject_ordinal = ordinal;
    }
    m_rejected.add();
    ladder_tick_locked(ordinal);
    engine_.set_walk_scale(scale_);
    return closed_ ? AdmitResult::kRejectedClosed
                   : AdmitResult::kRejectedQueueFull;
  }
  queue_.push_back(Queued{std::move(batch), source, ordinal, now_s});
  ++stats_.admitted;
  m_admitted.add();
  g_depth.set(static_cast<double>(queue_.size()));
  ladder_tick_locked(ordinal);
  // offer() runs on the engine thread, so the new scale applies immediately.
  engine_.set_walk_scale(scale_);
  return AdmitResult::kAdmitted;
}

AdmitResult AdmissionController::submit(EdgeBatch batch,
                                        std::uint32_t source) {
  static auto& m_admitted =
      metrics::Registry::global().counter(metric::kServerAdmissionAdmitted);
  static auto& m_rejected =
      metrics::Registry::global().counter(metric::kServerAdmissionRejected);
  static auto& m_throttled =
      metrics::Registry::global().counter(metric::kServerAdmissionThrottled);
  static auto& g_depth =
      metrics::Registry::global().gauge(metric::kServerAdmissionQueueDepth);
  std::uint64_t ordinal = 0;
  bool counted_throttle = false;
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (ordinal == 0) ordinal = ++stats_.offered;
      if (closed_) {
        ++stats_.rejected;
        if (stats_.first_reject_ordinal == 0) {
          stats_.first_reject_ordinal = ordinal;
        }
        m_rejected.add();
        return AdmitResult::kRejectedClosed;
      }
      if (queue_.size() < options_.max_queue) {
        queue_.push_back(
            Queued{std::move(batch), source, ordinal, clock_.seconds()});
        ++stats_.admitted;
        m_admitted.add();
        g_depth.set(static_cast<double>(queue_.size()));
        // Scale changes are applied by the engine thread (serve_pending);
        // the tick only updates the ladder state here.
        ladder_tick_locked(ordinal);
        not_full_.interrupt_all();  // doorbell for a parked server thread
        return AdmitResult::kAdmitted;
      }
      if (!options_.block_on_full) {
        ++stats_.rejected;
        if (stats_.first_reject_ordinal == 0) {
          stats_.first_reject_ordinal = ordinal;
        }
        m_rejected.add();
        ladder_tick_locked(ordinal);
        return AdmitResult::kRejectedQueueFull;
      }
      if (!counted_throttle) {
        counted_throttle = true;
        ++stats_.throttled;
        m_throttled.add();
      }
    }
    // Backpressure: park until a slot frees (pop/shed/close interrupt).
    not_full_.park_for_ms(50.0);
  }
}

void AdmissionController::submit_or_throw(EdgeBatch batch,
                                          std::uint32_t source) {
  const AdmitResult r = submit(std::move(batch), source);
  if (r == AdmitResult::kAdmitted) return;
  throw Error(ErrorCode::kOverload,
              r == AdmitResult::kRejectedClosed
                  ? "admission refused: controller closed"
                  : "admission refused: ingress queue full (max-queue " +
                        std::to_string(options_.max_queue) + ")");
}

std::size_t AdmissionController::run_queue(double now_s, bool wait,
                                           const AdmissionCommitSink& on_commit) {
  static auto& g_depth =
      metrics::Registry::global().gauge(metric::kServerAdmissionQueueDepth);
  static auto& h_latency =
      metrics::Registry::global().histogram(metric::kServerAdmissionLatencyMs);
  std::size_t served = 0;
  for (;;) {
    Queued item;
    double start = 0.0;
    double park_ms = -1.0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (;;) {
        if (queue_.empty()) return served;
        start = head_start_locked(wait ? clock_.seconds() : 0.0);
        if (options_.queue_deadline_s > 0.0 &&
            start - queue_.front().arrival_s > options_.queue_deadline_s) {
          shed_one_locked(start);
          continue;
        }
        if (start > now_s) {
          if (!wait) return served;
          const double now = clock_.seconds();
          if (start > now) {
            // Token pacing: park out the gap (outside the lock) and
            // recompute — a shed or a close may change the head meanwhile.
            park_ms = (start - now) * 1e3;
            break;
          }
          now_s = now;
        }
        global_bucket_.try_take(start);
        source_bucket_locked(queue_.front().source).try_take(start);
        item = std::move(queue_.front());
        queue_.pop_front();
        g_depth.set(static_cast<double>(queue_.size()));
        // Apply any ladder scale decided since the last service on this,
        // the engine thread.
        engine_.set_walk_scale(scale_);
        not_full_.interrupt_all();
        break;
      }
    }
    if (park_ms >= 0.0) {
      not_full_.park_for_ms(park_ms);
      continue;
    }
    // Service outside the lock: producers keep submitting meanwhile.
    ServerBatchReport report = engine_.process_batch(item.batch);
    ++served;

    AdmissionCommit commit;
    commit.ordinal = item.ordinal;
    commit.source = item.source;
    commit.arrival_s = item.arrival_s;
    if (wait) {
      commit.commit_s = clock_.seconds();
    } else {
      commit.commit_s = start + simulated_service_s(report);
    }
    commit.latency_s = std::max(0.0, commit.commit_s - item.arrival_s);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      server_free_s_ = commit.commit_s;
      ++stats_.committed;
      stats_.latency_s.push_back(commit.latency_s);
    }
    h_latency.observe(commit.latency_s * 1e3);
    if (on_commit) {
      commit.report = std::move(report);
      on_commit(std::move(commit));
    }
  }
}

void AdmissionController::pump(double now_s,
                               const AdmissionCommitSink& on_commit) {
  run_queue(now_s, false, on_commit);
}

void AdmissionController::finish(const AdmissionCommitSink& on_commit) {
  run_queue(std::numeric_limits<double>::infinity(), false, on_commit);
}

std::size_t AdmissionController::serve_pending(
    const AdmissionCommitSink& on_commit) {
  return run_queue(clock_.seconds(), true, on_commit);
}

void AdmissionController::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.interrupt_all();
}

std::size_t AdmissionController::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace gcsm::server
