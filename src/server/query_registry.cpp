#include "server/query_registry.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "util/durable_io.hpp"
#include "util/error.hpp"

namespace gcsm::server {
namespace {

constexpr char kMagic[4] = {'G', 'Q', 'R', 'Y'};
// v1: {id, weight, name, labels, edges} per entry.
// v2: + header health_revision and aggregate-counter anchor, + per-entry
//     QueryHealth (breaker state).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldestDecodableVersion = 1;

// Bounds for decode-time allocation checks: a damaged length field must not
// turn into a giant allocation.
constexpr std::uint64_t kMaxEntries = 1u << 20;
constexpr std::uint64_t kMaxNameBytes = 1u << 16;

}  // namespace

QueryId QueryRegistry::add(QueryGraph query, double weight) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    throw Error(ErrorCode::kConfig,
                "query weight must be positive and finite, got " +
                    std::to_string(weight));
  }
  const QueryId id = next_id_++;
  entries_.push_back(RegisteredQuery{id, weight, std::move(query), {}});
  return id;
}

bool QueryRegistry::remove(QueryId id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

void QueryRegistry::restore(RegisteredQuery entry) {
  if (entry.id == 0 || entry.id >= next_id_ || find(entry.id) != nullptr) {
    throw Error(ErrorCode::kConfig,
                "cannot restore query id " + std::to_string(entry.id));
  }
  auto it = entries_.begin();
  while (it != entries_.end() && it->id < entry.id) ++it;
  entries_.insert(it, std::move(entry));
}

const RegisteredQuery* QueryRegistry::find(QueryId id) const {
  for (const RegisteredQuery& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

RegisteredQuery* QueryRegistry::find_mutable(QueryId id) {
  for (RegisteredQuery& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::string QueryRegistry::encode() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  io::put_u32(out, kVersion);
  io::put_u32(out, next_id_);
  io::put_u64(out, health_revision_);
  io::put_u64(out, aggregate_.batches_committed);
  io::put_u64(out, aggregate_.last_seq);
  io::put_i64(out, aggregate_.cum_signed);
  io::put_u64(out, aggregate_.cum_positive);
  io::put_u64(out, aggregate_.cum_negative);
  io::put_u64(out, entries_.size());
  for (const RegisteredQuery& e : entries_) {
    io::put_u32(out, e.id);
    io::put_u64(out, std::bit_cast<std::uint64_t>(e.weight));
    io::put_bytes(out, e.query.name());
    io::put_u32(out, e.query.num_vertices());
    for (std::uint32_t v = 0; v < e.query.num_vertices(); ++v) {
      io::put_u32(out, static_cast<std::uint32_t>(e.query.label(v)));
    }
    io::put_u64(out, e.query.edges().size());
    for (const QueryEdge& edge : e.query.edges()) {
      io::put_u32(out, edge.a);
      io::put_u32(out, edge.b);
    }
    encode_health(out, e.health);
  }
  io::put_u32(out, io::crc32c(out));
  return out;
}

std::optional<QueryRegistry> QueryRegistry::decode(std::string_view bytes,
                                                   std::string* why) {
  auto fail = [&](const std::string& reason) -> std::optional<QueryRegistry> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t)) {
    return fail("registry image truncated");
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad registry magic");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  io::ByteReader crc_reader(bytes.substr(bytes.size() - 4));
  if (io::crc32c(body) != crc_reader.get_u32()) {
    return fail("registry CRC mismatch");
  }

  io::ByteReader r(body.substr(sizeof(kMagic)));
  const std::uint32_t version = r.get_u32();
  if (version < kOldestDecodableVersion || version > kVersion) {
    return fail("unsupported registry version " + std::to_string(version));
  }
  QueryRegistry reg;
  reg.next_id_ = r.get_u32();
  if (version >= 2) {
    reg.health_revision_ = r.get_u64();
    reg.aggregate_.batches_committed = r.get_u64();
    reg.aggregate_.last_seq = r.get_u64();
    reg.aggregate_.cum_signed = r.get_i64();
    reg.aggregate_.cum_positive = r.get_u64();
    reg.aggregate_.cum_negative = r.get_u64();
  }
  const std::uint64_t count = r.get_u64();
  if (count > kMaxEntries) return fail("registry entry count implausible");
  for (std::uint64_t i = 0; i < count; ++i) {
    RegisteredQuery e;
    e.id = r.get_u32();
    e.weight = std::bit_cast<double>(r.get_u64());
    const std::string_view name = r.get_bytes();
    if (name.size() > kMaxNameBytes) return fail("query name implausible");
    const std::uint32_t n = r.get_u32();
    if (n > kMaxQueryVertices) return fail("query vertex count implausible");
    std::vector<Label> labels(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      labels[v] = static_cast<Label>(r.get_u32());
    }
    const std::uint64_t num_edges = r.get_u64();
    if (num_edges > kMaxQueryVertices * kMaxQueryVertices) {
      return fail("query edge count implausible");
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(num_edges);
    for (std::uint64_t k = 0; k < num_edges; ++k) {
      const std::uint32_t a = r.get_u32();
      const std::uint32_t b = r.get_u32();
      edges.emplace_back(a, b);
    }
    if (version >= 2 && !decode_health(r, &e.health)) {
      return fail("query health entry damaged");
    }
    if (!r.ok()) return fail("registry image truncated mid-entry");
    if (!(e.weight > 0.0) || !std::isfinite(e.weight)) {
      return fail("query weight damaged");
    }
    try {
      e.query = QueryGraph::from_edges(n, edges, std::move(labels),
                                       std::string(name));
    } catch (const std::exception& ex) {
      return fail(std::string("query graph rejected: ") + ex.what());
    }
    if (e.id == 0 || e.id >= reg.next_id_) {
      return fail("query id out of range");
    }
    reg.entries_.push_back(std::move(e));
  }
  if (!r.ok() || r.remaining() != 0) {
    return fail("registry image has trailing or missing bytes");
  }
  return reg;
}

}  // namespace gcsm::server
