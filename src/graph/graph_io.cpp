#include "graph/graph_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace gcsm {
namespace {

constexpr std::uint64_t kMagic = 0x4743534d'47524148ULL;  // "GCSMGRAH"

[[noreturn]] void fail_open(const std::string& what, const std::string& path) {
  throw Error(ErrorCode::kIoOpen, what + ": " + path);
}

// Parse diagnostics carry the position and the offending token, so a bad
// line in a million-edge file is findable without bisection.
[[noreturn]] void fail_parse(const std::string& path, std::size_t line_no,
                             const std::string& token,
                             const std::string& what) {
  throw Error(ErrorCode::kIoParse, path + ":" + std::to_string(line_no) +
                                       ": " + what + " (offending token '" +
                                       token + "')");
}

[[noreturn]] void fail_truncated(const std::string& what,
                                 const std::string& path) {
  throw Error(ErrorCode::kIoTruncated, what + ": " + path);
}

std::int64_t parse_int(const std::string& path, std::size_t line_no,
                       const std::string& token, const char* field) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail_parse(path, line_no, token,
               std::string("expected an integer ") + field);
  }
  return value;
}

VertexId parse_vertex(const std::string& path, std::size_t line_no,
                      const std::string& token, const char* field) {
  const std::int64_t value = parse_int(path, line_no, token, field);
  if (value < 0 || value > std::numeric_limits<VertexId>::max()) {
    fail_parse(path, line_no, token,
               std::string(field) + " outside the vertex-id range");
  }
  return static_cast<VertexId>(value);
}

}  // namespace

CsrGraph load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail_open("cannot open graph file", path);
  std::vector<Edge> edges;
  std::vector<Label> labels;
  VertexId max_vertex = -1;
  std::string line;
  std::size_t line_no = 0;
  auto note_label = [&](VertexId v, Label l) {
    if (static_cast<std::size_t>(v) >= labels.size()) {
      labels.resize(static_cast<std::size_t>(v) + 1, 0);
    }
    labels[v] = l;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.size() != 2 && tokens.size() != 4) {
      fail_parse(path, line_no, tokens.empty() ? line : tokens.back(),
                 "edge line needs 'u v' or 'u v label_u label_v', got " +
                     std::to_string(tokens.size()) + " tokens");
    }
    const VertexId u = parse_vertex(path, line_no, tokens[0], "vertex u");
    const VertexId v = parse_vertex(path, line_no, tokens[1], "vertex v");
    Label lu = 0, lv = 0;
    if (tokens.size() == 4) {
      lu = static_cast<Label>(parse_int(path, line_no, tokens[2], "label_u"));
      lv = static_cast<Label>(parse_int(path, line_no, tokens[3], "label_v"));
    }
    edges.push_back({u, v});
    max_vertex = std::max({max_vertex, u, v});
    note_label(u, lu);
    note_label(v, lv);
  }
  if (edges.empty()) {
    fail_truncated("empty graph file (no edge lines)", path);
  }
  labels.resize(static_cast<std::size_t>(max_vertex) + 1, 0);
  return CsrGraph::from_edges(max_vertex + 1, edges, std::move(labels));
}

void save_edge_list_text(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail_open("cannot write graph file", path);
  out << "# gcsm edge list: u v label_u label_v\n";
  for (const Edge& e : graph.edge_list()) {
    out << e.u << ' ' << e.v << ' ' << graph.label(e.u) << ' '
        << graph.label(e.v) << '\n';
  }
}

void save_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail_open("cannot write graph file", path);
  const std::uint64_t n = static_cast<std::uint64_t>(graph.num_vertices());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Label l = graph.label(v);
    out.write(reinterpret_cast<const char*>(&l), sizeof(l));
  }
  const auto edges = graph.edge_list();
  const std::uint64_t m = edges.size();
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
}

CsrGraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_open("cannot open graph file", path);

  // The payload sizes are validated against the real file size BEFORE the
  // vectors are sized, so a corrupt count cannot trigger a huge allocation.
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::uint64_t magic = 0, n = 0, m = 0;
  if (file_bytes < sizeof(magic) + sizeof(n)) {
    fail_truncated("binary graph shorter than its header", path);
  }
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) {
    std::ostringstream what;
    what << "bad magic in binary graph (0x" << std::hex << magic << ")";
    throw Error(ErrorCode::kIoParse, what.str() + ": " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));

  std::uint64_t need = sizeof(magic) + sizeof(n) + n * sizeof(Label) +
                       sizeof(m);
  if (file_bytes < need) {
    fail_truncated("binary graph truncated inside the label array", path);
  }
  std::vector<Label> labels(n);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(Label)));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));

  need += m * sizeof(Edge);
  if (file_bytes < need) {
    fail_truncated("binary graph truncated inside the edge array", path);
  }
  std::vector<Edge> edges(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) fail_truncated("truncated binary graph", path);
  return CsrGraph::from_edges(static_cast<VertexId>(n), edges,
                              std::move(labels));
}

}  // namespace gcsm
