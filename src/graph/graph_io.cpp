#include "graph/graph_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gcsm {
namespace {

constexpr std::uint64_t kMagic = 0x4743534d'47524148ULL;  // "GCSMGRAH"

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

}  // namespace

CsrGraph load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open graph file", path);
  std::vector<Edge> edges;
  std::vector<Label> labels;
  VertexId max_vertex = -1;
  std::string line;
  auto note_label = [&](VertexId v, Label l) {
    if (static_cast<std::size_t>(v) >= labels.size()) {
      labels.resize(static_cast<std::size_t>(v) + 1, 0);
    }
    labels[v] = l;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    VertexId u, v;
    if (!(ls >> u >> v)) fail("malformed edge line", path);
    Label lu = 0, lv = 0;
    if (ls >> lu) {
      if (!(ls >> lv)) fail("edge line has one label but not two", path);
    }
    edges.push_back({u, v});
    max_vertex = std::max({max_vertex, u, v});
    note_label(u, lu);
    note_label(v, lv);
  }
  labels.resize(static_cast<std::size_t>(max_vertex) + 1, 0);
  return CsrGraph::from_edges(max_vertex + 1, edges, std::move(labels));
}

void save_edge_list_text(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot write graph file", path);
  out << "# gcsm edge list: u v label_u label_v\n";
  for (const Edge& e : graph.edge_list()) {
    out << e.u << ' ' << e.v << ' ' << graph.label(e.u) << ' '
        << graph.label(e.v) << '\n';
  }
}

void save_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot write graph file", path);
  const std::uint64_t n = static_cast<std::uint64_t>(graph.num_vertices());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Label l = graph.label(v);
    out.write(reinterpret_cast<const char*>(&l), sizeof(l));
  }
  const auto edges = graph.edge_list();
  const std::uint64_t m = edges.size();
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
}

CsrGraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open graph file", path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) fail("bad magic in binary graph", path);
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::vector<Label> labels(n);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(Label)));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  std::vector<Edge> edges(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) fail("truncated binary graph", path);
  return CsrGraph::from_edges(static_cast<VertexId>(n), edges,
                              std::move(labels));
}

}  // namespace gcsm
