// The dynamic data graph maintained on the CPU (paper Sec. V-A).
//
// Each vertex owns a contiguous, capacity-doubled adjacency array allocated
// in (simulated) pinned host memory so the GPU kernel can zero-copy it. A
// batch update ΔE is applied in the paper's steps:
//   1. insertions are appended to the end of the lists (O(1) amortized),
//   2. new vertices get arrays sized to the average degree,
//   3. deletions are tombstoned in place (id -> ~id) via binary search,
//   4. after the GPU kernel finishes, `reorganize()` merge-sorts each
//      touched list, dropping tombstones.
//
// Between steps 3 and 4 the structure exposes BOTH snapshots needed by the
// delta-join loops of Fig. 2:
//   * the OLD view N(v):  the pre-batch list — the sorted prefix with
//     tombstones *decoded as live* (they existed before the batch), without
//     the appended segment;
//   * the NEW view N'(v): the post-batch list — the prefix with tombstones
//     skipped, plus the (sorted) appended segment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace gcsm {

class FaultInjector;

enum class ViewMode : std::uint8_t { kOld, kNew };

// One sorted segment of stored adjacency entries (tombstones possible).
struct NeighborSeg {
  const VertexId* data = nullptr;
  std::uint32_t size = 0;
};

// A neighbor-list view over up to two sorted segments.
//  kOld: iterate `prefix`, decoding tombstones as live; `appended` is empty.
//  kNew: iterate `prefix` skipping tombstones, then `appended` (all live).
// Both segments are sorted by decoded vertex id.
struct NeighborView {
  NeighborSeg prefix;
  NeighborSeg appended;
  ViewMode mode = ViewMode::kNew;

  // Upper bound on the number of live entries (exact for kOld).
  std::uint32_t size_bound() const { return prefix.size + appended.size; }
  // Bytes a kernel must fetch to scan this view.
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(size_bound()) * sizeof(VertexId);
  }
};

class DynamicGraph {
 public:
  explicit DynamicGraph(const CsrGraph& initial);

  VertexId num_vertices() const {
    return static_cast<VertexId>(adj_.size());
  }
  EdgeCount num_live_edges() const { return live_edges_; }
  Label label(VertexId v) const { return labels_[v]; }

  // Upper bound on the live degree of any vertex, maintained incrementally.
  // Used as D in the random-walk estimator; an upper bound keeps the
  // estimator unbiased as long as the same D is used for sampling and for
  // the importance weights.
  std::uint32_t max_degree_bound() const { return max_degree_bound_; }
  double avg_degree() const;

  std::uint32_t live_degree(VertexId v) const {
    const auto& a = adj_[v];
    return a.old_size - a.old_tombstones + (a.size - a.old_size);
  }

  // Degree in the pre-batch (OLD view) graph: every prefix entry was live.
  std::uint32_t pre_batch_degree(VertexId v) const {
    return adj_[v].old_size;
  }

  NeighborView view(VertexId v, ViewMode mode) const;

  // The pinned-memory addresses of vertex v's list: the CPU address (pHost)
  // and the device-mapped address (pDevice). Identical in the simulation but
  // kept distinct so call sites document the address space they use.
  const VertexId* host_ptr(VertexId v) const { return adj_[v].data.get(); }
  const VertexId* device_ptr(VertexId v) const { return adj_[v].data.get(); }

  // Steps 1-3: appends insertions (allocating new vertices as needed),
  // tombstones deletions, and sorts each appended segment. Preconditions
  // (guaranteed by UpdateStream, or by sanitize_batch for untrusted input):
  // inserted edges are absent from the current graph; deleted edges are live
  // in the pre-batch graph; a batch never contains the same undirected edge
  // twice.
  void apply_batch(const EdgeBatch& batch);

  // A checkpoint of graph state, used at two granularities that share one
  // representation and one restore path (graph/snapshot.hpp serializes it):
  //
  //   * PARTIAL (snapshot_for): exactly the state a batch can touch — the
  //     adjacency lists of the batch's endpoints plus the global counters.
  //     O(sum of touched list sizes); this is process_batch's rollback
  //     transaction.
  //   * FULL (snapshot_full): every list, every label, the touched set, and
  //     the counters — the durable on-disk snapshot, valid even with a
  //     pending (applied-but-unreorganized) batch in flight.
  //
  // restore() rolls the graph back even from a half-applied (or corrupted)
  // mid-batch state, after which validate() holds again.
  struct Snapshot {
    bool full = false;  // full snapshots also carry labels/touched
    VertexId num_vertices = 0;
    EdgeCount live_edges = 0;
    std::uint32_t max_degree_bound = 0;
    std::uint32_t initial_avg_degree = 0;  // full only

    struct ListCopy {
      VertexId v = kInvalidVertex;
      std::vector<VertexId> entries;  // stored entries [0, size)
      std::uint32_t capacity = 0;
      std::uint32_t size = 0;
      std::uint32_t old_size = 0;
      std::uint32_t old_tombstones = 0;
    };
    std::vector<ListCopy> lists;
    std::vector<Label> labels;     // full only
    std::vector<VertexId> touched;  // full only: pending-reorg lists
  };

  // Captures the pre-batch state of every list `batch` can modify. Requires
  // a reorganized graph (no pending batch).
  Snapshot snapshot_for(const EdgeBatch& batch) const;

  // Captures the complete graph state, pending-reorg work included.
  Snapshot snapshot_full() const;

  // Rolls back to `snap`: drops vertices created since, restores the saved
  // lists verbatim, resets the counters, and rebuilds the touched set (full
  // snapshots restore theirs; partial ones clear it).
  void restore(const Snapshot& snap);

  // Arms the graph.apply fault site inside apply_batch (mid-append, so the
  // interrupted state is genuinely half-applied). nullptr disarms.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  struct ReorgStats {
    std::size_t lists = 0;     // neighbor lists reorganized
    std::uint64_t entries = 0;  // adjacency entries scanned/merged
  };

  // Step 4: compacts and merge-sorts every touched list; afterwards the OLD
  // and NEW views coincide.
  ReorgStats reorganize();

  bool has_pending_batch() const { return !touched_.empty(); }

  // True if (u, v) is live in the NEW view.
  bool has_live_edge(VertexId u, VertexId v) const;

  // Materializes the NEW view as an immutable CSR snapshot (for reference
  // matching in tests).
  CsrGraph to_csr() const;

  // Bytes occupied by the stored list of v (prefix + appended).
  std::uint64_t list_bytes(VertexId v) const {
    return static_cast<std::uint64_t>(adj_[v].size) * sizeof(VertexId);
  }

  // Checks every structural invariant of the store (docs/ANALYSIS.md):
  // array sizes consistent, every prefix sorted by decoded id and
  // duplicate-free, appended runs sorted and tombstone-free, per-list
  // tombstone counters exact, the touched set exactly the lists with pending
  // work, adjacency symmetric in the NEW view, and the live-edge /
  // max-degree accounting in agreement with the lists. Valid in both the
  // pending-batch and reorganized states. Throws CheckFailure on the first
  // violation. Cost is O(E log d) — call at batch boundaries, not per edge.
  void validate() const;

 private:
  struct AdjList {
    std::unique_ptr<VertexId[]> data;
    std::uint32_t capacity = 0;
    std::uint32_t size = 0;            // prefix + appended entries
    std::uint32_t old_size = 0;        // prefix length (pre-batch entries)
    std::uint32_t old_tombstones = 0;  // tombstones within the prefix
  };

  Snapshot::ListCopy copy_list(VertexId v) const;
  void ensure_capacity(VertexId v, std::uint32_t needed);
  void append_neighbor(VertexId v, VertexId neighbor);
  bool tombstone_in_prefix(VertexId v, VertexId neighbor);
  void note_touched(VertexId v);

  std::vector<AdjList> adj_;
  std::vector<Label> labels_;
  std::vector<std::uint8_t> touched_flag_;
  std::vector<VertexId> touched_;
  EdgeCount live_edges_ = 0;
  std::uint32_t max_degree_bound_ = 0;
  std::uint32_t initial_avg_degree_ = 4;
  FaultInjector* faults_ = nullptr;
};

}  // namespace gcsm
