// Versioned, checksummed serialization of the dynamic graph plus the
// durable match counters (docs/ROBUSTNESS.md, "Durability & recovery").
//
// This module serializes the SAME DynamicGraph::Snapshot representation that
// Pipeline::process_batch already uses for batch rollback — one snapshot
// type, one restore path, two consumers (in-memory rollback and the on-disk
// durability layer). A full snapshot captures tombstones and pending-reorg
// state verbatim, so recovery lands bit-identically where the writer stood.
//
// Snapshot file format (little-endian):
//
//   offset  size  field
//        0     4  magic    0x504E5347 ("GSNP")
//        4     4  version  currently 1
//        8     *  payload  counters + graph state (see encode_snapshot)
//     end-4     4  crc     CRC32C over bytes [0, end-4)
//
// Files are written atomically (temp + rename) so a crash mid-write leaves
// the previous snapshot intact. A corrupt or truncated snapshot decodes to
// nullopt — recovery falls back to replaying the WAL from scratch instead
// of consuming garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/dynamic_graph.hpp"
#include "graph/types.hpp"

namespace gcsm {

class FaultInjector;

namespace durable {

inline constexpr std::uint32_t kSnapshotMagic = 0x504E5347U;  // "GSNP"
inline constexpr std::uint32_t kSnapshotVersion = 1;

// Cumulative, replay-checkable totals across every committed batch. Carried
// in WAL commit markers and snapshot files; recovery recomputes them from
// replayed batches and refuses to serve mismatched state.
struct DurableCounters {
  std::uint64_t batches_committed = 0;
  std::uint64_t last_seq = 0;  // seq of the last committed batch
  std::int64_t cum_signed = 0;   // signed embedding delta, summed
  std::uint64_t cum_positive = 0;
  std::uint64_t cum_negative = 0;

  friend bool operator==(const DurableCounters&,
                         const DurableCounters&) = default;
};

std::string encode_counters(const DurableCounters& counters);
std::optional<DurableCounters> decode_counters(std::string_view bytes);

// WAL payload for one update batch (undirected signed edges + new-vertex
// labels). Replayed verbatim during recovery.
std::string encode_batch(const EdgeBatch& batch);
std::optional<EdgeBatch> decode_batch(std::string_view bytes);

// Serializes a full graph snapshot + counters into the file format above.
std::string encode_snapshot(const DynamicGraph::Snapshot& graph,
                            const DurableCounters& counters);

struct LoadedSnapshot {
  DynamicGraph::Snapshot graph;
  DurableCounters counters;
};

// Validates magic/version/CRC and decodes. nullopt on any damage; `why`
// (optional) receives a human-readable reason for the recovery warning.
std::optional<LoadedSnapshot> decode_snapshot(std::string_view bytes,
                                              std::string* why = nullptr);

// Encodes and atomically writes a snapshot file. Probes the snapshot.write
// fault site (transient Error before any byte is written) and, via
// io::atomic_write_file, crash.at (torn temp file + CrashError; the
// previous snapshot at `path` survives).
void write_snapshot_file(const std::string& path,
                         const DynamicGraph::Snapshot& graph,
                         const DurableCounters& counters, bool sync,
                         FaultInjector* faults = nullptr);

// Reads and decodes a snapshot file. nullopt when the file is missing OR
// fails validation (`why` distinguishes, when provided). Never throws on
// corruption.
std::optional<LoadedSnapshot> load_snapshot_file(const std::string& path,
                                                 std::string* why = nullptr);

}  // namespace durable
}  // namespace gcsm
