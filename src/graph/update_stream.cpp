#include "graph/update_stream.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/dynamic_graph.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace gcsm {

UpdateStream make_update_stream(const CsrGraph& graph,
                                const UpdateStreamOptions& options) {
  Rng rng(options.seed);
  std::vector<Edge> all = graph.edge_list();

  EdgeCount pool = options.pool_edge_count;
  if (pool == 0) {
    pool = static_cast<EdgeCount>(options.pool_edge_fraction *
                                  static_cast<double>(all.size()));
  }
  pool = std::min<EdgeCount>(pool, all.size());
  if (pool == 0) {
    throw Error(ErrorCode::kConfig, "update stream pool is empty");
  }

  // Partial Fisher-Yates: the first `pool` entries become the pool.
  for (EdgeCount i = 0; i < pool; ++i) {
    const EdgeCount j = i + rng.bounded(all.size() - i);
    std::swap(all[i], all[j]);
  }

  std::vector<EdgeUpdate> pooled;
  pooled.reserve(pool);
  std::vector<Edge> removed_from_initial;
  for (EdgeCount i = 0; i < pool; ++i) {
    const bool insert = rng.bernoulli(options.insert_probability);
    pooled.push_back({all[i].u, all[i].v,
                      static_cast<std::int8_t>(insert ? +1 : -1)});
    if (insert) removed_from_initial.push_back(all[i]);
  }

  // Initial snapshot: original edges minus the insertion-marked pool edges.
  std::unordered_set<std::uint64_t> removed;
  removed.reserve(removed_from_initial.size() * 2);
  auto key = [](const Edge& e) {
    const VertexId a = std::min(e.u, e.v);
    const VertexId b = std::max(e.u, e.v);
    return (static_cast<std::uint64_t>(a) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (const Edge& e : removed_from_initial) removed.insert(key(e));

  std::vector<Edge> initial_edges;
  initial_edges.reserve(graph.num_edges() - removed_from_initial.size());
  for (const Edge& e : graph.edge_list()) {
    if (!removed.count(key(e))) initial_edges.push_back(e);
  }

  UpdateStream stream;
  stream.initial = CsrGraph::from_edges(
      graph.num_vertices(), initial_edges,
      std::vector<Label>(graph.labels()));

  // Chop the pool into batches. All endpoints already exist in the initial
  // snapshot's vertex set (they come from the static graph), so batches
  // carry no new_vertex_labels; tests exercise that path separately.
  const std::size_t bs = std::max<std::size_t>(1, options.batch_size);
  for (std::size_t begin = 0; begin < pooled.size(); begin += bs) {
    const std::size_t end = std::min(pooled.size(), begin + bs);
    EdgeBatch batch;
    batch.updates.assign(pooled.begin() + static_cast<long>(begin),
                         pooled.begin() + static_cast<long>(end));
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

namespace {

std::uint64_t undirected_key(VertexId u, VertexId v) {
  const VertexId a = std::min(u, v);
  const VertexId b = std::max(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

EdgeBatch sanitize_batch(const DynamicGraph& graph, const EdgeBatch& batch,
                         QuarantineReport& report) {
  const VertexId n = graph.num_vertices();

  // Vertex ids declared by this batch extend the valid range.
  VertexId effective_n = n;
  for (const auto& [v, label] : batch.new_vertex_labels) {
    if (v >= effective_n) effective_n = v + 1;
  }

  EdgeBatch clean;
  clean.new_vertex_labels = batch.new_vertex_labels;
  clean.updates.reserve(batch.updates.size());

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(batch.updates.size() * 2);

  for (const EdgeUpdate& e : batch.updates) {
    if (e.u < 0 || e.v < 0 || e.u >= effective_n || e.v >= effective_n) {
      ++report.out_of_range;
      report.quarantined.push_back(e);
      continue;
    }
    if (e.u == e.v) {
      ++report.self_loops;
      report.quarantined.push_back(e);
      continue;
    }
    if (!seen.insert(undirected_key(e.u, e.v)).second) {
      ++report.duplicate_in_batch;
      report.quarantined.push_back(e);
      continue;
    }
    // Endpoints beyond the current vertex count are batch-declared new
    // vertices: they have no edges yet, so the edge cannot be live.
    const bool exists_now = e.u < n && e.v < n;
    const bool live = exists_now && graph.has_live_edge(e.u, e.v);
    if (e.sign > 0 && live) {
      ++report.insert_of_present;
      report.quarantined.push_back(e);
      continue;
    }
    if (e.sign <= 0 && !live) {
      ++report.delete_of_absent;
      report.quarantined.push_back(e);
      continue;
    }
    clean.updates.push_back(e);
  }
  return clean;
}

void inject_batch_corruption(EdgeBatch& batch, FaultInjector* faults) {
  if (faults == nullptr || !faults->fires(fault_site::kBatchCorrupt)) {
    return;
  }
  // Each appended record trips a different sanitizer rule; none touches the
  // original records.
  batch.updates.push_back({kInvalidVertex, 3, +1});  // out-of-range endpoint
  batch.updates.push_back({0, 0, +1});               // self-loop
  const EdgeUpdate dup = batch.updates.front();      // duplicate edge
  batch.updates.push_back(dup);
}

}  // namespace gcsm
