#include "graph/update_stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace gcsm {

UpdateStream make_update_stream(const CsrGraph& graph,
                                const UpdateStreamOptions& options) {
  Rng rng(options.seed);
  std::vector<Edge> all = graph.edge_list();

  EdgeCount pool = options.pool_edge_count;
  if (pool == 0) {
    pool = static_cast<EdgeCount>(options.pool_edge_fraction *
                                  static_cast<double>(all.size()));
  }
  pool = std::min<EdgeCount>(pool, all.size());
  if (pool == 0) {
    throw std::invalid_argument("update stream pool is empty");
  }

  // Partial Fisher-Yates: the first `pool` entries become the pool.
  for (EdgeCount i = 0; i < pool; ++i) {
    const EdgeCount j = i + rng.bounded(all.size() - i);
    std::swap(all[i], all[j]);
  }

  std::vector<EdgeUpdate> pooled;
  pooled.reserve(pool);
  std::vector<Edge> removed_from_initial;
  for (EdgeCount i = 0; i < pool; ++i) {
    const bool insert = rng.bernoulli(options.insert_probability);
    pooled.push_back({all[i].u, all[i].v,
                      static_cast<std::int8_t>(insert ? +1 : -1)});
    if (insert) removed_from_initial.push_back(all[i]);
  }

  // Initial snapshot: original edges minus the insertion-marked pool edges.
  std::unordered_set<std::uint64_t> removed;
  removed.reserve(removed_from_initial.size() * 2);
  auto key = [](const Edge& e) {
    const VertexId a = std::min(e.u, e.v);
    const VertexId b = std::max(e.u, e.v);
    return (static_cast<std::uint64_t>(a) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (const Edge& e : removed_from_initial) removed.insert(key(e));

  std::vector<Edge> initial_edges;
  initial_edges.reserve(graph.num_edges() - removed_from_initial.size());
  for (const Edge& e : graph.edge_list()) {
    if (!removed.count(key(e))) initial_edges.push_back(e);
  }

  UpdateStream stream;
  stream.initial = CsrGraph::from_edges(
      graph.num_vertices(), initial_edges,
      std::vector<Label>(graph.labels()));

  // Chop the pool into batches. All endpoints already exist in the initial
  // snapshot's vertex set (they come from the static graph), so batches
  // carry no new_vertex_labels; tests exercise that path separately.
  const std::size_t bs = std::max<std::size_t>(1, options.batch_size);
  for (std::size_t begin = 0; begin < pooled.size(); begin += bs) {
    const std::size_t end = std::min(pooled.size(), begin + bs);
    EdgeBatch batch;
    batch.updates.assign(pooled.begin() + static_cast<long>(begin),
                         pooled.begin() + static_cast<long>(end));
    stream.batches.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace gcsm
