// Synthetic graph generators standing in for the paper's datasets (Table I).
//
// The real datasets (SNAP Friendster at 3.6 G edges, LDBC SF3K/SF10K at
// 5.8/18.8 G edges) exceed this environment; these generators reproduce the
// *structural properties* the paper's results depend on: power-law degree
// skew with max-degree >> mean for the social/web analogs, and uniformly
// tiny degrees for the road-network analogs.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace gcsm {

// Barabási–Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` edges to existing vertices chosen proportionally to
// degree. Produces the heavy-tailed degree distribution of the SNAP social
// graphs (AZ, LJ, FR analogs).
CsrGraph generate_barabasi_albert(VertexId num_vertices,
                                  std::uint32_t edges_per_vertex,
                                  std::uint32_t num_labels, Rng& rng);

// R-MAT / Kronecker-style generator (Chakrabarti et al.): 2^scale vertices,
// edge_factor * 2^scale edges recursively placed with quadrant probabilities
// (a, b, c, implied d). LDBC Graphalytics' datagen produces graphs with this
// kind of skew, so SF3K/SF10K analogs use it.
CsrGraph generate_rmat(std::uint32_t scale, std::uint32_t edge_factor,
                       double a, double b, double c, std::uint32_t num_labels,
                       Rng& rng);

// Community-structured preferential attachment: vertices are split into
// `num_communities` equal groups; each new vertex attaches preferentially
// *within its community* with probability intra_prob, globally otherwise.
// Real social graphs (Friendster, LiveJournal) have this structure, and it
// is what makes node degree a poor proxy for access frequency (paper
// Sec. VI-B, the Naive baseline): the vertices a batch accesses are the
// locally-shared neighbors in the touched communities, not the global
// degree leaders.
CsrGraph generate_community_ba(VertexId num_vertices,
                               std::uint32_t edges_per_vertex,
                               std::uint32_t num_communities,
                               double intra_prob, std::uint32_t num_labels,
                               Rng& rng);

// Erdős–Rényi G(n, m): uniform random edges (used by property tests where a
// structureless graph is the adversarial case).
CsrGraph generate_erdos_renyi(VertexId num_vertices, EdgeCount num_edges,
                              std::uint32_t num_labels, Rng& rng);

// Road-network analog (RoadNetPA/CA): a rows x cols grid where each cell
// keeps its 4-neighborhood with probability keep_prob and gains a diagonal
// shortcut with probability diag_prob. Max degree stays <= 8, matching the
// "max deg 9..12" regime of Table I.
CsrGraph generate_road_network(std::uint32_t rows, std::uint32_t cols,
                               double keep_prob, double diag_prob,
                               std::uint32_t num_labels, Rng& rng);

// Assigns uniform random labels in [0, num_labels) to an unlabeled edge set;
// helper shared by the generators.
std::vector<Label> random_labels(VertexId num_vertices,
                                 std::uint32_t num_labels, Rng& rng);

}  // namespace gcsm
