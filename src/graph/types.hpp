// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace gcsm {

// Vertex ids are signed 32-bit: the dynamic graph marks deleted neighbors by
// bitwise complement (~v < 0), mirroring the paper's "set the neighbor index
// v to -v" tombstone (Sec. V-A), so ids must stay below 2^31.
using VertexId = std::int32_t;
using Label = std::int32_t;
using EdgeCount = std::uint64_t;

constexpr VertexId kInvalidVertex = -1;

// Tombstone encoding helpers. A stored adjacency entry is either a live id
// (>= 0) or the complement of a deleted id (< 0). Complement (rather than
// negation) keeps vertex 0 representable.
inline VertexId decode_neighbor(VertexId stored) {
  return stored < 0 ? ~stored : stored;
}
inline bool is_deleted_neighbor(VertexId stored) { return stored < 0; }
inline VertexId tombstone(VertexId v) { return ~v; }

struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// A single signed update in a batch: +1 insertion, -1 deletion.
struct EdgeUpdate {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  std::int8_t sign = +1;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

// One batch of edge updates (ΔE in the paper). Updates are undirected; both
// adjacency directions are maintained by the dynamic graph. Newly inserted
// edges may reference vertices not yet in the graph; their labels are
// carried alongside.
struct EdgeBatch {
  std::vector<EdgeUpdate> updates;
  std::vector<std::pair<VertexId, Label>> new_vertex_labels;

  std::size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }
};

}  // namespace gcsm
