#include "graph/snapshot.hpp"

#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm::durable {
namespace {

void put_vertex(std::string& out, VertexId v) {
  io::put_u32(out, static_cast<std::uint32_t>(v));
}

VertexId get_vertex(io::ByteReader& r) {
  return static_cast<VertexId>(r.get_u32());
}

void encode_counters_into(std::string& out, const DurableCounters& c) {
  io::put_u64(out, c.batches_committed);
  io::put_u64(out, c.last_seq);
  io::put_i64(out, c.cum_signed);
  io::put_u64(out, c.cum_positive);
  io::put_u64(out, c.cum_negative);
}

DurableCounters decode_counters_from(io::ByteReader& r) {
  DurableCounters c;
  c.batches_committed = r.get_u64();
  c.last_seq = r.get_u64();
  c.cum_signed = r.get_i64();
  c.cum_positive = r.get_u64();
  c.cum_negative = r.get_u64();
  return c;
}

// Sanity cap on decoded element counts: a corrupt length field must not
// drive a multi-gigabyte allocation before the underrun check fires.
bool plausible_count(std::uint64_t count, std::size_t remaining,
                     std::size_t min_elem_bytes) {
  return count <= remaining / min_elem_bytes;
}

}  // namespace

std::string encode_counters(const DurableCounters& counters) {
  std::string out;
  encode_counters_into(out, counters);
  return out;
}

std::optional<DurableCounters> decode_counters(std::string_view bytes) {
  io::ByteReader r(bytes);
  const DurableCounters c = decode_counters_from(r);
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return c;
}

std::string encode_batch(const EdgeBatch& batch) {
  std::string out;
  io::put_u64(out, batch.updates.size());
  for (const EdgeUpdate& e : batch.updates) {
    put_vertex(out, e.u);
    put_vertex(out, e.v);
    io::put_u8(out, static_cast<std::uint8_t>(e.sign));
  }
  io::put_u64(out, batch.new_vertex_labels.size());
  for (const auto& [v, label] : batch.new_vertex_labels) {
    put_vertex(out, v);
    io::put_u32(out, static_cast<std::uint32_t>(label));
  }
  return out;
}

std::optional<EdgeBatch> decode_batch(std::string_view bytes) {
  io::ByteReader r(bytes);
  EdgeBatch batch;
  const std::uint64_t num_updates = r.get_u64();
  if (!r.ok() || !plausible_count(num_updates, r.remaining(), 9)) {
    return std::nullopt;
  }
  batch.updates.reserve(num_updates);
  for (std::uint64_t i = 0; i < num_updates && r.ok(); ++i) {
    EdgeUpdate e;
    e.u = get_vertex(r);
    e.v = get_vertex(r);
    e.sign = static_cast<std::int8_t>(r.get_u8());
    batch.updates.push_back(e);
  }
  const std::uint64_t num_labels = r.get_u64();
  if (!r.ok() || !plausible_count(num_labels, r.remaining(), 8)) {
    return std::nullopt;
  }
  batch.new_vertex_labels.reserve(num_labels);
  for (std::uint64_t i = 0; i < num_labels && r.ok(); ++i) {
    const VertexId v = get_vertex(r);
    const auto label = static_cast<Label>(r.get_u32());
    batch.new_vertex_labels.emplace_back(v, label);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return batch;
}

std::string encode_snapshot(const DynamicGraph::Snapshot& graph,
                            const DurableCounters& counters) {
  std::string out;
  io::put_u32(out, kSnapshotMagic);
  io::put_u32(out, kSnapshotVersion);
  encode_counters_into(out, counters);
  io::put_u8(out, graph.full ? 1 : 0);
  put_vertex(out, graph.num_vertices);
  io::put_u64(out, graph.live_edges);
  io::put_u32(out, graph.max_degree_bound);
  io::put_u32(out, graph.initial_avg_degree);
  io::put_u64(out, graph.labels.size());
  for (const Label label : graph.labels) {
    io::put_u32(out, static_cast<std::uint32_t>(label));
  }
  io::put_u64(out, graph.lists.size());
  for (const auto& list : graph.lists) {
    put_vertex(out, list.v);
    io::put_u32(out, list.capacity);
    io::put_u32(out, list.size);
    io::put_u32(out, list.old_size);
    io::put_u32(out, list.old_tombstones);
    io::put_u64(out, list.entries.size());
    for (const VertexId e : list.entries) put_vertex(out, e);
  }
  io::put_u64(out, graph.touched.size());
  for (const VertexId v : graph.touched) put_vertex(out, v);
  io::put_u32(out, io::crc32c(out));
  return out;
}

std::optional<LoadedSnapshot> decode_snapshot(std::string_view bytes,
                                              std::string* why) {
  auto fail = [&](const std::string& reason) -> std::optional<LoadedSnapshot> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (bytes.size() < 12) return fail("snapshot file truncated");
  {
    io::ByteReader tail(bytes.substr(bytes.size() - 4));
    const std::uint32_t stored_crc = tail.get_u32();
    const std::uint32_t actual_crc =
        io::crc32c(bytes.substr(0, bytes.size() - 4));
    if (stored_crc != actual_crc) return fail("snapshot CRC mismatch");
  }
  io::ByteReader r(bytes.substr(0, bytes.size() - 4));
  if (r.get_u32() != kSnapshotMagic) return fail("bad snapshot magic");
  const std::uint32_t version = r.get_u32();
  if (version != kSnapshotVersion) {
    return fail("unsupported snapshot version " + std::to_string(version));
  }
  LoadedSnapshot loaded;
  loaded.counters = decode_counters_from(r);
  auto& graph = loaded.graph;
  graph.full = r.get_u8() != 0;
  graph.num_vertices = get_vertex(r);
  graph.live_edges = r.get_u64();
  graph.max_degree_bound = r.get_u32();
  graph.initial_avg_degree = r.get_u32();
  const std::uint64_t num_labels = r.get_u64();
  if (!r.ok() || !plausible_count(num_labels, r.remaining(), 4)) {
    return fail("implausible snapshot label count");
  }
  graph.labels.reserve(num_labels);
  for (std::uint64_t i = 0; i < num_labels && r.ok(); ++i) {
    graph.labels.push_back(static_cast<Label>(r.get_u32()));
  }
  const std::uint64_t num_lists = r.get_u64();
  if (!r.ok() || !plausible_count(num_lists, r.remaining(), 28)) {
    return fail("implausible snapshot list count");
  }
  graph.lists.reserve(num_lists);
  for (std::uint64_t i = 0; i < num_lists && r.ok(); ++i) {
    DynamicGraph::Snapshot::ListCopy list;
    list.v = get_vertex(r);
    list.capacity = r.get_u32();
    list.size = r.get_u32();
    list.old_size = r.get_u32();
    list.old_tombstones = r.get_u32();
    const std::uint64_t num_entries = r.get_u64();
    if (!r.ok() || !plausible_count(num_entries, r.remaining(), 4)) {
      return fail("implausible snapshot entry count");
    }
    list.entries.reserve(num_entries);
    for (std::uint64_t j = 0; j < num_entries && r.ok(); ++j) {
      list.entries.push_back(get_vertex(r));
    }
    graph.lists.push_back(std::move(list));
  }
  const std::uint64_t num_touched = r.get_u64();
  if (!r.ok() || !plausible_count(num_touched, r.remaining(), 4)) {
    return fail("implausible snapshot touched count");
  }
  graph.touched.reserve(num_touched);
  for (std::uint64_t i = 0; i < num_touched && r.ok(); ++i) {
    graph.touched.push_back(get_vertex(r));
  }
  if (!r.ok() || r.remaining() != 0) {
    return fail("snapshot payload truncated or oversized");
  }
  return loaded;
}

void write_snapshot_file(const std::string& path,
                         const DynamicGraph::Snapshot& graph,
                         const DurableCounters& counters, bool sync,
                         FaultInjector* faults) {
  static auto& m_writes =
      metrics::Registry::global().counter(metric::kSnapshotWrites);
  static auto& m_bytes = metrics::Registry::global().counter(metric::kSnapshotBytes);
  if (faults != nullptr && faults->fires(fault_site::kSnapshotWrite)) {
    // Fires before encoding reaches the disk; the previous snapshot file
    // is untouched, so a retry (or skipping the snapshot) is safe.
    throw Error(ErrorCode::kSnapshotWrite,
                "injected fault: snapshot write refused (" + path + ")");
  }
  const std::string bytes = encode_snapshot(graph, counters);
  io::atomic_write_file(path, bytes, sync, faults);
  m_writes.add();
  m_bytes.add(bytes.size());
}

std::optional<LoadedSnapshot> load_snapshot_file(const std::string& path,
                                                 std::string* why) {
  const std::optional<std::string> bytes = io::read_file_if_exists(path);
  if (!bytes.has_value()) {
    if (why != nullptr) *why = "no snapshot file";
    return std::nullopt;
  }
  return decode_snapshot(*bytes, why);
}

}  // namespace gcsm::durable
