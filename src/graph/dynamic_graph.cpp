#include "graph/dynamic_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <unordered_set>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm {

DynamicGraph::DynamicGraph(const CsrGraph& initial) {
  const VertexId n = initial.num_vertices();
  adj_.resize(n);
  labels_.assign(initial.labels().begin(), initial.labels().end());
  touched_flag_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const auto nb = initial.neighbors(v);
    auto& a = adj_[v];
    // Paper: preallocate to double the initial neighbor count.
    a.capacity = std::max<std::uint32_t>(
        4, 2 * static_cast<std::uint32_t>(nb.size()));
    a.data = std::make_unique<VertexId[]>(a.capacity);
    std::copy(nb.begin(), nb.end(), a.data.get());
    a.size = a.old_size = static_cast<std::uint32_t>(nb.size());
  }
  live_edges_ = initial.num_edges();
  max_degree_bound_ = initial.max_degree();
  initial_avg_degree_ = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(initial.avg_degree()) + 1);
}

double DynamicGraph::avg_degree() const {
  return adj_.empty() ? 0.0
                      : 2.0 * static_cast<double>(live_edges_) /
                            static_cast<double>(adj_.size());
}

NeighborView DynamicGraph::view(VertexId v, ViewMode mode) const {
  const auto& a = adj_[v];
  NeighborView view;
  view.mode = mode;
  view.prefix = {a.data.get(), a.old_size};
  if (mode == ViewMode::kNew) {
    view.appended = {a.data.get() + a.old_size, a.size - a.old_size};
  }
  return view;
}

void DynamicGraph::ensure_capacity(VertexId v, std::uint32_t needed) {
  auto& a = adj_[v];
  if (needed <= a.capacity) return;
  std::uint32_t cap = std::max<std::uint32_t>(a.capacity, 2);
  while (cap < needed) cap *= 2;
  auto bigger = std::make_unique<VertexId[]>(cap);
  std::memcpy(bigger.get(), a.data.get(), a.size * sizeof(VertexId));
  a.data = std::move(bigger);
  a.capacity = cap;
}

void DynamicGraph::append_neighbor(VertexId v, VertexId neighbor) {
  GCSM_ASSERT(neighbor >= 0, "appending a tombstoned neighbor id");
  auto& a = adj_[v];
  ensure_capacity(v, a.size + 1);
  a.data[a.size++] = neighbor;
}

bool DynamicGraph::tombstone_in_prefix(VertexId v, VertexId neighbor) {
  auto& a = adj_[v];
  // Binary search on decoded values; the prefix stays sorted by decoded id
  // because tombstoning rewrites entries in place.
  std::uint32_t lo = 0;
  std::uint32_t hi = a.old_size;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (decode_neighbor(a.data[mid]) < neighbor) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < a.old_size && decode_neighbor(a.data[lo]) == neighbor &&
      !is_deleted_neighbor(a.data[lo])) {
    a.data[lo] = tombstone(neighbor);
    ++a.old_tombstones;
    return true;
  }
  return false;
}

void DynamicGraph::note_touched(VertexId v) {
  if (!touched_flag_[v]) {
    touched_flag_[v] = 1;
    touched_.push_back(v);
  }
}

void DynamicGraph::apply_batch(const EdgeBatch& batch) {
  static auto& m_batches =
      metrics::Registry::global().counter(metric::kGraphBatchesApplied);
  static auto& m_inserts =
      metrics::Registry::global().counter(metric::kGraphEdgesInserted);
  static auto& m_tombstones =
      metrics::Registry::global().counter(metric::kGraphEdgesTombstoned);
  static auto& m_new_vertices =
      metrics::Registry::global().counter(metric::kGraphVerticesAdded);
  GCSM_CHECK(!has_pending_batch(),
             "apply_batch called with a pending batch; call reorganize() "
             "first");
  m_batches.add();

  // Step 2: new vertices, arrays sized to the average degree.
  const VertexId vertices_before = num_vertices();
  for (const auto& [v, label] : batch.new_vertex_labels) {
    if (v < num_vertices()) {
      throw Error(ErrorCode::kConfig, "new vertex id already exists");
    }
    while (num_vertices() <= v) {
      AdjList a;
      a.capacity = initial_avg_degree_;
      a.data = std::make_unique<VertexId[]>(a.capacity);
      adj_.push_back(std::move(a));
      labels_.push_back(0);
      touched_flag_.push_back(0);
    }
    labels_[v] = label;
  }
  m_new_vertices.add(
      static_cast<std::uint64_t>(num_vertices() - vertices_before));

  // Fault site: fires at most once per batch, halfway through the record
  // list and between the two directed writes of that record — the nastiest
  // spot, since it leaves an asymmetric half-applied edge that only
  // restore() can clean up.
  const std::size_t fault_index = batch.updates.size() / 2;
  auto inject_apply_fault = [&](std::size_t idx) {
    if (idx == fault_index && faults_ != nullptr &&
        faults_->fires(fault_site::kGraphApply)) {
      throw Error(ErrorCode::kGraphApply,
                  "injected fault: batch apply interrupted mid-append");
    }
  };

  for (std::size_t idx = 0; idx < batch.updates.size(); ++idx) {
    const EdgeUpdate& e = batch.updates[idx];
    if (e.u < 0 || e.v < 0 || e.u >= num_vertices() ||
        e.v >= num_vertices()) {
      throw Error(ErrorCode::kConfig, "update endpoint out of range");
    }
    if (e.sign > 0) {
      // Step 1: append to both directed lists.
      append_neighbor(e.u, e.v);
      inject_apply_fault(idx);
      append_neighbor(e.v, e.u);
      ++live_edges_;
      m_inserts.add();
    } else {
      // Step 3: tombstone in both directed prefixes.
      const bool a = tombstone_in_prefix(e.u, e.v);
      inject_apply_fault(idx);
      const bool b = tombstone_in_prefix(e.v, e.u);
      if (!a || !b) {
        throw Error(ErrorCode::kConfig, "deletion of a non-live edge");
      }
      --live_edges_;
      m_tombstones.add();
    }
    note_touched(e.u);
    note_touched(e.v);
  }

  // Keep appended segments sorted so NEW-view set intersections can treat
  // them as a second sorted run (paper Sec. V-C: "Since N and ΔN are
  // sorted ...").
  for (const VertexId v : touched_) {
    auto& a = adj_[v];
    std::sort(a.data.get() + a.old_size, a.data.get() + a.size);
    max_degree_bound_ = std::max(max_degree_bound_, live_degree(v));
  }
}

DynamicGraph::Snapshot::ListCopy DynamicGraph::copy_list(VertexId v) const {
  const AdjList& a = adj_[v];
  Snapshot::ListCopy copy;
  copy.v = v;
  copy.capacity = a.capacity;
  copy.size = a.size;
  copy.old_size = a.old_size;
  copy.old_tombstones = a.old_tombstones;
  copy.entries.assign(a.data.get(), a.data.get() + a.size);
  return copy;
}

DynamicGraph::Snapshot DynamicGraph::snapshot_for(
    const EdgeBatch& batch) const {
  GCSM_CHECK(!has_pending_batch(),
             "snapshot_for requires a reorganized graph (no pending batch)");
  Snapshot snap;
  snap.num_vertices = num_vertices();
  snap.live_edges = live_edges_;
  snap.max_degree_bound = max_degree_bound_;
  std::unordered_set<VertexId> seen;
  seen.reserve(batch.updates.size() * 2);
  auto save = [&](VertexId v) {
    // Endpoints at or beyond the current vertex count need no copy: restore
    // drops the vertices the batch created by truncating back to the
    // snapshot count.
    if (v < 0 || v >= snap.num_vertices || !seen.insert(v).second) return;
    snap.lists.push_back(copy_list(v));
  };
  for (const EdgeUpdate& e : batch.updates) {
    save(e.u);
    save(e.v);
  }
  return snap;
}

DynamicGraph::Snapshot DynamicGraph::snapshot_full() const {
  Snapshot snap;
  snap.full = true;
  snap.num_vertices = num_vertices();
  snap.live_edges = live_edges_;
  snap.max_degree_bound = max_degree_bound_;
  snap.initial_avg_degree = initial_avg_degree_;
  snap.lists.reserve(adj_.size());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    snap.lists.push_back(copy_list(v));
  }
  snap.labels = labels_;
  snap.touched = touched_;
  return snap;
}

void DynamicGraph::restore(const Snapshot& snap) {
  // Clear the touched set first: its flags for dropped vertices vanish with
  // the truncation below, the rest are snapshot vertices.
  for (const VertexId v : touched_) {
    if (v < snap.num_vertices) touched_flag_[v] = 0;
  }
  touched_.clear();
  adj_.resize(static_cast<std::size_t>(snap.num_vertices));
  labels_.resize(static_cast<std::size_t>(snap.num_vertices));
  touched_flag_.resize(static_cast<std::size_t>(snap.num_vertices));
  for (const Snapshot::ListCopy& copy : snap.lists) {
    AdjList& a = adj_[copy.v];
    if (a.capacity != copy.capacity) {
      a.data = std::make_unique<VertexId[]>(copy.capacity);
      a.capacity = copy.capacity;
    }
    std::copy(copy.entries.begin(), copy.entries.end(), a.data.get());
    a.size = copy.size;
    a.old_size = copy.old_size;
    a.old_tombstones = copy.old_tombstones;
  }
  live_edges_ = snap.live_edges;
  max_degree_bound_ = snap.max_degree_bound;
  if (snap.full) {
    labels_ = snap.labels;
    initial_avg_degree_ = snap.initial_avg_degree;
    std::fill(touched_flag_.begin(), touched_flag_.end(), 0);
    touched_ = snap.touched;
    for (const VertexId v : touched_) touched_flag_[v] = 1;
  }
}

DynamicGraph::ReorgStats DynamicGraph::reorganize() {
  static auto& m_calls = metrics::Registry::global().counter(metric::kGraphReorgCalls);
  static auto& m_lists = metrics::Registry::global().counter(metric::kGraphReorgLists);
  static auto& m_entries =
      metrics::Registry::global().counter(metric::kGraphReorgEntries);
  ReorgStats stats;
  stats.lists = touched_.size();
  for (const VertexId v : touched_) {
    auto& a = adj_[v];
    stats.entries += a.size;
    // Compact the prefix (drop tombstones) while preserving order, then
    // merge with the sorted appended run: linear time per list, as in the
    // paper's merge-sort reorganization step.
    std::uint32_t w = 0;
    for (std::uint32_t r = 0; r < a.old_size; ++r) {
      if (!is_deleted_neighbor(a.data[r])) {
        a.data[w++] = a.data[r];
      }
    }
    const std::uint32_t appended = a.size - a.old_size;
    if (appended > 0) {
      std::memmove(a.data.get() + w, a.data.get() + a.old_size,
                   appended * sizeof(VertexId));
      std::inplace_merge(a.data.get(), a.data.get() + w,
                         a.data.get() + w + appended);
    }
    a.size = a.old_size = w + appended;
    a.old_tombstones = 0;
    GCSM_ASSERT(std::is_sorted(a.data.get(), a.data.get() + a.size),
                "list not sorted after reorganization");
    touched_flag_[v] = 0;
  }
  touched_.clear();
  m_calls.add();
  m_lists.add(stats.lists);
  m_entries.add(stats.entries);
  return stats;
}

bool DynamicGraph::has_live_edge(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return false;
  }
  const auto& a = adj_[u];
  // Prefix: binary search on decoded ids, must be live.
  std::uint32_t lo = 0;
  std::uint32_t hi = a.old_size;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (decode_neighbor(a.data[mid]) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < a.old_size && decode_neighbor(a.data[lo]) == v) {
    return !is_deleted_neighbor(a.data[lo]);
  }
  // Appended run (sorted, all live).
  return std::binary_search(a.data.get() + a.old_size, a.data.get() + a.size,
                            v);
}

void DynamicGraph::validate() const {
  const auto n = static_cast<std::size_t>(num_vertices());
  GCSM_CHECK(labels_.size() == n, "label array size mismatch");
  GCSM_CHECK(touched_flag_.size() == n, "touched-flag array size mismatch");

  // The touched set and its flag array must agree exactly.
  std::size_t flagged = 0;
  for (const std::uint8_t f : touched_flag_) flagged += f != 0 ? 1 : 0;
  GCSM_CHECK(flagged == touched_.size(),
             "touched flags disagree with the touched list");
  for (const VertexId v : touched_) {
    GCSM_CHECK(v >= 0 && static_cast<std::size_t>(v) < n,
               "touched vertex out of range");
    GCSM_CHECK(touched_flag_[v] != 0, "touched vertex without flag");
  }

  EdgeCount live_entries = 0;
  for (VertexId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    const AdjList& a = adj_[v];
    const std::string ctx = "vertex " + std::to_string(v);
    GCSM_CHECK(a.size <= a.capacity, ctx + ": size exceeds capacity");
    GCSM_CHECK(a.old_size <= a.size, ctx + ": prefix longer than list");
    GCSM_CHECK(a.old_tombstones <= a.old_size,
               ctx + ": more tombstones than prefix entries");

    // Prefix: sorted strictly by decoded id (so binary search and merge
    // intersection stay correct), tombstone count exact.
    std::uint32_t tombstones = 0;
    for (std::uint32_t i = 0; i < a.old_size; ++i) {
      const VertexId decoded = decode_neighbor(a.data[i]);
      GCSM_CHECK(decoded >= 0 && static_cast<std::size_t>(decoded) < n,
                 ctx + ": prefix neighbor out of range");
      if (i > 0) {
        GCSM_CHECK(decode_neighbor(a.data[i - 1]) < decoded,
                   ctx + ": prefix not strictly sorted by decoded id");
      }
      if (is_deleted_neighbor(a.data[i])) ++tombstones;
    }
    GCSM_CHECK(tombstones == a.old_tombstones,
               ctx + ": tombstone counter does not match the prefix");

    // Appended run: strictly sorted, all live, endpoints in range.
    for (std::uint32_t i = a.old_size; i < a.size; ++i) {
      const VertexId w = a.data[i];
      GCSM_CHECK(!is_deleted_neighbor(w), ctx + ": tombstone in appended run");
      GCSM_CHECK(static_cast<std::size_t>(w) < n,
                 ctx + ": appended neighbor out of range");
      if (i > a.old_size) {
        GCSM_CHECK(a.data[i - 1] < w,
                   ctx + ": appended run not strictly sorted");
      }
    }

    // A list with pending work (appends or tombstones) must be touched.
    if (a.size != a.old_size || a.old_tombstones != 0) {
      GCSM_CHECK(touched_flag_[v] != 0, ctx + ": pending work but not touched");
    }

    const std::uint32_t live = live_degree(v);
    GCSM_CHECK(live <= max_degree_bound_,
               ctx + ": live degree exceeds max_degree_bound");
    live_entries += live;

    // NEW-view symmetry: every live neighbor must list v back. An appended
    // entry must not duplicate a live prefix entry (insertions target absent
    // edges), which has_live_edge's prefix-first probe would hide — so check
    // the runs separately.
    for (std::uint32_t i = 0; i < a.size; ++i) {
      const VertexId stored = a.data[i];
      if (i < a.old_size && is_deleted_neighbor(stored)) continue;
      const VertexId w = decode_neighbor(stored);
      if (i >= a.old_size) {
        const NeighborView pre = view(v, ViewMode::kNew);
        bool live_in_prefix = false;
        for (std::uint32_t p = 0; p < pre.prefix.size; ++p) {
          if (!is_deleted_neighbor(pre.prefix.data[p]) &&
              pre.prefix.data[p] == w) {
            live_in_prefix = true;
            break;
          }
        }
        GCSM_CHECK(!live_in_prefix,
                   ctx + ": appended neighbor duplicates a live prefix entry");
      }
      GCSM_CHECK(has_live_edge(w, v),
                 ctx + ": live edge not symmetric in the NEW view");
    }
  }
  GCSM_CHECK(live_entries == 2 * live_edges_,
             "live-edge counter does not match the adjacency lists");
}

CsrGraph DynamicGraph::to_csr() const {
  std::vector<Edge> edges;
  edges.reserve(live_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto& a = adj_[v];
    for (std::uint32_t i = 0; i < a.size; ++i) {
      const VertexId stored = a.data[i];
      if (i < a.old_size && is_deleted_neighbor(stored)) continue;
      const VertexId w = decode_neighbor(stored);
      if (v < w) edges.push_back({v, w});
    }
  }
  return CsrGraph::from_edges(num_vertices(), edges, labels_);
}

}  // namespace gcsm
