// Immutable labeled CSR graph: the initial snapshot G_0 and the input to the
// update-stream generator. Adjacency lists are sorted and deduplicated.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace gcsm {

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds an undirected simple graph from an edge list. Self-loops and
  // duplicate edges are dropped. `labels` may be empty (all label 0) or have
  // exactly `num_vertices` entries.
  static CsrGraph from_edges(VertexId num_vertices,
                             const std::vector<Edge>& edges,
                             std::vector<Label> labels = {});

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }
  // Number of undirected edges.
  EdgeCount num_edges() const { return adjacency_.size() / 2; }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  Label label(VertexId v) const { return labels_[v]; }
  const std::vector<Label>& labels() const { return labels_; }

  std::uint32_t max_degree() const { return max_degree_; }
  double avg_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(adjacency_.size()) / num_vertices();
  }

  bool has_edge(VertexId u, VertexId v) const;

  // Enumerates each undirected edge once (u < v).
  std::vector<Edge> edge_list() const;

  // Human-readable one-line summary for benchmark logs.
  std::string summary(const std::string& name) const;

 private:
  std::vector<std::uint64_t> offsets_;  // size num_vertices + 1
  std::vector<VertexId> adjacency_;     // both directions, sorted per vertex
  std::vector<Label> labels_;
  std::uint32_t max_degree_ = 0;
};

}  // namespace gcsm
