#include "graph/csr_graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace gcsm {

CsrGraph CsrGraph::from_edges(VertexId num_vertices,
                              const std::vector<Edge>& edges,
                              std::vector<Label> labels) {
  if (!labels.empty() &&
      static_cast<VertexId>(labels.size()) != num_vertices) {
    throw Error(ErrorCode::kConfig, "labels size must match num_vertices");
  }

  // Symmetrize, drop self loops, dedup.
  std::vector<std::pair<VertexId, VertexId>> dir;
  dir.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u < 0 || e.v < 0 || e.u >= num_vertices || e.v >= num_vertices) {
      throw Error(ErrorCode::kConfig, "edge endpoint out of range");
    }
    dir.emplace_back(e.u, e.v);
    dir.emplace_back(e.v, e.u);
  }
  std::sort(dir.begin(), dir.end());
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  CsrGraph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : dir) {
    (void)v;
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(dir.size());
  {
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const auto& [u, v] : dir) {
      g.adjacency_[cursor[u]++] = v;
    }
  }
  g.labels_ = labels.empty() ? std::vector<Label>(num_vertices, 0)
                             : std::move(labels);
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> CsrGraph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

std::string CsrGraph::summary(const std::string& name) const {
  std::ostringstream os;
  os << name << ": |V|=" << num_vertices() << " |E|=" << num_edges()
     << " max_deg=" << max_degree() << " avg_deg=" << avg_degree();
  return os.str();
}

}  // namespace gcsm
