// Dynamic-graph construction protocol from the paper (Sec. VI-A).
//
// Following the CSM literature, a dynamic graph is derived from a static
// one: a pool of edges is drawn at random, each marked insertion or deletion
// with equal probability; insertion-marked edges are removed from the
// initial snapshot (so inserting them later is valid), deletion-marked edges
// stay (so deleting them later is valid). The pool is then chopped into
// batches ΔE_1, ΔE_2, ...
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace gcsm {

struct UpdateStreamOptions {
  // Number of edges in the update pool: either an absolute count, or (when
  // count == 0) a fraction of |E|. The paper uses 12*8192 edges for the
  // large graphs and 10% of edges for the small ones.
  EdgeCount pool_edge_count = 0;
  double pool_edge_fraction = 0.10;
  std::size_t batch_size = 4096;
  double insert_probability = 0.5;
  std::uint64_t seed = 1;
};

struct UpdateStream {
  // Initial snapshot G_0: the input graph minus the insertion-marked edges.
  CsrGraph initial;
  // Batches in application order.
  std::vector<EdgeBatch> batches;

  std::size_t num_batches() const { return batches.size(); }
};

// Builds an update stream from a static graph. Every pooled edge appears in
// exactly one batch, so batches are mutually consistent: a deletion always
// targets a live edge and an insertion never duplicates one.
UpdateStream make_update_stream(const CsrGraph& graph,
                                const UpdateStreamOptions& options);

}  // namespace gcsm
