// Dynamic-graph construction protocol from the paper (Sec. VI-A), plus the
// untrusted-input side of batch ingestion.
//
// Following the CSM literature, a dynamic graph is derived from a static
// one: a pool of edges is drawn at random, each marked insertion or deletion
// with equal probability; insertion-marked edges are removed from the
// initial snapshot (so inserting them later is valid), deletion-marked edges
// stay (so deleting them later is valid). The pool is then chopped into
// batches ΔE_1, ΔE_2, ...
//
// Streams built by make_update_stream satisfy apply_batch's preconditions by
// construction. Batches from outside (files, sockets) do not — sanitize_batch
// quarantines every record that would violate them and reports what it
// dropped, so the pipeline can apply the remainder and keep going.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace gcsm {

class DynamicGraph;
class FaultInjector;

struct UpdateStreamOptions {
  // Number of edges in the update pool: either an absolute count, or (when
  // count == 0) a fraction of |E|. The paper uses 12*8192 edges for the
  // large graphs and 10% of edges for the small ones.
  EdgeCount pool_edge_count = 0;
  double pool_edge_fraction = 0.10;
  std::size_t batch_size = 4096;
  double insert_probability = 0.5;
  std::uint64_t seed = 1;
};

struct UpdateStream {
  // Initial snapshot G_0: the input graph minus the insertion-marked edges.
  CsrGraph initial;
  // Batches in application order.
  std::vector<EdgeBatch> batches;

  std::size_t num_batches() const { return batches.size(); }
};

// Builds an update stream from a static graph. Every pooled edge appears in
// exactly one batch, so batches are mutually consistent: a deletion always
// targets a live edge and an insertion never duplicates one.
UpdateStream make_update_stream(const CsrGraph& graph,
                                const UpdateStreamOptions& options);

// Per-batch tally of quarantined records, by reason. The records themselves
// are kept so callers can log or dead-letter them.
struct QuarantineReport {
  std::uint64_t out_of_range = 0;       // endpoint negative or undeclared
  std::uint64_t self_loops = 0;         // u == v
  std::uint64_t duplicate_in_batch = 0; // same undirected edge seen earlier
  std::uint64_t insert_of_present = 0;  // insertion of a live edge
  std::uint64_t delete_of_absent = 0;   // deletion of a non-live edge
  std::vector<EdgeUpdate> quarantined;

  std::uint64_t total() const {
    return out_of_range + self_loops + duplicate_in_batch +
           insert_of_present + delete_of_absent;
  }
  bool empty() const { return total() == 0; }
};

// Screens `batch` against `graph` (which must be reorganized) and returns a
// copy containing only the records apply_batch can accept, in their original
// order; everything else lands in `report`. Endpoints at or beyond the
// current vertex count are valid only when declared in
// batch.new_vertex_labels. A well-formed batch passes through unchanged.
EdgeBatch sanitize_batch(const DynamicGraph& graph, const EdgeBatch& batch,
                         QuarantineReport& report);

// Fault site batch.corrupt: when the injector fires, APPENDS a handful of
// malformed records (out-of-range endpoint, self-loop, duplicate of an
// existing record) to `batch`. Appending — never mutating — means
// sanitize_batch strips exactly the garbage and the surviving batch is
// bit-identical to the original, which is what lets fault-matrix tests
// compare embedding counts against a fault-free run.
void inject_batch_corruption(EdgeBatch& batch, FaultInjector* faults);

}  // namespace gcsm
