// Text edge-list IO (SNAP-style) plus a compact binary snapshot format, so
// generated analogs can be persisted and reused across benchmark runs.
//
// All loaders throw gcsm::Error (kIoOpen / kIoParse / kIoTruncated); parse
// errors name the file, line, and offending token. Empty and truncated
// inputs are rejected up front — a corrupt byte count can never trigger an
// oversized allocation.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"

namespace gcsm {

// Text format: optional comment lines starting with '#'; then one
// "u v [label_u label_v]" pair per line. Labels default to 0.
CsrGraph load_edge_list_text(const std::string& path);
void save_edge_list_text(const CsrGraph& graph, const std::string& path);

// Binary format: magic, counts, labels, CSR arrays. Round-trips exactly.
CsrGraph load_binary(const std::string& path);
void save_binary(const CsrGraph& graph, const std::string& path);

}  // namespace gcsm
