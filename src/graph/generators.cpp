#include "graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace gcsm {

std::vector<Label> random_labels(VertexId num_vertices,
                                 std::uint32_t num_labels, Rng& rng) {
  std::vector<Label> labels(num_vertices, 0);
  if (num_labels > 1) {
    for (auto& l : labels) {
      l = static_cast<Label>(rng.bounded(num_labels));
    }
  }
  return labels;
}

CsrGraph generate_barabasi_albert(VertexId num_vertices,
                                  std::uint32_t edges_per_vertex,
                                  std::uint32_t num_labels, Rng& rng) {
  if (num_vertices < 2 || edges_per_vertex == 0) {
    throw Error(ErrorCode::kConfig, "BA generator needs n >= 2, m >= 1");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex);
  // `targets` holds one entry per edge endpoint, so sampling an element
  // uniformly samples a vertex proportionally to its degree.
  std::vector<VertexId> targets;
  targets.reserve(edges.capacity() * 2);
  targets.push_back(0);

  for (VertexId v = 1; v < num_vertices; ++v) {
    const std::uint32_t m =
        std::min<std::uint32_t>(edges_per_vertex, static_cast<std::uint32_t>(v));
    std::unordered_set<VertexId> picked;
    while (picked.size() < m) {
      const VertexId t = targets[rng.bounded(targets.size())];
      picked.insert(t);
    }
    for (const VertexId t : picked) {
      edges.push_back({v, t});
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return CsrGraph::from_edges(num_vertices, edges,
                              random_labels(num_vertices, num_labels, rng));
}

CsrGraph generate_rmat(std::uint32_t scale, std::uint32_t edge_factor,
                       double a, double b, double c, std::uint32_t num_labels,
                       Rng& rng) {
  if (scale == 0 || scale > 30) {
    throw Error(ErrorCode::kConfig, "rmat scale must be in [1, 30]");
  }
  if (a + b + c >= 1.0) {
    throw Error(ErrorCode::kConfig, "rmat probabilities must sum below 1");
  }
  const VertexId n = static_cast<VertexId>(1u << scale);
  const EdgeCount m = static_cast<EdgeCount>(edge_factor) * n;
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeCount i = 0; i < m; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.push_back({u, v});
  }
  return CsrGraph::from_edges(n, edges, random_labels(n, num_labels, rng));
}

CsrGraph generate_community_ba(VertexId num_vertices,
                               std::uint32_t edges_per_vertex,
                               std::uint32_t num_communities,
                               double intra_prob, std::uint32_t num_labels,
                               Rng& rng) {
  if (num_vertices < 2 || edges_per_vertex == 0 || num_communities == 0) {
    throw Error(ErrorCode::kConfig, "community BA needs n >= 2, m >= 1, k >= 1");
  }
  // Vertices are assigned to communities round-robin so every prefix of the
  // construction contains members of each community.
  const auto community_of = [num_communities](VertexId v) {
    return static_cast<std::uint32_t>(v) % num_communities;
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex);
  // Per-community degree-proportional target pools, plus one global pool.
  std::vector<std::vector<VertexId>> intra(num_communities);
  std::vector<VertexId> global;
  for (std::uint32_t c = 0; c < num_communities && c < static_cast<std::uint32_t>(num_vertices); ++c) {
    intra[c].push_back(static_cast<VertexId>(c));
    global.push_back(static_cast<VertexId>(c));
  }

  const VertexId start =
      static_cast<VertexId>(std::min<std::uint32_t>(num_communities,
                                                    static_cast<std::uint32_t>(num_vertices)));
  for (VertexId v = start; v < num_vertices; ++v) {
    const std::uint32_t c = community_of(v);
    std::unordered_set<VertexId> picked;
    const std::uint32_t m = std::min<std::uint32_t>(
        edges_per_vertex, static_cast<std::uint32_t>(v));
    std::uint32_t guard = 0;
    while (picked.size() < m && guard++ < 64 * m) {
      VertexId t = kInvalidVertex;
      if (!intra[c].empty() && rng.bernoulli(intra_prob)) {
        t = intra[c][rng.bounded(intra[c].size())];
      } else {
        t = global[rng.bounded(global.size())];
      }
      if (t != v) picked.insert(t);
    }
    for (const VertexId t : picked) {
      edges.push_back({v, t});
      intra[c].push_back(v);
      intra[community_of(t)].push_back(t);
      global.push_back(v);
      global.push_back(t);
    }
    if (picked.empty()) {
      // Degenerate guard exit: attach to the previous vertex.
      edges.push_back({v, v - 1});
      intra[c].push_back(v);
      global.push_back(v);
    }
  }
  return CsrGraph::from_edges(num_vertices, edges,
                              random_labels(num_vertices, num_labels, rng));
}

CsrGraph generate_erdos_renyi(VertexId num_vertices, EdgeCount num_edges,
                              std::uint32_t num_labels, Rng& rng) {
  if (num_vertices < 2) {
    throw Error(ErrorCode::kConfig, "ER generator needs n >= 2");
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  const auto max_possible = static_cast<EdgeCount>(num_vertices) *
                            (num_vertices - 1) / 2;
  num_edges = std::min(num_edges, max_possible);
  while (edges.size() < num_edges) {
    auto u = static_cast<VertexId>(rng.bounded(num_vertices));
    auto v = static_cast<VertexId>(rng.bounded(num_vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
    if (seen.insert(key).second) {
      edges.push_back({u, v});
    }
  }
  return CsrGraph::from_edges(num_vertices, edges,
                              random_labels(num_vertices, num_labels, rng));
}

CsrGraph generate_road_network(std::uint32_t rows, std::uint32_t cols,
                               double keep_prob, double diag_prob,
                               std::uint32_t num_labels, Rng& rng) {
  if (rows < 2 || cols < 2) {
    throw Error(ErrorCode::kConfig, "road network needs at least a 2x2 grid");
  }
  const auto n = static_cast<VertexId>(rows * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 3);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.bernoulli(keep_prob)) {
        edges.push_back({id(r, c), id(r, c + 1)});
      }
      if (r + 1 < rows && rng.bernoulli(keep_prob)) {
        edges.push_back({id(r, c), id(r + 1, c)});
      }
      if (r + 1 < rows && c + 1 < cols && rng.bernoulli(diag_prob)) {
        edges.push_back({id(r, c), id(r + 1, c + 1)});
      }
      if (r + 1 < rows && c > 0 && rng.bernoulli(diag_prob)) {
        edges.push_back({id(r, c), id(r + 1, c - 1)});
      }
    }
  }
  return CsrGraph::from_edges(n, edges, random_labels(n, num_labels, rng));
}

}  // namespace gcsm
