// The partitioned data-graph store behind the multi-device sharded engine
// (DESIGN.md, "Multi-device sharding").
//
// Each of the N shards pairs one DynamicGraph with its own gpusim::Device
// and DcsrCache. Every shard graph spans the FULL vertex-id space (labels
// everywhere, so label checks stay local), but stores adjacency only for
// edges with at least one owned endpoint:
//
//   * an edge owned on both sides lives in that one shard;
//   * a CUT edge (endpoints owned by different shards) is replicated WHOLE
//     into both endpoint shards — the ownership tag is owner(endpoint)
//     itself, so seed work items anchor at owner(xa) and are enumerated
//     exactly once globally.
//
// The invariant that makes sharded matching exact: owner(v)'s graph holds
// v's COMPLETE neighbor list, byte-identical (same insertion order, same
// tombstones) to the list a single-device DynamicGraph would hold, because
// sub-batches preserve the original record order. Any fetch routed to the
// owner therefore sees exactly the single-device OLD/NEW views.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dcsr_cache.hpp"
#include "gpusim/device.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "shard/partitioner.hpp"

namespace gcsm::shard {

// One simulated device's slice of the data graph.
struct Shard {
  DynamicGraph graph;
  gpusim::Device device;
  DcsrCache cache;

  Shard(const CsrGraph& initial, const gpusim::SimParams& sim)
      : graph(initial), device(sim) {}
};

class ShardedGraph {
 public:
  ShardedGraph(const CsrGraph& initial, std::size_t num_shards,
               PartitionStrategy strategy, const gpusim::SimParams& sim);

  std::size_t num_shards() const { return shards_.size(); }
  const GraphPartitioner& partitioner() const { return partitioner_; }
  std::uint32_t owner(VertexId v) const { return partitioner_.owner(v); }

  DynamicGraph& graph(std::size_t s) { return shards_[s]->graph; }
  const DynamicGraph& graph(std::size_t s) const { return shards_[s]->graph; }
  gpusim::Device& device(std::size_t s) { return shards_[s]->device; }
  const DcsrCache& cache(std::size_t s) const { return shards_[s]->cache; }
  DcsrCache& cache(std::size_t s) { return shards_[s]->cache; }

  // Identical across shards (new-vertex labels are replicated everywhere).
  VertexId num_vertices() const { return shards_[0]->graph.num_vertices(); }

  // Mirrors graph/update_stream.cpp's sanitize_batch decision-for-decision,
  // answering liveness from the owning shard (exact by the completeness
  // invariant). The surviving records and the quarantine report are
  // bit-identical to what the single-device sanitizer produces.
  EdgeBatch sanitize(const EdgeBatch& batch, QuarantineReport& report) const;

  // Splits a sanitized batch by endpoint ownership: sub-batch s carries
  // every record with an endpoint owned by s (cut records appear in both
  // endpoint shards), in the original record order; new_vertex_labels are
  // replicated to every shard so id spaces stay aligned.
  std::vector<EdgeBatch> split_batch(const EdgeBatch& batch) const;

  // Call after a sanitized batch has been applied to every shard: maintains
  // the incremental cut-edge count.
  void note_applied(const EdgeBatch& batch);

  std::uint64_t cut_edges() const { return cut_edges_; }

  // Per-shard load + cut accounting, computed from owned vertices only (so
  // replicated cut edges are not double counted).
  PartitionStats partition_stats() const;

  // Arms device.alloc / device.dma / cache.build / graph.apply on every
  // shard. nullptr disarms.
  void set_fault_injector(FaultInjector* faults);

  // validate() on every shard graph (invariant checks at batch boundaries).
  void validate() const;

 private:
  GraphPartitioner partitioner_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t cut_edges_ = 0;
};

}  // namespace gcsm::shard
