// Deterministic vertex partitioning for the multi-device sharded engine
// (DESIGN.md, "Multi-device sharding").
//
// The partitioner is a pure function of (strategy, shard count, initial
// vertex count): owner(v) never changes once a ShardedGraph is built, so
// batch routing, cut-edge replication, and the stitch protocol all agree on
// ownership without coordination. Vertices created by later batches are
// covered too — range assigns them to the tail shard, hash by the same
// mixer — so routing stays total as the graph grows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/types.hpp"

namespace gcsm::shard {

enum class PartitionStrategy {
  kRange,  // contiguous id ranges of the initial vertex set
  kHash,   // splitmix64 of the id, modulo shard count
};

const char* partition_strategy_name(PartitionStrategy s);

// Parses "range" / "hash"; anything else throws Error(kConfig,
// "partition: <text>") so csm_cli surfaces it with exit code 2.
PartitionStrategy parse_partition_strategy(const std::string& text);

// Per-shard load accounting over a live graph (NEW view).
struct PartitionStats {
  std::vector<std::uint64_t> owned_vertices;  // live-degree > 0 not required
  std::vector<std::uint64_t> owned_edges;     // live edge endpoints owned
  std::uint64_t cut_edges = 0;  // live edges whose endpoints differ in owner
  // max / mean of owned_edges (owned_vertices when the graph is empty);
  // 1.0 is a perfect balance.
  double imbalance = 1.0;
};

class GraphPartitioner {
 public:
  // `initial_vertices` sizes the range strategy's slices; num_shards >= 1.
  GraphPartitioner(std::size_t num_shards, PartitionStrategy strategy,
                   VertexId initial_vertices);

  std::size_t num_shards() const { return num_shards_; }
  PartitionStrategy strategy() const { return strategy_; }

  std::uint32_t owner(VertexId v) const {
    if (strategy_ == PartitionStrategy::kRange) {
      const auto s = static_cast<std::uint64_t>(v) / range_width_;
      return static_cast<std::uint32_t>(
          s < num_shards_ ? s : num_shards_ - 1);
    }
    // splitmix64 finalizer: deterministic, well spread even for dense ids.
    std::uint64_t x = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(v));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x % num_shards_);
  }

  // Walks the NEW view of `graph` and accounts per-shard load and cut edges.
  PartitionStats stats(const DynamicGraph& graph) const;

 private:
  std::size_t num_shards_;
  PartitionStrategy strategy_;
  std::uint64_t range_width_;
};

}  // namespace gcsm::shard
