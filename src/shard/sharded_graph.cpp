#include "shard/sharded_graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace gcsm::shard {
namespace {

// Same undirected key as the single-device sanitizer.
std::uint64_t undirected_key(VertexId u, VertexId v) {
  const auto a = static_cast<std::uint64_t>(std::min(u, v));
  const auto b = static_cast<std::uint64_t>(std::max(u, v));
  return (a << 32) | b;
}

}  // namespace

ShardedGraph::ShardedGraph(const CsrGraph& initial, std::size_t num_shards,
                           PartitionStrategy strategy,
                           const gpusim::SimParams& sim)
    : partitioner_(num_shards, strategy, initial.num_vertices()) {
  const VertexId n = initial.num_vertices();
  std::vector<Label> labels(initial.labels());
  if (labels.empty()) labels.assign(static_cast<std::size_t>(n), 0);

  for (std::size_t s = 0; s < num_shards; ++s) {
    std::vector<Edge> edges;
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : initial.neighbors(u)) {
        if (u >= v) continue;
        const std::uint32_t ou = partitioner_.owner(u);
        const std::uint32_t ov = partitioner_.owner(v);
        if (ou == static_cast<std::uint32_t>(s) ||
            ov == static_cast<std::uint32_t>(s)) {
          edges.push_back({u, v});
        }
        if (s == 0 && ou != ov) ++cut_edges_;
      }
    }
    shards_.push_back(std::make_unique<Shard>(
        CsrGraph::from_edges(n, edges, labels), sim));
  }
}

EdgeBatch ShardedGraph::sanitize(const EdgeBatch& batch,
                                 QuarantineReport& report) const {
  const VertexId n = num_vertices();

  VertexId effective_n = n;
  for (const auto& [v, label] : batch.new_vertex_labels) {
    if (v >= effective_n) effective_n = v + 1;
  }

  EdgeBatch clean;
  clean.new_vertex_labels = batch.new_vertex_labels;
  clean.updates.reserve(batch.updates.size());

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(batch.updates.size() * 2);

  for (const EdgeUpdate& e : batch.updates) {
    if (e.u < 0 || e.v < 0 || e.u >= effective_n || e.v >= effective_n) {
      ++report.out_of_range;
      report.quarantined.push_back(e);
      continue;
    }
    if (e.u == e.v) {
      ++report.self_loops;
      report.quarantined.push_back(e);
      continue;
    }
    if (!seen.insert(undirected_key(e.u, e.v)).second) {
      ++report.duplicate_in_batch;
      report.quarantined.push_back(e);
      continue;
    }
    // Liveness answered by the owning shard: owner(u) holds u's complete
    // list, so the answer equals the single-device graph's.
    const bool exists_now = e.u < n && e.v < n;
    const bool live =
        exists_now && graph(owner(e.u)).has_live_edge(e.u, e.v);
    if (e.sign > 0 && live) {
      ++report.insert_of_present;
      report.quarantined.push_back(e);
      continue;
    }
    if (e.sign <= 0 && !live) {
      ++report.delete_of_absent;
      report.quarantined.push_back(e);
      continue;
    }
    clean.updates.push_back(e);
  }
  return clean;
}

std::vector<EdgeBatch> ShardedGraph::split_batch(
    const EdgeBatch& batch) const {
  std::vector<EdgeBatch> subs(num_shards());
  for (auto& sub : subs) sub.new_vertex_labels = batch.new_vertex_labels;
  for (const EdgeUpdate& e : batch.updates) {
    const std::uint32_t ou = owner(e.u);
    const std::uint32_t ov = owner(e.v);
    subs[ou].updates.push_back(e);
    if (ov != ou) subs[ov].updates.push_back(e);
  }
  return subs;
}

void ShardedGraph::note_applied(const EdgeBatch& batch) {
  for (const EdgeUpdate& e : batch.updates) {
    if (owner(e.u) == owner(e.v)) continue;
    if (e.sign > 0) {
      ++cut_edges_;
    } else if (cut_edges_ > 0) {
      --cut_edges_;
    }
  }
}

PartitionStats ShardedGraph::partition_stats() const {
  PartitionStats st;
  st.owned_vertices.assign(num_shards(), 0);
  st.owned_edges.assign(num_shards(), 0);
  st.cut_edges = cut_edges_;

  std::vector<VertexId> nbrs;
  for (std::size_t s = 0; s < num_shards(); ++s) {
    const DynamicGraph& g = graph(s);
    const VertexId n = g.num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      if (owner(v) != s) continue;
      ++st.owned_vertices[s];
      st.owned_edges[s] += g.live_degree(v);
    }
  }

  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t x : st.owned_edges) {
    max = std::max(max, x);
    total += x;
  }
  if (total == 0) {
    max = 0;
    for (const std::uint64_t x : st.owned_vertices) {
      max = std::max(max, x);
      total += x;
    }
  }
  st.imbalance = total == 0 ? 1.0
                            : static_cast<double>(max) * num_shards() /
                                  static_cast<double>(total);
  return st;
}

void ShardedGraph::set_fault_injector(FaultInjector* faults) {
  for (auto& shard : shards_) {
    shard->graph.set_fault_injector(faults);
    shard->device.set_fault_injector(faults);
  }
}

void ShardedGraph::validate() const {
  for (const auto& shard : shards_) shard->graph.validate();
}

}  // namespace gcsm::shard
