#include "shard/sharded_matcher.hpp"

#include <memory>
#include <mutex>
#include <span>

#include "core/access_policy.hpp"
#include "core/intersect.hpp"
#include "core/list_ref.hpp"
#include "gpusim/simt_executor.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace gcsm::shard {
namespace {

// One access policy per target shard, owned by one shard task: stateful
// policies (the UM page cache) must never be shared across tasks, while the
// const-reference policies (cached / zero-copy / host) are cheap per task.
class RoutedShardPolicy final : public AccessPolicy {
 public:
  RoutedShardPolicy(EngineKind kind, const ShardedGraph& sg,
                    const gpusim::SimParams& sim)
      : sg_(sg), on_device_(kind != EngineKind::kCpu) {
    for (std::size_t s = 0; s < sg.num_shards(); ++s) {
      switch (kind) {
        case EngineKind::kGcsm:
        case EngineKind::kNaiveDegree:
        case EngineKind::kVsgm:
          policies_.push_back(std::make_unique<CachedPolicy>(
              sg.graph(s), sg.cache(s), sim));
          break;
        case EngineKind::kZeroCopy:
          policies_.push_back(
              std::make_unique<ZeroCopyPolicy>(sg.graph(s), sim));
          break;
        case EngineKind::kUnifiedMemory:
          policies_.push_back(
              std::make_unique<UnifiedMemoryPolicy>(sg.graph(s), sim));
          break;
        case EngineKind::kCpu:
          policies_.push_back(std::make_unique<HostPolicy>(sg.graph(s)));
          break;
      }
    }
  }

  NeighborView fetch(VertexId v, ViewMode mode,
                     gpusim::TrafficCounters& counters) override {
    return policies_[sg_.owner(v)]->fetch(v, mode, counters);
  }
  bool on_device() const override { return on_device_; }

 private:
  const ShardedGraph& sg_;
  bool on_device_;
  std::vector<std::unique_ptr<AccessPolicy>> policies_;
};

struct ShardScratch {
  std::array<std::vector<VertexId>, kMaxQueryVertices> cand;
  std::array<std::uint32_t, kMaxQueryVertices> cursor{};
  std::vector<VertexId> tmp;
  MatchStats stats;
  std::uint64_t routed_items = 0;
  std::uint64_t migrated = 0;
};

// Same charging rule as core/cpu_engine.cpp: SIMT compute for device
// policies, host ops for the CPU fallback.
void charge_ops(AccessPolicy& policy, gpusim::TrafficCounters& counters,
                std::uint64_t ops) {
  if (policy.on_device()) {
    counters.add_compute(ops);
  } else {
    counters.add_host(ops, 0);
  }
}

// Verbatim mechanics of core/cpu_engine.cpp's compute_candidates, so the
// candidate sets (and charged op counts) match the single-device engine.
bool compute_candidates(const MatchPlan& plan, std::uint32_t level,
                        const std::array<VertexId, kMaxQueryVertices>& bound,
                        AccessPolicy& policy,
                        gpusim::TrafficCounters& counters,
                        ShardScratch& scratch) {
  const PlanLevel& pl = plan.levels[level];
  auto& out = scratch.cand[level];
  out.clear();
  std::uint64_t ops = 0;

  const auto& c0 = pl.constraints[0];
  const NeighborView v0 = policy.fetch(bound[c0.order_pos], c0.view, counters);
  materialize_view(v0, out);
  ops += out.size();

  for (std::size_t i = 1; i < pl.constraints.size() && !out.empty(); ++i) {
    const auto& c = pl.constraints[i];
    const NeighborView vi = policy.fetch(bound[c.order_pos], c.view, counters);
    scratch.tmp.clear();
    materialize_view(vi, scratch.tmp);
    ops += scratch.tmp.size();
    ops += intersect_into(out, scratch.tmp.data(), scratch.tmp.size());
  }
  charge_ops(policy, counters, ops);
  return !out.empty();
}

class SinkLock {
 public:
  explicit SinkLock(const MatchSink* sink) : sink_(sink) {}
  void emit(const MatchPlan& plan, std::span<const VertexId> binding,
            int sign) {
    if (sink_ == nullptr) return;
    std::lock_guard<std::mutex> lk(mu_);
    (*sink_)(plan, binding, sign);
  }

 private:
  const MatchSink* sink_;
  std::mutex mu_;
};

// A partial match in flight between shards: resume the DFS at `level`
// (whose candidates have not been computed yet) with bound[0..level+2)
// already fixed.
struct Partial {
  std::uint32_t plan_idx = 0;
  std::int8_t sign = +1;
  std::uint32_t level = 0;
  std::array<VertexId, kMaxQueryVertices> bound{};
};

struct TaskCtx {
  std::uint32_t shard = 0;
  const QueryGraph* query = nullptr;
  const std::vector<MatchPlan>* plans = nullptr;
  const std::vector<std::vector<std::uint8_t>>* stitch = nullptr;
  const DynamicGraph* graph = nullptr;  // this shard's (labels are global)
  const GraphPartitioner* part = nullptr;
  AccessPolicy* policy = nullptr;
  gpusim::TrafficCounters* counters = nullptr;
  ShardScratch* scratch = nullptr;
  SinkLock* sink = nullptr;
  std::vector<std::vector<Partial>>* outbox = nullptr;  // [target shard]
};

// The explicit-stack DFS of core/cpu_engine.cpp's enumerate_seed, extended
// with one hook: before descending into a BRANCH level whose anchor vertex
// is owned elsewhere, the partial is shipped to that owner instead.
void expand_partial(TaskCtx& ctx, const Partial& p) {
  const MatchPlan& plan = (*ctx.plans)[p.plan_idx];
  const std::vector<std::uint8_t>& stitch = (*ctx.stitch)[p.plan_idx];
  const std::uint32_t num_levels = plan.num_levels();
  std::array<VertexId, kMaxQueryVertices> bound = p.bound;
  ShardScratch& scratch = *ctx.scratch;
  const int sign = p.sign;

  auto emit = [&](std::uint32_t depth) {
    scratch.stats.signed_embeddings += sign;
    if (sign > 0) {
      ++scratch.stats.positive;
    } else {
      ++scratch.stats.negative;
    }
    ctx.sink->emit(plan, std::span<const VertexId>(bound.data(), depth),
                   sign);
  };

  if (num_levels == 0) {
    emit(2);
    return;
  }

  // Entry-level stitch: a freshly seeded partial may immediately belong to
  // another shard. Inbox partials never re-migrate (they were routed here).
  if (stitch[p.level] != 0) {
    const auto& c0 = plan.levels[p.level].constraints[0];
    const std::uint32_t target = ctx.part->owner(bound[c0.order_pos]);
    if (target != ctx.shard) {
      (*ctx.outbox)[target].push_back(p);
      ++scratch.migrated;
      return;
    }
  }

  const auto base = static_cast<std::int32_t>(p.level);
  std::int32_t level = base;
  if (!compute_candidates(plan, p.level, bound, *ctx.policy, *ctx.counters,
                          scratch)) {
    return;
  }
  scratch.cursor[level] = 0;

  while (level >= base) {
    auto& cand = scratch.cand[level];
    auto& cur = scratch.cursor[level];
    if (cur >= cand.size()) {
      --level;
      continue;
    }
    const VertexId v = cand[cur++];
    const PlanLevel& pl = plan.levels[level];

    if (!ctx.query->label_matches(pl.query_vertex, ctx.graph->label(v))) {
      continue;
    }
    bool duplicate = false;
    const std::uint32_t bound_count = 2 + static_cast<std::uint32_t>(level);
    for (std::uint32_t i = 0; i < bound_count; ++i) {
      if (bound[i] == v) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;

    bound[bound_count] = v;
    if (static_cast<std::uint32_t>(level) + 1 == num_levels) {
      emit(bound_count + 1);
      continue;
    }
    const std::uint32_t next = static_cast<std::uint32_t>(level) + 1;
    if (stitch[next] != 0) {
      const auto& c0 = plan.levels[next].constraints[0];
      const std::uint32_t target = ctx.part->owner(bound[c0.order_pos]);
      if (target != ctx.shard) {
        Partial np;
        np.plan_idx = p.plan_idx;
        np.sign = p.sign;
        np.level = next;
        np.bound = bound;
        (*ctx.outbox)[target].push_back(np);
        ++scratch.migrated;
        continue;
      }
    }
    ++level;
    if (!compute_candidates(plan, static_cast<std::uint32_t>(level), bound,
                            *ctx.policy, *ctx.counters, scratch)) {
      --level;
      continue;
    }
    scratch.cursor[level] = 0;
  }
}

// Round 0: the single-device work-item space (plan x record x orientation),
// with each item claimed by owner(xa) — exactly-once enumeration globally.
void process_seed_items(TaskCtx& ctx, const EdgeBatch& batch) {
  const std::vector<MatchPlan>& plans = *ctx.plans;
  const std::size_t per_plan = batch.updates.size() * 2;
  const std::size_t total = plans.size() * per_plan;
  for (std::size_t item = 0; item < total; ++item) {
    const std::size_t plan_idx = item / per_plan;
    const std::size_t rest = item % per_plan;
    const EdgeUpdate& e = batch.updates[rest / 2];
    const bool swap = (rest % 2) != 0;
    const VertexId xa = swap ? e.v : e.u;
    const VertexId xb = swap ? e.u : e.v;
    if (ctx.part->owner(xa) != ctx.shard) continue;
    ++ctx.scratch->routed_items;

    const MatchPlan& plan = plans[plan_idx];
    if (!ctx.query->label_matches(plan.seed_a, ctx.graph->label(xa))) {
      continue;
    }
    if (!ctx.query->label_matches(plan.seed_b, ctx.graph->label(xb))) {
      continue;
    }
    Partial p;
    p.plan_idx = static_cast<std::uint32_t>(plan_idx);
    p.sign = e.sign;
    p.level = 0;
    p.bound[0] = xa;
    p.bound[1] = xb;
    ++ctx.scratch->stats.seeds;
    expand_partial(ctx, p);
  }
}

// Drains migrated partials in barrier-separated supersteps until no outbox
// has work. Returns the number of rounds run beyond the first.
std::uint32_t run_supersteps(
    ThreadPool& pool, std::size_t num_shards, std::vector<TaskCtx>& ctxs,
    std::vector<std::vector<std::vector<Partial>>>& outboxes) {
  std::uint32_t extra_rounds = 0;
  std::vector<std::vector<Partial>> inbox(num_shards);
  for (;;) {
    bool any = false;
    for (std::size_t s = 0; s < num_shards; ++s) {
      inbox[s].clear();
      for (std::size_t src = 0; src < num_shards; ++src) {
        auto& box = outboxes[src][s];
        inbox[s].insert(inbox[s].end(), box.begin(), box.end());
        box.clear();
      }
      if (!inbox[s].empty()) any = true;
    }
    if (!any) break;
    ++extra_rounds;
    pool.parallel_for(num_shards, 1,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t s = begin; s < end; ++s) {
                          for (const Partial& p : inbox[s]) {
                            expand_partial(ctxs[s], p);
                          }
                        }
                      });
  }
  return extra_rounds;
}

}  // namespace

ShardedMatcher::ShardedMatcher(QueryGraph query, std::size_t num_shards,
                               std::size_t grain)
    : query_(std::move(query)),
      static_plan_(make_static_plan(query_)),
      delta_plans_(make_delta_plans(query_)),
      decomposition_(make_branch_decomposition(query_)),
      num_shards_(num_shards),
      grain_(grain) {
  delta_stitch_.reserve(delta_plans_.size());
  for (const MatchPlan& p : delta_plans_) {
    delta_stitch_.push_back(stitch_levels(decomposition_, p));
  }
  static_stitch_ = stitch_levels(decomposition_, static_plan_);
}

MatchStats ShardedMatcher::match_batch(
    EngineKind effective_kind, const ShardedGraph& sg, const EdgeBatch& batch,
    ThreadPool& pool, const MatchSink* sink, const gpusim::SimParams& sim,
    FaultInjector* faults, double watchdog_timeout_ms,
    std::vector<gpusim::Traffic>* per_shard_traffic, StitchStats* stitch) {
  const std::size_t shards = num_shards_;

  // Kernel fault sites, probed once per shard launch BEFORE any item runs
  // (mirroring SimtExecutor's contract, so no partial kernel effects
  // escape). A hung shard kernel surfaces directly as the watchdog's
  // cancellation.
  if (faults != nullptr && effective_kind != EngineKind::kCpu) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (faults->fires(fault_site::kKernelLaunch)) {
        throw gpusim::KernelLaunchError();
      }
      if (faults->fires(fault_site::kKernelHang)) {
        throw gpusim::KernelTimeoutError(watchdog_timeout_ms);
      }
    }
  }

  std::vector<ShardScratch> scratch(shards);
  auto counters = std::make_unique<gpusim::TrafficCounters[]>(shards);
  std::vector<std::unique_ptr<RoutedShardPolicy>> policies;
  policies.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    policies.push_back(
        std::make_unique<RoutedShardPolicy>(effective_kind, sg, sim));
  }
  SinkLock sink_lock(sink);
  std::vector<std::vector<std::vector<Partial>>> outboxes(
      shards, std::vector<std::vector<Partial>>(shards));

  std::vector<TaskCtx> ctxs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ctxs[s].shard = static_cast<std::uint32_t>(s);
    ctxs[s].query = &query_;
    ctxs[s].plans = &delta_plans_;
    ctxs[s].stitch = &delta_stitch_;
    ctxs[s].graph = &sg.graph(s);
    ctxs[s].part = &sg.partitioner();
    ctxs[s].policy = policies[s].get();
    ctxs[s].counters = &counters[s];
    ctxs[s].scratch = &scratch[s];
    ctxs[s].sink = &sink_lock;
    ctxs[s].outbox = &outboxes[s];
  }

  pool.parallel_for(shards, 1,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t s = begin; s < end; ++s) {
                        process_seed_items(ctxs[s], batch);
                      }
                    });

  Timer stitch_timer;
  const std::uint32_t extra = run_supersteps(pool, shards, ctxs, outboxes);

  MatchStats stats;
  std::uint64_t routed = 0;
  std::uint64_t migrated = 0;
  for (const ShardScratch& s : scratch) {
    stats += s.stats;
    routed += s.routed_items;
    migrated += s.migrated;
  }
  if (per_shard_traffic != nullptr) {
    per_shard_traffic->clear();
    for (std::size_t s = 0; s < shards; ++s) {
      per_shard_traffic->push_back(counters[s].snapshot());
    }
  }
  if (stitch != nullptr) {
    stitch->routed_items = routed;
    stitch->stitch_candidates = migrated;
    stitch->supersteps = 1 + extra;
    stitch->stitch_seconds = extra > 0 ? stitch_timer.seconds() : 0.0;
  }
  return stats;
}

MatchStats ShardedMatcher::match_full(EngineKind effective_kind,
                                      const ShardedGraph& sg,
                                      ThreadPool& pool,
                                      const gcsm::gpusim::SimParams& sim,
                                      const MatchSink* sink) {
  const std::size_t shards = num_shards_;
  const std::vector<MatchPlan> plans{static_plan_};
  const std::vector<std::vector<std::uint8_t>> stitch{static_stitch_};

  std::vector<ShardScratch> scratch(shards);
  auto counters = std::make_unique<gpusim::TrafficCounters[]>(shards);
  std::vector<std::unique_ptr<RoutedShardPolicy>> policies;
  policies.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    policies.push_back(
        std::make_unique<RoutedShardPolicy>(effective_kind, sg, sim));
  }
  SinkLock sink_lock(sink);
  std::vector<std::vector<std::vector<Partial>>> outboxes(
      shards, std::vector<std::vector<Partial>>(shards));

  std::vector<TaskCtx> ctxs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ctxs[s].shard = static_cast<std::uint32_t>(s);
    ctxs[s].query = &query_;
    ctxs[s].plans = &plans;
    ctxs[s].stitch = &stitch;
    ctxs[s].graph = &sg.graph(s);
    ctxs[s].part = &sg.partitioner();
    ctxs[s].policy = policies[s].get();
    ctxs[s].counters = &counters[s];
    ctxs[s].scratch = &scratch[s];
    ctxs[s].sink = &sink_lock;
    ctxs[s].outbox = &outboxes[s];
  }

  const MatchPlan& plan = static_plan_;
  const auto n = static_cast<std::size_t>(sg.num_vertices());
  pool.parallel_for(
      shards, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t s = begin; s < end; ++s) {
          TaskCtx& ctx = ctxs[s];
          for (std::size_t item = 0; item < n; ++item) {
            const auto xa = static_cast<VertexId>(item);
            if (ctx.part->owner(xa) != ctx.shard) continue;
            if (!query_.label_matches(plan.seed_a, ctx.graph->label(xa))) {
              continue;
            }
            // Scan xa's live neighbors as seed targets (both orientations
            // are covered because every ordered pair is its own item).
            ShardScratch& sc = *ctx.scratch;
            const NeighborView view =
                ctx.policy->fetch(xa, ViewMode::kNew, *ctx.counters);
            sc.tmp.clear();
            materialize_view(view, sc.tmp);
            charge_ops(*ctx.policy, *ctx.counters, sc.tmp.size());
            const std::vector<VertexId> seeds = sc.tmp;  // tmp reused below
            for (const VertexId xb : seeds) {
              if (!query_.label_matches(plan.seed_b, ctx.graph->label(xb))) {
                continue;
              }
              Partial p;
              p.plan_idx = 0;
              p.sign = +1;
              p.level = 0;
              p.bound[0] = xa;
              p.bound[1] = xb;
              ++sc.stats.seeds;
              expand_partial(ctx, p);
            }
          }
        }
      });
  run_supersteps(pool, shards, ctxs, outboxes);

  MatchStats stats;
  for (const ShardScratch& s : scratch) stats += s.stats;
  return stats;
}

}  // namespace gcsm::shard
