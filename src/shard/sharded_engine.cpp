#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "core/gpu_engine.hpp"
#include "gpusim/cost_model.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metric_names.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace gcsm::shard {
namespace {

std::string shard_prefix(const std::string& base, std::size_t s) {
  return base + "shard" + std::to_string(s) + ".";
}

bool uses_cache(EngineKind kind) {
  return kind == EngineKind::kGcsm || kind == EngineKind::kNaiveDegree ||
         kind == EngineKind::kVsgm;
}

}  // namespace

ShardedMatchEngine::ShardedMatchEngine(const CsrGraph& initial,
                                       ShardedEngineOptions options)
    : options_(std::move(options)),
      sg_(initial, options_.num_shards, options_.partition, options_.sim),
      faults_(options_.fault_injector),
      durability_(options_.durability, options_.fault_injector),
      metrics_(options_.metric_prefix),
      pool_(options_.workers == 0 ? options_.num_shards : options_.workers),
      degradation_level_(options_.num_shards, 0),
      clean_device_batches_(options_.num_shards, 0) {
  sg_.set_fault_injector(faults_);
  shard_metrics_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    shard_metrics_.emplace_back(shard_prefix(options_.metric_prefix, s));
  }
  if (options_.kind == EngineKind::kUnifiedMemory) {
    // Same setting as the single-device Pipeline: the UM resident set gets
    // (each shard's share of) the cache budget, so UM genuinely pages.
    options_.sim.um_page_cache_bytes = std::min<std::uint64_t>(
        options_.sim.um_page_cache_bytes,
        std::max<std::uint64_t>(1, options_.cache_budget_bytes /
                                       options_.num_shards));
  }
  if (options_.durability.enabled()) {
    // Initializes WAL sequencing (and truncates any torn tail). Replay is
    // not wired for the sharded engine — see the header.
    cumulative_ = durability_.recover().counters;
  }
}

QueryId ShardedMatchEngine::register_query(QueryGraph query, MatchSink sink) {
  auto qs = std::make_unique<QueryState>();
  qs->id = static_cast<QueryId>(states_.size() + 1);
  qs->matcher =
      std::make_unique<ShardedMatcher>(std::move(query), options_.num_shards);
  qs->estimator = std::make_unique<FrequencyEstimator>(qs->matcher->query(),
                                                       options_.estimator);
  qs->rng = Rng(options_.seed + qs->id);
  qs->sink = std::move(sink);
  states_.push_back(std::move(qs));
  return states_.back()->id;
}

std::uint64_t ShardedMatchEngine::effective_cache_budget(
    std::size_t s) const {
  const std::uint64_t per_shard = std::max<std::uint64_t>(
      1, options_.cache_budget_bytes / sg_.num_shards());
  const std::uint64_t shrunk = per_shard >> degradation_level_[s];
  return std::max(shrunk, options_.recovery.min_cache_budget_bytes);
}

void ShardedMatchEngine::run_attempt(const EdgeBatch& clean,
                                     const std::vector<EdgeBatch>& subs,
                                     bool use_cpu, ShardedBatchReport& out,
                                     std::size_t& oom_shard) {
  const std::size_t shards = sg_.num_shards();
  const EngineKind kind = use_cpu ? EngineKind::kCpu : options_.kind;
  const gpusim::SimParams& sim = options_.sim;

  // Reset everything a retried attempt accumulates (retries / backoff /
  // quarantine / wal_seq live on out.shared and persist across attempts).
  out.shards.assign(shards, BatchReport{});
  out.queries.clear();
  out.stitch = StitchStats{};
  out.shared.stats = MatchStats{};
  out.shared.traffic = gpusim::Traffic{};
  out.shared.walks = 0;
  out.shared.cached_vertices = 0;
  out.shared.cache_bytes = 0;
  out.shared.sim_estimate_s = 0.0;
  out.shared.sim_pack_s = 0.0;
  out.shared.sim_match_s = 0.0;
  out.shared.sim_reorg_s = 0.0;

  for (std::size_t s = 0; s < shards; ++s) sg_.device(s).counters().reset();

  // Step 1: per-shard graph maintenance (cut records reach both owners).
  {
    const Timer t;
    for (std::size_t s = 0; s < shards; ++s) {
      phase_update(sg_.graph(s), subs[s], options_.check_invariants,
                   shard_metrics_[s], out.shards[s]);
    }
    out.shared.wall_update_ms = t.millis();
  }

  // Step 2: per-shard cache order, filtered to OWNED vertices — the router
  // only ever sends a shard fetches of vertices it owns, so caching
  // replicated neighbors would waste the budget slice.
  std::vector<std::vector<VertexId>> orders(shards);
  if (uses_cache(kind)) {
    int max_diameter = 0;
    for (const auto& qs : states_) {
      max_diameter = std::max(
          max_diameter, static_cast<int>(qs->matcher->query().diameter()));
    }
    const Timer t;
    for (std::size_t s = 0; s < shards; ++s) {
      BatchReport& sr = out.shards[s];
      const DynamicGraph& g = sg_.graph(s);
      const Timer ts;
      if (kind == EngineKind::kGcsm) {
        std::vector<double> combined;
        std::uint64_t walks = 0;
        std::uint64_t ops = 0;
        if (!subs[s].updates.empty()) {
          for (const auto& qs : states_) {
            const EstimateResult est =
                qs->estimator->estimate(g, subs[s], qs->rng);
            if (est.frequency.size() > combined.size()) {
              combined.resize(est.frequency.size(), 0.0);
            }
            for (std::size_t i = 0; i < est.frequency.size(); ++i) {
              combined[i] += est.frequency[i];
            }
            walks += est.walks;
            ops += est.ops;
            shard_metrics_[s].note_estimate(est);
          }
        }
        orders[s] = select_by_frequency(combined);
        sr.walks = walks;
        sr.sim_estimate_s =
            static_cast<double>(ops) /
            (sim.host_ops_per_sec_per_thread * sim.host_threads);
      } else if (kind == EngineKind::kNaiveDegree) {
        orders[s] = select_by_degree(g);
        sr.sim_estimate_s =
            static_cast<double>(g.num_vertices()) /
            (sim.host_ops_per_sec_per_thread * sim.host_threads);
      } else {  // kVsgm
        orders[s] = khop_vertices(g, subs[s], max_diameter);
      }
      std::erase_if(orders[s], [&](VertexId v) {
        return sg_.owner(v) != static_cast<std::uint32_t>(s);
      });
      if (kind == EngineKind::kVsgm) {
        sr.sim_estimate_s = static_cast<double>(total_list_bytes(g, orders[s])) /
                            (sim.host_mem_bandwidth_gbps * 1e9);
      }
      sr.wall_estimate_ms = ts.millis();
    }
    out.shared.wall_estimate_ms = t.millis();
  }

  // Step 3: per-shard DCSR pack under this shard's degraded budget slice.
  // VSGM's semantic-residency bound is the shard's configured slice.
  const std::uint64_t configured_slice = std::max<std::uint64_t>(
      1, options_.cache_budget_bytes / shards);
  {
    const Timer t;
    for (std::size_t s = 0; s < shards; ++s) {
      oom_shard = s;
      phase_pack(kind, sg_.cache(s), sg_.graph(s), orders[s],
                 effective_cache_budget(s), configured_slice, sg_.device(s),
                 sg_.device(s).counters(), options_.check_invariants, sim,
                 shard_metrics_[s], out.shards[s]);
    }
    out.shared.wall_pack_ms = t.millis();
  }

  // Step 4: routed match per query (the ShardedMatcher fans shard tasks out
  // on the pool and stitches cross-shard partials in supersteps).
  {
    const Timer t;
    std::vector<gpusim::Traffic> match_traffic(shards);
    for (const auto& qsp : states_) {
      QueryState& qs = *qsp;
      if (!use_cpu && faults_ != nullptr &&
          faults_->fires_for(fault_site::kMatchQuery, qs.id)) {
        throw Error(ErrorCode::kKernelLaunch,
                    "injected match.query fault for query " +
                        std::to_string(qs.id));
      }
      std::vector<gpusim::Traffic> per_shard;
      StitchStats stitch;
      const MatchStats stats = qs.matcher->match_batch(
          kind, sg_, clean, pool_, qs.sink ? &qs.sink : nullptr, sim,
          use_cpu ? nullptr : faults_,
          options_.recovery.watchdog_timeout_ms, &per_shard, &stitch);
      out.queries.push_back(ShardQueryReport{qs.id, stats, stitch});
      out.shared.stats += stats;
      out.stitch.routed_items += stitch.routed_items;
      out.stitch.stitch_candidates += stitch.stitch_candidates;
      out.stitch.supersteps =
          std::max(out.stitch.supersteps, stitch.supersteps);
      out.stitch.stitch_seconds += stitch.stitch_seconds;
      for (std::size_t s = 0; s < shards; ++s) {
        match_traffic[s] += per_shard[s];
      }
    }
    out.shared.wall_match_ms = t.millis();
    for (std::size_t s = 0; s < shards; ++s) {
      const gpusim::SimTime st = simulate_time(match_traffic[s], sim);
      out.shards[s].sim_match_s =
          kind == EngineKind::kCpu ? st.host : st.kernel() + st.dma;
      out.shards[s].wall_match_ms = out.shared.wall_match_ms;
      out.shards[s].traffic = sg_.device(s).counters().snapshot();
      out.shards[s].traffic += match_traffic[s];
    }
  }

  // Step 5: per-shard reorganization.
  {
    const Timer t;
    for (std::size_t s = 0; s < shards; ++s) {
      phase_reorg(sg_.graph(s), options_.check_invariants, sim,
                  shard_metrics_[s], out.shards[s]);
    }
    out.shared.wall_reorg_ms = t.millis();
  }

  // Aggregate: devices run in parallel, so simulated phase times are the
  // max over shards; traffic and cache totals sum.
  for (std::size_t s = 0; s < shards; ++s) {
    const BatchReport& sr = out.shards[s];
    out.shared.sim_estimate_s =
        std::max(out.shared.sim_estimate_s, sr.sim_estimate_s);
    out.shared.sim_pack_s = std::max(out.shared.sim_pack_s, sr.sim_pack_s);
    out.shared.sim_match_s = std::max(out.shared.sim_match_s, sr.sim_match_s);
    out.shared.sim_reorg_s =
        std::max(out.shared.sim_reorg_s, sr.sim_reorg_s);
    out.shared.walks += sr.walks;
    out.shared.cached_vertices += sr.cached_vertices;
    out.shared.cache_bytes += sr.cache_bytes;
    out.shared.traffic += sr.traffic;
  }
}

ShardedBatchReport ShardedMatchEngine::process_batch(const EdgeBatch& batch) {
  if (states_.empty()) {
    throw Error(ErrorCode::kConfig, "no query registered");
  }
  const std::size_t shards = sg_.num_shards();
  ShardedBatchReport out;
  const RecoveryOptions& rec = options_.recovery;
  const std::uint64_t faults_before =
      faults_ != nullptr ? faults_->fired_count() : 0;

  // Ingestion: corrupt (fault site), then screen — decision-for-decision
  // the single-device path, with liveness answered by the owning shards.
  EdgeBatch owned;
  const EdgeBatch* use = &batch;
  if (faults_ != nullptr) {
    owned = batch;
    inject_batch_corruption(owned, faults_);
    use = &owned;
  }
  if (rec.sanitize_batches) {
    QuarantineReport quarantine;
    EdgeBatch clean = sg_.sanitize(*use, quarantine);
    if (!quarantine.empty()) {
      owned = std::move(clean);
      use = &owned;
    }
    out.shared.quarantine = std::move(quarantine);
  }

  // One WAL record for the GLOBAL sanitized batch; the per-shard split is
  // deterministic, so recovery can re-derive it.
  std::uint64_t wal_seq = 0;
  if (options_.durability.enabled()) {
    wal_seq = durability_.begin_batch(*use);
    out.shared.wal_seq = wal_seq;
  }

  const std::vector<EdgeBatch> subs = sg_.split_batch(*use);

  // The transaction: every shard's touchable state, restorable together.
  std::vector<DynamicGraph::Snapshot> snaps;
  snaps.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    snaps.push_back(sg_.graph(s).snapshot_for(subs[s]));
  }
  auto rollback = [&] {
    for (std::size_t s = 0; s < shards; ++s) {
      sg_.graph(s).restore(snaps[s]);
      sg_.cache(s).clear();
    }
    if (options_.check_invariants) sg_.validate();
  };

  bool use_cpu = options_.kind == EngineKind::kCpu;
  int attempts_left = std::max(1, rec.max_attempts);
  double backoff_ms = rec.backoff_initial_ms;

  auto retry_or_escalate = [&](const std::exception_ptr& error) {
    ++out.shared.retries;
    --attempts_left;
    if (attempts_left <= 0) {
      if (!use_cpu && rec.cpu_fallback) {
        use_cpu = true;
        attempts_left = std::max(1, rec.max_cpu_attempts);
        out.shared.cpu_fallback = true;
      } else {
        std::rethrow_exception(error);
      }
    }
    if (backoff_ms > 0.0) {
      parker_.park_for_ms(backoff_ms);
      out.shared.backoff_ms += backoff_ms;
      backoff_ms =
          std::min(backoff_ms * rec.backoff_multiplier, rec.backoff_max_ms);
    }
  };

  std::size_t oom_shard = 0;
  for (;;) {
    try {
      run_attempt(*use, subs, use_cpu, out, oom_shard);
      break;
    } catch (const gpusim::DeviceOomError&) {
      rollback();
      if (options_.kind == EngineKind::kVsgm) {
        // Semantic OOM: the k-hop slice must be device-resident.
        throw;
      }
      if (!use_cpu &&
          effective_cache_budget(oom_shard) > rec.min_cache_budget_bytes) {
        // Only the hot shard steps down its ladder.
        ++degradation_level_[oom_shard];
        shard_metrics_[oom_shard].note_degradation();
        metrics_.note_degradation();
        clean_device_batches_[oom_shard] = 0;
        ++out.shared.retries;
      } else {
        retry_or_escalate(std::current_exception());
      }
    } catch (const Error& e) {
      rollback();
      if (!e.transient()) throw;
      retry_or_escalate(std::current_exception());
    } catch (...) {
      rollback();
      throw;
    }
  }

  // Per-shard healing: each ladder earns its budget back independently.
  if (!use_cpu) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (degradation_level_[s] == 0) continue;
      if (out.shared.retries != 0) {
        clean_device_batches_[s] = 0;
      } else if (++clean_device_batches_[s] >=
                 std::max(1, rec.heal_after_clean_batches)) {
        --degradation_level_[s];
        clean_device_batches_[s] = 0;
      }
    }
  }

  out.shared.degradation_level =
      *std::max_element(degradation_level_.begin(), degradation_level_.end());
  out.shared.effective_cache_budget = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    out.shared.effective_cache_budget += effective_cache_budget(s);
  }
  if (faults_ != nullptr) {
    out.shared.faults_observed = faults_->fired_count() - faults_before;
  }

  // Commit: ONE marker per batch carrying the aggregated per-shard
  // counters; the in-memory cumulative state advances only after it lands.
  durable::DurableCounters next = cumulative_;
  next.batches_committed += 1;
  next.cum_signed += out.shared.stats.signed_embeddings;
  next.cum_positive += out.shared.stats.positive;
  next.cum_negative += out.shared.stats.negative;
  if (wal_seq != 0) {
    next.last_seq = wal_seq;
    try {
      durability_.commit_batch(wal_seq, next);
    } catch (...) {
      rollback();
      throw;
    }
  }
  cumulative_ = next;

  sg_.note_applied(*use);
  out.cut_edges = sg_.cut_edges();
  out.imbalance = sg_.partition_stats().imbalance;

  metrics_.record_batch(out.shared);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_metrics_[s].record_batch(out.shards[s]);
  }
  auto& reg = metrics::Registry::global();
  const std::string& prefix = options_.metric_prefix;
  reg.gauge(prefix + metric::kShardCutEdges)
      .set(static_cast<double>(out.cut_edges));
  reg.gauge(prefix + metric::kShardImbalance).set(out.imbalance);
  reg.counter(prefix + metric::kShardRoutedJoins)
      .add(out.stitch.routed_items);
  reg.counter(prefix + metric::kShardStitchCandidates)
      .add(out.stitch.stitch_candidates);
  reg.histogram(prefix + metric::kShardStitchMs)
      .observe(out.stitch.stitch_seconds * 1e3);

  out.shared.metrics = reg.snapshot();
  return out;
}

std::uint64_t ShardedMatchEngine::count_current_embeddings(QueryId id) {
  for (const auto& qs : states_) {
    if (qs->id != id) continue;
    const FaultSuspendGuard suspend(faults_);
    const MatchStats stats =
        qs->matcher->match_full(EngineKind::kCpu, sg_, pool_, options_.sim);
    return stats.positive;
  }
  throw Error(ErrorCode::kConfig, "unknown query id: " + std::to_string(id));
}

}  // namespace gcsm::shard
