// Multi-device sharded matching engine (DESIGN.md, "Multi-device
// sharding").
//
// The single-device engines bind one DynamicGraph to one simulated device.
// This engine partitions the data graph across N shards (shard/
// sharded_graph.hpp) — each with its own gpusim::Device, DcsrCache, and
// slice of the cache budget — and runs the five GCSM phases per shard:
//
//   1. update   — the sanitized batch splits by endpoint ownership; each
//                 shard applies its sub-batch (cut records to both owners)
//   2. estimate — per-shard cache order: the per-query walk estimates run
//                 against each shard's graph and sub-batch, combined and
//                 filtered to OWNED vertices (a shard's cache only ever
//                 serves fetches the router sends to it)
//   3. pack     — per-shard DCSR build under budget/N, each shard owning
//                 its own OOM degradation ladder (halve on OOM, heal on
//                 clean streaks) — one hot shard degrades alone
//   4. match    — ShardedMatcher routes each delta-join work item to the
//                 shard owning its ΔE anchor and stitches cross-shard
//                 partials at branch levels in Pregel-style supersteps
//   5. reorg    — per shard
//
// Exactness: match counts are bit-identical to the single-device engines
// for every EngineKind, shard count, and partition strategy — the
// ShardedGraph completeness invariant makes every owner-routed view
// byte-identical to the single-device view, and anchor routing enumerates
// each work item exactly once (tests/shard_test.cpp).
//
// Recovery mirrors core/pipeline.cpp's transactional ladder: corruption
// screening, per-shard snapshots before the attempt, rollback of ALL shards
// on failure, retries with backoff, CPU escalation, and per-shard OOM
// degradation. Durability logs the sanitized GLOBAL batch once and commits
// ONE marker per batch carrying the aggregated per-shard counters;
// recover_on_start replay is not wired for the sharded engine (replay goes
// through a single-device engine — counts are identical by construction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cpu_engine.hpp"
#include "core/durability.hpp"
#include "core/frequency_estimator.hpp"
#include "core/phases.hpp"
#include "graph/csr_graph.hpp"
#include "shard/sharded_graph.hpp"
#include "shard/sharded_matcher.hpp"
#include "util/check.hpp"
#include "util/parking.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gcsm::shard {

using QueryId = std::uint32_t;

struct ShardedEngineOptions {
  std::size_t num_shards = 2;
  PartitionStrategy partition = PartitionStrategy::kRange;
  EngineKind kind = EngineKind::kGcsm;
  gpusim::SimParams sim;
  // TOTAL cache budget; each shard's device gets an equal slice.
  std::uint64_t cache_budget_bytes = 256ull << 20;
  EstimatorOptions estimator;
  std::size_t workers = 0;  // shard-task pool threads (0 = num_shards)
  std::uint64_t seed = 7;
  bool check_invariants = GCSM_CHECKS_ENABLED != 0;
  RecoveryOptions recovery;
  DurabilityOptions durability;
  FaultInjector* fault_injector = nullptr;
  // Aggregate metric scope; per-shard series live under
  // metric_prefix + "shard<i>." (e.g. "shard0.pipeline.match_ms").
  std::string metric_prefix;
};

struct ShardQueryReport {
  QueryId id = 0;
  MatchStats stats;
  StitchStats stitch;
};

struct ShardedBatchReport {
  // Aggregate attribution: stats summed across queries, traffic summed
  // across shards, simulated phase times = max over shards (the devices run
  // in parallel), walls measured around the serial host loops.
  BatchReport shared;
  // Per-shard phase attribution (index = shard id), recorded under the
  // "shard<i>." metric scope.
  std::vector<BatchReport> shards;
  // Registration order.
  std::vector<ShardQueryReport> queries;
  // Stitch accounting summed across queries, plus the partition state.
  StitchStats stitch;
  std::uint64_t cut_edges = 0;
  double imbalance = 1.0;
};

class ShardedMatchEngine {
 public:
  ShardedMatchEngine(const CsrGraph& initial, ShardedEngineOptions options);

  // Registers a standing query (1-based id, the match.query fault key).
  // Register every query before the first batch.
  QueryId register_query(QueryGraph query, MatchSink sink = {});

  // One update batch through all five phases on every shard; throws
  // Error(kConfig) when no query is registered. Not thread-safe.
  ShardedBatchReport process_batch(const EdgeBatch& batch);

  // Full static embedding count for one registered query (diagnostic;
  // fault injection suspended).
  std::uint64_t count_current_embeddings(QueryId id);

  const ShardedGraph& sharded_graph() const { return sg_; }
  const ShardedEngineOptions& options() const { return options_; }
  std::uint64_t effective_cache_budget(std::size_t s) const;
  std::uint32_t degradation_level(std::size_t s) const {
    return degradation_level_[s];
  }
  const durable::DurableCounters& cumulative() const { return cumulative_; }

 private:
  struct QueryState {
    QueryId id = 0;
    std::unique_ptr<ShardedMatcher> matcher;
    std::unique_ptr<FrequencyEstimator> estimator;
    Rng rng;
    MatchSink sink;
  };

  // Phases 1-5 for one transactional attempt. Fills the per-shard reports,
  // the per-query stats, and the aggregate. `oom_shard` receives the shard
  // whose pack OOM'd when DeviceOomError escapes.
  void run_attempt(const EdgeBatch& clean,
                   const std::vector<EdgeBatch>& subs, bool use_cpu,
                   ShardedBatchReport& out, std::size_t& oom_shard);

  ShardedEngineOptions options_;
  ShardedGraph sg_;
  FaultInjector* faults_ = nullptr;
  DurabilityManager durability_;
  PipelineMetrics metrics_;                 // aggregate scope
  std::vector<PipelineMetrics> shard_metrics_;  // "shard<i>." scopes
  std::vector<std::unique_ptr<QueryState>> states_;
  ThreadPool pool_;
  util::ParkingLot parker_;
  durable::DurableCounters cumulative_;
  // Per-shard OOM degradation ladder.
  std::vector<std::uint32_t> degradation_level_;
  std::vector<int> clean_device_batches_;
};

}  // namespace gcsm::shard
