#include "shard/partitioner.hpp"

#include <algorithm>

#include "core/list_ref.hpp"
#include "util/error.hpp"

namespace gcsm::shard {

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRange:
      return "range";
    case PartitionStrategy::kHash:
      return "hash";
  }
  return "?";
}

PartitionStrategy parse_partition_strategy(const std::string& text) {
  if (text == "range") return PartitionStrategy::kRange;
  if (text == "hash") return PartitionStrategy::kHash;
  throw Error(ErrorCode::kConfig, "partition: " + text);
}

GraphPartitioner::GraphPartitioner(std::size_t num_shards,
                                   PartitionStrategy strategy,
                                   VertexId initial_vertices)
    : num_shards_(num_shards), strategy_(strategy), range_width_(1) {
  if (num_shards_ == 0) {
    throw Error(ErrorCode::kConfig, "shards: 0");
  }
  const auto n = static_cast<std::uint64_t>(
      std::max<VertexId>(initial_vertices, 1));
  range_width_ = std::max<std::uint64_t>(1, (n + num_shards_ - 1) /
                                                num_shards_);
}

PartitionStats GraphPartitioner::stats(const DynamicGraph& graph) const {
  PartitionStats st;
  st.owned_vertices.assign(num_shards_, 0);
  st.owned_edges.assign(num_shards_, 0);

  std::vector<VertexId> nbrs;
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t ov = owner(v);
    ++st.owned_vertices[ov];
    nbrs.clear();
    materialize_view(graph.view(v, ViewMode::kNew), nbrs);
    for (const VertexId w : nbrs) {
      if (w <= v) continue;  // each undirected edge once
      const std::uint32_t ow = owner(w);
      ++st.owned_edges[ov];
      ++st.owned_edges[ow];
      if (ov != ow) ++st.cut_edges;
    }
  }

  const auto& load = graph.num_live_edges() > 0 ? st.owned_edges
                                                : st.owned_vertices;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t x : load) {
    max = std::max(max, x);
    total += x;
  }
  st.imbalance = total == 0 ? 1.0
                            : static_cast<double>(max) * num_shards_ /
                                  static_cast<double>(total);
  return st;
}

}  // namespace gcsm::shard
