// The cross-shard delta-join enumerator (DESIGN.md, "Multi-device
// sharding").
//
// Replicates core/cpu_engine.cpp's STMatch-shaped enumeration exactly —
// same work-item space (plan x ΔE record x orientation), same candidate
// intersections, same bind-time label/injectivity checks, same op charging —
// but distributes it Pregel-style across shards:
//
//   * every seed work item is routed to owner(xa), the shard owning the
//     delta edge's first endpoint; since each (plan, record, orientation)
//     triple has exactly one owner, every item is enumerated exactly once
//     globally — that IS the duplicate-match canonicalization at the join;
//   * at non-branch levels, remote neighbor lists are read inline through a
//     RoutedShardPolicy that forwards each fetch to the owning shard's
//     policy (cache, zero-copy, UM, or host — mirroring the engine kind);
//   * at BRANCH levels (query/branch_plan.hpp) whose anchor is remote, the
//     partial match migrates to the anchor's owner via per-shard outboxes,
//     drained in barrier-separated supersteps until no partials remain.
//
// Exactness: owner(v)'s views are byte-identical to the single-device
// graph's (ShardedGraph invariant), so candidate sets — hence emitted
// embeddings and MatchStats totals — are bit-identical to MatchEngine's.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/phases.hpp"
#include "query/branch_plan.hpp"
#include "shard/sharded_graph.hpp"
#include "util/thread_pool.hpp"

namespace gcsm::shard {

// Per-batch stitch accounting (the shard.* metric series).
struct StitchStats {
  std::uint64_t routed_items = 0;       // seed work items routed to owners
  std::uint64_t stitch_candidates = 0;  // partials migrated at branch levels
  std::uint32_t supersteps = 1;         // barrier rounds (1 = no migration)
  double stitch_seconds = 0.0;          // wall time in rounds beyond the first
};

class ShardedMatcher {
 public:
  ShardedMatcher(QueryGraph query, std::size_t num_shards,
                 std::size_t grain = 2);

  const QueryGraph& query() const { return query_; }
  const std::vector<MatchPlan>& delta_plans() const { return delta_plans_; }
  const BranchDecomposition& decomposition() const { return decomposition_; }

  // Incremental matching of the GLOBAL batch across shards. Shard tasks run
  // on `pool` (one task per shard); per_shard_traffic (size num_shards)
  // receives each shard's match-phase traffic. `effective_kind` selects the
  // per-shard access policies (kCpu = the recovery ladder's host fallback).
  // Kernel fault sites are probed once per shard before any item runs.
  MatchStats match_batch(EngineKind effective_kind, const ShardedGraph& sg,
                         const EdgeBatch& batch, ThreadPool& pool,
                         const MatchSink* sink, const gpusim::SimParams& sim,
                         FaultInjector* faults, double watchdog_timeout_ms,
                         std::vector<gpusim::Traffic>* per_shard_traffic,
                         StitchStats* stitch);

  // Full static matching (Fig. 2a) over the NEW view, seed vertices routed
  // to their owners. Diagnostic recount for tests; no fault probes.
  MatchStats match_full(EngineKind effective_kind, const ShardedGraph& sg,
                        ThreadPool& pool, const gcsm::gpusim::SimParams& sim,
                        const MatchSink* sink = nullptr);

 private:
  QueryGraph query_;
  MatchPlan static_plan_;
  std::vector<MatchPlan> delta_plans_;
  BranchDecomposition decomposition_;
  std::vector<std::vector<std::uint8_t>> delta_stitch_;  // per delta plan
  std::vector<std::uint8_t> static_stitch_;
  std::size_t num_shards_;
  std::size_t grain_;
};

}  // namespace gcsm::shard
