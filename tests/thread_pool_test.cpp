// ThreadPool stress suite — the tsan target for the multi-query fan-out
// (scripts/check.sh runs the `multiquery` label under the tsan preset).
//
// The pool's contract: one job in flight per pool (run_on_all asserts it),
// the caller participates as worker 0, parallel_for chunks are claimed from
// a shared atomic counter, and destruction joins cleanly even when it races
// worker startup. Nested run_on_all is safe only ACROSS pools — exactly the
// multi-query shape, where the engine's match pool fans out to per-query
// SimtExecutors each owning an inner pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace gcsm {
namespace {

TEST(ThreadPoolStress, ParallelForCoversEveryIndexOnceUnevenGrains) {
  ThreadPool pool(4);
  // Uneven grains: 1 (maximal contention on the claim counter), a grain
  // that does not divide n, and one bigger than n (single chunk).
  for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{1000}}) {
    const std::size_t n = 997;  // prime: never a multiple of the grain
    std::vector<std::atomic<std::uint32_t>> hits(n);
    std::atomic<std::size_t> max_worker{0};
    pool.parallel_for(n, grain,
                      [&](std::size_t begin, std::size_t end,
                          std::size_t worker) {
                        std::size_t seen = max_worker.load();
                        while (worker > seen &&
                               !max_worker.compare_exchange_weak(seen,
                                                                 worker)) {
                        }
                        for (std::size_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                      });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " grain " << grain;
    }
    EXPECT_LT(max_worker.load(), pool.size());
  }
}

TEST(ThreadPoolStress, RepeatedJobsReuseTheSamePoolWithoutRaces) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, 5,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) {
                          sum.fetch_add(i, std::memory_order_relaxed);
                        }
                      });
  }
  EXPECT_EQ(sum.load(), 200ull * (64ull * 63ull / 2ull));
}

TEST(ThreadPoolStress, NestedRunOnAllAcrossDistinctPools) {
  // The multi-query shape: an outer pool fans out across queries, each of
  // which drives its OWN inner pool. tsan must see no lock inversion and no
  // data race between the two generations of workers.
  constexpr std::size_t kQueries = 4;
  ThreadPool outer(kQueries);
  std::vector<std::unique_ptr<ThreadPool>> inner;
  for (std::size_t q = 0; q < kQueries; ++q) {
    inner.push_back(std::make_unique<ThreadPool>(2));
  }
  std::vector<std::atomic<std::uint64_t>> per_query(kQueries);

  for (int round = 0; round < 50; ++round) {
    outer.parallel_for(
        kQueries, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t q = begin; q < end; ++q) {
            inner[q]->run_on_all([&, q](std::size_t) {
              per_query[q].fetch_add(1, std::memory_order_relaxed);
            });
          }
        });
  }
  for (std::size_t q = 0; q < kQueries; ++q) {
    EXPECT_EQ(per_query[q].load(), 50u * inner[q]->size());
  }
}

TEST(ThreadPoolStress, DestructionRacesWorkerStartupCleanly) {
  // Construct-use-destroy in a tight loop: destruction may overlap worker
  // threads still parking for their first job. tsan watches the handshake.
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    if (round % 2 == 0) {
      std::atomic<int> ran{0};
      pool.run_on_all([&](std::size_t) { ran.fetch_add(1); });
      EXPECT_EQ(ran.load(), static_cast<int>(pool.size()));
    }
    // Odd rounds destroy with no job ever submitted.
  }
}

TEST(ThreadPoolStress, CallerIsWorkerZero) {
  ThreadPool pool(2);
  std::atomic<bool> zero_seen{false};
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> zero_is_caller{false};
  pool.run_on_all([&](std::size_t worker) {
    if (worker == 0) {
      zero_seen.store(true);
      zero_is_caller.store(std::this_thread::get_id() == caller);
    }
  });
  EXPECT_TRUE(zero_seen.load());
  EXPECT_TRUE(zero_is_caller.load());
}

}  // namespace
}  // namespace gcsm
