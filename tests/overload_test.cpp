// Overload-protection suite (docs/ROBUSTNESS.md, "Overload & admission
// control").
//
// The contract under test: the AdmissionController in front of a
// MultiQueryEngine keeps memory bounded (the ingress queue never exceeds
// max_queue), keeps the books conserved (offered == admitted + rejected,
// admitted == committed + shed), sheds by its documented policy with a
// durable kShed audit record per drop, degrades walk counts before it
// sheds and sheds before it rejects under a building overload, and leaves
// recovery plus exact catch-up exactly-once across the seq gaps the shed
// records explain. Counts over the admitted subsequence stay bit-identical
// to an unprotected engine fed exactly those batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "server/admission.hpp"
#include "server/multi_query_engine.hpp"
#include "server/traffic_gen.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/token_bucket.hpp"

namespace gcsm {
namespace {

using server::AdmissionCommit;
using server::AdmissionController;
using server::AdmissionOptions;
using server::AdmissionStats;
using server::AdmitResult;
using server::ArrivalKind;
using server::MultiQueryEngine;
using server::MultiQueryOptions;
using server::QueryId;
using server::ServerBatchReport;
using server::ShedEvent;
using server::ShedPayload;
using server::ShedPolicy;

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 300, std::size_t batch = 32,
                         std::size_t pool = 384) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

MultiQueryOptions engine_options() {
  MultiQueryOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 256;
  opt.recovery.backoff_initial_ms = 0.0;  // no sleeping in tests
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = std::string(::testing::TempDir()) + "gcsm_ovl_" +
                          tag + "_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);
  return dir;
}

// The two standing queries most of the suite serves (registered in place:
// the engine is neither copyable nor movable).
void register_two(MultiQueryEngine& engine) {
  engine.register_query(make_triangle());
  engine.register_query(make_path(4));
}

// The controller's virtual-clock service time for one batch: the shared
// phases plus every query's match time (mirrors simulated_service_s).
double service_s(const ServerBatchReport& r) {
  double s = r.shared.sim_total_s();
  for (const auto& q : r.queries) s += q.report.sim_match_s;
  return s;
}

// Conservation invariants every finished run must satisfy.
void expect_conserved(const AdmissionStats& st) {
  EXPECT_EQ(st.offered, st.admitted + st.rejected);
  EXPECT_EQ(st.admitted, st.committed + st.shed);
  EXPECT_EQ(st.latency_s.size(), st.committed);
}

// ---------------------------------------------------------------------------
// Token bucket: explicit-time, deterministic.

TEST(TokenBucket, RefillAndWaitAreDeterministic) {
  util::TokenBucket b(/*rate=*/2.0, /*burst=*/4.0);
  // The burst drains immediately...
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));
  // ...then the 2/s refill gates: one token every 0.5 s.
  EXPECT_NEAR(b.seconds_until(0.0), 0.5, 1e-9);
  EXPECT_FALSE(b.try_take(0.25));
  EXPECT_TRUE(b.try_take(0.5));
  EXPECT_FALSE(b.try_take(0.5));
  // Refill caps at the burst, regardless of idle time.
  EXPECT_TRUE(b.try_take(1000.0));
  EXPECT_NEAR(b.tokens(), 3.0, 1e-9);
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  util::TokenBucket b(0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(b.try_take(0.0));
    EXPECT_DOUBLE_EQ(b.seconds_until(0.0), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Configuration contract.

TEST(Admission, ConstructorValidatesOptions) {
  const StreamFixture f(31);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  const auto expect_config = [&](AdmissionOptions opt, const char* what) {
    try {
      AdmissionController ctrl(engine, opt);
      FAIL() << "expected Error(kConfig) for " << what;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kConfig) << what;
    }
  };
  AdmissionOptions opt;
  opt.max_queue = 0;
  expect_config(opt, "max-queue 0");
  opt = AdmissionOptions{};
  opt.admit_rate = -1.0;
  expect_config(opt, "negative admit rate");
  opt = AdmissionOptions{};
  opt.queue_deadline_s = -0.5;
  expect_config(opt, "negative deadline");
  opt = AdmissionOptions{};
  opt.overload_low_watermark = 0.9;
  opt.overload_high_watermark = 0.1;
  expect_config(opt, "inverted watermarks");
  opt = AdmissionOptions{};
  opt.sustain_ticks = 0;
  expect_config(opt, "zero sustain ticks");
  opt = AdmissionOptions{};
  opt.walk_scale_floor = 0.0;
  expect_config(opt, "zero walk-scale floor");
}

TEST(Admission, ParsersFollowTheFlagMessageContract) {
  EXPECT_EQ(server::parse_shed_policy("oldest"), ShedPolicy::kOldestFirst);
  EXPECT_EQ(server::parse_shed_policy("lowest-impact"),
            ShedPolicy::kLowestImpact);
  try {
    server::parse_shed_policy("newest");
    FAIL() << "expected Error(kConfig)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_STREQ(e.what(), "shed-policy: newest");
  }
  EXPECT_EQ(server::parse_arrival("uniform"), ArrivalKind::kUniform);
  EXPECT_EQ(server::parse_arrival("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(server::parse_arrival("bursty"), ArrivalKind::kBursty);
  try {
    server::parse_arrival("steady");
    FAIL() << "expected Error(kConfig)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_STREQ(e.what(), "arrival: steady");
  }
}

TEST(Admission, ShedPayloadRoundTripsAndRejectsDamage) {
  ShedPayload in;
  in.source = 7;
  in.ordinal = 123456789;
  in.edges = 4096;
  in.reason = static_cast<std::uint8_t>(ShedPolicy::kLowestImpact);
  in.arrival_us = 987654321;
  const std::string bytes = server::encode_shed_payload(in);
  ShedPayload out;
  ASSERT_TRUE(server::decode_shed_payload(bytes, &out));
  EXPECT_EQ(out.source, in.source);
  EXPECT_EQ(out.ordinal, in.ordinal);
  EXPECT_EQ(out.edges, in.edges);
  EXPECT_EQ(out.reason, in.reason);
  EXPECT_EQ(out.arrival_us, in.arrival_us);
  EXPECT_FALSE(server::decode_shed_payload(bytes.substr(1), &out));
  EXPECT_FALSE(server::decode_shed_payload(bytes + "x", &out));
  EXPECT_FALSE(server::decode_shed_payload("", &out));
}

// ---------------------------------------------------------------------------
// Virtual-clock admission: pass-through, rejection, shedding.

TEST(Admission, UnderloadedRunCommitsEverythingInOrder) {
  const StreamFixture f(32);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  AdmissionOptions opt;
  opt.max_queue = 4;
  AdmissionController ctrl(engine, opt);

  std::vector<std::uint64_t> order;
  const auto sink = [&](AdmissionCommit&& c) {
    order.push_back(c.ordinal);
    EXPECT_GE(c.latency_s, 0.0);
  };
  // Each batch arrives only once the server is free: nothing ever queues.
  for (std::size_t k = 0; k < 6; ++k) {
    const double now = ctrl.server_free_s();
    ctrl.pump(now, sink);
    EXPECT_EQ(ctrl.offer(f.stream.batches[k], 0, now),
              AdmitResult::kAdmitted);
    EXPECT_LE(ctrl.queue_depth(), opt.max_queue);
  }
  ctrl.finish(sink);

  const AdmissionStats& st = ctrl.stats();
  expect_conserved(st);
  EXPECT_EQ(st.offered, 6u);
  EXPECT_EQ(st.committed, 6u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.rejected, 0u);
  const std::vector<std::uint64_t> want{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(order, want);
  EXPECT_DOUBLE_EQ(ctrl.walk_scale(), 1.0);
}

TEST(Admission, FullQueueRejectsAndNeverGrows) {
  const StreamFixture f(33);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  AdmissionOptions opt;
  opt.max_queue = 3;
  AdmissionController ctrl(engine, opt);

  // A stampede at t=0 with no service in between: exactly max_queue admit.
  std::size_t rejected = 0;
  for (std::size_t k = 0; k < 10; ++k) {
    const AdmitResult r = ctrl.offer(f.stream.batches[k % 4], 0, 0.0);
    if (r != AdmitResult::kAdmitted) {
      EXPECT_EQ(r, AdmitResult::kRejectedQueueFull);
      ++rejected;
    }
    EXPECT_LE(ctrl.queue_depth(), opt.max_queue);
  }
  EXPECT_EQ(rejected, 7u);
  EXPECT_EQ(ctrl.stats().first_reject_ordinal, 4u);
  ctrl.finish();
  expect_conserved(ctrl.stats());
  EXPECT_EQ(ctrl.stats().committed, 3u);
}

TEST(Admission, SubmitOrThrowRaisesOverload) {
  const StreamFixture f(34);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  AdmissionOptions opt;
  opt.max_queue = 1;
  opt.block_on_full = false;  // non-blocking producers get kOverload
  AdmissionController ctrl(engine, opt);

  ctrl.submit_or_throw(f.stream.batches[0], 0);
  try {
    ctrl.submit_or_throw(f.stream.batches[1], 0);
    FAIL() << "expected Error(kOverload)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverload);
    EXPECT_STREQ(error_code_name(e.code()), "overload");
  }
  EXPECT_EQ(ctrl.serve_pending(), 1u);
  ctrl.close();
  try {
    ctrl.submit_or_throw(f.stream.batches[2], 0);
    FAIL() << "expected Error(kOverload) after close";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverload);
  }
  expect_conserved(ctrl.stats());
}

TEST(Admission, DeadlineShedsOldestFirstDeterministically) {
  const auto run_once = [](std::vector<std::uint64_t>* shed_ordinals) {
    const StreamFixture f(35);
    MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
    // One batch's simulated service, to size the deadline below.
    const double svc =
        engine.process_batch(f.stream.batches[0]).shared.sim_total_s();
    MultiQueryEngine fresh(f.stream.initial, engine_options());
  register_two(fresh);
    AdmissionOptions opt;
    opt.max_queue = 16;
    opt.queue_deadline_s = 2.5 * svc;
    opt.walk_scale_floor = 1.0;  // pin the service time: no ladder here
    AdmissionController ctrl(fresh, opt);
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_EQ(ctrl.offer(f.stream.batches[k], 0, 0.0),
                AdmitResult::kAdmitted);
    }
    ctrl.finish();
    const AdmissionStats& st = ctrl.stats();
    expect_conserved(st);
    EXPECT_GT(st.shed, 0u);
    EXPECT_GT(st.committed, 0u);
    for (const ShedEvent& ev : ctrl.shed_events()) {
      EXPECT_EQ(ev.payload.reason,
                static_cast<std::uint8_t>(ShedPolicy::kOldestFirst));
      EXPECT_EQ(ev.wal_seq, 0u);  // durability off: audit is in-memory only
      shed_ordinals->push_back(ev.payload.ordinal);
    }
    // Oldest-first sheds queue heads: ordinals arrive in FIFO order.
    EXPECT_TRUE(
        std::is_sorted(shed_ordinals->begin(), shed_ordinals->end()));
  };
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  run_once(&first);
  run_once(&second);
  EXPECT_EQ(first, second) << "seeded shed sequence must be reproducible";
}

TEST(Admission, LowestImpactShedsFewestEdgesFirst) {
  const StreamFixture f(36);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  const double svc =
      engine.process_batch(f.stream.batches[0]).shared.sim_total_s();
  MultiQueryEngine fresh(f.stream.initial, engine_options());
  register_two(fresh);
  AdmissionOptions opt;
  opt.max_queue = 16;
  opt.queue_deadline_s = 1.5 * svc;
  opt.shed_policy = ShedPolicy::kLowestImpact;
  opt.walk_scale_floor = 1.0;
  AdmissionController ctrl(fresh, opt);

  // Batches with strictly decreasing edge counts: the cheapest (fewest
  // edges) sit at the BACK of the queue, so oldest-first would never pick
  // them but lowest-impact must.
  std::vector<std::size_t> sizes;
  for (std::size_t k = 0; k < 8; ++k) {
    EdgeBatch b = f.stream.batches[k];
    b.updates.resize(std::max<std::size_t>(1, 40 - 5 * k));
    sizes.push_back(b.updates.size());
    EXPECT_EQ(ctrl.offer(std::move(b), 0, 0.0), AdmitResult::kAdmitted);
  }
  ctrl.finish();
  const AdmissionStats& st = ctrl.stats();
  expect_conserved(st);
  ASSERT_GT(st.shed, 0u);
  // Every victim must be no larger than any batch that survived to commit:
  // committed ordinals' sizes all >= the largest shed size.
  std::set<std::uint64_t> shed_ordinals;
  std::size_t largest_shed = 0;
  for (const ShedEvent& ev : ctrl.shed_events()) {
    EXPECT_EQ(ev.payload.reason,
              static_cast<std::uint8_t>(ShedPolicy::kLowestImpact));
    EXPECT_EQ(ev.payload.edges, sizes[ev.payload.ordinal - 1]);
    largest_shed = std::max(largest_shed,
                            static_cast<std::size_t>(ev.payload.edges));
    shed_ordinals.insert(ev.payload.ordinal);
  }
  for (std::uint64_t ord = 1; ord <= st.offered; ++ord) {
    if (shed_ordinals.count(ord) != 0) continue;
    EXPECT_GE(sizes[ord - 1], largest_shed)
        << "a cheaper batch survived while ordinal " << ord << " was kept";
  }
}

// ---------------------------------------------------------------------------
// Degradation ladder: degrade, then shed, then reject.

TEST(Admission, LadderDegradesBeforeSheddingBeforeRejecting) {
  const StreamFixture f(37);
  // Nothing is served until finish(), and by then the 16 offers have driven
  // the ladder to its floor — the whole backlog drains at the FLOOR rate
  // (the ladder ticks on offers, not on services). Size the deadline in
  // floor-scale services: the early queue (ordinals 2-4, waiting up to ~3
  // services) survives, the tail (waiting 4+) sheds — so the first shed
  // lands after the first scale-down, never before.
  double svc_floor = 0.0;
  {
    MultiQueryEngine probe(f.stream.initial, engine_options());
    register_two(probe);
    probe.set_walk_scale(0.125);
    svc_floor = service_s(probe.process_batch(f.stream.batches[0]));
  }

  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  AdmissionOptions opt;
  opt.max_queue = 8;
  opt.overload_high_watermark = 0.5;
  opt.overload_low_watermark = 0.125;
  opt.sustain_ticks = 1;
  opt.walk_scale_floor = 0.125;
  opt.queue_deadline_s = 3.5 * svc_floor;
  AdmissionController ctrl(engine, opt);

  // A monotonically building overload: 16 arrivals at t=0, no service.
  for (std::size_t k = 0; k < 16; ++k) {
    ctrl.offer(f.stream.batches[k % 8], 0, 0.0);
  }
  const AdmissionStats& before = ctrl.stats();
  EXPECT_GT(before.scale_downs, 0u);
  EXPECT_LT(ctrl.walk_scale(), 1.0);
  EXPECT_LT(engine.walk_scale(), 1.0);  // applied to the engine immediately
  EXPECT_GT(before.first_reject_ordinal, 0u);
  EXPECT_EQ(before.shed, 0u);  // shedding happens at service time

  ctrl.finish();
  const AdmissionStats& st = ctrl.stats();
  expect_conserved(st);
  EXPECT_GT(st.shed, 0u);
  EXPECT_GT(st.committed, 0u);
  // The documented escalation order under a building overload.
  EXPECT_GT(st.first_scale_down_ordinal, 0u);
  EXPECT_GT(st.first_shed_ordinal, 0u);
  EXPECT_LE(st.first_scale_down_ordinal, st.first_shed_ordinal);
  EXPECT_LE(st.first_shed_ordinal, st.first_reject_ordinal);
}

TEST(Admission, LadderRecoversWhenLoadDrains) {
  const StreamFixture f(38);
  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  AdmissionOptions opt;
  opt.max_queue = 4;
  opt.overload_high_watermark = 0.5;
  opt.overload_low_watermark = 0.25;
  opt.sustain_ticks = 1;
  AdmissionController ctrl(engine, opt);

  // Build: two back-to-back arrivals keep occupancy at/above high.
  ctrl.offer(f.stream.batches[0], 0, 0.0);
  ctrl.offer(f.stream.batches[1], 0, 0.0);
  EXPECT_LT(ctrl.walk_scale(), 1.0);
  ctrl.finish();
  // Drain: arrivals spaced past the service time tick the ladder back up.
  for (std::size_t k = 2; k < 6; ++k) {
    const double now = ctrl.server_free_s();
    ctrl.pump(now);
    ctrl.offer(f.stream.batches[k], 0, now);
  }
  ctrl.finish();
  EXPECT_DOUBLE_EQ(ctrl.walk_scale(), 1.0);
  EXPECT_GT(ctrl.stats().scale_ups, 0u);
  EXPECT_DOUBLE_EQ(engine.walk_scale(), 1.0);
}

// ---------------------------------------------------------------------------
// Walk scale is count-neutral.

TEST(Admission, WalkScaleNeverChangesMatchCounts) {
  const StreamFixture f(39);
  MultiQueryEngine full(f.stream.initial, engine_options());
  register_two(full);
  MultiQueryEngine scaled(f.stream.initial, engine_options());
  register_two(scaled);
  scaled.set_walk_scale(0.125);
  for (std::size_t k = 0; k < 4; ++k) {
    const ServerBatchReport a = full.process_batch(f.stream.batches[k]);
    const ServerBatchReport b = scaled.process_batch(f.stream.batches[k]);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (std::size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].report.stats.signed_embeddings,
                b.queries[i].report.stats.signed_embeddings)
          << "walk scale changed counts at batch " << k << " query " << i;
      EXPECT_EQ(a.queries[i].report.stats.positive,
                b.queries[i].report.stats.positive);
      EXPECT_EQ(a.queries[i].report.stats.negative,
                b.queries[i].report.stats.negative);
    }
    // The scaled run really did fewer walks.
    EXPECT_LT(b.shared.walks, a.shared.walks);
  }
}

// ---------------------------------------------------------------------------
// Durable shed audit: kShed records, recovery, bit-identical survivors.

TEST(Admission, ShedWalRecordsExplainSeqGapsThroughRecovery) {
  const StreamFixture f(40);
  const std::string dir = fresh_dir("shedwal");

  MultiQueryOptions mopt = engine_options();
  mopt.durability.wal_dir = dir;
  mopt.durability.snapshot_interval = 100;  // keep every record in the WAL
  mopt.durability.fsync = false;
  MultiQueryEngine engine(f.stream.initial, mopt);
  engine.register_query(make_triangle());
  engine.register_query(make_path(4));

  const double svc =
      engine.process_batch(f.stream.batches[0]).shared.sim_total_s();

  AdmissionOptions opt;
  opt.max_queue = 16;
  opt.queue_deadline_s = 2.0 * svc;
  opt.walk_scale_floor = 1.0;
  AdmissionController ctrl(engine, opt);
  std::vector<std::size_t> committed_idx;  // ordinal-1 == batch index 1..8
  const auto sink = [&](AdmissionCommit&& c) {
    committed_idx.push_back(static_cast<std::size_t>(c.ordinal));
  };
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(ctrl.offer(f.stream.batches[k], 2, 0.0),
              AdmitResult::kAdmitted);
  }
  ctrl.finish(sink);
  const AdmissionStats& st = ctrl.stats();
  expect_conserved(st);
  ASSERT_GT(st.shed, 0u);

  // Every shed got a durable audit record with a real seq.
  std::set<std::uint64_t> shed_seqs;
  for (const ShedEvent& ev : ctrl.shed_events()) {
    EXPECT_GT(ev.wal_seq, 0u);
    EXPECT_EQ(ev.payload.source, 2u);
    shed_seqs.insert(ev.wal_seq);
  }
  EXPECT_EQ(shed_seqs.size(), st.shed);
  const durable::DurableCounters cum = engine.cumulative();
  EXPECT_EQ(cum.batches_committed, 1 + st.committed);

  // Restart with recovery: the integrity gate must pass despite the seq
  // gaps, and the gaps must be reported as shed — exactly the audit set.
  MultiQueryOptions ropt = mopt;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  const RecoveredState& rec = recovered.recovery_info();
  EXPECT_EQ(std::set<std::uint64_t>(rec.shed_seqs.begin(),
                                    rec.shed_seqs.end()),
            shed_seqs);
  EXPECT_EQ(rec.dropped_uncommitted, 0u);
  EXPECT_EQ(recovered.cumulative().batches_committed,
            cum.batches_committed);
  EXPECT_EQ(recovered.cumulative().cum_signed, cum.cum_signed);

  // Bit-identical over the admitted-and-committed subsequence: an
  // unprotected engine fed exactly those batches lands on the same books.
  MultiQueryEngine ref(f.stream.initial, engine_options());
  ref.register_query(make_triangle());
  ref.register_query(make_path(4));
  ref.process_batch(f.stream.batches[0]);
  for (const std::size_t idx : committed_idx) {
    ref.process_batch(f.stream.batches[idx]);
  }
  EXPECT_EQ(ref.cumulative().cum_signed, cum.cum_signed);
  EXPECT_EQ(ref.cumulative().cum_positive, cum.cum_positive);
  EXPECT_EQ(ref.cumulative().cum_negative, cum.cum_negative);
}

TEST(Admission, CrashDuringOverloadRecoversAndResumes) {
  const StreamFixture f(41);
  const std::string dir = fresh_dir("crash");
  FaultInjector inj(0xD1E5);
  inj.arm(fault_site::kCrashAt, {0.0, 4, 16});

  std::uint64_t observed_commits = 0;
  std::uint64_t durable_commits = 0;
  bool crashed = false;
  for (int lives = 0; lives < 12; ++lives) {
    MultiQueryOptions mopt = engine_options();
    mopt.durability.wal_dir = dir;
    mopt.durability.snapshot_interval = 3;
    mopt.durability.recover_on_start = lives > 0;
    mopt.fault_injector = &inj;
    try {
      MultiQueryEngine engine(f.stream.initial, mopt);
      if (engine.registry().empty()) {
        engine.register_query(make_triangle());
        engine.register_query(make_path(4));
      }
      AdmissionOptions opt;
      opt.max_queue = 2;
      AdmissionController ctrl(engine, opt);
      // Overdrive: two offers per pump step so rejections and queueing are
      // constantly in play while the crash probe ticks down.
      for (std::size_t k = 0; k < 12; ++k) {
        const double now = ctrl.server_free_s();
        ctrl.pump(now, [&](AdmissionCommit&&) { ++observed_commits; });
        ctrl.offer(f.stream.batches[k % 8], 0, now);
        ctrl.offer(f.stream.batches[(k + 1) % 8], 1, now);
      }
      ctrl.finish([&](AdmissionCommit&&) { ++observed_commits; });
      expect_conserved(ctrl.stats());
      durable_commits = engine.cumulative().batches_committed;
      break;
    } catch (const CrashError&) {
      crashed = true;  // died mid-durable-write; restart recovers
    }
  }
  EXPECT_TRUE(crashed);
  // Every commit the sink saw is durable; at most the in-flight one more.
  EXPECT_GE(durable_commits, observed_commits);

  // A clean restart passes the integrity gate over everything that landed.
  MultiQueryOptions ropt = engine_options();
  ropt.durability.wal_dir = dir;
  ropt.durability.snapshot_interval = 3;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.cumulative().batches_committed, durable_commits);
}

// ---------------------------------------------------------------------------
// Exact catch-up over shed gaps: quarantine + shed + rejoin.

TEST(Admission, CatchUpSkipsShedSeqsAndStaysExactlyOnce) {
  const StreamFixture f(42);
  const std::string dir = fresh_dir("catchup");
  FaultInjector inj(0xCA7D);
  MultiQueryOptions mopt = engine_options();
  mopt.fault_injector = &inj;
  mopt.durability.wal_dir = dir;
  mopt.durability.snapshot_interval = 100;
  mopt.durability.fsync = false;
  mopt.breaker.trip_after_failures = 1;
  mopt.breaker.cooldown_batches = 2;
  mopt.breaker.max_debt_batches = 64;

  MultiQueryEngine engine(f.stream.initial, mopt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_fig1_diamond());
  FaultSpec spec;
  spec.probability = 1.0;
  spec.match_query_id = poison;
  inj.arm(fault_site::kMatchQuery, spec);

  // Fault-free reference fed only the ADMITTED subsequence (batch 2 is
  // shed below and must count nowhere).
  MultiQueryEngine ref(f.stream.initial, engine_options());
  const QueryId ref_tri = ref.register_query(make_triangle());
  const QueryId ref_poison = ref.register_query(make_fig1_diamond());

  // Batch 0 trips the poison query (commits), batch 1 ticks the cooldown;
  // batch 2 is SHED by the admission layer mid-quarantine — its kShed
  // record consumes the seq, leaving a gap inside the catch-up window.
  // The poison clears before batch 3, whose probe passes and re-admits via
  // exact catch-up, which must skip the shed seq or fail the whole rejoin.
  bool rejoined = false;
  for (std::size_t k = 0; k < 6; ++k) {
    if (k == 2) {
      ShedPayload payload;
      payload.source = 0;
      payload.ordinal = k + 1;
      payload.edges = f.stream.batches[k].updates.size();
      payload.reason = static_cast<std::uint8_t>(ShedPolicy::kOldestFirst);
      const std::uint64_t seq =
          engine.log_shed_batch(server::encode_shed_payload(payload));
      EXPECT_GT(seq, 0u);
      continue;  // the batch itself is dropped whole
    }
    if (k == 3) inj.disarm(fault_site::kMatchQuery);
    const ServerBatchReport out = engine.process_batch(f.stream.batches[k]);
    ref.process_batch(f.stream.batches[k]);
    for (const auto& q : out.queries) {
      if (q.id == poison && q.rejoined) rejoined = true;
    }
  }
  EXPECT_TRUE(rejoined);

  // Exactly-once across the gap: the rejoined query's counters match the
  // fault-free reference that never saw the shed batch, and so does the
  // aggregate.
  EXPECT_EQ(engine.query_health(poison).counters,
            ref.query_health(ref_poison).counters);
  EXPECT_EQ(engine.query_health(tri).counters,
            ref.query_health(ref_tri).counters);
  EXPECT_EQ(engine.cumulative().cum_signed, ref.cumulative().cum_signed);
  EXPECT_EQ(engine.cumulative().batches_committed,
            ref.cumulative().batches_committed);

  // And a restart recovers through the same gap.
  MultiQueryOptions ropt = mopt;
  ropt.fault_injector = nullptr;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.cumulative().cum_signed,
            engine.cumulative().cum_signed);
  ASSERT_EQ(recovered.recovery_info().shed_seqs.size(), 1u);
}

// ---------------------------------------------------------------------------
// Traffic generator: determinism and adversarial shapes.

TEST(Traffic, SeededScheduleIsReproducible) {
  const StreamFixture f(43, 300, 32, 512);  // 16 batches for the slice below
  server::TrafficOptions topt;
  topt.arrival = ArrivalKind::kBursty;
  topt.rate = 50.0;
  topt.duplicate_flood_prob = 0.2;
  topt.invalid_flood_prob = 0.2;
  topt.num_vertices = static_cast<std::uint64_t>(f.base.num_vertices());
  topt.seed = 99;
  const std::vector<EdgeBatch> base(f.stream.batches.begin(),
                                    f.stream.batches.begin() + 16);
  server::TrafficGenerator g1(topt);
  server::TrafficGenerator g2(topt);
  const auto a = g1.generate(base);
  const auto b = g2.generate(base);
  ASSERT_EQ(a.size(), b.size());
  bool saw_flood = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].batch.updates.size(), b[i].batch.updates.size());
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    saw_flood = saw_flood || a[i].kind != server::TrafficKind::kNormal;
  }
  EXPECT_TRUE(saw_flood);
}

TEST(Traffic, FloodBatchesAreQuarantinedNotFatal) {
  const StreamFixture f(44);
  server::TrafficOptions topt;
  topt.rate = 100.0;
  topt.duplicate_flood_prob = 0.5;
  topt.invalid_flood_prob = 0.5;  // every batch is a flood of some kind
  topt.num_vertices = static_cast<std::uint64_t>(f.base.num_vertices());
  topt.seed = 7;
  server::TrafficGenerator gen(topt);
  const std::vector<EdgeBatch> base(f.stream.batches.begin(),
                                    f.stream.batches.begin() + 6);
  auto schedule = gen.generate(base);

  MultiQueryEngine engine(f.stream.initial, engine_options());
  register_two(engine);
  for (auto& item : schedule) {
    ASSERT_NE(item.kind, server::TrafficKind::kNormal);
    // The sanitizer screens the garbage; the batch still commits.
    const ServerBatchReport r = engine.process_batch(item.batch);
    if (item.kind == server::TrafficKind::kInvalidFlood) {
      EXPECT_EQ(r.shared.quarantine.total(), item.batch.updates.size());
    } else {
      EXPECT_GT(r.shared.quarantine.total(), 0u);
    }
  }
}

TEST(Traffic, ChurnPlanBalancesRegistersAndUnregisters) {
  server::TrafficOptions topt;
  topt.rate = 10.0;
  const server::TrafficGenerator gen(topt);
  const auto plan = gen.churn_plan(/*arrivals=*/64, /*total_registers=*/256,
                                   /*lag=*/8);
  ASSERT_EQ(plan.size(), 64u);
  std::uint32_t regs = 0;
  std::uint32_t unregs = 0;
  std::int64_t live = 0;
  for (const auto& step : plan) {
    regs += step.registers;
    live += step.registers;
    live -= step.unregisters;
    unregs += step.unregisters;
    EXPECT_GE(live, 0);
  }
  EXPECT_EQ(regs, 256u);
  EXPECT_EQ(unregs, 256u);
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace gcsm
