#include <gtest/gtest.h>

#include <algorithm>

#include "core/workloads.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"

namespace gcsm {
namespace {

TEST(Workloads, AllSevenSpecsBuild) {
  const auto& specs = workload_specs();
  ASSERT_EQ(specs.size(), 7u);
  for (const WorkloadSpec& spec : specs) {
    const CsrGraph g = make_workload_graph(spec.name, 0.05, 4, 11);
    EXPECT_GT(g.num_vertices(), 0) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload_graph("NOPE", 1.0, 4, 1),
               Error);
}

TEST(Workloads, RoadNetsHaveTinyMaxDegree) {
  for (const char* name : {"PA", "CA"}) {
    const CsrGraph g = make_workload_graph(name, 0.2, 1, 3);
    EXPECT_LE(g.max_degree(), 12u) << name;  // paper Table I: 9-12
  }
}

TEST(Workloads, SocialAnalogsAreSkewed) {
  for (const char* name : {"AZ", "LJ", "FR", "SF3K", "SF10K"}) {
    const CsrGraph g = make_workload_graph(name, 0.2, 1, 5);
    EXPECT_GT(g.max_degree(),
              5 * static_cast<std::uint32_t>(g.avg_degree()))
        << name;
  }
}

TEST(Workloads, ScaleGrowsTheGraph) {
  const CsrGraph small = make_workload_graph("FR", 0.1, 1, 7);
  const CsrGraph large = make_workload_graph("FR", 0.4, 1, 7);
  EXPECT_GT(large.num_vertices(), 2 * small.num_vertices());
  EXPECT_GT(large.num_edges(), 2 * small.num_edges());
}

TEST(Workloads, StreamOptionsFollowPaperProtocol) {
  // Large graphs: fixed 12*8192-edge pool; small graphs: 10% of edges.
  for (const char* name : {"FR", "SF3K", "SF10K"}) {
    const UpdateStreamOptions opt = default_stream_options(name, 4096, 1);
    EXPECT_EQ(opt.pool_edge_count, 12ull * 8192) << name;
  }
  for (const char* name : {"AZ", "PA", "CA", "LJ"}) {
    const UpdateStreamOptions opt = default_stream_options(name, 4096, 1);
    EXPECT_EQ(opt.pool_edge_count, 0u) << name;
    EXPECT_DOUBLE_EQ(opt.pool_edge_fraction, 0.10) << name;
  }
}

TEST(Workloads, DeterministicForSeed) {
  const CsrGraph a = make_workload_graph("SF3K", 0.1, 4, 99);
  const CsrGraph b = make_workload_graph("SF3K", 0.1, 4, 99);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.max_degree(), b.max_degree());
}

TEST(CommunityBa, HasCommunitiesAndSkew) {
  Rng rng(17);
  const CsrGraph g = generate_community_ba(4000, 6, 20, 0.95, 2, rng);
  EXPECT_EQ(g.num_vertices(), 4000);
  EXPECT_GT(g.max_degree(), 3 * static_cast<std::uint32_t>(g.avg_degree()));
  // Community structure: most edges connect vertices in the same community
  // (round-robin assignment: community = id % 20).
  std::size_t intra = 0;
  const auto edges = g.edge_list();
  for (const Edge& e : edges) {
    if (e.u % 20 == e.v % 20) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(edges.size()),
            0.6);
}

TEST(CommunityBa, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(generate_community_ba(1, 2, 4, 0.9, 1, rng),
               Error);
  EXPECT_THROW(generate_community_ba(100, 0, 4, 0.9, 1, rng),
               Error);
  EXPECT_THROW(generate_community_ba(100, 2, 0, 0.9, 1, rng),
               Error);
}

}  // namespace
}  // namespace gcsm
