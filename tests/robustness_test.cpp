// Edge cases, adversarial inputs, and randomized cross-checks that don't
// fit the per-module files: empty structures, degenerate batches, stress
// configurations, and distribution checks on the randomized components.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/frequency_estimator.hpp"
#include "core/intersect.hpp"
#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "gpusim/page_cache.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/rng.hpp"

namespace gcsm {
namespace {

// ------------------------------------------------------- degenerate -------

TEST(Robustness, EmptyBatchProducesZeroDelta) {
  DynamicGraph g(CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}}));
  EdgeBatch empty;
  g.apply_batch(empty);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(g);
  gpusim::TrafficCounters c;
  const MatchStats stats = engine.match_batch(g, empty, policy, c);
  EXPECT_EQ(stats.signed_embeddings, 0);
  EXPECT_EQ(stats.seeds, 0u);
  g.reorganize();
}

TEST(Robustness, GraphWithNoMatchesAnywhere) {
  // A star has no triangles; every update still produces zero.
  const CsrGraph star =
      CsrGraph::from_edges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  DynamicGraph g(star);
  EdgeBatch batch;
  batch.updates.push_back({1, 0, -1});
  g.apply_batch(batch);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(g);
  gpusim::TrafficCounters c;
  EXPECT_EQ(engine.match_batch(g, batch, policy, c).signed_embeddings, 0);
}

TEST(Robustness, QuerySingleEdge) {
  // The smallest query: one edge, 0 extension levels. Each inserted edge
  // yields exactly 2 embeddings (both orientations).
  DynamicGraph g(CsrGraph::from_edges(4, {{0, 1}}));
  EdgeBatch batch;
  batch.updates.push_back({2, 3, +1});
  g.apply_batch(batch);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_path(1), exec);
  HostPolicy policy(g);
  gpusim::TrafficCounters c;
  const MatchStats stats = engine.match_batch(g, batch, policy, c);
  EXPECT_EQ(stats.signed_embeddings, 2);
}

TEST(Robustness, IsolatedVertexGraph) {
  const CsrGraph g0 = CsrGraph::from_edges(10, {{0, 1}});
  DynamicGraph g(g0);
  EXPECT_EQ(g.live_degree(5), 0u);
  const NeighborView v = g.view(5, ViewMode::kNew);
  EXPECT_EQ(v.size_bound(), 0u);
  EdgeBatch batch;
  batch.updates.push_back({5, 6, +1});
  g.apply_batch(batch);
  EXPECT_TRUE(g.has_live_edge(5, 6));
}

TEST(Robustness, MaxSizeQueryEightVertices) {
  Rng rng(77);
  const CsrGraph g = generate_erdos_renyi(24, 110, 1, rng);
  const QueryGraph q = make_clique(4);
  const QueryGraph cycle8 = make_cycle(8);
  DynamicGraph dyn(g);
  gpusim::SimtExecutor exec(2);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  {
    MatchEngine engine(cycle8, exec);
    EXPECT_EQ(engine.match_full(dyn, policy, c).positive,
              reference_count_embeddings(g, cycle8));
  }
  {
    MatchEngine engine(q, exec);
    EXPECT_EQ(engine.match_full(dyn, policy, c).positive,
              reference_count_embeddings(g, q));
  }
}

// ---------------------------------------------------- engine details ------

TEST(Robustness, GrainSizeDoesNotChangeResults) {
  Rng rng(88);
  const CsrGraph base = generate_barabasi_albert(200, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 120;
  opt.batch_size = 120;
  opt.seed = 89;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_pattern(3);

  std::set<std::int64_t> results;
  for (const std::size_t grain : {1ull, 2ull, 16ull, 1024ull}) {
    DynamicGraph dyn(stream.initial);
    dyn.apply_batch(stream.batches[0]);
    gpusim::SimtExecutor exec(3);
    MatchEngine engine(q, exec, grain);
    HostPolicy policy(dyn);
    gpusim::TrafficCounters c;
    results.insert(
        engine.match_batch(dyn, stream.batches[0], policy, c)
            .signed_embeddings);
  }
  EXPECT_EQ(results.size(), 1u);
}

TEST(Robustness, WorkerCountDoesNotChangeResults) {
  Rng rng(99);
  const CsrGraph base = generate_barabasi_albert(300, 5, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 150;
  opt.batch_size = 150;
  opt.seed = 100;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_pattern(4);

  std::set<std::int64_t> results;
  for (const std::size_t workers : {1ull, 2ull, 5ull, 9ull}) {
    DynamicGraph dyn(stream.initial);
    dyn.apply_batch(stream.batches[0]);
    gpusim::SimtExecutor exec(workers);
    MatchEngine engine(q, exec);
    HostPolicy policy(dyn);
    gpusim::TrafficCounters c;
    results.insert(
        engine.match_batch(dyn, stream.batches[0], policy, c)
            .signed_embeddings);
  }
  EXPECT_EQ(results.size(), 1u);
}

TEST(Robustness, SeedsCountedPerOrientationAndPlan) {
  // 1 update edge, unlabeled triangle: 3 plans x 2 orientations = 6 seeds.
  DynamicGraph g(CsrGraph::from_edges(4, {{0, 1}, {1, 2}}));
  EdgeBatch batch;
  batch.updates.push_back({0, 2, +1});
  g.apply_batch(batch);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(g);
  gpusim::TrafficCounters c;
  const MatchStats stats = engine.match_batch(g, batch, policy, c);
  EXPECT_EQ(stats.seeds, 6u);
}

// ---------------------------------------------------- intersect fuzz ------

TEST(Robustness, IntersectFuzzAgainstStl) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t na = rng.bounded(200);
    const std::size_t nb = rng.bounded(3000);
    std::set<VertexId> sa, sb;
    for (std::size_t i = 0; i < na; ++i) {
      sa.insert(static_cast<VertexId>(rng.bounded(4000)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      sb.insert(static_cast<VertexId>(rng.bounded(4000)));
    }
    const std::vector<VertexId> a(sa.begin(), sa.end());
    const std::vector<VertexId> b(sb.begin(), sb.end());
    std::vector<VertexId> expect, got;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    intersect_sorted(a.data(), a.size(), b.data(), b.size(), got);
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
}

// ----------------------------------------------------- page cache ---------

TEST(Robustness, PageCacheConcurrentAccessIsSafe) {
  gpusim::PageCache cache(64 * 4096, 4096);
  gpusim::TrafficCounters counters;
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < 5000; ++i) {
        const auto addr = reinterpret_cast<const void*>(
            static_cast<std::uintptr_t>((i * 7919 + t * 131) % 512) * 4096);
        cache.access(addr, 64, counters);
      }
    });
  }
  go = true;
  for (auto& t : threads) t.join();
  const auto traffic = counters.snapshot();
  EXPECT_EQ(traffic.um_faults + traffic.um_hits, 4u * 5000u);
  EXPECT_LE(cache.resident_pages(), 64u);
}

// ------------------------------------------------ estimator regimes -------

TEST(Robustness, EstimatorCoversLowDegreeGraphsDeeply) {
  // Road-network regime: D tiny, so walks descend with high probability and
  // even deep-level vertices get sampled.
  Rng rng(55);
  const CsrGraph base = generate_road_network(60, 60, 0.95, 0.05, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_fraction = 0.1;
  opt.batch_size = 200;
  opt.seed = 56;
  const UpdateStream stream = make_update_stream(base, opt);
  DynamicGraph dyn(stream.initial);
  dyn.apply_batch(stream.batches[0]);

  FrequencyEstimator est(make_path(3), {.num_walks = 1 << 16});
  Rng walk_rng(57);
  const EstimateResult r = est.estimate(dyn, stream.batches[0], walk_rng);
  // Deep sampling: visited nodes must exceed the seed count by a healthy
  // factor (walks survive multiple levels when |V|/D is large).
  EXPECT_GT(r.nodes_visited, 4 * 2 * stream.batches[0].size());
}

TEST(Robustness, PipelineSurvivesManyConsecutiveBatches) {
  Rng rng(66);
  const CsrGraph base = generate_barabasi_albert(500, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_fraction = 0.5;
  opt.batch_size = 32;
  opt.seed = 67;
  const UpdateStream stream = make_update_stream(base, opt);
  PipelineOptions popt;
  popt.kind = EngineKind::kGcsm;
  popt.workers = 2;
  popt.cache_budget_bytes = 1 << 20;
  popt.estimator.num_walks = 8192;
  Pipeline pipe(stream.initial, make_triangle(), popt);
  std::int64_t total = static_cast<std::int64_t>(
      reference_count_embeddings(stream.initial, make_triangle()));
  for (const EdgeBatch& batch : stream.batches) {
    total += pipe.process_batch(batch).stats.signed_embeddings;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(reference_count_embeddings(
                       pipe.graph().to_csr(), make_triangle())));
  EXPECT_GE(stream.num_batches(), 10u);
}

}  // namespace
}  // namespace gcsm
