#include <mutex>
#include <stdexcept>

// Comments may spell "cache.builds" or memory_order_relaxed freely.
void good() {
  std::mutex mu;
  const std::lock_guard<std::mutex> hold(mu);
  const char* series = metric::kCacheBuilds;
  (void)series;
  try {
    throw Error(ErrorCode::kConfig, "cache builds exhausted");
  } catch (...) {
    throw;  // bare rethrow is fine
  }
}
