#include <mutex>

void bad(std::mutex& mu) {
  mu.lock();
  mu.unlock();
}
