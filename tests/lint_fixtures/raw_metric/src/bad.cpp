void bad() {
  auto& c = registry().counter("cache.builds");
  c.add();
}
