void bad(FaultInjector* faults) {
  if (faults->fires("cache.build")) {
  }
}
