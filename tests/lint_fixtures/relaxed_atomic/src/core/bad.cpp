#include <atomic>

void bad(std::atomic<int>& v) {
  v.store(1, std::memory_order_relaxed);
}
