#include <stdexcept>

void bad(int n) {
  if (n < 0) {
    throw std::invalid_argument("n must be non-negative");
  }
}
