// Fault-injection matrix for the recovery ladder (docs/ROBUSTNESS.md).
//
// The contract under test: with any fault site armed, the pipeline either
// completes the batch with results BIT-IDENTICAL to a fault-free run, or (when
// recovery is exhausted or disabled) rethrows with the graph rolled back to
// its pre-batch state and every invariant intact. Faults may cost retries,
// cache-budget degradation, or a CPU re-run — never correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dcsr_cache.hpp"
#include "core/gpu_engine.hpp"
#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt_executor.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace gcsm {
namespace {

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 400, std::size_t batch = 64,
                         std::size_t pool = 256) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

PipelineOptions fault_options(EngineKind kind) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 2048;
  opt.sim.device_memory_bytes = 64ull << 20;
  opt.recovery.backoff_initial_ms = 0.0;  // no sleeping in tests
  opt.recovery.watchdog_timeout_ms = 2.0;
  return opt;
}

std::int64_t count_in(const DynamicGraph& graph, const QueryGraph& query) {
  return static_cast<std::int64_t>(
      reference_count_embeddings(graph.to_csr(), query));
}

// ---------------------------------------------------------------------------
// FaultInjector semantics.

TEST(FaultInjector, DeterministicInSeedAndCallSequence) {
  FaultInjector a(99);
  FaultInjector b(99);
  a.arm_all(0.3);
  b.arm_all(0.3);
  std::vector<bool> fa;
  std::vector<bool> fb;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a.fires(fault_site::kDeviceDma));
    fb.push_back(b.fires(fault_site::kDeviceDma));
  }
  EXPECT_EQ(fa, fb);
  EXPECT_GT(a.fired_count(), 0u);   // p=0.3 over 200 hits fires sometimes
  EXPECT_LT(a.fired_count(), 200u);  // ... but not always
  EXPECT_EQ(a.hits(fault_site::kDeviceDma), 200u);
}

TEST(FaultInjector, NthHitFiresExactlyOnThatHit) {
  FaultInjector inj(1);
  inj.arm(fault_site::kKernelLaunch, {0.0, 3});
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t hit = 1; hit <= 10; ++hit) {
    if (inj.fires(fault_site::kKernelLaunch)) fired_at.push_back(hit);
  }
  EXPECT_EQ(fired_at, std::vector<std::uint64_t>{3});
  ASSERT_EQ(inj.observations().size(), 1u);
  EXPECT_EQ(inj.observations()[0].site, fault_site::kKernelLaunch);
  EXPECT_EQ(inj.observations()[0].hit, 3u);
}

TEST(FaultInjector, SuspendGuardSilencesAndRestores) {
  FaultInjector inj(2);
  inj.arm(fault_site::kDeviceAlloc, {1.0, 0});
  {
    FaultSuspendGuard guard(&inj);
    EXPECT_FALSE(inj.fires(fault_site::kDeviceAlloc));
    EXPECT_FALSE(inj.enabled());
  }
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.fires(fault_site::kDeviceAlloc));
  FaultSuspendGuard null_guard(nullptr);  // must tolerate a disarmed stack
}

// ---------------------------------------------------------------------------
// Transactional snapshot / restore.

TEST(Snapshot, RestoreRoundTripsEvenAfterReorganize) {
  StreamFixture f(41);
  DynamicGraph g(f.stream.initial);
  const std::vector<Edge> before = g.to_csr().edge_list();

  const EdgeBatch& batch = f.stream.batches[0];
  const DynamicGraph::Snapshot snap = g.snapshot_for(batch);
  g.apply_batch(batch);
  g.reorganize();
  g.validate();
  EXPECT_NE(g.to_csr().edge_list(), before);

  g.restore(snap);
  g.validate();
  EXPECT_EQ(g.to_csr().edge_list(), before);
  EXPECT_FALSE(g.has_pending_batch());
}

TEST(Snapshot, RestoreRecoversFromHalfAppliedBatch) {
  StreamFixture f(42);
  DynamicGraph g(f.stream.initial);
  const std::vector<Edge> before = g.to_csr().edge_list();

  FaultInjector inj(5);
  inj.arm(fault_site::kGraphApply, {1.0, 0});
  g.set_fault_injector(&inj);

  const EdgeBatch& batch = f.stream.batches[0];
  const DynamicGraph::Snapshot snap = g.snapshot_for(batch);
  try {
    g.apply_batch(batch);
    FAIL() << "armed graph.apply site did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kGraphApply);
    EXPECT_TRUE(e.transient());
  }

  // The batch stopped between the two directed appends of one edge; only
  // restore() can bring the store back to a validating state.
  g.restore(snap);
  g.validate();
  EXPECT_EQ(g.to_csr().edge_list(), before);

  inj.set_enabled(false);
  g.apply_batch(batch);
  g.reorganize();
  g.validate();
}

// ---------------------------------------------------------------------------
// Batch sanitization.

TEST(Sanitize, QuarantinesEveryMalformationKind) {
  const CsrGraph base = CsrGraph::from_edges(4, {{0, 1}, {1, 2}},
                                             std::vector<Label>(4, 0));
  DynamicGraph g(base);

  EdgeBatch bad;
  bad.updates = {
      {0, 2, +1},   // valid insert
      {9, 1, +1},   // out of range
      {-2, 1, +1},  // out of range (negative)
      {1, 1, +1},   // self loop
      {0, 1, +1},   // insert of a live edge
      {2, 3, -1},   // delete of an absent edge
      {2, 0, -1},   // duplicate of the first undirected edge
      {0, 3, +1},   // valid insert
  };
  QuarantineReport report;
  const EdgeBatch clean = sanitize_batch(g, bad, report);

  EXPECT_EQ(clean.updates.size(), 2u);
  EXPECT_EQ(clean.updates[0], (EdgeUpdate{0, 2, +1}));
  EXPECT_EQ(clean.updates[1], (EdgeUpdate{0, 3, +1}));
  EXPECT_EQ(report.out_of_range, 2u);
  EXPECT_EQ(report.self_loops, 1u);
  EXPECT_EQ(report.insert_of_present, 1u);
  EXPECT_EQ(report.delete_of_absent, 1u);
  EXPECT_EQ(report.duplicate_in_batch, 1u);
  EXPECT_EQ(report.total(), 6u);
  EXPECT_EQ(report.quarantined.size(), 6u);

  g.apply_batch(clean);
  g.reorganize();
  g.validate();
}

TEST(Sanitize, BatchDeclaredNewVerticesExtendTheValidRange) {
  const CsrGraph base =
      CsrGraph::from_edges(3, {{0, 1}}, std::vector<Label>(3, 0));
  DynamicGraph g(base);

  EdgeBatch batch;
  batch.new_vertex_labels = {{3, 7}};
  batch.updates = {{0, 3, +1}, {0, 4, +1}};
  QuarantineReport report;
  const EdgeBatch clean = sanitize_batch(g, batch, report);
  EXPECT_EQ(clean.updates.size(), 1u);  // the declared vertex passes
  EXPECT_EQ(report.out_of_range, 1u);   // the undeclared one does not
}

TEST(Sanitize, WellFormedBatchPassesThroughUntouched) {
  StreamFixture f(43);
  DynamicGraph g(f.stream.initial);
  QuarantineReport report;
  const EdgeBatch clean = sanitize_batch(g, f.stream.batches[0], report);
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(clean.updates, f.stream.batches[0].updates);
}

TEST(Sanitize, CorruptionInjectionOnlyAppends) {
  StreamFixture f(44);
  DynamicGraph g(f.stream.initial);
  EdgeBatch batch = f.stream.batches[0];
  const std::vector<EdgeUpdate> original = batch.updates;

  FaultInjector inj(6);
  inj.arm(fault_site::kBatchCorrupt, {1.0, 0});
  inject_batch_corruption(batch, &inj);
  ASSERT_GT(batch.updates.size(), original.size());

  QuarantineReport report;
  const EdgeBatch clean = sanitize_batch(g, batch, report);
  EXPECT_EQ(report.total(), batch.updates.size() - original.size());
  EXPECT_EQ(clean.updates, original);  // exactly the garbage was removed
}

// ---------------------------------------------------------------------------
// DeviceOomError coverage: DcsrCache::build under pressure.

TEST(DcsrCacheFaults, GenuineOomLeavesCacheClearedAndValid) {
  StreamFixture f(45);
  DynamicGraph g(f.stream.initial);
  gpusim::SimParams params;
  params.device_memory_bytes = 1 << 10;  // 1 KiB device: nothing fits
  gpusim::Device dev(params);
  DcsrCache cache;

  try {
    cache.build(g, select_by_degree(g), 64ull << 20, dev, dev.counters());
    FAIL() << "build fit a multi-megabyte blob into a 1 KiB device";
  } catch (const gpusim::DeviceOomError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeviceOom);
    EXPECT_FALSE(e.transient());
    EXPECT_GT(e.requested, e.available);
  }
  EXPECT_TRUE(cache.empty());
  cache.validate();  // the failed build left no half-initialized state
}

TEST(DcsrCacheFaults, InjectedAllocAndDmaFaultsAreExceptionSafe) {
  StreamFixture f(46);
  DynamicGraph g(f.stream.initial);
  gpusim::SimParams params;
  params.device_memory_bytes = 64ull << 20;
  gpusim::Device dev(params);
  FaultInjector inj(9);
  dev.set_fault_injector(&inj);
  DcsrCache cache;
  const std::vector<VertexId> order = select_by_degree(g);

  inj.arm(fault_site::kDeviceAlloc, {0.0, 1});
  EXPECT_THROW(cache.build(g, order, 1 << 20, dev, dev.counters()),
               gpusim::DeviceOomError);
  EXPECT_TRUE(cache.empty());
  cache.validate();

  inj.disarm_all();
  inj.arm(fault_site::kDeviceDma, {0.0, 1});
  EXPECT_THROW(cache.build(g, order, 1 << 20, dev, dev.counters()),
               gpusim::DeviceDmaError);
  EXPECT_TRUE(cache.empty());
  cache.validate();

  // With the injector quiet the same build succeeds outright.
  inj.disarm_all();
  cache.build(g, order, 1 << 20, dev, dev.counters());
  EXPECT_FALSE(cache.empty());
  cache.validate(&g);
}

TEST(SimtExecutorFaults, WatchdogCancelsHungKernel) {
  gpusim::SimtExecutor exec(2);
  FaultInjector inj(7);
  inj.arm(fault_site::kKernelHang, {0.0, 1});
  exec.set_fault_injector(&inj);
  exec.set_watchdog_timeout_ms(1.0);
  try {
    exec.for_each_item(4, 1, [](std::size_t, std::size_t) {});
    FAIL() << "armed kernel.hang site did not fire";
  } catch (const gpusim::KernelTimeoutError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kKernelTimeout);
    EXPECT_TRUE(e.transient());
    EXPECT_DOUBLE_EQ(e.timeout_ms, 1.0);
  }
  // The executor survives the cancelled kernel.
  exec.for_each_item(4, 1, [](std::size_t, std::size_t) {});
}

// ---------------------------------------------------------------------------
// Pipeline recovery ladder.

TEST(PipelineFaults, TransientKernelFaultRetriesTransparently) {
  StreamFixture f(47);
  const QueryGraph q = make_triangle();
  Pipeline reference(f.stream.initial, q, fault_options(EngineKind::kGcsm));

  FaultInjector inj(11);
  inj.arm(fault_site::kKernelLaunch, {0.0, 1});
  PipelineOptions opt = fault_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  Pipeline pipe(f.stream.initial, q, opt);

  const BatchReport expect = reference.process_batch(f.stream.batches[0]);
  const BatchReport got = pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(got.stats.signed_embeddings, expect.stats.signed_embeddings);
  EXPECT_GE(got.retries, 1u);
  EXPECT_FALSE(got.cpu_fallback);  // the second device attempt succeeds
  EXPECT_GE(got.faults_observed, 1u);
  pipe.graph().validate();
}

TEST(PipelineFaults, HungKernelIsCancelledAndRetried) {
  StreamFixture f(48);
  const QueryGraph q = make_triangle();
  Pipeline reference(f.stream.initial, q, fault_options(EngineKind::kGcsm));

  FaultInjector inj(12);
  inj.arm(fault_site::kKernelHang, {0.0, 1});
  PipelineOptions opt = fault_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  Pipeline pipe(f.stream.initial, q, opt);

  const BatchReport expect = reference.process_batch(f.stream.batches[0]);
  const BatchReport got = pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(got.stats.signed_embeddings, expect.stats.signed_embeddings);
  EXPECT_GE(got.retries, 1u);
  pipe.graph().validate();
}

TEST(PipelineFaults, OomShrinksBudgetThenHealsAfterCleanBatches) {
  StreamFixture f(49, 400, 32, 128);
  const QueryGraph q = make_triangle();
  Pipeline reference(f.stream.initial, q, fault_options(EngineKind::kGcsm));

  FaultInjector inj(13);
  inj.arm(fault_site::kDeviceAlloc, {0.0, 1});  // first device alloc OOMs
  PipelineOptions opt = fault_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.recovery.heal_after_clean_batches = 2;
  Pipeline pipe(f.stream.initial, q, opt);

  const BatchReport r0 = pipe.process_batch(f.stream.batches[0]);
  EXPECT_GE(r0.retries, 1u);
  EXPECT_EQ(r0.degradation_level, 1u);
  EXPECT_EQ(r0.effective_cache_budget, opt.cache_budget_bytes / 2);
  EXPECT_FALSE(r0.cpu_fallback);

  const BatchReport r1 = pipe.process_batch(f.stream.batches[1]);
  EXPECT_EQ(r1.degradation_level, 1u);  // one clean batch: still degraded
  const BatchReport r2 = pipe.process_batch(f.stream.batches[2]);
  EXPECT_EQ(r2.degradation_level, 0u);  // two clean batches: healed
  EXPECT_EQ(r2.effective_cache_budget, opt.cache_budget_bytes);

  std::int64_t expected = static_cast<std::int64_t>(
      reference_count_embeddings(f.stream.initial, q));
  for (int k = 0; k < 3; ++k) {
    expected += reference.process_batch(f.stream.batches[k])
                    .stats.signed_embeddings;
  }
  EXPECT_EQ(count_in(pipe.graph(), q), expected);
}

TEST(PipelineFaults, OomAtBudgetFloorFallsBackToCpu) {
  StreamFixture f(50);
  const QueryGraph q = make_triangle();
  Pipeline reference(f.stream.initial, q, fault_options(EngineKind::kGcsm));

  FaultInjector inj(14);
  inj.arm(fault_site::kDeviceAlloc, {1.0, 0});  // every device alloc OOMs
  PipelineOptions opt = fault_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.cache_budget_bytes = 64 << 10;
  opt.recovery.min_cache_budget_bytes = 64 << 10;  // already at the floor
  opt.recovery.max_attempts = 2;
  Pipeline pipe(f.stream.initial, q, opt);

  const BatchReport expect = reference.process_batch(f.stream.batches[0]);
  const BatchReport got = pipe.process_batch(f.stream.batches[0]);
  EXPECT_TRUE(got.cpu_fallback);
  EXPECT_GE(got.retries, 2u);
  EXPECT_EQ(got.stats.signed_embeddings, expect.stats.signed_embeddings);
  pipe.graph().validate();
}

TEST(PipelineFaults, ExhaustedRetriesRethrowWithGraphRolledBack) {
  StreamFixture f(51);
  const QueryGraph q = make_triangle();

  FaultInjector inj(15);
  inj.arm(fault_site::kKernelLaunch, {1.0, 0});  // every launch refused
  PipelineOptions opt = fault_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.recovery.max_attempts = 2;
  opt.recovery.cpu_fallback = false;
  Pipeline pipe(f.stream.initial, q, opt);

  const std::int64_t before = count_in(pipe.graph(), q);
  EXPECT_THROW(pipe.process_batch(f.stream.batches[0]),
               gpusim::KernelLaunchError);
  pipe.graph().validate();
  EXPECT_EQ(count_in(pipe.graph(), q), before);  // the batch rolled back
  EXPECT_FALSE(pipe.graph().has_pending_batch());

  // The failure was not sticky: quiet the injector and the batch applies.
  inj.set_enabled(false);
  pipe.process_batch(f.stream.batches[0]);
  pipe.graph().validate();
}

TEST(PipelineFaults, UnsanitizedMalformedBatchRollsBackAndRethrows) {
  StreamFixture f(52);
  const QueryGraph q = make_triangle();
  PipelineOptions opt = fault_options(EngineKind::kCpu);
  opt.recovery.sanitize_batches = false;
  Pipeline pipe(f.stream.initial, q, opt);

  EdgeBatch bad;
  bad.updates = {{0, 1'000'000, +1}};
  const std::int64_t before = count_in(pipe.graph(), q);
  EXPECT_THROW(pipe.process_batch(bad), Error);
  pipe.graph().validate();
  EXPECT_EQ(count_in(pipe.graph(), q), before);
  // The pipeline is still usable afterwards.
  pipe.process_batch(f.stream.batches[0]);
  pipe.graph().validate();
}

TEST(PipelineFaults, MalformedBatchIsQuarantinedAndReported) {
  StreamFixture f(53);
  const QueryGraph q = make_triangle();
  Pipeline pipe(f.stream.initial, q, fault_options(EngineKind::kCpu));
  Pipeline reference(f.stream.initial, q, fault_options(EngineKind::kCpu));

  EdgeBatch bad = f.stream.batches[0];
  bad.updates.push_back({0, 1'000'000, +1});  // out of range
  bad.updates.push_back({2, 2, +1});          // self loop
  const BatchReport got = pipe.process_batch(bad);
  EXPECT_EQ(got.quarantine.out_of_range, 1u);
  EXPECT_EQ(got.quarantine.self_loops, 1u);
  EXPECT_EQ(got.quarantine.quarantined.size(), 2u);

  const BatchReport expect = reference.process_batch(f.stream.batches[0]);
  EXPECT_EQ(got.stats.signed_embeddings, expect.stats.signed_embeddings);
}

// ---------------------------------------------------------------------------
// The acceptance matrix: every site armed at p = 0.05 over a 200-batch GCSM
// run. The faulty pipeline must report per-batch signed counts BIT-IDENTICAL
// to a fault-free reference, finish with a validating graph, and demonstrate
// each rung of the ladder (retry, budget shrink, CPU fallback) at least once.

TEST(FaultMatrix, GcsmRun200BatchesBitIdenticalUnderFaults) {
  Rng rng(2026);
  const CsrGraph base = generate_barabasi_albert(600, 4, 3, rng);
  UpdateStreamOptions sopt;
  sopt.pool_edge_count = 1600;
  sopt.batch_size = 8;
  sopt.seed = 5;
  const UpdateStream stream = make_update_stream(base, sopt);
  ASSERT_EQ(stream.num_batches(), 200u);

  const QueryGraph q = make_triangle();
  const PipelineOptions clean_opt = fault_options(EngineKind::kGcsm);

  FaultInjector inj(0xFA01);
  inj.arm_all(0.05);
  PipelineOptions faulty_opt = clean_opt;
  faulty_opt.fault_injector = &inj;
  faulty_opt.recovery.max_attempts = 2;
  faulty_opt.recovery.heal_after_clean_batches = 4;

  Pipeline clean(stream.initial, q, clean_opt);
  Pipeline faulty(stream.initial, q, faulty_opt);

  std::uint64_t total_retries = 0;
  std::uint64_t total_quarantined = 0;
  std::uint64_t cpu_fallbacks = 0;
  std::uint32_t max_degradation = 0;
  for (std::size_t k = 0; k < stream.num_batches(); ++k) {
    const BatchReport want = clean.process_batch(stream.batches[k]);
    const BatchReport got = faulty.process_batch(stream.batches[k]);
    ASSERT_EQ(got.stats.signed_embeddings, want.stats.signed_embeddings)
        << "counts diverged at batch " << k;
    ASSERT_EQ(got.stats.positive, want.stats.positive) << "batch " << k;
    ASSERT_EQ(got.stats.negative, want.stats.negative) << "batch " << k;
    total_retries += got.retries;
    total_quarantined += got.quarantine.total();
    cpu_fallbacks += got.cpu_fallback ? 1 : 0;
    max_degradation = std::max(max_degradation, got.degradation_level);
  }

  // Zero invariant failures at the end of the run.
  faulty.graph().validate();
  clean.graph().validate();
  EXPECT_EQ(faulty.graph().to_csr().edge_list(),
            clean.graph().to_csr().edge_list());

  // Every rung of the recovery ladder was exercised.
  EXPECT_GT(inj.fired_count(), 0u);
  EXPECT_GE(total_retries, 1u);
  EXPECT_GE(max_degradation, 1u);  // at least one cache-budget shrink
  EXPECT_GE(cpu_fallbacks, 1u);    // at least one CPU re-run
  EXPECT_GE(total_quarantined, 1u);
}

}  // namespace
}  // namespace gcsm
