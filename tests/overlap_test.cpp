// Pipelined batch-schedule suite (docs/MULTI_QUERY.md, "Pipelined
// schedule").
//
// The contract under test: process_stream — which stages batch t+1's CPU
// front half (sanitize + estimate) on the match pool during batch t's
// fan-out, packs into a staged cache epoch, and defers report/sink
// surfacing behind the group commit — produces per-query counts
// BIT-IDENTICAL to the serial process_batch loop, surfaces its results in
// batch order with sinks flushed before each report, and keeps every
// internal invariant under concurrent fault injection (the pipeline-tsan
// preset's target).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "server/multi_query_engine.hpp"
#include "util/durable_io.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm {
namespace {

using server::MultiQueryEngine;
using server::MultiQueryOptions;
using server::QueryId;
using server::ServerBatchReport;

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 400, std::size_t batch = 64,
                         std::size_t pool = 512) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

MultiQueryOptions multi_options(EngineKind kind) {
  MultiQueryOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;  // no sleeping in tests
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = std::string(::testing::TempDir()) + "gcsm_ovl_" +
                          tag + "_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);
  return dir;
}

// Per batch, per query: the signed-embedding witness both schedules must
// agree on.
using CountMatrix = std::vector<std::vector<std::int64_t>>;

CountMatrix counts_of(const std::vector<ServerBatchReport>& reports) {
  CountMatrix m;
  for (const ServerBatchReport& r : reports) {
    std::vector<std::int64_t> row;
    for (const server::QueryReport& q : r.queries) {
      row.push_back(q.report.stats.signed_embeddings);
    }
    m.push_back(std::move(row));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Bit-identity against the serial schedule.

TEST(Overlap, StreamBitIdenticalToSerialSchedule) {
  const StreamFixture f(51);
  const std::vector<QueryGraph> patterns = {make_triangle(),
                                            make_fig1_diamond(),
                                            make_path(4)};
  metrics::Counter& overlap =
      metrics::Registry::global().counter(metric::kPipelineOverlapBatches);
  metrics::Counter& staged = metrics::Registry::global().counter(
      metric::kPipelineOverlapStagedEstimates);

  MultiQueryEngine serial(f.stream.initial, multi_options(EngineKind::kGcsm));
  MultiQueryEngine piped(f.stream.initial, multi_options(EngineKind::kGcsm));
  for (const QueryGraph& q : patterns) {
    serial.register_query(q);
    piped.register_query(q);
  }

  std::vector<ServerBatchReport> want;
  for (const EdgeBatch& b : f.stream.batches) {
    want.push_back(serial.process_batch(b));
  }

  const std::uint64_t overlap0 = overlap.value();
  const std::uint64_t staged0 = staged.value();
  std::vector<ServerBatchReport> got;
  piped.process_stream(f.stream.batches,
                       [&](ServerBatchReport&& r) {
                         got.push_back(std::move(r));
                       });

  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(counts_of(got), counts_of(want));
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].shared.stats.signed_embeddings,
              want[k].shared.stats.signed_embeddings)
        << "aggregate diverged at batch " << k;
  }
  piped.graph().validate();
  EXPECT_EQ(piped.graph().to_csr().edge_list(),
            serial.graph().to_csr().edge_list());
  // Every batch went through the pipelined path, and every batch with a
  // successor had its estimate staged on the pool.
  EXPECT_EQ(overlap.value() - overlap0, f.stream.num_batches());
  EXPECT_EQ(staged.value() - staged0, f.stream.num_batches() - 1);
}

TEST(Overlap, StreamMatchesSerialOnEveryEngineKind) {
  const StreamFixture f(52, 250, 64, 256);
  const std::vector<QueryGraph> patterns = {make_triangle(), make_path(4)};
  for (const EngineKind kind :
       {EngineKind::kGcsm, EngineKind::kZeroCopy, EngineKind::kUnifiedMemory,
        EngineKind::kNaiveDegree, EngineKind::kVsgm, EngineKind::kCpu}) {
    MultiQueryEngine serial(f.stream.initial, multi_options(kind));
    MultiQueryEngine piped(f.stream.initial, multi_options(kind));
    for (const QueryGraph& q : patterns) {
      serial.register_query(q);
      piped.register_query(q);
    }
    std::vector<ServerBatchReport> want;
    for (const EdgeBatch& b : f.stream.batches) {
      want.push_back(serial.process_batch(b));
    }
    std::vector<ServerBatchReport> got;
    piped.process_stream(f.stream.batches, [&](ServerBatchReport&& r) {
      got.push_back(std::move(r));
    });
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(counts_of(got), counts_of(want))
        << "kind " << engine_kind_name(kind);
  }
}

TEST(Overlap, EmptyAndSingleBatchStreams) {
  const StreamFixture f(53, 200, 32, 64);
  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kCpu));
  engine.register_query(make_triangle());

  std::size_t surfaced = 0;
  engine.process_stream({}, [&](ServerBatchReport&&) { ++surfaced; });
  EXPECT_EQ(surfaced, 0u);

  MultiQueryEngine twin(f.stream.initial, multi_options(EngineKind::kCpu));
  twin.register_query(make_triangle());
  const ServerBatchReport want = twin.process_batch(f.stream.batches[0]);

  std::vector<ServerBatchReport> got;
  engine.process_stream({f.stream.batches[0]},
                        [&](ServerBatchReport&& r) {
                          got.push_back(std::move(r));
                        });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].queries[0].report.stats.signed_embeddings,
            want.queries[0].report.stats.signed_embeddings);
}

// ---------------------------------------------------------------------------
// Surfacing order: in batch order, sinks before their report.

TEST(Overlap, SinksFlushBeforeTheirReportInBatchOrder) {
  const StreamFixture f(54, 250, 64, 256);
  MultiQueryEngine piped(f.stream.initial, multi_options(EngineKind::kGcsm));
  std::int64_t sink_signed = 0;
  piped.register_query(make_triangle(),
                       [&](const MatchPlan&, std::span<const VertexId>,
                           int sign) { sink_signed += sign; });
  piped.register_query(make_path(4));

  // When batch k's report surfaces, the triangle sink must already have
  // seen every embedding up to and including batch k — and none beyond
  // (the next batch's buffer flushes only after this report).
  std::int64_t expect_signed = 0;
  std::size_t surfaced = 0;
  piped.process_stream(f.stream.batches, [&](ServerBatchReport&& r) {
    expect_signed += r.queries[0].report.stats.signed_embeddings;
    EXPECT_EQ(sink_signed, expect_signed) << "at report " << surfaced;
    ++surfaced;
  });
  EXPECT_EQ(surfaced, f.stream.num_batches());
  // The deferred per-query buffers replayed the exact signed total: the
  // live count equals initial + everything the subscriber saw.
  const std::int64_t initial = static_cast<std::int64_t>(
      reference_count_embeddings(f.stream.initial, make_triangle()));
  EXPECT_EQ(static_cast<std::int64_t>(
                piped.count_current_embeddings(piped.registry().entries()[0].id)),
            initial + sink_signed);
}

// ---------------------------------------------------------------------------
// Roles-staleness: a breaker trip between t and t+1 invalidates the staged
// estimate (computed under t's roles); it is discarded and recomputed, and
// counts still match the serial schedule (p = 1.0 faults are deterministic,
// so both schedules trip identically).

TEST(Overlap, StagedEstimateDiscardedWhenRolesChange) {
  const StreamFixture f(55, 250, 64, 512);
  metrics::Counter& discards = metrics::Registry::global().counter(
      metric::kPipelineOverlapStagedDiscards);

  auto poisoned_options = [&](FaultInjector* inj) {
    MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
    opt.fault_injector = inj;
    opt.recovery.max_attempts = 2;
    opt.breaker.trip_after_failures = 1;
    opt.breaker.cooldown_batches = 1000;  // never re-joins
    return opt;
  };

  FaultInjector inj_serial(71);
  MultiQueryEngine serial(f.stream.initial, poisoned_options(&inj_serial));
  FaultInjector inj_piped(71);
  MultiQueryEngine piped(f.stream.initial, poisoned_options(&inj_piped));

  QueryId poison = 0;
  for (MultiQueryEngine* e : {&serial, &piped}) {
    const QueryId a = e->register_query(make_triangle());
    e->register_query(make_path(4));
    poison = a;
  }
  FaultSpec spec;
  spec.probability = 1.0;
  spec.match_query_id = poison;
  inj_serial.arm(fault_site::kMatchQuery, spec);
  inj_piped.arm(fault_site::kMatchQuery, spec);

  std::vector<ServerBatchReport> want;
  for (std::size_t k = 0; k < 6; ++k) {
    want.push_back(serial.process_batch(f.stream.batches[k]));
  }
  EXPECT_TRUE(want[0].queries[0].tripped);

  const std::uint64_t discards0 = discards.value();
  std::vector<ServerBatchReport> got;
  piped.process_stream(
      {f.stream.batches.begin(), f.stream.batches.begin() + 6},
      [&](ServerBatchReport&& r) { got.push_back(std::move(r)); });

  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(counts_of(got), counts_of(want));
  EXPECT_TRUE(got[0].queries[0].tripped);
  // Batch 1's estimate was staged under batch 0's roles (poison still
  // matching); the trip made it stale.
  EXPECT_GE(discards.value() - discards0, 1u);
}

// ---------------------------------------------------------------------------
// Durable streams: reports surface only after their commit lands, and a
// recovering restart agrees with the stream's final state.

TEST(Overlap, DurableStreamSurfacesCommittedReportsAndRecovers) {
  const StreamFixture f(56, 300, 32, 256);
  const std::string dir = fresh_dir("durable");

  // Non-durable serial reference.
  MultiQueryEngine ref(f.stream.initial, multi_options(EngineKind::kGcsm));
  ref.register_query(make_triangle());
  ref.register_query(make_path(4));
  durable::DurableCounters want;
  for (const EdgeBatch& b : f.stream.batches) {
    const ServerBatchReport r = ref.process_batch(b);
    want.batches_committed += 1;
    want.cum_signed += r.shared.stats.signed_embeddings;
    want.cum_positive += r.shared.stats.positive;
    want.cum_negative += r.shared.stats.negative;
  }

  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 3;
  opt.durability.fsync = false;
  opt.durability.group_commit_batches = 4;
  {
    MultiQueryEngine piped(f.stream.initial, opt);
    piped.register_query(make_triangle());
    piped.register_query(make_path(4));
    std::uint64_t last_seq = 0;
    piped.process_stream(f.stream.batches, [&](ServerBatchReport&& r) {
      // Durable surfacing order: ascending WAL seq, no gaps skipped.
      EXPECT_EQ(r.shared.wal_seq, last_seq + 1);
      last_seq = r.shared.wal_seq;
    });
    EXPECT_EQ(last_seq, f.stream.num_batches());
    EXPECT_EQ(piped.cumulative().batches_committed, f.stream.num_batches());
  }

  MultiQueryOptions ropt = opt;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine back(f.stream.initial, ropt);
  EXPECT_EQ(back.cumulative().batches_committed, want.batches_committed);
  EXPECT_EQ(back.cumulative().cum_signed, want.cum_signed);
  EXPECT_EQ(back.cumulative().cum_positive, want.cum_positive);
  EXPECT_EQ(back.cumulative().cum_negative, want.cum_negative);
  EXPECT_EQ(back.graph().to_csr().edge_list(),
            ref.graph().to_csr().edge_list());
}

// ---------------------------------------------------------------------------
// Fault stress — the pipeline-tsan preset's target. Probabilistic fault
// draws change retry/trip schedules, so counts are NOT compared against a
// serial run here; the assertions are the schedule-invariant ones: the
// aggregate is always the sum of per-query counts, every batch surfaces
// exactly once in order, the graph stays valid, and the standing count a
// subscriber accumulated matches a from-scratch recount at the end.

TEST(Overlap, FaultStressKeepsInternalConsistency) {
  Rng rng(2027);
  // The update-stream pool clamps to the base edge count, so the graph must
  // carry >= 3200 edges for the 200-batch schedule below.
  const CsrGraph base = generate_barabasi_albert(900, 4, 3, rng);
  UpdateStreamOptions sopt;
  sopt.pool_edge_count = 3200;
  sopt.batch_size = 16;
  sopt.seed = 9;
  const UpdateStream stream = make_update_stream(base, sopt);
  ASSERT_EQ(stream.num_batches(), 200u);

  FaultInjector inj(0xF1A5);
  inj.arm_all(0.05);
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.recovery.max_attempts = 2;
  opt.recovery.heal_after_clean_batches = 4;
  opt.estimator.num_walks = 128;
  opt.check_invariants = false;  // races are the target here, not layout
  opt.breaker.trip_after_failures = 3;
  opt.breaker.cooldown_batches = 5;

  MultiQueryEngine engine(stream.initial, opt);
  std::int64_t sink_signed = 0;
  const QueryId tri = engine.register_query(
      make_triangle(), [&](const MatchPlan&, std::span<const VertexId>,
                           int sign) { sink_signed += sign; });
  for (int i = 0; i < 7; ++i) {
    engine.register_query(i % 2 == 0 ? make_path(3 + i % 3)
                                     : make_fig1_diamond());
  }

  std::size_t surfaced = 0;
  engine.process_stream(stream.batches, [&](ServerBatchReport&& r) {
    std::int64_t sum = 0;
    for (const server::QueryReport& q : r.queries) {
      sum += q.report.stats.signed_embeddings;
    }
    EXPECT_EQ(r.shared.stats.signed_embeddings, sum)
        << "aggregate != sum of per-query counts at report " << surfaced;
    ++surfaced;
  });
  EXPECT_EQ(surfaced, stream.num_batches());
  EXPECT_GT(inj.fired_count(), 0u);

  engine.graph().validate();
  // The subscriber's accumulated deltas + the initial standing count must
  // equal a from-scratch recount on the final graph — retries, trips,
  // quarantine catch-up and staged discards included.
  const std::int64_t initial = static_cast<std::int64_t>(
      reference_count_embeddings(stream.initial, make_triangle()));
  EXPECT_EQ(static_cast<std::int64_t>(engine.count_current_embeddings(tri)),
            initial + sink_signed);
}

}  // namespace
}  // namespace gcsm
