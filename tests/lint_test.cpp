// Tests for gcsm_lint (tools/gcsm_lint, docs/ANALYSIS.md "Static
// analysis"). Each fixture tree under tests/lint_fixtures/ contains one
// known violation of one rule; the test drives the lint library over the
// fixture and asserts the expected rule fires at the expected file. The
// `clean` fixture and the real repo tree must both lint to zero
// diagnostics, so the contract the linter enforces is itself enforced.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace gcsm::lint {
namespace {

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return run_lint({std::filesystem::path(GCSM_TEST_LINT_FIXTURES) / name});
}

std::string render(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += format_diagnostic(d) + "\n";
  return out;
}

TEST(Lint, CleanFixturePasses) {
  const auto diags = lint_fixture("clean");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

TEST(Lint, FlagsRawMetricName) {
  const auto diags = lint_fixture("raw_metric");
  ASSERT_EQ(diags.size(), 1u) << render(diags);
  EXPECT_EQ(diags[0].rule, "raw-metric-name");
  EXPECT_EQ(diags[0].file, "src/bad.cpp");
  EXPECT_EQ(diags[0].line, 2);
  // The message names both the literal and the constant to reach for.
  EXPECT_NE(diags[0].message.find("cache.builds"), std::string::npos);
  EXPECT_NE(diags[0].message.find("metric::kCacheBuilds"), std::string::npos);
}

TEST(Lint, FlagsRawFaultSite) {
  const auto diags = lint_fixture("raw_fault");
  ASSERT_EQ(diags.size(), 1u) << render(diags);
  EXPECT_EQ(diags[0].rule, "raw-fault-site");
  EXPECT_EQ(diags[0].file, "src/bad.cpp");
  EXPECT_NE(diags[0].message.find("fault_site::kCacheBuild"),
            std::string::npos);
}

TEST(Lint, FlagsDocDriftBothDirections) {
  const auto diags = lint_fixture("doc_drift");
  // One registered-but-undocumented metric, one documented-but-unknown.
  ASSERT_EQ(diags.size(), 2u) << render(diags);
  EXPECT_TRUE(std::all_of(
      diags.begin(), diags.end(),
      [](const Diagnostic& d) { return d.rule == "doc-metric-sync"; }))
      << render(diags);
  EXPECT_NE(render(diags).find("cache.blob_bytes"), std::string::npos);
  EXPECT_NE(render(diags).find("cache.ghost_series"), std::string::npos);
}

TEST(Lint, FlagsRawThrow) {
  const auto diags = lint_fixture("raw_throw");
  ASSERT_EQ(diags.size(), 1u) << render(diags);
  EXPECT_EQ(diags[0].rule, "raw-throw");
  EXPECT_NE(diags[0].message.find("invalid_argument"), std::string::npos);
}

TEST(Lint, FlagsStrayRelaxedAtomic) {
  const auto diags = lint_fixture("relaxed_atomic");
  ASSERT_EQ(diags.size(), 1u) << render(diags);
  EXPECT_EQ(diags[0].rule, "stray-relaxed-atomic");
  EXPECT_EQ(diags[0].file, "src/core/bad.cpp");
}

TEST(Lint, FlagsNakedLock) {
  const auto diags = lint_fixture("naked_lock");
  ASSERT_EQ(diags.size(), 2u) << render(diags);  // lock() and unlock()
  EXPECT_TRUE(std::all_of(
      diags.begin(), diags.end(),
      [](const Diagnostic& d) { return d.rule == "naked-lock"; }))
      << render(diags);
}

TEST(Lint, DiagnosticFormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/bad.cpp", 7, "raw-throw", "boom"};
  EXPECT_EQ(format_diagnostic(d), "src/bad.cpp:7: raw-throw: boom");
}

// The linter's reason to exist: the real tree must satisfy its own
// contracts. This is the in-process twin of the `gcsm_lint .` run in
// scripts/check.sh.
TEST(Lint, RepoTreeIsClean) {
  const auto diags = run_lint({std::filesystem::path(GCSM_TEST_REPO_ROOT)});
  EXPECT_TRUE(diags.empty()) << render(diags);
}

}  // namespace
}  // namespace gcsm::lint
