// Tests for the runtime invariant checker (util/check.hpp and the
// validate() methods): every structure passes validation along a randomized
// insert/delete stream, and deliberate corruption of each structure is
// caught with a CheckFailure.
#include <gtest/gtest.h>

#include <vector>

#include "core/dcsr_cache.hpp"
#include "core/match_store.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "gpusim/device.hpp"
#include "query/patterns.hpp"
#include "util/check.hpp"

namespace gcsm {
namespace {

CsrGraph small_graph(std::uint64_t seed = 99) {
  Rng rng(seed);
  return generate_erdos_renyi(60, 240, 2, rng);
}

TEST(CheckMacros, GcsmCheckThrowsWithContext) {
  try {
    GCSM_CHECK(1 + 1 == 3, "arithmetic drifted");
    FAIL() << "GCSM_CHECK did not throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("arithmetic drifted"),
              std::string::npos);
    EXPECT_GT(e.line_number, 0);
  }
}

TEST(CheckMacros, GcsmAssertMatchesBuildFlavor) {
#if GCSM_CHECKS_ENABLED
  EXPECT_THROW(GCSM_ASSERT(false, "enabled build"), CheckFailure);
#else
  GCSM_ASSERT(false, "disabled build: must not evaluate or throw");
#endif
}

TEST(DynamicGraphValidate, PassesOnFreshAndUpdatedGraph) {
  DynamicGraph g(small_graph());
  EXPECT_NO_THROW(g.validate());

  UpdateStreamOptions opt;
  opt.pool_edge_count = 120;
  opt.batch_size = 24;
  opt.seed = 5;
  const UpdateStream stream = make_update_stream(small_graph(), opt);
  DynamicGraph dyn(stream.initial);
  for (const EdgeBatch& batch : stream.batches) {
    dyn.apply_batch(batch);
    EXPECT_NO_THROW(dyn.validate());  // pending-batch state
    dyn.reorganize();
    EXPECT_NO_THROW(dyn.validate());  // reorganized state
  }
}

TEST(DynamicGraphValidate, CatchesUnsortedPrefix) {
  DynamicGraph g(small_graph());
  // Find a vertex with at least two neighbors and swap them out of order.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.pre_batch_degree(v) >= 2) {
      auto* list = const_cast<VertexId*>(g.host_ptr(v));
      std::swap(list[0], list[1]);
      EXPECT_THROW(g.validate(), CheckFailure);
      return;
    }
  }
  FAIL() << "graph has no vertex of degree >= 2";
}

TEST(DynamicGraphValidate, CatchesAsymmetricEdge) {
  DynamicGraph g(small_graph());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.pre_batch_degree(v) >= 1) {
      auto* list = const_cast<VertexId*>(g.host_ptr(v));
      // Redirect the first neighbor to a vertex that does not list v back
      // (keep sortedness: only bump within the gap before the next entry).
      const VertexId old = list[0];
      const VertexId next = g.pre_batch_degree(v) >= 2
                                ? list[1]
                                : g.num_vertices();
      for (VertexId cand = old + 1; cand < next; ++cand) {
        if (cand != v && !g.has_live_edge(v, cand)) {
          list[0] = cand;
          EXPECT_THROW(g.validate(), CheckFailure);
          return;
        }
      }
    }
  }
  GTEST_SKIP() << "no safe slot found to forge an asymmetric edge";
}

TEST(DynamicGraphValidate, CatchesForgedTombstone) {
  DynamicGraph g(small_graph());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.pre_batch_degree(v) >= 1) {
      // A tombstone the counters know nothing about.
      auto* list = const_cast<VertexId*>(g.host_ptr(v));
      list[0] = tombstone(decode_neighbor(list[0]));
      EXPECT_THROW(g.validate(), CheckFailure);
      return;
    }
  }
  FAIL() << "graph has no vertex with a neighbor";
}

TEST(DcsrCacheValidate, PassesOnBuiltCacheAndCatchesCorruption) {
  DynamicGraph g(small_graph());
  gpusim::Device device;
  DcsrCache cache;
  EXPECT_NO_THROW(cache.validate());  // empty cache

  std::vector<VertexId> all;
  for (VertexId v = 0; v < g.num_vertices(); ++v) all.push_back(v);
  cache.build(g, all, 64ull << 20, device, device.counters());
  ASSERT_GT(cache.num_cached(), 0u);
  EXPECT_NO_THROW(cache.validate());
  EXPECT_NO_THROW(cache.validate(&g));  // verbatim against the source lists

  // Corrupt a cached list through the device-side view: break the sorted
  // order of the first row with >= 2 entries.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t steps = 0;
    const auto view = cache.lookup(v, ViewMode::kNew, steps);
    if (view && view->prefix.size >= 2) {
      auto* colidx = const_cast<VertexId*>(view->prefix.data);
      std::swap(colidx[0], colidx[1]);
      EXPECT_THROW(cache.validate(), CheckFailure);
      std::swap(colidx[0], colidx[1]);  // restore, then corrupt a value only
      EXPECT_NO_THROW(cache.validate(&g));
      colidx[1] = static_cast<VertexId>(g.num_vertices() + colidx[1]);
      // Still sorted, but no longer a verbatim copy of the graph's list.
      EXPECT_THROW(cache.validate(&g), CheckFailure);
      return;
    }
  }
  FAIL() << "no cached row with two entries";
}

TEST(DcsrCacheValidate, PendingBatchRowsRoundTrip) {
  UpdateStreamOptions opt;
  opt.pool_edge_count = 80;
  opt.batch_size = 80;
  opt.seed = 17;
  const UpdateStream stream = make_update_stream(small_graph(3), opt);
  DynamicGraph dyn(stream.initial);
  dyn.apply_batch(stream.batches.at(0));  // tombstones + appended runs live

  gpusim::Device device;
  DcsrCache cache;
  std::vector<VertexId> all;
  for (VertexId v = 0; v < dyn.num_vertices(); ++v) all.push_back(v);
  cache.build(dyn, all, 64ull << 20, device, device.counters());
  EXPECT_NO_THROW(cache.validate(&dyn));
}

TEST(MatchStoreValidate, PassesAfterRandomizedStreamBatches) {
  UpdateStreamOptions opt;
  opt.pool_edge_count = 100;
  opt.batch_size = 20;
  opt.seed = 31;
  const UpdateStream stream = make_update_stream(small_graph(7), opt);
  const QueryGraph q = make_triangle();

  PipelineOptions popt;
  popt.kind = EngineKind::kCpu;
  popt.workers = 2;
  popt.check_invariants = true;  // batch-boundary graph/cache validation
  Pipeline pipe(stream.initial, q, popt);
  MatchStore store(q);
  const MatchSink sink = store.sink();
  for (const EdgeBatch& batch : stream.batches) {
    pipe.process_batch(batch, &sink);
    EXPECT_NO_THROW(store.validate());
  }
}

TEST(MatchStoreValidate, CatchesDuplicateEmbeddingEvents) {
  MatchStore store(make_path(1));  // single edge, |Aut| = 2
  const std::vector<VertexId> e{4, 9};
  const auto span = std::span<const VertexId>(e.data(), e.size());
  store.apply(span, +1);
  store.apply(span, +1);
  EXPECT_NO_THROW(store.validate());  // at the |Aut| bound: still legal
#if GCSM_CHECKS_ENABLED
  // The hot-path GCSM_ASSERT in apply() catches the third event directly.
  EXPECT_THROW(store.apply(span, +1), CheckFailure);
#else
  store.apply(span, +1);  // slips past the disabled assert...
  EXPECT_THROW(store.validate(), CheckFailure);  // ...but not past validate()
#endif
}

TEST(PipelineChecksMode, GcsmEngineStreamValidatesEveryBatch) {
  UpdateStreamOptions opt;
  opt.pool_edge_count = 100;
  opt.batch_size = 25;
  opt.seed = 43;
  const UpdateStream stream = make_update_stream(small_graph(11), opt);

  PipelineOptions popt;
  popt.kind = EngineKind::kGcsm;
  popt.workers = 2;
  popt.check_invariants = true;
  Pipeline pipe(stream.initial, make_triangle(), popt);
  std::int64_t net = 0;
  for (const EdgeBatch& batch : stream.batches) {
    const BatchReport report = pipe.process_batch(batch);
    net += report.stats.signed_embeddings;
  }
  // The invariant checks must not perturb the matching result: the net delta
  // telescopes to the embedding count difference.
  PipelineOptions ref_opt;
  ref_opt.kind = EngineKind::kCpu;
  ref_opt.check_invariants = false;
  Pipeline ref(stream.initial, make_triangle(), ref_opt);
  const auto before = static_cast<std::int64_t>(
      ref.count_current_embeddings());
  for (const EdgeBatch& batch : stream.batches) {
    ref.mutable_graph().apply_batch(batch);
    ref.mutable_graph().reorganize();
  }
  const auto after = static_cast<std::int64_t>(
      ref.count_current_embeddings());
  EXPECT_EQ(net, after - before);
}

}  // namespace
}  // namespace gcsm
