#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/page_cache.hpp"
#include "gpusim/simt_executor.hpp"
#include "util/error.hpp"

namespace gcsm::gpusim {
namespace {

// --------------------------------------------------------- cost model -----

TEST(CostModel, ZeroTrafficZeroTime) {
  const SimTime t = simulate_time(Traffic{}, SimParams{});
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(CostModel, DmaIncludesPerCallLatency) {
  SimParams p;
  p.dma_latency_us = 10.0;
  p.dma_bandwidth_gbps = 10.0;
  Traffic t;
  t.dma_calls = 3;
  t.dma_bytes = 10ull * 1000 * 1000 * 1000;  // 1 second at 10 GB/s
  const SimTime s = simulate_time(t, p);
  EXPECT_NEAR(s.dma, 1.0 + 3 * 10e-6, 1e-9);
}

TEST(CostModel, ZeroCopyChargesWholeLines) {
  SimParams p;
  p.zero_copy_line_bytes = 128;
  p.zero_copy_bandwidth_gbps = 1.0;  // 1 GB/s
  Traffic t;
  t.zero_copy_lines = 1000;
  t.zero_copy_bytes = 4;  // useful bytes are irrelevant to the cost
  const SimTime s = simulate_time(t, p);
  EXPECT_NEAR(s.zero_copy, 128e3 / 1e9, 1e-12);
}

TEST(CostModel, UmFaultDominatedByOverheadForSparseAccess) {
  SimParams p;
  Traffic t;
  t.um_faults = 100;
  const SimTime s = simulate_time(t, p);
  // faults * (overhead + page/bandwidth): both terms must be charged.
  const double overhead_only = 100 * p.um_fault_overhead_us * 1e-6;
  EXPECT_GT(s.um, overhead_only);
  EXPECT_LT(s.um, 2 * overhead_only + 1e-3);
}

TEST(CostModel, UnifiedMemoryWastesMoreThanZeroCopy) {
  // The same fine-grained access pattern (one cache line of useful data per
  // access) must cost far more through UM than through zero-copy: this is
  // the paper's 69-210x observation in miniature.
  SimParams p;
  Traffic zc;
  zc.zero_copy_lines = 10000;
  Traffic um;
  um.um_faults = 10000;  // each touch faults a fresh 4-KiB page
  EXPECT_GT(simulate_time(um, p).um / simulate_time(zc, p).zero_copy, 20.0);
}

TEST(CostModel, TrafficAdditionAccumulates) {
  Traffic a;
  a.device_bytes = 5;
  a.dma_calls = 1;
  Traffic b;
  b.device_bytes = 7;
  b.compute_ops = 3;
  const Traffic c = a + b;
  EXPECT_EQ(c.device_bytes, 12u);
  EXPECT_EQ(c.dma_calls, 1u);
  EXPECT_EQ(c.compute_ops, 3u);
}

TEST(CostModel, CpuAccessBytesCombinesInterconnectClasses) {
  SimParams p;
  Traffic t;
  t.zero_copy_lines = 2;   // 2 * 128 B
  t.dma_bytes = 100;
  t.um_faults = 1;         // 4096 B
  EXPECT_EQ(t.cpu_access_bytes(p), 2 * 128 + 100 + 4096u);
}

TEST(TrafficCounters, SnapshotAndReset) {
  TrafficCounters c;
  c.add_device_bytes(10);
  c.add_zero_copy(2, 256);
  c.add_dma(1, 999);
  c.add_um_fault();
  c.add_um_hit(3);
  c.add_compute(42);
  c.add_host(7, 70);
  c.add_cache_hit();
  c.add_cache_miss(2);
  Traffic t = c.snapshot();
  EXPECT_EQ(t.device_bytes, 10u);
  EXPECT_EQ(t.zero_copy_lines, 2u);
  EXPECT_EQ(t.zero_copy_bytes, 256u);
  EXPECT_EQ(t.dma_calls, 1u);
  EXPECT_EQ(t.dma_bytes, 999u);
  EXPECT_EQ(t.um_faults, 1u);
  EXPECT_EQ(t.um_hits, 3u);
  EXPECT_EQ(t.compute_ops, 42u);
  EXPECT_EQ(t.host_ops, 7u);
  EXPECT_EQ(t.host_bytes, 70u);
  EXPECT_EQ(t.cache_hits, 1u);
  EXPECT_EQ(t.cache_misses, 2u);
  c.reset();
  t = c.snapshot();
  EXPECT_EQ(t.device_bytes, 0u);
  EXPECT_EQ(t.dma_calls, 0u);
}

// ------------------------------------------------------------- device -----

TEST(Device, TracksCapacity) {
  SimParams p;
  p.device_memory_bytes = 1024;
  Device dev(p);
  EXPECT_EQ(dev.capacity(), 1024u);
  EXPECT_EQ(dev.used(), 0u);
  {
    DeviceBuffer b = dev.alloc(512);
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(dev.used(), 512u);
    EXPECT_EQ(dev.available(), 512u);
  }
  EXPECT_EQ(dev.used(), 0u);  // RAII release
}

TEST(Device, ThrowsOnOom) {
  SimParams p;
  p.device_memory_bytes = 100;
  Device dev(p);
  DeviceBuffer keep = dev.alloc(60);
  EXPECT_THROW(dev.alloc(50), DeviceOomError);
  try {
    dev.alloc(50);
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.requested, 50u);
    EXPECT_EQ(e.available, 40u);
  }
}

TEST(Device, MoveTransfersOwnership) {
  SimParams p;
  p.device_memory_bytes = 1000;
  Device dev(p);
  DeviceBuffer a = dev.alloc(100);
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.used(), 100u);
}

TEST(Device, DmaCopiesBytesAndCharges) {
  Device dev;
  TrafficCounters c;
  std::vector<int> payload(256);
  std::iota(payload.begin(), payload.end(), 0);
  DeviceBuffer buf = dev.alloc(payload.size() * sizeof(int));
  dev.dma_to_device(buf, payload.data(), payload.size() * sizeof(int), c);
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(),
                        payload.size() * sizeof(int)),
            0);
  const Traffic t = c.snapshot();
  EXPECT_EQ(t.dma_calls, 1u);
  EXPECT_EQ(t.dma_bytes, payload.size() * sizeof(int));
}

TEST(Device, DmaLargerThanBufferThrows) {
  Device dev;
  TrafficCounters c;
  DeviceBuffer buf = dev.alloc(16);
  std::vector<char> src(32);
  EXPECT_THROW(dev.dma_to_device(buf, src.data(), 32, c),
               Error);
}

// --------------------------------------------------------- page cache -----

TEST(PageCache, FirstTouchFaultsSecondHits) {
  PageCache cache(1 << 20, 4096);
  TrafficCounters c;
  int x = 0;
  cache.access(&x, sizeof(x), c);
  cache.access(&x, sizeof(x), c);
  const Traffic t = c.snapshot();
  EXPECT_EQ(t.um_faults, 1u);
  EXPECT_EQ(t.um_hits, 1u);
}

TEST(PageCache, SpanningAccessTouchesAllPages) {
  PageCache cache(1 << 20, 4096);
  TrafficCounters c;
  std::vector<char> blob(4096 * 3 + 10);
  cache.access(blob.data(), blob.size(), c);
  const Traffic t = c.snapshot();
  EXPECT_GE(t.um_faults, 3u);
  EXPECT_LE(t.um_faults, 5u);  // up to 2 extra for misalignment
}

TEST(PageCache, LruEvictsOldest) {
  PageCache cache(2 * 4096, 4096);  // room for two pages
  TrafficCounters c;
  auto addr = [](std::uint64_t page) {
    return reinterpret_cast<const void*>(page * 4096);
  };
  cache.access(addr(1), 1, c);  // fault
  cache.access(addr(2), 1, c);  // fault
  cache.access(addr(1), 1, c);  // hit, page 1 becomes MRU
  cache.access(addr(3), 1, c);  // fault, evicts page 2
  cache.access(addr(2), 1, c);  // fault again
  cache.access(addr(1), 1, c);  // page 1 survived? (evicted by page 2) ...
  const Traffic t = c.snapshot();
  // faults: 1,2,3,2 again, and 1 (evicted when 2 was refetched? page 1 was
  // MRU before 3 arrived, so 3 evicted 2; refetching 2 evicted 3 or 1).
  EXPECT_EQ(t.um_faults + t.um_hits, 6u);
  EXPECT_GE(t.um_faults, 4u);
  EXPECT_EQ(cache.resident_pages(), 2u);
}

TEST(PageCache, ClearEmptiesResidentSet) {
  PageCache cache(1 << 20, 4096);
  TrafficCounters c;
  std::vector<char> blob(4096 * 2);
  cache.access(blob.data(), blob.size(), c);
  EXPECT_GT(cache.resident_pages(), 0u);
  cache.clear();
  EXPECT_EQ(cache.resident_pages(), 0u);
}

TEST(PageCache, CapacityRoundedToWholePagesMinOne) {
  PageCache tiny(100, 4096);  // less than one page
  EXPECT_EQ(tiny.capacity_pages(), 1u);
}

// ------------------------------------------------------ SIMT executor -----

TEST(SimtExecutor, WorkStealingCoversAllItems) {
  SimtExecutor exec(4, Schedule::kWorkStealing);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> seen(kN);
  exec.for_each_item(kN, 16, [&](std::size_t i, std::size_t) { seen[i]++; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(seen[i].load(), 1);
}

TEST(SimtExecutor, StaticScheduleCoversAllItems) {
  SimtExecutor exec(3, Schedule::kStatic);
  constexpr std::size_t kN = 1001;
  std::vector<std::atomic<int>> seen(kN);
  exec.for_each_item(kN, 1, [&](std::size_t i, std::size_t) { seen[i]++; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(seen[i].load(), 1);
}

TEST(SimtExecutor, BlockIdsInRange) {
  SimtExecutor exec(4);
  std::atomic<bool> bad{false};
  exec.for_each_item(1000, 8, [&](std::size_t, std::size_t block) {
    if (block >= exec.num_blocks()) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(SimtExecutor, EmptyWorkIsNoop) {
  SimtExecutor exec(2);
  std::atomic<int> calls{0};
  exec.for_each_item(0, 1, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace gcsm::gpusim
