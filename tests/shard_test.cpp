// Multi-device sharded matching suite (DESIGN.md, "Multi-device
// sharding").
//
// The contract under test: a ShardedMatchEngine partitioning the data graph
// across N simulated devices produces per-query and aggregate match counts
// BIT-IDENTICAL to the single-device MultiQueryEngine fed the same stream —
// for 1/2/4/8 shards, every EngineKind, range and hash partitioning, with
// and without the p=0.05 all-site fault matrix. Plus the GraphPartitioner
// unit contract (determinism, balance on skewed graphs, cut-edge
// replication consistency under insert/delete/reorg) and the branch
// decomposition used for Pregel-style stitching.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/list_ref.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/branch_plan.hpp"
#include "query/patterns.hpp"
#include "query/plan.hpp"
#include "server/multi_query_engine.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_engine.hpp"
#include "shard/sharded_graph.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace gcsm {
namespace {

using server::MultiQueryEngine;
using server::MultiQueryOptions;
using shard::GraphPartitioner;
using shard::PartitionStrategy;
using shard::ShardedBatchReport;
using shard::ShardedEngineOptions;
using shard::ShardedGraph;
using shard::ShardedMatchEngine;

constexpr EngineKind kAllKinds[] = {
    EngineKind::kGcsm,        EngineKind::kZeroCopy,
    EngineKind::kUnifiedMemory, EngineKind::kNaiveDegree,
    EngineKind::kVsgm,        EngineKind::kCpu,
};
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr PartitionStrategy kStrategies[] = {PartitionStrategy::kRange,
                                             PartitionStrategy::kHash};

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 400, std::size_t batch = 64,
                         std::size_t pool = 512) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

std::vector<QueryGraph> two_patterns() {
  std::vector<QueryGraph> qs;
  qs.push_back(make_triangle());
  qs.push_back(make_fig1_diamond());
  return qs;
}

MultiQueryOptions reference_options(EngineKind kind) {
  MultiQueryOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

ShardedEngineOptions sharded_options(EngineKind kind, std::size_t shards,
                                     PartitionStrategy strategy) {
  ShardedEngineOptions opt;
  opt.kind = kind;
  opt.num_shards = shards;
  opt.partition = strategy;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

// Per-batch, per-query reference counts from the single-device engine.
std::vector<std::vector<MatchStats>> reference_counts(
    EngineKind kind, const StreamFixture& f, std::size_t num_batches) {
  MultiQueryEngine engine(f.stream.initial, reference_options(kind));
  for (const QueryGraph& q : two_patterns()) {
    engine.register_query(q);
  }
  std::vector<std::vector<MatchStats>> out;
  for (std::size_t k = 0; k < num_batches; ++k) {
    const server::ServerBatchReport r =
        engine.process_batch(f.stream.batches[k]);
    std::vector<MatchStats> per_query;
    for (const auto& qr : r.queries) per_query.push_back(qr.report.stats);
    out.push_back(per_query);
  }
  return out;
}

void expect_sharded_matches_reference(
    EngineKind kind, std::size_t shards, PartitionStrategy strategy,
    const StreamFixture& f, const std::vector<std::vector<MatchStats>>& want,
    FaultInjector* faults) {
  ShardedEngineOptions opt = sharded_options(kind, shards, strategy);
  opt.fault_injector = faults;
  ShardedMatchEngine engine(f.stream.initial, opt);
  for (const QueryGraph& q : two_patterns()) {
    engine.register_query(q);
  }
  for (std::size_t k = 0; k < want.size(); ++k) {
    const ShardedBatchReport got = engine.process_batch(f.stream.batches[k]);
    ASSERT_EQ(got.queries.size(), want[k].size());
    std::int64_t sum_signed = 0;
    for (std::size_t i = 0; i < want[k].size(); ++i) {
      EXPECT_EQ(got.queries[i].stats.signed_embeddings,
                want[k][i].signed_embeddings)
          << engine_kind_name(kind) << " shards=" << shards << " "
          << partition_strategy_name(strategy) << " query " << i << " batch "
          << k;
      EXPECT_EQ(got.queries[i].stats.positive, want[k][i].positive)
          << engine_kind_name(kind) << " shards=" << shards << " query " << i
          << " batch " << k;
      EXPECT_EQ(got.queries[i].stats.negative, want[k][i].negative)
          << engine_kind_name(kind) << " shards=" << shards << " query " << i
          << " batch " << k;
      sum_signed += got.queries[i].stats.signed_embeddings;
    }
    EXPECT_EQ(got.shared.stats.signed_embeddings, sum_signed)
        << "aggregate != sum of per-query counts at batch " << k;
  }
}

// ---------------------------------------------------------------------------
// Bit-identity vs the single-device engine: clean runs.

TEST(Shard, BitIdenticalToSingleDeviceAllKindsCounts) {
  const StreamFixture f(23);
  const std::size_t batches = 2;
  for (const EngineKind kind : kAllKinds) {
    const std::vector<std::vector<MatchStats>> want =
        reference_counts(kind, f, batches);
    for (const std::size_t shards : kShardCounts) {
      for (const PartitionStrategy strategy : kStrategies) {
        expect_sharded_matches_reference(kind, shards, strategy, f, want,
                                         nullptr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-identity under the p=0.05 all-site fault matrix (faulty sharded engine
// vs CLEAN single-device reference — recovery must preserve counts).

TEST(Shard, FaultMatrixPreservesCountsAllKinds) {
  const StreamFixture f(29);
  const std::size_t batches = 2;
  std::uint64_t fault_seed = 900;
  for (const EngineKind kind : kAllKinds) {
    const std::vector<std::vector<MatchStats>> want =
        reference_counts(kind, f, batches);
    for (const std::size_t shards : kShardCounts) {
      for (const PartitionStrategy strategy : kStrategies) {
        FaultInjector inj(++fault_seed);
        inj.arm_all(0.05);
        if (kind == EngineKind::kVsgm) {
          // VSGM treats device OOM as semantic — the ladder rethrows it by
          // contract (matching Pipeline and MultiQueryEngine), so the alloc
          // site is excluded for this kind only. An explicit zero-probability
          // spec overrides the arm_all default.
          inj.arm(fault_site::kDeviceAlloc, FaultSpec{});
        }
        expect_sharded_matches_reference(kind, shards, strategy, f, want,
                                         &inj);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Durable commit markers aggregate the per-shard counters.

TEST(Shard, CommitMarkersAggregatePerShardCounters) {
  const StreamFixture f(31);
  static int dir_counter = 0;
  const std::string dir = std::string(::testing::TempDir()) +
                          "gcsm_shard_wal_" + std::to_string(dir_counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);

  ShardedEngineOptions opt =
      sharded_options(EngineKind::kGcsm, 4, PartitionStrategy::kHash);
  opt.durability.wal_dir = dir;
  ShardedMatchEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());

  std::int64_t cum_signed = 0;
  std::uint64_t cum_positive = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    const ShardedBatchReport r = engine.process_batch(f.stream.batches[k]);
    EXPECT_NE(r.shared.wal_seq, 0u);
    cum_signed += r.shared.stats.signed_embeddings;
    cum_positive += r.shared.stats.positive;
  }
  EXPECT_EQ(engine.cumulative().batches_committed, 3u);
  EXPECT_EQ(engine.cumulative().cum_signed, cum_signed);
  EXPECT_EQ(engine.cumulative().cum_positive, cum_positive);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Routed stitch accounting and the full static recount.

TEST(Shard, StitchAccountingAndStaticRecount) {
  const StreamFixture f(37);
  ShardedEngineOptions opt =
      sharded_options(EngineKind::kCpu, 4, PartitionStrategy::kHash);
  ShardedMatchEngine engine(f.stream.initial, opt);
  const auto id = engine.register_query(make_fig1_diamond());

  MultiQueryEngine ref(f.stream.initial,
                       reference_options(EngineKind::kCpu));
  const auto ref_id = ref.register_query(make_fig1_diamond());

  for (std::size_t k = 0; k < 2; ++k) {
    const ShardedBatchReport r = engine.process_batch(f.stream.batches[k]);
    // Every (plan, record, orientation) item lands on exactly one shard.
    const std::size_t plans =
        make_delta_plans(make_fig1_diamond()).size();
    EXPECT_EQ(r.stitch.routed_items,
              plans * f.stream.batches[k].updates.size() * 2);
    EXPECT_GE(r.stitch.supersteps, 1u);
    ref.process_batch(f.stream.batches[k]);
  }
  EXPECT_EQ(engine.count_current_embeddings(id),
            ref.count_current_embeddings(ref_id));
}

// ---------------------------------------------------------------------------
// GraphPartitioner: determinism, balance, validation.

TEST(Shard, PartitionerIsDeterministicAcrossRuns) {
  for (const PartitionStrategy strategy : kStrategies) {
    const GraphPartitioner a(4, strategy, 1000);
    const GraphPartitioner b(4, strategy, 1000);
    for (VertexId v = 0; v < 1000; ++v) {
      EXPECT_EQ(a.owner(v), b.owner(v))
          << partition_strategy_name(strategy) << " vertex " << v;
      EXPECT_LT(a.owner(v), 4u);
    }
  }
}

TEST(Shard, RangePartitionOwnsContiguousBlocks) {
  const GraphPartitioner p(4, PartitionStrategy::kRange, 100);
  EXPECT_EQ(p.owner(0), 0u);
  EXPECT_EQ(p.owner(24), 0u);
  EXPECT_EQ(p.owner(25), 1u);
  EXPECT_EQ(p.owner(99), 3u);
  // Vertices past the initial range clamp to the last shard.
  EXPECT_EQ(p.owner(500), 3u);
  for (VertexId v = 1; v < 100; ++v) {
    EXPECT_GE(p.owner(v), p.owner(v - 1)) << "range owners must be monotone";
  }
}

TEST(Shard, HashPartitionBalancesSkewedPowerLawGraph) {
  Rng rng(7);
  const CsrGraph g = generate_barabasi_albert(2000, 8, 2, rng);
  DynamicGraph dyn(g);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const GraphPartitioner p(shards, PartitionStrategy::kHash,
                             g.num_vertices());
    const shard::PartitionStats st = p.stats(dyn);
    std::uint64_t total_vertices = 0;
    for (const std::uint64_t x : st.owned_vertices) total_vertices += x;
    EXPECT_EQ(total_vertices, static_cast<std::uint64_t>(g.num_vertices()));
    // Edge load of the hottest shard stays within 2x the balanced share
    // even though BA degree is heavily skewed.
    EXPECT_LT(st.imbalance, 2.0) << shards << " shards";
    EXPECT_GE(st.imbalance, 1.0);
    EXPECT_GT(st.cut_edges, 0u);
  }
}

TEST(Shard, PartitionerRejectsZeroShards) {
  EXPECT_THROW(GraphPartitioner(0, PartitionStrategy::kRange, 10), Error);
  try {
    const GraphPartitioner p(0, PartitionStrategy::kHash, 10);
    FAIL() << "expected kConfig";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

TEST(Shard, ParsePartitionStrategyRejectsUnknown) {
  EXPECT_EQ(shard::parse_partition_strategy("range"),
            PartitionStrategy::kRange);
  EXPECT_EQ(shard::parse_partition_strategy("hash"), PartitionStrategy::kHash);
  try {
    shard::parse_partition_strategy("metis");
    FAIL() << "expected kConfig";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

// ---------------------------------------------------------------------------
// Cut-edge replication stays consistent under insert/delete/reorg batches.

TEST(Shard, ReplicatedViewsMatchSingleDeviceAfterStream) {
  const StreamFixture f(41, 300, 48, 384);
  const gpusim::SimParams sim;
  ShardedGraph sg(f.stream.initial, 4, PartitionStrategy::kHash, sim);
  DynamicGraph single(f.stream.initial);

  std::vector<VertexId> got;
  std::vector<VertexId> want;
  for (std::size_t k = 0; k < 4; ++k) {
    const EdgeBatch& batch = f.stream.batches[k];
    const std::vector<EdgeBatch> subs = sg.split_batch(batch);
    for (std::size_t s = 0; s < sg.num_shards(); ++s) {
      sg.graph(s).apply_batch(subs[s]);
    }
    single.apply_batch(batch);
    sg.note_applied(batch);
    // Reorganize after every apply, as phase_reorg does in the engines:
    // DynamicGraph forbids a second apply_batch while one is pending.
    for (std::size_t s = 0; s < sg.num_shards(); ++s) {
      sg.graph(s).reorganize();
    }
    single.reorganize();
    sg.validate();

    ASSERT_EQ(sg.num_vertices(), single.num_vertices());
    for (VertexId v = 0; v < single.num_vertices(); ++v) {
      const std::size_t owner = sg.owner(v);
      EXPECT_EQ(sg.graph(owner).live_degree(v), single.live_degree(v))
          << "vertex " << v << " batch " << k;
      got.clear();
      want.clear();
      materialize_view(sg.graph(owner).view(v, ViewMode::kNew), got);
      materialize_view(single.view(v, ViewMode::kNew), want);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "owner view of vertex " << v
                           << " diverged at batch " << k;
    }
    // The incremental cut-edge count agrees with a full recount.
    const shard::PartitionStats recount = sg.partitioner().stats(single);
    EXPECT_EQ(sg.cut_edges(), recount.cut_edges) << "batch " << k;
  }
}

// ---------------------------------------------------------------------------
// Branch decomposition (query/branch_plan.hpp).

TEST(Shard, BranchDecompositionPicksHighDegreeRootDeterministically) {
  const QueryGraph diamond = make_fig1_diamond();
  const BranchDecomposition a = make_branch_decomposition(diamond);
  const BranchDecomposition b = make_branch_decomposition(diamond);
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.num_branches, b.num_branches);
  for (std::uint32_t v = 0; v < diamond.num_vertices(); ++v) {
    EXPECT_EQ(a.parent[v], b.parent[v]);
    EXPECT_EQ(a.branch_number[v], b.branch_number[v]);
  }
  // Root maximizes degree (ties to the smaller id).
  for (std::uint32_t v = 0; v < diamond.num_vertices(); ++v) {
    EXPECT_LE(diamond.degree(v), diamond.degree(a.root));
  }
  EXPECT_EQ(a.parent[a.root], a.root);
  // Every non-root parent is a query neighbor (spanning tree).
  for (std::uint32_t v = 0; v < diamond.num_vertices(); ++v) {
    if (v == a.root) continue;
    EXPECT_TRUE(diamond.adjacent(v, a.parent[v]))
        << "parent of " << v << " is not adjacent";
  }
}

TEST(Shard, BranchDecompositionSegmentsAndStitchLevels) {
  const QueryGraph tri = make_triangle();
  const BranchDecomposition d = make_branch_decomposition(tri);
  EXPECT_GE(d.num_branches, 1u);
  for (const QueryGraph& q : two_patterns()) {
    const BranchDecomposition dec = make_branch_decomposition(q);
    for (const MatchPlan& plan : make_delta_plans(q)) {
      const std::vector<std::uint8_t> levels = stitch_levels(dec, plan);
      ASSERT_EQ(levels.size(), plan.num_levels());
      for (std::uint32_t l = 0; l < plan.num_levels(); ++l) {
        const bool expect =
            dec.is_branch[plan.levels[l].query_vertex] != 0;
        EXPECT_EQ(levels[l] != 0, expect);
      }
    }
  }
}

}  // namespace
}  // namespace gcsm
