// Crash-durability suite (docs/ROBUSTNESS.md, "Durability & recovery").
//
// The contract under test: with a WAL directory configured, a process that
// dies at ANY point — mid-WAL-append, pre-fsync, mid-snapshot-write — and
// restarts with recover-on-start produces cumulative match counts
// BIT-IDENTICAL to an uninterrupted run, and a corrupted WAL tail is
// truncated with a warning instead of refusing to start. The injected
// CrashError is the in-process analog of kill -9: the pipeline object is
// destroyed with no cleanup and a fresh one recovers from disk.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "server/multi_query_engine.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/wal.hpp"

namespace gcsm {
namespace {

// pool / batch must cover kBatches below: 256 / 32 = exactly 8 batches.
// (Indexing past stream.batches.size() is UB the sanitizers cannot see —
// the vector's capacity usually exceeds its size.)
struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 300, std::size_t batch = 32,
                         std::size_t pool = 256) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

// A unique directory per call, under gtest's temp root. The counter restarts
// with the process, so a previous run's WAL/snapshot may still sit at the
// same path — durable state that recovery would faithfully (and confusingly)
// resurrect. Scrub it first.
std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = std::string(::testing::TempDir()) + "gcsm_dur_" +
                          tag + "_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);
  return dir;
}

// Match-count equality against a non-durable baseline: every counter except
// last_seq, which only durable runs assign.
void expect_counts(const durable::DurableCounters& got,
                   const durable::DurableCounters& want) {
  EXPECT_EQ(got.batches_committed, want.batches_committed);
  EXPECT_EQ(got.cum_signed, want.cum_signed);
  EXPECT_EQ(got.cum_positive, want.cum_positive);
  EXPECT_EQ(got.cum_negative, want.cum_negative);
}

PipelineOptions durable_options(const std::string& dir,
                                FaultInjector* inj = nullptr,
                                EngineKind kind = EngineKind::kCpu) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 3;
  opt.durability.recover_on_start = true;
  opt.durability.fsync = false;  // protocol + fault sites identical, no I/O tax
  opt.fault_injector = inj;
  return opt;
}

// Uninterrupted non-durable reference run over the first `k` batches.
durable::DurableCounters baseline_counters(const StreamFixture& fx,
                                           const QueryGraph& query,
                                           std::size_t k,
                                           std::vector<Edge>* edges = nullptr) {
  PipelineOptions opt = durable_options("");
  opt.durability.wal_dir.clear();
  Pipeline p(fx.stream.initial, query, opt);
  for (std::size_t i = 0; i < k; ++i) p.process_batch(fx.stream.batches[i]);
  if (edges != nullptr) *edges = p.graph().to_csr().edge_list();
  return p.cumulative();
}

void corrupt_byte(const std::string& path, std::size_t offset_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -static_cast<long>(offset_from_end), SEEK_END);
  const int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// CRC32C and the low-level encoders.

TEST(DurableIo, Crc32cKnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix / Castagnoli).
  EXPECT_EQ(io::crc32c("123456789"), 0xE3069283U);
  EXPECT_EQ(io::crc32c(""), 0U);
}

TEST(DurableIo, Crc32cChains) {
  const std::string a = "hello ";
  const std::string b = "world";
  EXPECT_EQ(io::crc32c(b, io::crc32c(a)), io::crc32c(a + b));
}

TEST(DurableIo, ByteReaderFlagsUnderrun) {
  std::string buf;
  io::put_u32(buf, 7);
  io::ByteReader r(buf);
  EXPECT_EQ(r.get_u32(), 7U);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.get_u64(), 0U);  // underrun: returns 0, flags not-ok
  EXPECT_FALSE(r.ok());
}

TEST(DurableIo, AtomicWriteReplacesWholeFile) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/doc.txt";
  io::atomic_write_file(path, "first version", false);
  io::atomic_write_file(path, "v2", false);
  EXPECT_EQ(io::read_file_if_exists(path).value_or(""), "v2");
}

// ---------------------------------------------------------------------------
// WAL record format, torn tails, corruption.

TEST(Wal, RoundTrip) {
  const std::string path = fresh_dir("roundtrip") + "/gcsm.wal";
  {
    wal::Writer w(path, /*sync=*/false);
    w.append(wal::RecordType::kBatch, 1, "payload-one");
    w.append(wal::RecordType::kCommit, 1, "");
    w.append(wal::RecordType::kBatch, 2, std::string(1000, 'x'));
    w.sync();
  }
  const wal::ReadResult r = wal::read_all(path);
  EXPECT_FALSE(r.tail_damaged);
  ASSERT_EQ(r.records.size(), 3U);
  EXPECT_EQ(r.records[0].type, wal::RecordType::kBatch);
  EXPECT_EQ(r.records[0].seq, 1U);
  EXPECT_EQ(r.records[0].payload, "payload-one");
  EXPECT_EQ(r.records[1].type, wal::RecordType::kCommit);
  EXPECT_EQ(r.records[2].payload.size(), 1000U);
}

TEST(Wal, MissingFileIsCleanEmpty) {
  const wal::ReadResult r = wal::read_all(fresh_dir("nofile") + "/gcsm.wal");
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.tail_damaged);
  EXPECT_EQ(r.valid_bytes, 0U);
}

TEST(Wal, TornTailDetectedAndTruncated) {
  const std::string path = fresh_dir("torn") + "/gcsm.wal";
  std::uint64_t clean_bytes = 0;
  {
    wal::Writer w(path, false);
    w.append(wal::RecordType::kBatch, 1, "intact");
    clean_bytes = w.bytes_appended();
    // A torn append: only a prefix of the next record reached the disk.
    const std::string rec =
        wal::encode_record(wal::RecordType::kBatch, 2, "never-finished");
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(rec.data(), 1, rec.size() / 2, f);
    std::fclose(f);
  }
  wal::ReadResult r = wal::read_all(path);
  EXPECT_TRUE(r.tail_damaged);
  EXPECT_EQ(r.valid_bytes, clean_bytes);
  ASSERT_EQ(r.records.size(), 1U);
  EXPECT_EQ(r.records[0].payload, "intact");

  // Recovery's repair: truncate to the clean prefix, then the log is clean.
  wal::truncate_log(path, r.valid_bytes);
  r = wal::read_all(path);
  EXPECT_FALSE(r.tail_damaged);
  EXPECT_EQ(r.records.size(), 1U);
}

TEST(Wal, BitFlippedCrcStopsAtTheDamage) {
  const std::string path = fresh_dir("bitflip") + "/gcsm.wal";
  {
    wal::Writer w(path, false);
    w.append(wal::RecordType::kBatch, 1, "aaaa");
    w.append(wal::RecordType::kBatch, 2, "bbbb");
  }
  corrupt_byte(path, 2);  // inside record 2's payload -> its CRC fails
  const wal::ReadResult r = wal::read_all(path);
  EXPECT_TRUE(r.tail_damaged);
  EXPECT_NE(r.tail_reason.find("CRC"), std::string::npos);
  ASSERT_EQ(r.records.size(), 1U);
  EXPECT_EQ(r.records[0].payload, "aaaa");
}

TEST(Wal, CrashAtTearsTheAppend) {
  const std::string path = fresh_dir("crash") + "/gcsm.wal";
  FaultInjector inj(5);
  inj.arm(fault_site::kCrashAt, {0.0, 1, 10});  // 10 bytes reach the file
  {
    wal::Writer w(path, false, &inj);
    EXPECT_THROW(w.append(wal::RecordType::kBatch, 1, "doomed"), CrashError);
  }
  const auto bytes = io::read_file_if_exists(path);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), 10U);
  const wal::ReadResult r = wal::read_all(path);
  EXPECT_TRUE(r.tail_damaged);
  EXPECT_TRUE(r.records.empty());
}

TEST(Wal, ArmAllNeverSchedulesACrash) {
  FaultInjector inj(6);
  inj.arm_all(1.0);  // every site fires always ... except crash.at
  EXPECT_FALSE(inj.fires_spec(fault_site::kCrashAt).has_value());
  EXPECT_TRUE(inj.fires(fault_site::kWalWrite));
}

// ---------------------------------------------------------------------------
// Snapshot serialization.

TEST(Snapshot, RoundTripPreservesPendingReorgState) {
  StreamFixture fx(11);
  DynamicGraph g(fx.stream.initial);
  g.apply_batch(fx.stream.batches[0]);  // NOT reorganized: tombstones +
  ASSERT_TRUE(g.has_pending_batch());   // appended runs + touched set live

  durable::DurableCounters counters;
  counters.batches_committed = 1;
  counters.last_seq = 1;
  counters.cum_signed = -3;
  const std::string bytes = durable::encode_snapshot(g.snapshot_full(),
                                                     counters);
  std::string why;
  const auto loaded = durable::decode_snapshot(bytes, &why);
  ASSERT_TRUE(loaded.has_value()) << why;
  EXPECT_EQ(loaded->counters, counters);

  DynamicGraph restored(fx.stream.initial);
  restored.restore(loaded->graph);
  restored.validate();
  EXPECT_TRUE(restored.has_pending_batch());
  EXPECT_EQ(restored.num_live_edges(), g.num_live_edges());
  EXPECT_EQ(restored.to_csr().edge_list(), g.to_csr().edge_list());

  // The restored graph must be operationally identical, not just equal now:
  // reorganizing both yields the same compacted lists.
  g.reorganize();
  restored.reorganize();
  restored.validate();
  EXPECT_EQ(restored.to_csr().edge_list(), g.to_csr().edge_list());
}

TEST(Snapshot, CorruptFileRejectedNotDeserialized) {
  StreamFixture fx(12);
  DynamicGraph g(fx.stream.initial);
  const std::string path = fresh_dir("snapcorrupt") + "/graph.snap";
  durable::write_snapshot_file(path, g.snapshot_full(), {}, false);
  ASSERT_TRUE(durable::load_snapshot_file(path).has_value());

  corrupt_byte(path, 40);
  std::string why;
  EXPECT_FALSE(durable::load_snapshot_file(path, &why).has_value());
  EXPECT_NE(why.find("CRC"), std::string::npos);
}

TEST(Snapshot, CrashDuringWriteKeepsThePreviousSnapshot) {
  StreamFixture fx(13);
  DynamicGraph g(fx.stream.initial);
  const std::string path = fresh_dir("snapcrash") + "/graph.snap";
  durable::DurableCounters v1;
  v1.batches_committed = 7;
  durable::write_snapshot_file(path, g.snapshot_full(), v1, false);

  g.apply_batch(fx.stream.batches[0]);
  FaultInjector inj(9);
  inj.arm(fault_site::kCrashAt, {0.0, 1, 100});
  durable::DurableCounters v2;
  v2.batches_committed = 8;
  EXPECT_THROW(
      durable::write_snapshot_file(path, g.snapshot_full(), v2, false, &inj),
      CrashError);

  // The rename never happened: readers still see v1, whole and valid.
  const auto loaded = durable::load_snapshot_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->counters.batches_committed, 7U);
}

TEST(Snapshot, BatchPayloadRoundTrip) {
  EdgeBatch batch;
  batch.updates = {{1, 2, +1}, {3, 4, -1}, {0, 5, +1}};
  batch.new_vertex_labels = {{5, 3}};
  const auto decoded = durable::decode_batch(durable::encode_batch(batch));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->updates, batch.updates);
  EXPECT_EQ(decoded->new_vertex_labels, batch.new_vertex_labels);
  EXPECT_FALSE(durable::decode_batch("garbage").has_value());
}

// ---------------------------------------------------------------------------
// Exit-code contract (docs/ROBUSTNESS.md).

TEST(ExitCodes, FollowTheDocumentedContract) {
  EXPECT_EQ(exit_code_for(ErrorCode::kConfig), 2);
  EXPECT_EQ(exit_code_for(ErrorCode::kIoParse), 2);
  EXPECT_EQ(exit_code_for(ErrorCode::kDeviceOom), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kDeviceDma), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kKernelLaunch), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kKernelTimeout), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kIoOpen), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kBatchRejected), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kRecovery), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kCrash), 1);
}

// ---------------------------------------------------------------------------
// Pipeline-level durability.

constexpr std::size_t kBatches = 8;

TEST(Durability, ColdStartOnEmptyDirIsANoOp) {
  StreamFixture fx(21);
  const QueryGraph query = make_triangle();
  Pipeline p(fx.stream.initial, query,
             durable_options(fresh_dir("cold")));
  EXPECT_FALSE(p.recovery_info().snapshot_loaded);
  EXPECT_TRUE(p.recovery_info().replay.empty());
  p.process_batch(fx.stream.batches[0]);
  EXPECT_EQ(p.cumulative().batches_committed, 1U);
  EXPECT_EQ(p.cumulative().last_seq, 1U);
}

TEST(Durability, CleanRestartReproducesCountsAndGraph) {
  StreamFixture fx(22);
  ASSERT_GE(fx.stream.batches.size(), kBatches);
  const QueryGraph query = make_triangle();
  std::vector<Edge> baseline_edges;
  const durable::DurableCounters expect =
      baseline_counters(fx, query, kBatches, &baseline_edges);

  const std::string dir = fresh_dir("restart");
  durable::DurableCounters half;
  {
    Pipeline p(fx.stream.initial, query, durable_options(dir));
    for (std::size_t k = 0; k < 5; ++k) p.process_batch(fx.stream.batches[k]);
    half = p.cumulative();
  }
  // Restart: snapshot (interval 3 -> written at batch 3) + WAL replay of
  // batches 4..5, then the client resumes from batches_committed.
  Pipeline p(fx.stream.initial, query, durable_options(dir));
  EXPECT_EQ(p.cumulative(), half);
  EXPECT_TRUE(p.recovery_info().snapshot_loaded);
  EXPECT_FALSE(p.recovery_info().replay.empty());
  for (std::size_t k = p.cumulative().batches_committed; k < kBatches; ++k) {
    p.process_batch(fx.stream.batches[k]);
  }
  EXPECT_EQ(p.cumulative().batches_committed, expect.batches_committed);
  EXPECT_EQ(p.cumulative().cum_signed, expect.cum_signed);
  EXPECT_EQ(p.cumulative().cum_positive, expect.cum_positive);
  EXPECT_EQ(p.cumulative().cum_negative, expect.cum_negative);
  EXPECT_EQ(p.graph().to_csr().edge_list(), baseline_edges);
}

TEST(Durability, CleanRestartOnGcsmEngineToo) {
  // The durable guarantee is engine-independent: match counts never depend
  // on what the cache holds, so recovery under the full GCSM path (estimator
  // + DCSR cache) reproduces them bit-identically as well.
  StreamFixture fx(23);
  const QueryGraph query = make_triangle();
  const durable::DurableCounters expect = baseline_counters(fx, query, 6);

  const std::string dir = fresh_dir("gcsm");
  {
    Pipeline p(fx.stream.initial, query,
               durable_options(dir, nullptr, EngineKind::kGcsm));
    for (std::size_t k = 0; k < 4; ++k) p.process_batch(fx.stream.batches[k]);
  }
  Pipeline p(fx.stream.initial, query,
             durable_options(dir, nullptr, EngineKind::kGcsm));
  for (std::size_t k = p.cumulative().batches_committed; k < 6; ++k) {
    p.process_batch(fx.stream.batches[k]);
  }
  EXPECT_EQ(p.cumulative().cum_signed, expect.cum_signed);
  EXPECT_EQ(p.cumulative().cum_positive, expect.cum_positive);
  EXPECT_EQ(p.cumulative().cum_negative, expect.cum_negative);
}

// Drives the stream to completion against one crash scheduled at the nth
// crash.at hit with the given torn-byte offset, restarting with recovery
// after the "kill". Returns how many crashes actually fired.
int run_with_scheduled_crash(const StreamFixture& fx, const QueryGraph& query,
                             const std::string& dir, std::uint64_t nth,
                             std::uint64_t byte,
                             durable::DurableCounters* out,
                             std::vector<Edge>* edges) {
  FaultInjector inj(31);
  inj.arm(fault_site::kCrashAt, {0.0, nth, byte});
  int crashes = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      Pipeline p(fx.stream.initial, query, durable_options(dir, &inj));
      // Exactly-once resumption: submit from the committed count onward.
      for (std::size_t k = p.cumulative().batches_committed; k < kBatches;
           ++k) {
        p.process_batch(fx.stream.batches[k]);
      }
      *out = p.cumulative();
      *edges = p.graph().to_csr().edge_list();
      return crashes;
    } catch (const CrashError&) {
      ++crashes;  // the pipeline died mid-write; loop restarts + recovers
    }
  }
  ADD_FAILURE() << "crash storm: nth=" << nth << " byte=" << byte;
  return crashes;
}

TEST(Durability, CrashMatrixEveryWalAndSnapshotSiteRecovers) {
  StreamFixture fx(24);
  ASSERT_GE(fx.stream.batches.size(), kBatches);
  const QueryGraph query = make_triangle();
  std::vector<Edge> baseline_edges;
  const durable::DurableCounters expect =
      baseline_counters(fx, query, kBatches, &baseline_edges);

  // Sweep the crash over every crash.at probe an uninterrupted run makes
  // (WAL appends, pre-fsync points, the snapshot temp-file write), at three
  // torn-write offsets: nothing written, a torn header, a torn payload.
  int cases = 0;
  for (const std::uint64_t byte : {0U, 11U, 64U}) {
    for (std::uint64_t nth = 1;; ++nth) {
      const std::string dir =
          fresh_dir("matrix_" + std::to_string(byte) + "_" +
                    std::to_string(nth));
      durable::DurableCounters got;
      std::vector<Edge> got_edges;
      const int crashes =
          run_with_scheduled_crash(fx, query, dir, nth, byte, &got,
                                   &got_edges);
      ASSERT_EQ(got.batches_committed, expect.batches_committed)
          << "nth=" << nth << " byte=" << byte;
      ASSERT_EQ(got.cum_signed, expect.cum_signed)
          << "nth=" << nth << " byte=" << byte;
      ASSERT_EQ(got.cum_positive, expect.cum_positive)
          << "nth=" << nth << " byte=" << byte;
      ASSERT_EQ(got.cum_negative, expect.cum_negative)
          << "nth=" << nth << " byte=" << byte;
      ASSERT_EQ(got_edges, baseline_edges)
          << "nth=" << nth << " byte=" << byte;
      ++cases;
      // Once nth exceeds the number of probes a full run makes, no crash
      // fires and the sweep is complete for this offset.
      if (crashes == 0) break;
      ASSERT_LT(nth, 200U) << "sweep did not terminate";
    }
  }
  // The matrix must have actually crashed somewhere (several sites per
  // batch, times kBatches), or the sweep tested nothing.
  EXPECT_GT(cases, 3 * static_cast<int>(kBatches));
}

TEST(Durability, CorruptedWalTailIsTruncatedWithWarningNotFatal) {
  StreamFixture fx(25);
  ASSERT_GE(fx.stream.batches.size(), kBatches);
  const QueryGraph query = make_triangle();
  std::vector<Edge> baseline_edges;
  const durable::DurableCounters expect =
      baseline_counters(fx, query, kBatches, &baseline_edges);

  const std::string dir = fresh_dir("tail");
  PipelineOptions opt = durable_options(dir);
  opt.durability.snapshot_interval = 0;  // keep the whole history in the WAL
  {
    Pipeline p(fx.stream.initial, query, opt);
    for (std::size_t k = 0; k < kBatches; ++k) {
      p.process_batch(fx.stream.batches[k]);
    }
  }
  // External corruption: a flipped bit in the final commit marker. Recovery
  // must truncate it, replay the intact prefix, and keep going.
  corrupt_byte(dir + "/gcsm.wal", 3);

  Pipeline p(fx.stream.initial, query, opt);
  EXPECT_TRUE(p.recovery_info().wal_tail_truncated);
  EXPECT_NE(p.recovery_info().warning.find("WAL tail damaged"),
            std::string::npos);
  EXPECT_EQ(p.cumulative().batches_committed, kBatches - 1);
  // The last batch's record lost its commit: dropped, then re-submitted.
  EXPECT_EQ(p.recovery_info().dropped_uncommitted, 1U);
  for (std::size_t k = p.cumulative().batches_committed; k < kBatches; ++k) {
    p.process_batch(fx.stream.batches[k]);
  }
  EXPECT_EQ(p.cumulative().cum_signed, expect.cum_signed);
  EXPECT_EQ(p.cumulative().cum_positive, expect.cum_positive);
  EXPECT_EQ(p.graph().to_csr().edge_list(), baseline_edges);
}

TEST(Durability, StaleSnapshotPlusLongerWalReplaysTheSuffix) {
  StreamFixture fx(26);
  const QueryGraph query = make_triangle();
  const std::string dir = fresh_dir("stale");
  PipelineOptions opt = durable_options(dir);
  opt.durability.snapshot_interval = 4;
  {
    Pipeline p(fx.stream.initial, query, opt);
    for (std::size_t k = 0; k < 7; ++k) p.process_batch(fx.stream.batches[k]);
  }
  // Snapshot covers batches 1..4; the WAL holds committed batches 5..7.
  Pipeline p(fx.stream.initial, query, opt);
  EXPECT_TRUE(p.recovery_info().snapshot_loaded);
  EXPECT_EQ(p.recovery_info().counters.batches_committed, 4U);
  EXPECT_EQ(p.recovery_info().replay.size(), 3U);
  EXPECT_EQ(p.cumulative().batches_committed, 7U);
  expect_counts(p.cumulative(), baseline_counters(fx, query, 7));
}

TEST(Durability, TransientWalFaultsAreRetriedInternally) {
  StreamFixture fx(27);
  const QueryGraph query = make_triangle();
  FaultInjector inj(41);
  // One refused append and one refused fsync, at deterministic hits; the
  // manager's bounded retry absorbs both without surfacing an error or
  // duplicating records.
  inj.arm(fault_site::kWalWrite, {0.0, 3});
  inj.arm(fault_site::kWalFsync, {0.0, 5});
  Pipeline p(fx.stream.initial, query,
             durable_options(fresh_dir("transient"), &inj));
  for (std::size_t k = 0; k < 4; ++k) p.process_batch(fx.stream.batches[k]);
  EXPECT_EQ(p.cumulative().batches_committed, 4U);
  expect_counts(p.cumulative(), baseline_counters(fx, query, 4));
}

// ---------------------------------------------------------------------------
// Group commit (multi-query process_stream; docs/ROBUSTNESS.md, "Group
// commit"): batch records are appended by the engine thread, commit markers
// by a dedicated committer thread coalescing up to N batches per fsync. A
// kill at ANY WAL write/fsync probe — the engine thread's appends, the
// committer's marker writes, the group fsync, the snapshot compactions —
// must recover bit-identical to an uninterrupted run, at every coalescing
// window. Crashed commits are re-exposed: their batch records lack a
// durable marker, so the client re-submits from batches_committed.

server::MultiQueryOptions group_commit_options(const std::string& dir,
                                               FaultInjector* inj,
                                               std::uint64_t window) {
  server::MultiQueryOptions opt;
  opt.kind = EngineKind::kCpu;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 3;
  opt.durability.recover_on_start = true;
  opt.durability.fsync = false;  // protocol + fault sites identical
  opt.durability.group_commit_batches = window;
  opt.fault_injector = inj;
  return opt;
}

TEST(Durability, GroupCommitCrashMatrixRecoversAtEveryProbe) {
  StreamFixture fx(29);
  ASSERT_GE(fx.stream.batches.size(), kBatches);

  // Synchronous (serial process_batch) baseline, no durability: what every
  // crashed-and-recovered stream must reproduce exactly.
  server::MultiQueryEngine ref(fx.stream.initial,
                               group_commit_options("", nullptr, 1));
  ref.register_query(make_triangle());
  ref.register_query(make_path(4));
  durable::DurableCounters want;
  for (std::size_t k = 0; k < kBatches; ++k) {
    const server::ServerBatchReport r =
        ref.process_batch(fx.stream.batches[k]);
    want.batches_committed += 1;
    want.cum_signed += r.shared.stats.signed_embeddings;
    want.cum_positive += r.shared.stats.positive;
    want.cum_negative += r.shared.stats.negative;
  }
  const std::vector<Edge> want_edges = ref.graph().to_csr().edge_list();

  int cases = 0;
  int total_crashes = 0;
  for (const std::uint64_t window : {1U, 4U, 8U}) {
    for (std::uint64_t nth = 1;; ++nth) {
      const std::string dir =
          fresh_dir("gc_" + std::to_string(window) + "_" +
                    std::to_string(nth));
      FaultInjector inj(33);
      inj.arm(fault_site::kCrashAt, {0.0, nth, 11});
      int crashes = 0;
      durable::DurableCounters got;
      std::vector<Edge> got_edges;
      bool finished = false;
      for (int lives = 0; lives < 12 && !finished; ++lives) {
        try {
          server::MultiQueryEngine engine(
              fx.stream.initial, group_commit_options(dir, &inj, window));
          // A crash can land between the two registrations; top the
          // recovered registry back up to the full set.
          if (engine.registry().empty()) {
            engine.register_query(make_triangle());
          }
          if (engine.registry().size() < 2) {
            engine.register_query(make_path(4));
          }
          // Exactly-once resumption: re-submit everything not durably
          // committed (enqueued-but-not-fsynced commits are re-exposed).
          const std::size_t from = engine.cumulative().batches_committed;
          engine.process_stream(
              {fx.stream.batches.begin() + static_cast<std::ptrdiff_t>(from),
               fx.stream.batches.begin() + kBatches});
          got = engine.cumulative();
          got_edges = engine.graph().to_csr().edge_list();
          finished = true;
        } catch (const CrashError&) {
          ++crashes;  // killed mid-write (either thread); restart + recover
        }
      }
      ASSERT_TRUE(finished)
          << "crash storm: window=" << window << " nth=" << nth;
      ASSERT_EQ(got.batches_committed, want.batches_committed)
          << "window=" << window << " nth=" << nth;
      ASSERT_EQ(got.cum_signed, want.cum_signed)
          << "window=" << window << " nth=" << nth;
      ASSERT_EQ(got.cum_positive, want.cum_positive)
          << "window=" << window << " nth=" << nth;
      ASSERT_EQ(got.cum_negative, want.cum_negative)
          << "window=" << window << " nth=" << nth;
      ASSERT_EQ(got_edges, want_edges)
          << "window=" << window << " nth=" << nth;
      ++cases;
      total_crashes += crashes;
      // nth beyond the probe count of a full run: the sweep is complete
      // for this window.
      if (crashes == 0) break;
      ASSERT_LT(nth, 300U) << "sweep did not terminate, window=" << window;
    }
  }
  // The matrix must actually have killed the committer somewhere at every
  // window, or it tested nothing.
  EXPECT_GT(cases, 3 * static_cast<int>(kBatches));
  EXPECT_GT(total_crashes, 0);
}

TEST(Durability, RecoverOnStartOffDiscardsStaleState) {
  StreamFixture fx(28);
  const QueryGraph query = make_triangle();
  const std::string dir = fresh_dir("fresh");
  {
    Pipeline p(fx.stream.initial, query, durable_options(dir));
    for (std::size_t k = 0; k < 4; ++k) p.process_batch(fx.stream.batches[k]);
  }
  PipelineOptions opt = durable_options(dir);
  opt.durability.recover_on_start = false;
  {
    Pipeline p(fx.stream.initial, query, opt);
    EXPECT_EQ(p.cumulative().batches_committed, 0U);
    p.process_batch(fx.stream.batches[0]);
  }
  // A later recovering start must see only the fresh run's history.
  Pipeline p(fx.stream.initial, query, durable_options(dir));
  EXPECT_EQ(p.cumulative().batches_committed, 1U);
  expect_counts(p.cumulative(), baseline_counters(fx, query, 1));
}

}  // namespace
}  // namespace gcsm
