#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"

namespace gcsm {
namespace {

struct StreamFixture {
  StreamFixture(int seed, VertexId n = 400, std::size_t batch = 64,
                std::size_t pool = 256) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

PipelineOptions small_options(EngineKind kind) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 16 << 20;
  opt.estimator.num_walks = 4096;
  opt.sim.device_memory_bytes = 64ull << 20;
  return opt;
}

class PipelineKinds : public ::testing::TestWithParam<EngineKind> {};

TEST_P(PipelineKinds, SignedCountsMatchReference) {
  StreamFixture f(31);
  const QueryGraph q = make_pattern(1);
  Pipeline pipe(f.stream.initial, q, small_options(GetParam()));

  std::int64_t expected = static_cast<std::int64_t>(
      reference_count_embeddings(f.stream.initial, q));
  for (const EdgeBatch& batch : f.stream.batches) {
    const BatchReport report = pipe.process_batch(batch);
    expected += report.stats.signed_embeddings;
  }
  const std::int64_t actual = static_cast<std::int64_t>(
      reference_count_embeddings(pipe.graph().to_csr(), q));
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PipelineKinds,
    ::testing::Values(EngineKind::kGcsm, EngineKind::kZeroCopy,
                      EngineKind::kUnifiedMemory, EngineKind::kNaiveDegree,
                      EngineKind::kVsgm, EngineKind::kCpu),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return engine_kind_name(info.param);
    });

TEST(Pipeline, AllEnginesAgreeOnEveryBatch) {
  StreamFixture f(57, 300, 48, 192);
  const QueryGraph q = make_pattern(3);

  std::vector<std::unique_ptr<Pipeline>> pipes;
  for (const EngineKind kind :
       {EngineKind::kGcsm, EngineKind::kZeroCopy, EngineKind::kUnifiedMemory,
        EngineKind::kNaiveDegree, EngineKind::kVsgm, EngineKind::kCpu}) {
    pipes.push_back(
        std::make_unique<Pipeline>(f.stream.initial, q, small_options(kind)));
  }
  for (const EdgeBatch& batch : f.stream.batches) {
    std::int64_t first = 0;
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      const BatchReport r = pipes[i]->process_batch(batch);
      if (i == 0) {
        first = r.stats.signed_embeddings;
      } else {
        EXPECT_EQ(r.stats.signed_embeddings, first)
            << engine_kind_name(pipes[i]->options().kind);
      }
    }
  }
}

TEST(Pipeline, GcsmPopulatesCacheAndHits) {
  StreamFixture f(71, 500, 128, 128);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kGcsm));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_GT(r.walks, 0u);
  EXPECT_GT(r.cached_vertices, 0u);
  EXPECT_GT(r.cache_bytes, 0u);
  EXPECT_GT(r.traffic.cache_hits, 0u);
  EXPECT_GT(r.traffic.dma_calls, 0u);  // the DCSR blob transfer
  EXPECT_GT(r.wall_estimate_ms, 0.0);
}

TEST(Pipeline, ZeroCopyNeverTouchesDeviceMemory) {
  StreamFixture f(72);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kZeroCopy));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(r.traffic.device_bytes, 0u);
  EXPECT_EQ(r.traffic.dma_calls, 0u);
  EXPECT_GT(r.traffic.zero_copy_lines, 0u);
  EXPECT_EQ(r.cached_vertices, 0u);
}

TEST(Pipeline, CpuChargesOnlyHostTraffic) {
  StreamFixture f(73);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kCpu));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(r.traffic.zero_copy_lines, 0u);
  EXPECT_EQ(r.traffic.um_faults, 0u);
  EXPECT_EQ(r.traffic.device_bytes, 0u);
  EXPECT_GT(r.traffic.host_bytes, 0u);
}

TEST(Pipeline, UnifiedMemoryFaultsPages) {
  StreamFixture f(74);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kUnifiedMemory));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_GT(r.traffic.um_faults, 0u);
  EXPECT_EQ(r.traffic.zero_copy_lines, 0u);
}

TEST(Pipeline, GcsmReducesCpuTrafficVsZeroCopy) {
  // The headline mechanism: on a skewed graph, GCSM's cache must cut the
  // bytes fetched from the CPU relative to pure zero-copy.
  StreamFixture f(75, 1500, 256, 256);
  const QueryGraph q = make_pattern(1);

  Pipeline zp(f.stream.initial, q, small_options(EngineKind::kZeroCopy));
  Pipeline gcsm(f.stream.initial, q, small_options(EngineKind::kGcsm));
  std::uint64_t zp_bytes = 0;
  std::uint64_t gcsm_bytes = 0;
  const gpusim::SimParams params;
  const BatchReport rz = zp.process_batch(f.stream.batches[0]);
  const BatchReport rg = gcsm.process_batch(f.stream.batches[0]);
  zp_bytes = rz.traffic.zero_copy_lines * params.zero_copy_line_bytes;
  gcsm_bytes = rg.traffic.zero_copy_lines * params.zero_copy_line_bytes;
  EXPECT_LT(gcsm_bytes, zp_bytes);
  EXPECT_GT(rg.cache_hit_rate(), 0.5);
}

TEST(Pipeline, VsgmNeverMissesCache) {
  StreamFixture f(76, 300, 32, 64);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kVsgm));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(r.traffic.cache_misses, 0u);
  EXPECT_EQ(r.traffic.zero_copy_lines, 0u);
  EXPECT_GT(r.traffic.dma_bytes, 0u);
}

TEST(Pipeline, VsgmThrowsWhenKhopExceedsBudget) {
  StreamFixture f(77, 800, 128, 128);
  PipelineOptions opt = small_options(EngineKind::kVsgm);
  opt.cache_budget_bytes = 256;  // absurdly small
  Pipeline pipe(f.stream.initial, make_pattern(1), opt);
  EXPECT_THROW(pipe.process_batch(f.stream.batches[0]),
               gpusim::DeviceOomError);
}

TEST(Pipeline, ReportsPhaseTimes) {
  StreamFixture f(78);
  Pipeline pipe(f.stream.initial, make_pattern(1),
                small_options(EngineKind::kGcsm));
  const BatchReport r = pipe.process_batch(f.stream.batches[0]);
  EXPECT_GE(r.wall_update_ms, 0.0);
  EXPECT_GT(r.wall_match_ms, 0.0);
  EXPECT_GE(r.wall_reorg_ms, 0.0);
  EXPECT_GT(r.wall_total_ms(), 0.0);
  EXPECT_GT(r.sim_total_s(), 0.0);
  EXPECT_GT(r.sim_match_s, 0.0);
}

TEST(Pipeline, CountCurrentEmbeddingsMatchesReference) {
  StreamFixture f(79, 150, 32, 64);
  const QueryGraph q = make_triangle();
  Pipeline pipe(f.stream.initial, q, small_options(EngineKind::kCpu));
  EXPECT_EQ(pipe.count_current_embeddings(),
            reference_count_embeddings(f.stream.initial, q));
  pipe.process_batch(f.stream.batches[0]);
  EXPECT_EQ(pipe.count_current_embeddings(),
            reference_count_embeddings(pipe.graph().to_csr(), q));
}

TEST(Pipeline, EngineKindNamesAreStable) {
  EXPECT_STREQ(engine_kind_name(EngineKind::kGcsm), "GCSM");
  EXPECT_STREQ(engine_kind_name(EngineKind::kZeroCopy), "ZP");
  EXPECT_STREQ(engine_kind_name(EngineKind::kUnifiedMemory), "UM");
  EXPECT_STREQ(engine_kind_name(EngineKind::kNaiveDegree), "Naive");
  EXPECT_STREQ(engine_kind_name(EngineKind::kVsgm), "VSGM");
  EXPECT_STREQ(engine_kind_name(EngineKind::kCpu), "CPU");
}

}  // namespace
}  // namespace gcsm
