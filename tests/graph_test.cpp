#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <set>
#include <vector>

#include "core/list_ref.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/update_stream.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"

namespace gcsm {
namespace {

CsrGraph make_small() {
  // Triangle 0-1-2 plus pendant 3 attached to 1.
  return CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}},
                              {0, 1, 0, 1});
}

std::vector<VertexId> live_neighbors(const DynamicGraph& g, VertexId v,
                                     ViewMode mode) {
  std::vector<VertexId> out;
  materialize_view(g.view(v, mode), out);
  return out;
}

// ----------------------------------------------------------- CsrGraph -----

TEST(CsrGraph, BasicProperties) {
  const CsrGraph g = make_small();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.label(1), 1);
}

TEST(CsrGraph, AdjacencySorted) {
  const CsrGraph g = make_small();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
}

TEST(CsrGraph, DropsSelfLoopsAndDuplicates) {
  const CsrGraph g =
      CsrGraph::from_edges(3, {{0, 1}, {1, 0}, {0, 0}, {1, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(CsrGraph, RejectsOutOfRangeEdge) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 5}}), Error);
}

TEST(CsrGraph, RejectsBadLabelSize) {
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 1}}, {0, 1}),
               Error);
}

TEST(CsrGraph, EdgeListRoundTrip) {
  const CsrGraph g = make_small();
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), g.num_edges());
  const CsrGraph g2 = CsrGraph::from_edges(g.num_vertices(), edges,
                                           std::vector<Label>(g.labels()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = g2.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 0.0);
}

// ------------------------------------------------------- DynamicGraph -----

TEST(DynamicGraph, InitialStateMatchesCsr) {
  const CsrGraph g0 = make_small();
  const DynamicGraph g(g0);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_live_edges(), 4u);
  EXPECT_EQ(g.max_degree_bound(), 3u);
  for (VertexId v = 0; v < 4; ++v) {
    const auto nb = g0.neighbors(v);
    EXPECT_EQ(live_neighbors(g, v, ViewMode::kNew),
              std::vector<VertexId>(nb.begin(), nb.end()));
    EXPECT_EQ(live_neighbors(g, v, ViewMode::kOld),
              std::vector<VertexId>(nb.begin(), nb.end()));
  }
}

TEST(DynamicGraph, InsertionVisibleOnlyInNewView) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  g.apply_batch(batch);

  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kOld),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kNew),
            (std::vector<VertexId>{1, 2, 3}));
  EXPECT_TRUE(g.has_live_edge(0, 3));
  EXPECT_TRUE(g.has_live_edge(3, 0));
  EXPECT_EQ(g.num_live_edges(), 5u);
}

TEST(DynamicGraph, DeletionVisibleOnlyInNewView) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 1, -1});
  g.apply_batch(batch);

  // OLD view still contains the deleted edge (it existed pre-batch).
  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kOld),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kNew),
            (std::vector<VertexId>{2}));
  EXPECT_FALSE(g.has_live_edge(0, 1));
  EXPECT_EQ(g.num_live_edges(), 3u);
}

TEST(DynamicGraph, DeleteVertexZeroEdge) {
  // Vertex 0 tombstones must survive the ~0 == -1 encoding.
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({1, 0, -1});
  g.apply_batch(batch);
  EXPECT_FALSE(g.has_live_edge(1, 0));
  EXPECT_EQ(live_neighbors(g, 1, ViewMode::kNew),
            (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(live_neighbors(g, 1, ViewMode::kOld),
            (std::vector<VertexId>{0, 2, 3}));
}

TEST(DynamicGraph, MixedBatchAndReorganize) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  batch.updates.push_back({2, 3, +1});
  batch.updates.push_back({0, 2, -1});
  g.apply_batch(batch);
  EXPECT_TRUE(g.has_pending_batch());

  const auto stats = g.reorganize();
  EXPECT_FALSE(g.has_pending_batch());
  EXPECT_GE(stats.lists, 3u);
  EXPECT_GT(stats.entries, 0u);

  // After reorganization, OLD == NEW and lists are sorted and compact.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto old_view = live_neighbors(g, v, ViewMode::kOld);
    const auto new_view = live_neighbors(g, v, ViewMode::kNew);
    EXPECT_EQ(old_view, new_view);
    EXPECT_TRUE(std::is_sorted(new_view.begin(), new_view.end()));
  }
  EXPECT_EQ(live_neighbors(g, 3, ViewMode::kNew),
            (std::vector<VertexId>{0, 1, 2}));
  EXPECT_FALSE(g.has_live_edge(0, 2));
}

TEST(DynamicGraph, NewVertexInsertion) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.new_vertex_labels.emplace_back(4, 7);
  batch.updates.push_back({3, 4, +1});
  g.apply_batch(batch);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.label(4), 7);
  EXPECT_TRUE(g.has_live_edge(3, 4));
  EXPECT_EQ(live_neighbors(g, 4, ViewMode::kOld), std::vector<VertexId>{});
  EXPECT_EQ(live_neighbors(g, 4, ViewMode::kNew),
            std::vector<VertexId>{3});
}

TEST(DynamicGraph, AppendedSegmentIsSorted) {
  DynamicGraph g(CsrGraph::from_edges(6, {{0, 1}}));
  EdgeBatch batch;
  batch.updates.push_back({0, 5, +1});
  batch.updates.push_back({0, 3, +1});
  batch.updates.push_back({0, 2, +1});
  g.apply_batch(batch);
  const NeighborView view = g.view(0, ViewMode::kNew);
  ASSERT_EQ(view.appended.size, 3u);
  EXPECT_TRUE(std::is_sorted(view.appended.data,
                             view.appended.data + view.appended.size));
  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kNew),
            (std::vector<VertexId>{1, 2, 3, 5}));
}

TEST(DynamicGraph, RejectsDeletingMissingEdge) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 3, -1});  // not an edge
  EXPECT_THROW(g.apply_batch(batch), Error);
}

TEST(DynamicGraph, RejectsSecondBatchBeforeReorganize) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  g.apply_batch(batch);
  EXPECT_THROW(g.apply_batch(batch), std::logic_error);
}

TEST(DynamicGraph, CapacityDoublingSurvivesManyInsertions) {
  DynamicGraph g(CsrGraph::from_edges(200, {{0, 1}}));
  for (int round = 0; round < 8; ++round) {
    EdgeBatch batch;
    for (int i = 0; i < 20; ++i) {
      const VertexId v = static_cast<VertexId>(2 + round * 20 + i);
      batch.updates.push_back({0, v, +1});
    }
    g.apply_batch(batch);
    g.reorganize();
  }
  EXPECT_EQ(g.live_degree(0), 161u);
  const auto nb = live_neighbors(g, 0, ViewMode::kNew);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 161u);
  EXPECT_EQ(g.max_degree_bound(), 161u);
}

TEST(DynamicGraph, DeleteThenReinsertAcrossBatches) {
  DynamicGraph g(make_small());
  EdgeBatch del;
  del.updates.push_back({0, 1, -1});
  g.apply_batch(del);
  g.reorganize();
  EXPECT_FALSE(g.has_live_edge(0, 1));

  EdgeBatch ins;
  ins.updates.push_back({0, 1, +1});
  g.apply_batch(ins);
  EXPECT_TRUE(g.has_live_edge(0, 1));
  g.reorganize();
  EXPECT_EQ(live_neighbors(g, 0, ViewMode::kNew),
            (std::vector<VertexId>{1, 2}));
}

TEST(DynamicGraph, ToCsrMatchesLiveState) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  batch.updates.push_back({1, 2, -1});
  g.apply_batch(batch);
  const CsrGraph snap = g.to_csr();
  EXPECT_EQ(snap.num_edges(), 4u);
  EXPECT_TRUE(snap.has_edge(0, 3));
  EXPECT_FALSE(snap.has_edge(1, 2));
  EXPECT_EQ(snap.label(1), 1);
}

TEST(DynamicGraph, ViewBytesAccounting) {
  DynamicGraph g(make_small());
  EXPECT_EQ(g.list_bytes(1), 3 * sizeof(VertexId));
  const NeighborView v = g.view(1, ViewMode::kNew);
  EXPECT_EQ(v.bytes(), 3 * sizeof(VertexId));
}

// ----------------------------------------------------- view utilities -----

TEST(NeighborView, ContainsRespectsTombstones) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 1, -1});
  batch.updates.push_back({0, 3, +1});
  g.apply_batch(batch);

  const NeighborView old_view = g.view(0, ViewMode::kOld);
  EXPECT_TRUE(view_contains(old_view, 1));
  EXPECT_FALSE(view_contains(old_view, 3));

  const NeighborView new_view = g.view(0, ViewMode::kNew);
  EXPECT_FALSE(view_contains(new_view, 1));
  EXPECT_TRUE(view_contains(new_view, 3));
  EXPECT_TRUE(view_contains(new_view, 2));
  EXPECT_FALSE(view_contains(new_view, 99));
}

TEST(NeighborView, LiveSizeCountsCorrectly) {
  DynamicGraph g(make_small());
  EdgeBatch batch;
  batch.updates.push_back({0, 1, -1});
  batch.updates.push_back({0, 3, +1});
  g.apply_batch(batch);
  EXPECT_EQ(view_live_size(g.view(0, ViewMode::kOld)), 2u);
  EXPECT_EQ(view_live_size(g.view(0, ViewMode::kNew)), 2u);
}

// --------------------------------------------------------- generators -----

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(3);
  const CsrGraph g = generate_barabasi_albert(2000, 4, 5, rng);
  EXPECT_EQ(g.num_vertices(), 2000);
  EXPECT_GT(g.num_edges(), 7000u);
  // Preferential attachment: max degree far above the mean.
  EXPECT_GT(g.max_degree(), 4 * static_cast<std::uint32_t>(g.avg_degree()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(g.label(v), 5);
    ASSERT_GE(g.label(v), 0);
  }
}

TEST(Generators, RmatSkewed) {
  Rng rng(4);
  const CsrGraph g = generate_rmat(12, 8, 0.57, 0.19, 0.19, 4, rng);
  EXPECT_EQ(g.num_vertices(), 4096);
  EXPECT_GT(g.num_edges(), 10000u);
  EXPECT_GT(g.max_degree(), 3 * static_cast<std::uint32_t>(g.avg_degree()));
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  Rng rng(5);
  const CsrGraph g = generate_erdos_renyi(500, 2000, 3, rng);
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_EQ(g.num_edges(), 2000u);
}

TEST(Generators, ErdosRenyiClampsToMaxPossible) {
  Rng rng(6);
  const CsrGraph g = generate_erdos_renyi(5, 100, 1, rng);
  EXPECT_EQ(g.num_edges(), 10u);  // C(5,2)
}

TEST(Generators, RoadNetworkLowDegree) {
  Rng rng(7);
  const CsrGraph g = generate_road_network(50, 60, 0.92, 0.06, 2, rng);
  EXPECT_EQ(g.num_vertices(), 3000);
  EXPECT_LE(g.max_degree(), 8u);
  EXPECT_GT(g.num_edges(), 3000u);
}

TEST(Generators, DeterministicForSeed) {
  Rng r1(11);
  Rng r2(11);
  const CsrGraph a = generate_barabasi_albert(500, 3, 2, r1);
  const CsrGraph b = generate_barabasi_albert(500, 3, 2, r2);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edge_list().size(), b.edge_list().size());
  const auto ea = a.edge_list();
  const auto eb = b.edge_list();
  EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()));
}

TEST(Generators, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(generate_barabasi_albert(1, 2, 1, rng), Error);
  EXPECT_THROW(generate_rmat(0, 8, 0.5, 0.2, 0.2, 1, rng),
               Error);
  EXPECT_THROW(generate_rmat(10, 8, 0.5, 0.3, 0.3, 1, rng),
               Error);
  EXPECT_THROW(generate_road_network(1, 5, 0.9, 0.1, 1, rng),
               Error);
}

// ------------------------------------------------------ update stream -----

TEST(UpdateStream, PoolSplitsIntoBatches) {
  Rng rng(8);
  const CsrGraph g = generate_erdos_renyi(300, 3000, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 1000;
  opt.batch_size = 256;
  opt.seed = 3;
  const UpdateStream stream = make_update_stream(g, opt);
  EXPECT_EQ(stream.num_batches(), 4u);  // 256+256+256+232
  std::size_t total = 0;
  for (const auto& b : stream.batches) total += b.size();
  EXPECT_EQ(total, 1000u);
}

TEST(UpdateStream, InsertionsAbsentFromInitialDeletionsPresent) {
  Rng rng(9);
  const CsrGraph g = generate_erdos_renyi(200, 1500, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 400;
  opt.batch_size = 100;
  opt.seed = 5;
  const UpdateStream stream = make_update_stream(g, opt);
  for (const auto& batch : stream.batches) {
    for (const EdgeUpdate& e : batch.updates) {
      if (e.sign > 0) {
        EXPECT_FALSE(stream.initial.has_edge(e.u, e.v));
      } else {
        EXPECT_TRUE(stream.initial.has_edge(e.u, e.v));
      }
    }
  }
}

TEST(UpdateStream, WholeStreamIsConsistentlyApplicable) {
  Rng rng(10);
  const CsrGraph g = generate_barabasi_albert(400, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_fraction = 0.2;
  opt.batch_size = 64;
  opt.seed = 6;
  const UpdateStream stream = make_update_stream(g, opt);
  DynamicGraph dyn(stream.initial);
  for (const auto& batch : stream.batches) {
    ASSERT_NO_THROW(dyn.apply_batch(batch));
    dyn.reorganize();
  }
  // All insertion-marked edges ended up live; all deletions gone.
  for (const auto& batch : stream.batches) {
    for (const EdgeUpdate& e : batch.updates) {
      EXPECT_EQ(dyn.has_live_edge(e.u, e.v), e.sign > 0);
    }
  }
}

TEST(UpdateStream, InsertDeleteRatioNearHalf) {
  Rng rng(12);
  const CsrGraph g = generate_erdos_renyi(500, 6000, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 4000;
  opt.batch_size = 4000;
  opt.seed = 13;
  const UpdateStream stream = make_update_stream(g, opt);
  std::size_t inserts = 0;
  for (const EdgeUpdate& e : stream.batches[0].updates) {
    if (e.sign > 0) ++inserts;
  }
  EXPECT_NEAR(static_cast<double>(inserts), 2000.0, 150.0);
}

TEST(UpdateStream, EmptyPoolThrows) {
  Rng rng(1);
  const CsrGraph g = generate_erdos_renyi(50, 100, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 0;
  opt.pool_edge_fraction = 0.0;
  EXPECT_THROW(make_update_stream(g, opt), Error);
}

// ------------------------------------------------------------- IO ---------

class GraphIoTest : public ::testing::Test {
 protected:
  // The path embeds the test name and pid: ctest runs each test as its own
  // process, possibly in parallel, so a shared fixed name would let one
  // test's TearDown unlink the file while another is between save and load.
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::string(::testing::TempDir()) + "gcsm_io_" + info->name() +
            "_" + std::to_string(::getpid()) + ".bin";
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(GraphIoTest, BinaryRoundTrip) {
  Rng rng(14);
  const CsrGraph g = generate_barabasi_albert(300, 3, 4, rng);
  save_binary(g, path_);
  const CsrGraph h = load_binary(path_);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST_F(GraphIoTest, TextRoundTrip) {
  const CsrGraph g = make_small();
  save_edge_list_text(g, path_);
  const CsrGraph h = load_edge_list_text(path_);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.label(1), 1);
  EXPECT_TRUE(h.has_edge(1, 3));
}

TEST_F(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(load_binary("/nonexistent/path/graph.bin"),
               std::runtime_error);
  EXPECT_THROW(load_edge_list_text("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace gcsm
