// Multi-query serving engine suite (docs/MULTI_QUERY.md).
//
// The contract under test: a MultiQueryEngine serving N registered patterns
// from ONE graph / ONE device / ONE cache produces per-query match counts
// BIT-IDENTICAL to N independent single-query Pipelines fed the same stream
// — with and without injected faults, across register/unregister mid-stream,
// and across a kill-and-recover restart with durability on. The sharing is
// real: one frequency estimation and one cache build per batch regardless
// of query count, asserted via the `cache.builds` counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "server/multi_query_engine.hpp"
#include "server/query_registry.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm {
namespace {

using server::MultiQueryEngine;
using server::MultiQueryOptions;
using server::QueryId;
using server::QueryRegistry;
using server::RegisteredQuery;
using server::ServerBatchReport;

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 400, std::size_t batch = 64,
                         std::size_t pool = 512) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

// The three standing patterns most of the suite serves together.
std::vector<QueryGraph> three_patterns() {
  std::vector<QueryGraph> qs;
  qs.push_back(make_triangle());
  qs.push_back(make_fig1_diamond());
  qs.push_back(make_path(4));
  return qs;
}

MultiQueryOptions multi_options(EngineKind kind) {
  MultiQueryOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;  // no sleeping in tests
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

PipelineOptions single_options(EngineKind kind) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 512;
  opt.recovery.backoff_initial_ms = 0.0;
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

// Unique durable directory per call (same rationale as durability_test).
std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = std::string(::testing::TempDir()) + "gcsm_mq_" +
                          tag + "_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);
  return dir;
}

void expect_counts(const durable::DurableCounters& got,
                   const durable::DurableCounters& want) {
  EXPECT_EQ(got.batches_committed, want.batches_committed);
  EXPECT_EQ(got.cum_signed, want.cum_signed);
  EXPECT_EQ(got.cum_positive, want.cum_positive);
  EXPECT_EQ(got.cum_negative, want.cum_negative);
}

// Asserts one engine batch against the N reference pipelines, query by
// query, and returns the engine report.
ServerBatchReport expect_batch_bit_identical(
    MultiQueryEngine& engine, std::vector<std::unique_ptr<Pipeline>>& refs,
    const EdgeBatch& batch, std::size_t k) {
  const ServerBatchReport got = engine.process_batch(batch);
  EXPECT_EQ(got.queries.size(), refs.size());
  std::int64_t sum_signed = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const BatchReport want = refs[i]->process_batch(batch);
    EXPECT_EQ(got.queries[i].report.stats.signed_embeddings,
              want.stats.signed_embeddings)
        << "query " << i << " diverged at batch " << k;
    EXPECT_EQ(got.queries[i].report.stats.positive, want.stats.positive)
        << "query " << i << " batch " << k;
    EXPECT_EQ(got.queries[i].report.stats.negative, want.stats.negative)
        << "query " << i << " batch " << k;
    sum_signed += got.queries[i].report.stats.signed_embeddings;
  }
  EXPECT_EQ(got.shared.stats.signed_embeddings, sum_signed)
      << "aggregate is not the sum of per-query counts at batch " << k;
  return got;
}

// ---------------------------------------------------------------------------
// Bit-identity against independent pipelines.

TEST(MultiQuery, BitIdenticalToThreeIndependentPipelines) {
  const StreamFixture f(11);
  const std::vector<QueryGraph> patterns = three_patterns();

  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kGcsm));
  std::vector<std::unique_ptr<Pipeline>> refs;
  for (const QueryGraph& q : patterns) {
    engine.register_query(q);
    refs.push_back(std::make_unique<Pipeline>(
        f.stream.initial, q, single_options(EngineKind::kGcsm)));
  }

  for (std::size_t k = 0; k < f.stream.num_batches(); ++k) {
    expect_batch_bit_identical(engine, refs, f.stream.batches[k], k);
  }
  engine.graph().validate();
  EXPECT_EQ(engine.graph().to_csr().edge_list(),
            refs[0]->graph().to_csr().edge_list());
}

TEST(MultiQuery, BitIdenticalOnEveryEngineKind) {
  const StreamFixture f(12, 250, 64, 256);
  const std::vector<QueryGraph> patterns = {make_triangle(), make_path(4)};
  for (const EngineKind kind :
       {EngineKind::kGcsm, EngineKind::kZeroCopy, EngineKind::kUnifiedMemory,
        EngineKind::kNaiveDegree, EngineKind::kVsgm, EngineKind::kCpu}) {
    MultiQueryEngine engine(f.stream.initial, multi_options(kind));
    std::vector<std::unique_ptr<Pipeline>> refs;
    for (const QueryGraph& q : patterns) {
      engine.register_query(q);
      refs.push_back(std::make_unique<Pipeline>(f.stream.initial, q,
                                                single_options(kind)));
    }
    for (std::size_t k = 0; k < 3; ++k) {
      expect_batch_bit_identical(engine, refs, f.stream.batches[k], k);
    }
  }
}

// Different weights change cache arbitration (which vertices get cached),
// never counts: a cache miss falls back to zero-copy.
TEST(MultiQuery, WeightsAffectArbitrationNotCounts) {
  const StreamFixture f(13, 250, 64, 256);
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);

  MultiQueryEngine heavy(f.stream.initial, opt);
  heavy.register_query(make_triangle(), {}, 100.0);
  heavy.register_query(make_path(4), {}, 0.01);
  MultiQueryEngine even(f.stream.initial, opt);
  even.register_query(make_triangle(), {}, 1.0);
  even.register_query(make_path(4), {}, 1.0);

  for (std::size_t k = 0; k < 4; ++k) {
    const ServerBatchReport a = heavy.process_batch(f.stream.batches[k]);
    const ServerBatchReport b = even.process_batch(f.stream.batches[k]);
    for (std::size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].report.stats.signed_embeddings,
                b.queries[i].report.stats.signed_embeddings)
          << "weights changed counts at batch " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// One shared estimation + one cache build per batch, regardless of N.

TEST(MultiQuery, OneCacheBuildPerBatchRegardlessOfQueryCount) {
  const StreamFixture f(14, 250, 64, 256);
  metrics::Counter& builds =
      metrics::Registry::global().counter("cache.builds");

  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kGcsm));
  for (const QueryGraph& q : three_patterns()) engine.register_query(q);

  for (std::size_t k = 0; k < 4; ++k) {
    const std::uint64_t before = builds.value();
    const ServerBatchReport r = engine.process_batch(f.stream.batches[k]);
    EXPECT_EQ(builds.value() - before, 1u)
        << "expected exactly one shared cache build at batch " << k;
    // All three per-query estimates ran and fed the shared build.
    EXPECT_GT(r.shared.walks, 0u);
    EXPECT_GT(r.shared.cached_vertices, 0u);
  }
}

TEST(MultiQuery, PerQueryMetricScoping) {
  const StreamFixture f(15, 250, 64, 256);
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId a = engine.register_query(make_triangle());
  const QueryId b = engine.register_query(make_path(4));

  const ServerBatchReport r = engine.process_batch(f.stream.batches[0]);
  const metrics::Snapshot& snap = r.shared.metrics;
  // Per-query series live under "q<id>."; the shared phases keep the
  // process-wide names (the empty default prefix).
  EXPECT_GE(snap.counter_or("q" + std::to_string(a) + ".pipeline.batches"),
            1u);
  EXPECT_GE(snap.counter_or("q" + std::to_string(b) + ".pipeline.batches"),
            1u);
  EXPECT_GE(snap.counter_or("q" + std::to_string(a) + ".estimator.walks"),
            1u);
  EXPECT_GE(snap.counter_or("pipeline.batches"), 1u);
}

// ---------------------------------------------------------------------------
// Registry lifecycle.

TEST(MultiQuery, RegisterAndUnregisterMidStream) {
  const StreamFixture f(16);
  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kGcsm));
  const QueryId tri = engine.register_query(make_triangle());

  std::vector<std::unique_ptr<Pipeline>> refs;
  refs.push_back(std::make_unique<Pipeline>(
      f.stream.initial, make_triangle(), single_options(EngineKind::kGcsm)));

  for (std::size_t k = 0; k < 3; ++k) {
    expect_batch_bit_identical(engine, refs, f.stream.batches[k], k);
  }

  // Register a second pattern mid-stream: its reference pipeline starts
  // from the CURRENT graph state, exactly like a late subscriber would.
  const QueryId dia = engine.register_query(make_fig1_diamond());
  EXPECT_NE(dia, tri);
  refs.push_back(std::make_unique<Pipeline>(engine.graph().to_csr(),
                                            make_fig1_diamond(),
                                            single_options(EngineKind::kGcsm)));
  for (std::size_t k = 3; k < 6; ++k) {
    expect_batch_bit_identical(engine, refs, f.stream.batches[k], k);
  }

  // Unregister the first: only the diamond keeps matching.
  EXPECT_TRUE(engine.unregister_query(tri));
  EXPECT_FALSE(engine.unregister_query(tri));  // ids are never reused
  refs.erase(refs.begin());
  for (std::size_t k = 6; k < 8; ++k) {
    const ServerBatchReport got =
        expect_batch_bit_identical(engine, refs, f.stream.batches[k], k);
    ASSERT_EQ(got.queries.size(), 1u);
    EXPECT_EQ(got.queries[0].id, dia);
  }
}

TEST(MultiQuery, EmptyRegistryRejectsBatches) {
  const StreamFixture f(17, 200, 32, 64);
  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kCpu));
  try {
    engine.process_batch(f.stream.batches[0]);
    FAIL() << "expected Error(kConfig)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
  const QueryId id = engine.register_query(make_triangle());
  engine.process_batch(f.stream.batches[0]);
  EXPECT_TRUE(engine.unregister_query(id));
  EXPECT_THROW(engine.process_batch(f.stream.batches[1]), Error);
}

TEST(MultiQuery, SinksFireOnlyForTheirQuery) {
  const StreamFixture f(18, 250, 64, 256);
  MultiQueryEngine engine(f.stream.initial, multi_options(EngineKind::kGcsm));
  std::int64_t tri_signed = 0;
  std::int64_t path_signed = 0;
  const QueryId tri = engine.register_query(
      make_triangle(), [&](const MatchPlan&, std::span<const VertexId>,
                           int sign) { tri_signed += sign; });
  engine.register_query(make_path(4),
                        [&](const MatchPlan&, std::span<const VertexId>,
                            int sign) { path_signed += sign; });

  std::int64_t want_tri = 0;
  std::int64_t want_path = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const ServerBatchReport r = engine.process_batch(f.stream.batches[k]);
    want_tri += r.queries[0].report.stats.signed_embeddings;
    want_path += r.queries[1].report.stats.signed_embeddings;
  }
  EXPECT_EQ(tri_signed, want_tri);
  EXPECT_EQ(path_signed, want_path);
  // Signed deltas accumulated through the sink track the live count:
  // initial + Σ signed == current full count.
  const std::int64_t initial = static_cast<std::int64_t>(
      reference_count_embeddings(f.stream.initial, make_triangle()));
  EXPECT_EQ(static_cast<std::int64_t>(engine.count_current_embeddings(tri)),
            initial + tri_signed);
}

// ---------------------------------------------------------------------------
// Fault matrix: every site armed at p = 0.05, counts still bit-identical.

TEST(MultiQuery, FaultMatrixBitIdenticalAcrossQueries) {
  Rng rng(2026);
  const CsrGraph base = generate_barabasi_albert(500, 4, 3, rng);
  UpdateStreamOptions sopt;
  sopt.pool_edge_count = 960;
  sopt.batch_size = 16;
  sopt.seed = 5;
  const UpdateStream stream = make_update_stream(base, sopt);
  ASSERT_EQ(stream.num_batches(), 60u);

  const std::vector<QueryGraph> patterns = three_patterns();

  FaultInjector inj(0xFA05);
  inj.arm_all(0.05);
  MultiQueryOptions faulty_opt = multi_options(EngineKind::kGcsm);
  faulty_opt.fault_injector = &inj;
  faulty_opt.recovery.max_attempts = 2;
  faulty_opt.recovery.heal_after_clean_batches = 4;

  MultiQueryEngine faulty(stream.initial, faulty_opt);
  std::vector<std::unique_ptr<Pipeline>> clean;
  for (const QueryGraph& q : patterns) {
    faulty.register_query(q);
    clean.push_back(std::make_unique<Pipeline>(
        stream.initial, q, single_options(EngineKind::kGcsm)));
  }

  std::uint64_t total_retries = 0;
  for (std::size_t k = 0; k < stream.num_batches(); ++k) {
    const ServerBatchReport got =
        expect_batch_bit_identical(faulty, clean, stream.batches[k], k);
    total_retries += got.shared.retries;
    for (const server::QueryReport& q : got.queries) {
      total_retries += q.report.retries;
    }
  }
  faulty.graph().validate();
  EXPECT_EQ(faulty.graph().to_csr().edge_list(),
            clean[0]->graph().to_csr().edge_list());
  EXPECT_GT(inj.fired_count(), 0u);
  EXPECT_GE(total_retries, 1u);
}

// ---------------------------------------------------------------------------
// Durability: the registry and the counts survive kill-and-recover.

TEST(MultiQuery, CleanRestartPreservesCountsAndRegistry) {
  const StreamFixture f(19, 300, 32, 256);
  const std::string dir = fresh_dir("restart");
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 3;

  // Uninterrupted non-durable reference over the full window.
  MultiQueryOptions ref_opt = multi_options(EngineKind::kGcsm);
  MultiQueryEngine ref(f.stream.initial, ref_opt);
  ref.register_query(make_triangle(), {}, 1.0);
  ref.register_query(make_fig1_diamond(), {}, 2.5);
  durable::DurableCounters want;
  for (std::size_t k = 0; k < 8; ++k) {
    const ServerBatchReport r = ref.process_batch(f.stream.batches[k]);
    want.batches_committed += 1;
    want.cum_signed += r.shared.stats.signed_embeddings;
    want.cum_positive += r.shared.stats.positive;
    want.cum_negative += r.shared.stats.negative;
  }

  {
    MultiQueryEngine a(f.stream.initial, opt);
    a.register_query(make_triangle(), {}, 1.0);
    a.register_query(make_fig1_diamond(), {}, 2.5);
    for (std::size_t k = 0; k < 5; ++k) a.process_batch(f.stream.batches[k]);
    // Destroyed here with no clean shutdown: the WAL + registry image are
    // the only survivors, like a kill at a batch boundary.
  }

  MultiQueryOptions ropt = opt;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine b(f.stream.initial, ropt);
  ASSERT_EQ(b.registry().size(), 2u);
  EXPECT_EQ(b.registry().entries()[0].query.name(),
            make_triangle().name());
  EXPECT_DOUBLE_EQ(b.registry().entries()[1].weight, 2.5);
  EXPECT_EQ(b.cumulative().batches_committed, 5u);
  for (std::size_t k = 5; k < 8; ++k) b.process_batch(f.stream.batches[k]);
  expect_counts(b.cumulative(), want);
  EXPECT_EQ(b.graph().to_csr().edge_list(),
            ref.graph().to_csr().edge_list());
}

TEST(MultiQuery, CrashMidBatchRecoversBitIdentical) {
  const StreamFixture f(20, 300, 32, 256);
  const std::string dir = fresh_dir("crash");
  const std::size_t kBatches = 6;

  // Fault-free reference.
  MultiQueryEngine ref(f.stream.initial, multi_options(EngineKind::kGcsm));
  ref.register_query(make_triangle());
  ref.register_query(make_path(4));
  durable::DurableCounters want;
  for (std::size_t k = 0; k < kBatches; ++k) {
    const ServerBatchReport r = ref.process_batch(f.stream.batches[k]);
    want.batches_committed += 1;
    want.cum_signed += r.shared.stats.signed_embeddings;
    want.cum_positive += r.shared.stats.positive;
    want.cum_negative += r.shared.stats.negative;
  }

  // Crash on the 3rd crash.at probe (mid-WAL-write), then restart with
  // recovery and drive the stream to completion.
  FaultInjector inj(0xC4A5);
  inj.arm(fault_site::kCrashAt, {0.0, 3, 8});
  int crashes = 0;
  durable::DurableCounters got;
  for (int lives = 0; lives < 8; ++lives) {
    MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
    opt.durability.wal_dir = dir;
    opt.durability.snapshot_interval = 2;
    opt.durability.recover_on_start = lives > 0;
    opt.fault_injector = &inj;
    try {
      MultiQueryEngine engine(f.stream.initial, opt);
      if (engine.registry().empty()) {
        engine.register_query(make_triangle());
        engine.register_query(make_path(4));
      }
      for (std::size_t k = engine.cumulative().batches_committed;
           k < kBatches; ++k) {
        engine.process_batch(f.stream.batches[k]);
      }
      got = engine.cumulative();
      break;
    } catch (const CrashError&) {
      ++crashes;  // the engine died mid-write; loop restarts + recovers
    }
  }
  EXPECT_GE(crashes, 1);
  expect_counts(got, want);
}

// A registry change after committed batches forces a snapshot + WAL
// compaction, so old-registry batches can never replay into the new set.
TEST(MultiQuery, RegistryChangeAfterCommitsSurvivesRestart) {
  const StreamFixture f(21, 300, 32, 256);
  const std::string dir = fresh_dir("regchange");
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;  // only the forced snapshot fires

  durable::DurableCounters want;
  {
    MultiQueryEngine a(f.stream.initial, opt);
    a.register_query(make_triangle());
    for (std::size_t k = 0; k < 3; ++k) a.process_batch(f.stream.batches[k]);
    a.register_query(make_fig1_diamond());  // forces snapshot + compaction
    for (std::size_t k = 3; k < 5; ++k) a.process_batch(f.stream.batches[k]);
    want = a.cumulative();
  }

  MultiQueryOptions ropt = opt;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine b(f.stream.initial, ropt);
  ASSERT_EQ(b.registry().size(), 2u);
  EXPECT_TRUE(b.recovery_info().snapshot_loaded);
  // Only post-change batches replay, through the two-query registry.
  EXPECT_LE(b.recovery_info().replay.size(), 2u);
  expect_counts(b.cumulative(), want);
}

// ---------------------------------------------------------------------------
// QueryRegistry durable image.

TEST(QueryRegistryImage, EncodeDecodeRoundTrip) {
  QueryRegistry reg;
  const QueryId a = reg.add(make_triangle(), 1.0);
  const QueryId b = reg.add(with_round_robin_labels(make_fig1_diamond(), 3),
                            2.25);
  EXPECT_TRUE(reg.remove(a));  // a gap: ids are never reused
  const QueryId c = reg.add(make_path(4), 0.5);
  EXPECT_NE(b, c);

  std::string why;
  const auto decoded = QueryRegistry::decode(reg.encode(), &why);
  ASSERT_TRUE(decoded.has_value()) << why;
  ASSERT_EQ(decoded->size(), 2u);
  const RegisteredQuery& db = decoded->entries()[0];
  EXPECT_EQ(db.id, b);
  EXPECT_DOUBLE_EQ(db.weight, 2.25);
  EXPECT_EQ(db.query.name(), with_round_robin_labels(make_fig1_diamond(), 3)
                                 .name());
  EXPECT_EQ(db.query.num_vertices(),
            make_fig1_diamond().num_vertices());
  EXPECT_EQ(db.query.num_edges(), make_fig1_diamond().num_edges());
  for (std::uint32_t v = 0; v < db.query.num_vertices(); ++v) {
    EXPECT_EQ(db.query.label(v),
              with_round_robin_labels(make_fig1_diamond(), 3).label(v));
  }
  // New ids in the decoded registry continue past the high-water mark.
  QueryRegistry reborn = *decoded;
  EXPECT_GT(reborn.add(make_triangle()), c);
}

TEST(QueryRegistryImage, DamageIsDetectedNotDeserialized) {
  QueryRegistry reg;
  reg.add(make_triangle(), 1.0);
  const std::string image = reg.encode();
  std::string why;

  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(
        QueryRegistry::decode(std::string_view(image.data(), len), &why)
            .has_value())
        << "truncation to " << len << " bytes decoded";
  }
  // A flipped bit anywhere trips the CRC (or a bounds check).
  for (std::size_t pos = 0; pos < image.size(); pos += 7) {
    std::string bad = image;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_FALSE(QueryRegistry::decode(bad, &why).has_value())
        << "bit flip at " << pos << " decoded";
  }
  EXPECT_FALSE(QueryRegistry::decode("GQRXnot-a-registry", &why).has_value());
  EXPECT_FALSE(why.empty());
}

TEST(QueryRegistryImage, RejectsNonPositiveWeights) {
  QueryRegistry reg;
  EXPECT_THROW(reg.add(make_triangle(), 0.0), Error);
  EXPECT_THROW(reg.add(make_triangle(), -1.0), Error);
  EXPECT_THROW(reg.add(make_triangle(),
                       std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_TRUE(reg.empty());
}

// ---------------------------------------------------------------------------
// Registration churn at scale (docs/ROBUSTNESS.md, "Overload & admission
// control"): thousands of register/unregister cycles mid-stream must never
// reuse a QueryId, never grow the shared cache past its budget, and never
// perturb the surviving queries' counts.

TEST(MultiQuery, ThousandsOfChurnedQueriesLeaveSurvivorsBitIdentical) {
  const StreamFixture f(50, 300, 32, 512);  // 16 batches of 32
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.estimator.num_walks = 128;
  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId pat = engine.register_query(make_path(3));

  PipelineOptions sopt = single_options(EngineKind::kGcsm);
  sopt.estimator.num_walks = 128;
  Pipeline ref_tri(f.stream.initial, make_triangle(), sopt);
  Pipeline ref_pat(f.stream.initial, make_path(3), sopt);

  constexpr std::size_t kRounds = 16;
  constexpr std::size_t kPerRound = 128;  // 2048 registrations in total
  QueryId last_id = pat;
  std::vector<QueryId> transients;
  std::uint64_t churned = 0;
  for (std::size_t k = 0; k < kRounds; ++k) {
    // Last round's transients leave, this round's arrive: every batch is
    // processed with a different population of bystander queries.
    for (const QueryId id : transients) {
      EXPECT_TRUE(engine.unregister_query(id));
      EXPECT_FALSE(engine.unregister_query(id));  // ids are never reused
    }
    transients.clear();
    for (std::size_t i = 0; i < kPerRound; ++i) {
      const QueryId id = engine.register_query(
          i % 2 == 0 ? make_path(3) : make_triangle());
      EXPECT_GT(id, last_id) << "QueryId reused";
      last_id = id;
      transients.push_back(id);
      ++churned;
    }

    const ServerBatchReport got = engine.process_batch(f.stream.batches[k]);
    // The shared cache stays inside its budget no matter how many queries
    // have ever been registered.
    EXPECT_LE(got.shared.cache_bytes, opt.cache_budget_bytes);
    // Survivors first (reports are in ascending QueryId order).
    ASSERT_GE(got.queries.size(), 2u);
    ASSERT_EQ(got.queries[0].id, tri);
    ASSERT_EQ(got.queries[1].id, pat);
    const BatchReport want_tri = ref_tri.process_batch(f.stream.batches[k]);
    const BatchReport want_pat = ref_pat.process_batch(f.stream.batches[k]);
    EXPECT_EQ(got.queries[0].report.stats.signed_embeddings,
              want_tri.stats.signed_embeddings)
        << "triangle diverged at batch " << k;
    EXPECT_EQ(got.queries[0].report.stats.positive, want_tri.stats.positive);
    EXPECT_EQ(got.queries[0].report.stats.negative, want_tri.stats.negative);
    EXPECT_EQ(got.queries[1].report.stats.signed_embeddings,
              want_pat.stats.signed_embeddings)
        << "path diverged at batch " << k;
    EXPECT_EQ(got.queries[1].report.stats.positive, want_pat.stats.positive);
    EXPECT_EQ(got.queries[1].report.stats.negative, want_pat.stats.negative);
  }
  for (const QueryId id : transients) {
    EXPECT_TRUE(engine.unregister_query(id));
  }
  EXPECT_EQ(churned, kRounds * kPerRound);
  EXPECT_EQ(engine.registry().size(), 2u);
  EXPECT_EQ(static_cast<std::uint64_t>(last_id),
            static_cast<std::uint64_t>(pat) + churned);
}

TEST(MultiQuery, ChurnDuringCatchUpDebtKeepsExactlyOnce) {
  const StreamFixture f(51, 250, 32, 256);
  const std::string dir = fresh_dir("debtchurn");
  FaultInjector inj(0xC0DE);
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 2;
  opt.breaker.max_debt_batches = 64;

  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_fig1_diamond());
  FaultSpec spec;
  spec.probability = 1.0;
  spec.match_query_id = poison;
  inj.arm(fault_site::kMatchQuery, spec);

  MultiQueryOptions ref_opt = multi_options(EngineKind::kGcsm);
  MultiQueryEngine ref(f.stream.initial, ref_opt);
  const QueryId ref_tri = ref.register_query(make_triangle());
  const QueryId ref_poison = ref.register_query(make_fig1_diamond());

  // Batch 0 trips the poison query; batches 1-2 are its cooldown — and
  // ~100 transient queries REGISTER right through that debt window. A
  // registration defers the registry snapshot while exact catch-up is
  // owed (an unregistration would force compaction and drop the debtor to
  // re-baseline — covered below), so the poison query still replays its
  // debt bit-exactly at rejoin. The transients churn out after the rejoin,
  // still mid-stream.
  QueryId last_id = poison;
  std::vector<QueryId> transients;
  bool rejoined = false;
  for (std::size_t k = 0; k < 6; ++k) {
    if (k == 1 || k == 2) {
      for (std::size_t i = 0; i < 50; ++i) {
        const QueryId id = engine.register_query(make_path(3));
        EXPECT_GT(id, last_id) << "QueryId reused during debt";
        last_id = id;
        transients.push_back(id);
      }
    }
    if (k == 3) inj.disarm(fault_site::kMatchQuery);
    if (k == 4) {  // rejoin landed in batch 3's commit: churn back out
      for (const QueryId id : transients) {
        EXPECT_TRUE(engine.unregister_query(id));
        EXPECT_FALSE(engine.unregister_query(id));  // ids are never reused
      }
      transients.clear();
    }
    const ServerBatchReport out = engine.process_batch(f.stream.batches[k]);
    ref.process_batch(f.stream.batches[k]);
    for (const auto& q : out.queries) {
      if (q.id == poison && q.rejoined) rejoined = true;
    }
  }
  EXPECT_TRUE(rejoined);

  // Exactly-once for the survivors: counters match the churn-free,
  // fault-free reference bit for bit.
  EXPECT_EQ(engine.query_health(poison).counters,
            ref.query_health(ref_poison).counters);
  EXPECT_EQ(engine.query_health(tri).counters,
            ref.query_health(ref_tri).counters);
  EXPECT_EQ(engine.cumulative().batches_committed,
            ref.cumulative().batches_committed);

  // And the churned registry recovers cleanly.
  MultiQueryOptions ropt = opt;
  ropt.fault_injector = nullptr;
  ropt.durability.recover_on_start = true;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.registry().size(), 2u);
  EXPECT_EQ(recovered.query_health(poison).counters,
            engine.query_health(poison).counters);
}

// The other half of the churn-during-debt contract: an UNREGISTRATION
// while exact catch-up is owed forces the WAL prefix to compact, so the
// debtor cannot replay — the rejoin must take the documented re-baseline
// fallback, and the rebaselined query still tracks the true standing
// count from there on.
TEST(MultiQuery, UnregisterDuringDebtFallsBackToRebaseline) {
  const StreamFixture f(52, 250, 32, 256);
  const std::string dir = fresh_dir("debtrebase");
  FaultInjector inj(0xBEEF);
  MultiQueryOptions opt = multi_options(EngineKind::kGcsm);
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 2;

  MultiQueryEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_fig1_diamond());
  FaultSpec spec;
  spec.probability = 1.0;
  spec.match_query_id = poison;
  inj.arm(fault_site::kMatchQuery, spec);

  bool rejoined = false;
  bool rebaselined = false;
  for (std::size_t k = 0; k < 6; ++k) {
    if (k == 1) {  // register + unregister inside the debt window
      const QueryId t = engine.register_query(make_path(3));
      EXPECT_TRUE(engine.unregister_query(t));  // forces compaction
    }
    if (k == 3) inj.disarm(fault_site::kMatchQuery);
    const ServerBatchReport out = engine.process_batch(f.stream.batches[k]);
    for (const auto& q : out.queries) {
      if (q.id != poison) continue;
      rejoined = rejoined || q.rejoined;
      rebaselined = rebaselined || q.rebaselined;
    }
  }
  EXPECT_TRUE(rejoined);
  EXPECT_TRUE(rebaselined) << "compacted debt must re-baseline, not replay";

  // The rebaselined cumulative signed count equals the true standing
  // count: a reference engine that saw every batch agrees on the CURRENT
  // graph, even though the two took different paths to it.
  MultiQueryEngine ref(f.stream.initial, multi_options(EngineKind::kGcsm));
  ref.register_query(make_triangle());
  const QueryId ref_poison = ref.register_query(make_fig1_diamond());
  for (std::size_t k = 0; k < 6; ++k) ref.process_batch(f.stream.batches[k]);
  EXPECT_EQ(engine.count_current_embeddings(poison),
            ref.count_current_embeddings(ref_poison));
}

}  // namespace
}  // namespace gcsm
