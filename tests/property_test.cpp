// Randomized property tests over many seeds: the heavy-duty invariants that
// pin down the system end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <map>
#include <set>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/list_ref.hpp"
#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/automorphism.hpp"
#include "query/motifs.hpp"
#include "query/patterns.hpp"

namespace gcsm {
namespace {

// ---------------------------------------------------------------------
// Property: incremental signed counts telescope to the full-match delta
// across an entire stream, for random graphs, batch sizes and patterns.
// ---------------------------------------------------------------------

struct IncrementalCase {
  int seed;
  int pattern;       // 0 = triangle, 1..6 = Q1..Q6
  VertexId vertices;
  EdgeCount edges;
  std::size_t batch_size;
};

class IncrementalProperty
    : public ::testing::TestWithParam<IncrementalCase> {};

QueryGraph pattern_for(int id) {
  return id == 0 ? make_triangle() : make_pattern(id);
}

TEST_P(IncrementalProperty, TelescopesAcrossStream) {
  const IncrementalCase c = GetParam();
  Rng rng(c.seed);
  const CsrGraph base =
      generate_erdos_renyi(c.vertices, c.edges, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = c.batch_size * 3;
  opt.batch_size = c.batch_size;
  opt.seed = c.seed * 31 + 1;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = pattern_for(c.pattern);

  DynamicGraph dyn(stream.initial);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters ctr;

  std::int64_t running = static_cast<std::int64_t>(
      reference_count_embeddings(stream.initial, q));
  for (const EdgeBatch& batch : stream.batches) {
    dyn.apply_batch(batch);
    running += engine.match_batch(dyn, batch, policy, ctr).signed_embeddings;
    dyn.reorganize();
  }
  EXPECT_EQ(running, static_cast<std::int64_t>(
                         reference_count_embeddings(dyn.to_csr(), q)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalProperty,
    ::testing::Values(IncrementalCase{1, 0, 40, 150, 16},
                      IncrementalCase{2, 0, 60, 300, 32},
                      IncrementalCase{3, 1, 40, 140, 12},
                      IncrementalCase{4, 2, 35, 120, 10},
                      IncrementalCase{5, 3, 40, 130, 16},
                      IncrementalCase{6, 4, 40, 130, 16},
                      IncrementalCase{7, 5, 35, 110, 8},
                      IncrementalCase{8, 6, 35, 110, 8},
                      IncrementalCase{9, 0, 25, 120, 1},   // single-edge CSM
                      IncrementalCase{10, 1, 30, 100, 1},
                      IncrementalCase{11, 0, 50, 350, 64},
                      IncrementalCase{12, 3, 45, 160, 24}));

// ---------------------------------------------------------------------
// Property: embeddings / |Aut| is integral — every subgraph is found once
// per automorphism.
// ---------------------------------------------------------------------

TEST(EmbeddingProperty, AutomorphismDividesEmbeddingCount) {
  Rng rng(77);
  const CsrGraph g = generate_erdos_renyi(50, 250, 1, rng);
  for (std::uint32_t size = 3; size <= 4; ++size) {
    for (const QueryGraph& motif : all_motifs(size)) {
      const std::uint64_t embeddings = reference_count_embeddings(g, motif);
      const std::uint64_t aut = count_automorphisms(motif);
      EXPECT_EQ(embeddings % aut, 0u) << motif.name();
    }
  }
}

TEST(EmbeddingProperty, EngineMatchesReferenceOnAllSize4Motifs) {
  Rng rng(88);
  const CsrGraph g = generate_barabasi_albert(70, 3, 1, rng);
  DynamicGraph dyn(g);
  gpusim::SimtExecutor exec(2);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  for (const QueryGraph& motif : all_motifs(4)) {
    MatchEngine engine(motif, exec);
    EXPECT_EQ(engine.match_full(dyn, policy, c).positive,
              reference_count_embeddings(g, motif))
        << motif.name();
  }
}

// ---------------------------------------------------------------------
// Property: the set of embeddings (not just the count) produced
// incrementally equals the symmetric difference of full enumerations.
// ---------------------------------------------------------------------

using Embedding = std::vector<VertexId>;  // indexed by query vertex id

std::multiset<Embedding> full_embedding_set(const CsrGraph& g,
                                            const QueryGraph& q) {
  std::multiset<Embedding> out;
  for (const auto& arr : reference_list_embeddings(g, q)) {
    out.insert(Embedding(arr.begin(), arr.begin() + q.num_vertices()));
  }
  return out;
}

TEST(EmbeddingProperty, IncrementalSetEqualsSymmetricDifference) {
  Rng rng(99);
  const CsrGraph base = generate_erdos_renyi(30, 120, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 30;
  opt.batch_size = 30;
  opt.seed = 100;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_triangle();

  DynamicGraph dyn(stream.initial);
  dyn.apply_batch(stream.batches[0]);

  std::multiset<Embedding> added, removed;
  MatchSink sink = [&](const MatchPlan& plan, std::span<const VertexId> b,
                       int sign) {
    // Reorder the binding from plan order to query-vertex order.
    Embedding e(q.num_vertices());
    for (std::size_t pos = 0; pos < b.size(); ++pos) {
      e[plan.vertex_order[pos]] = b[pos];
    }
    if (sign > 0) {
      added.insert(e);
    } else {
      removed.insert(e);
    }
  };

  gpusim::SimtExecutor exec(1);
  MatchEngine engine(q, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  engine.match_batch(dyn, stream.batches[0], policy, c, &sink);
  dyn.reorganize();

  const auto before = full_embedding_set(stream.initial, q);
  const auto after = full_embedding_set(dyn.to_csr(), q);

  // after = before + added - removed as *signed* multisets. Canceling
  // +1/-1 pairs for embeddings in neither snapshot are legitimate: an
  // embedding combining one inserted and one deleted edge is emitted once
  // with each sign by different delta joins and nets to zero.
  std::map<Embedding, std::int64_t> counts;
  for (const auto& e : before) ++counts[e];
  for (const auto& e : added) ++counts[e];
  for (const auto& e : removed) --counts[e];
  std::multiset<Embedding> reconstructed;
  for (const auto& [e, c] : counts) {
    ASSERT_GE(c, 0) << "net-negative embedding count";
    ASSERT_LE(c, 1) << "embedding counted twice";
    if (c == 1) reconstructed.insert(e);
  }
  EXPECT_EQ(reconstructed, after);
}

// ---------------------------------------------------------------------
// Property: DCSR caching is transparent — cached and uncached runs produce
// identical results for random subsets of cached vertices.
// ---------------------------------------------------------------------

TEST(CacheProperty, RandomCacheSubsetsAreTransparent) {
  Rng rng(123);
  const CsrGraph base = generate_barabasi_albert(120, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 80;
  opt.batch_size = 80;
  opt.seed = 124;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_pattern(1);

  // Expected result once, via host policy.
  DynamicGraph dyn(stream.initial);
  dyn.apply_batch(stream.batches[0]);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  gpusim::TrafficCounters c;
  HostPolicy host(dyn);
  const std::int64_t expected =
      engine.match_batch(dyn, stream.batches[0], host, c).signed_embeddings;

  gpusim::SimParams params;
  for (int trial = 0; trial < 8; ++trial) {
    Rng trng(200 + trial);
    std::vector<VertexId> subset;
    for (VertexId v = 0; v < dyn.num_vertices(); ++v) {
      if (trng.bernoulli(0.3)) subset.push_back(v);
    }
    gpusim::Device device;
    DcsrCache cache;
    cache.build(dyn, subset, 1 << 24, device, c);
    CachedPolicy policy(dyn, cache, params);
    EXPECT_EQ(
        engine.match_batch(dyn, stream.batches[0], policy, c)
            .signed_embeddings,
        expected)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Property: reorganize preserves exactly the live edge multiset.
// ---------------------------------------------------------------------

TEST(ReorganizeProperty, PreservesLiveEdgesAcrossRandomStreams) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(400 + seed);
    const CsrGraph base = generate_erdos_renyi(80, 400, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_fraction = 0.3;
    opt.batch_size = 40;
    opt.seed = 500 + seed;
    const UpdateStream stream = make_update_stream(base, opt);
    DynamicGraph dyn(stream.initial);
    for (const EdgeBatch& batch : stream.batches) {
      dyn.apply_batch(batch);
      const CsrGraph before = dyn.to_csr();  // NEW view pre-reorg
      dyn.reorganize();
      const CsrGraph after = dyn.to_csr();
      ASSERT_EQ(before.num_edges(), after.num_edges());
      ASSERT_EQ(dyn.num_live_edges(), after.num_edges());
      const auto ea = before.edge_list();
      const auto eb = after.edge_list();
      ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()));
    }
  }
}

// ---------------------------------------------------------------------
// Property: work-stealing and static schedules agree.
// ---------------------------------------------------------------------

TEST(ScheduleProperty, WorkStealingAndStaticAgree) {
  Rng rng(600);
  const CsrGraph base = generate_barabasi_albert(200, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 100;
  opt.batch_size = 100;
  opt.seed = 601;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_pattern(2);

  auto run = [&](gpusim::Schedule sched) {
    DynamicGraph dyn(stream.initial);
    dyn.apply_batch(stream.batches[0]);
    gpusim::SimtExecutor exec(3, sched);
    MatchEngine engine(q, exec);
    HostPolicy policy(dyn);
    gpusim::TrafficCounters c;
    return engine.match_batch(dyn, stream.batches[0], policy, c)
        .signed_embeddings;
  };
  EXPECT_EQ(run(gpusim::Schedule::kWorkStealing),
            run(gpusim::Schedule::kStatic));
}

// ---------------------------------------------------------------------
// Property: traffic conservation — zero-copy useful bytes never exceed
// line bytes; cache hits + misses equal total fetches.
// ---------------------------------------------------------------------

TEST(TrafficProperty, LineBytesDominateUsefulBytes) {
  Rng rng(700);
  const CsrGraph base = generate_barabasi_albert(300, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 128;
  opt.batch_size = 128;
  opt.seed = 701;
  const UpdateStream stream = make_update_stream(base, opt);

  PipelineOptions popt;
  popt.kind = EngineKind::kZeroCopy;
  popt.workers = 2;
  Pipeline pipe(stream.initial, make_pattern(1), popt);
  const BatchReport r = pipe.process_batch(stream.batches[0]);
  EXPECT_LE(r.traffic.zero_copy_bytes,
            r.traffic.zero_copy_lines * popt.sim.zero_copy_line_bytes);
}

}  // namespace
}  // namespace gcsm
