// End-to-end integration tests: whole streams through whole pipelines, all
// engines cross-checked against each other and against from-scratch
// enumeration on realistic (small) labeled workload analogs.
#include <gtest/gtest.h>

#include <memory>

#include "core/match_store.hpp"
#include "core/pipeline.hpp"
#include "core/rapidflow_like.hpp"
#include "core/reference_matcher.hpp"
#include "core/workloads.hpp"
#include "graph/update_stream.hpp"
#include "query/motifs.hpp"
#include "query/patterns.hpp"

namespace gcsm {
namespace {

PipelineOptions tiny_options(EngineKind kind) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = 2;
  opt.cache_budget_bytes = 1 << 20;
  opt.estimator.num_walks = 16384;
  return opt;
}

TEST(Integration, FullStreamAllEnginesOnWorkloadAnalog) {
  // A miniature FR-analog with the paper's stream protocol, full stream,
  // every engine plus the RF-like system, verified per batch.
  const CsrGraph base = make_workload_graph("FR", 0.004, 3, 5);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.15;
  sopt.batch_size = 128;
  sopt.seed = 6;
  const UpdateStream stream = make_update_stream(base, sopt);
  ASSERT_GE(stream.num_batches(), 3u);
  const QueryGraph q = with_round_robin_labels(make_pattern(1), 3);

  std::vector<std::unique_ptr<Pipeline>> pipes;
  for (const EngineKind kind :
       {EngineKind::kGcsm, EngineKind::kZeroCopy, EngineKind::kUnifiedMemory,
        EngineKind::kNaiveDegree, EngineKind::kVsgm, EngineKind::kCpu}) {
    pipes.push_back(
        std::make_unique<Pipeline>(stream.initial, q, tiny_options(kind)));
  }
  RapidFlowLikeEngine rf(stream.initial, q, 2);

  std::int64_t running = static_cast<std::int64_t>(
      reference_count_embeddings(stream.initial, q));
  for (const EdgeBatch& batch : stream.batches) {
    const std::int64_t delta =
        pipes[0]->process_batch(batch).stats.signed_embeddings;
    for (std::size_t i = 1; i < pipes.size(); ++i) {
      ASSERT_EQ(pipes[i]->process_batch(batch).stats.signed_embeddings,
                delta)
          << engine_kind_name(pipes[i]->options().kind);
    }
    ASSERT_EQ(rf.process_batch(batch).stats.signed_embeddings, delta);
    running += delta;
    ASSERT_EQ(running,
              static_cast<std::int64_t>(reference_count_embeddings(
                  pipes[0]->graph().to_csr(), q)));
  }
}

TEST(Integration, RoadNetMotifStream) {
  // The Fig. 11 scenario in miniature: unlabeled motifs on a road grid.
  const CsrGraph base = make_workload_graph("PA", 0.02, 1, 9);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.2;
  sopt.batch_size = 64;
  sopt.seed = 10;
  const UpdateStream stream = make_update_stream(base, sopt);

  for (const QueryGraph& motif : all_motifs(4)) {
    Pipeline gcsm_pipe(stream.initial, motif,
                       tiny_options(EngineKind::kGcsm));
    std::int64_t running = static_cast<std::int64_t>(
        reference_count_embeddings(stream.initial, motif));
    for (std::size_t k = 0; k < 2 && k < stream.num_batches(); ++k) {
      running +=
          gcsm_pipe.process_batch(stream.batches[k]).stats.signed_embeddings;
    }
    ASSERT_EQ(running,
              static_cast<std::int64_t>(reference_count_embeddings(
                  gcsm_pipe.graph().to_csr(), motif)))
        << motif.name();
  }
}

TEST(Integration, MatchStoreThroughGcsmPipeline) {
  // MatchStore fed by the GCSM (cached, simulated-device) engine stays
  // consistent with reference enumeration — sink events are policy-agnostic.
  const CsrGraph base = make_workload_graph("AZ", 0.01, 2, 13);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.2;
  sopt.batch_size = 96;
  sopt.seed = 14;
  const UpdateStream stream = make_update_stream(base, sopt);
  const QueryGraph q = make_triangle();

  MatchStore store(q);
  for (const auto& arr : reference_list_embeddings(stream.initial, q)) {
    std::vector<VertexId> e(arr.begin(), arr.begin() + q.num_vertices());
    store.apply(std::span<const VertexId>(e.data(), e.size()), +1);
  }
  Pipeline pipe(stream.initial, q, tiny_options(EngineKind::kGcsm));
  const MatchSink sink = store.sink();
  for (std::size_t k = 0; k < 3 && k < stream.num_batches(); ++k) {
    pipe.process_batch(stream.batches[k], &sink);
  }
  const std::uint64_t expected =
      reference_count_embeddings(pipe.graph().to_csr(), q) /
      store.automorphisms();
  EXPECT_EQ(store.subgraph_count(), expected);
}

TEST(Integration, UnifiedMemoryPageCachePersistsAcrossBatches) {
  const CsrGraph base = make_workload_graph("AZ", 0.01, 2, 15);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.2;
  sopt.batch_size = 64;
  sopt.seed = 16;
  const UpdateStream stream = make_update_stream(base, sopt);
  Pipeline pipe(stream.initial, make_triangle(),
                tiny_options(EngineKind::kUnifiedMemory));

  const BatchReport first = pipe.process_batch(stream.batches[0]);
  const BatchReport second = pipe.process_batch(stream.batches[1]);
  // Warm pages from batch 0 serve batch 1: the hit share must rise.
  const double rate1 =
      static_cast<double>(first.traffic.um_hits) /
      static_cast<double>(first.traffic.um_hits + first.traffic.um_faults);
  const double rate2 =
      static_cast<double>(second.traffic.um_hits) /
      static_cast<double>(second.traffic.um_hits +
                          second.traffic.um_faults);
  EXPECT_GT(rate2, rate1 * 0.8);  // at least comparable; usually higher
  EXPECT_GT(second.traffic.um_hits, 0u);
}

TEST(Integration, SingleEdgeUpdatesMatchBatchedTotal) {
  // The paper's "single-edge setting": processing a batch one edge at a
  // time must telescope to the same total as one batched call.
  const CsrGraph base = make_workload_graph("AZ", 0.008, 2, 21);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.15;
  sopt.batch_size = 40;
  sopt.seed = 22;
  const UpdateStream stream = make_update_stream(base, sopt);
  const QueryGraph q = make_pattern(1);

  Pipeline batched(stream.initial, q, tiny_options(EngineKind::kCpu));
  const std::int64_t batch_delta =
      batched.process_batch(stream.batches[0]).stats.signed_embeddings;

  Pipeline single(stream.initial, q, tiny_options(EngineKind::kCpu));
  std::int64_t single_total = 0;
  for (const EdgeUpdate& e : stream.batches[0].updates) {
    EdgeBatch one;
    one.updates.push_back(e);
    single_total += single.process_batch(one).stats.signed_embeddings;
  }
  EXPECT_EQ(single_total, batch_delta);
}

TEST(Integration, VsgmCacheIsExactlyTheKhopSet) {
  const CsrGraph base = make_workload_graph("AZ", 0.01, 2, 31);
  UpdateStreamOptions sopt;
  sopt.pool_edge_fraction = 0.1;
  sopt.batch_size = 16;
  sopt.seed = 32;
  const UpdateStream stream = make_update_stream(base, sopt);
  const QueryGraph q = make_pattern(1);

  PipelineOptions opt = tiny_options(EngineKind::kVsgm);
  opt.cache_budget_bytes = 64 << 20;
  Pipeline pipe(stream.initial, q, opt);
  const BatchReport r = pipe.process_batch(stream.batches[0]);
  // VSGM never misses: the k-hop set covers every accessed vertex.
  EXPECT_EQ(r.traffic.cache_misses, 0u);
  EXPECT_EQ(r.traffic.zero_copy_lines, 0u);
  EXPECT_GT(r.cached_vertices, 0u);
}

}  // namespace
}  // namespace gcsm
