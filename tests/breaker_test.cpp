// Tenant-isolation suite for the multi-query engine's circuit breaker
// (docs/ROBUSTNESS.md, "Tenant isolation & circuit breaker").
//
// The contract under test: one poison query (the keyed `match.query` fault
// site at p = 1.0) trips to quarantine and every batch COMMITS for the
// healthy tenants with their per-batch counts bit-identical to a
// poison-free run; after the poison clears, a half-open probe re-admits
// the query through exact WAL catch-up and its cumulative counters land
// bit-identical to a fault-free run; a crash at ANY durable-write point
// during catch-up recovers to the same counters exactly once.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "server/multi_query_engine.hpp"
#include "server/query_health.hpp"
#include "server/query_registry.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace gcsm {
namespace {

using server::BreakerOptions;
using server::HealthState;
using server::HealthTransition;
using server::MultiQueryEngine;
using server::MultiQueryOptions;
using server::QueryCounters;
using server::QueryHealth;
using server::QueryId;
using server::QueryRegistry;
using server::ServerBatchReport;
using server::decode_transition;
using server::encode_transition;

struct StreamFixture {
  explicit StreamFixture(int seed, VertexId n = 300, std::size_t batch = 64,
                         std::size_t pool = 384) {
    Rng rng(seed);
    base = generate_barabasi_albert(n, 4, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = pool;
    opt.batch_size = batch;
    opt.seed = seed + 1;
    stream = make_update_stream(base, opt);
  }
  CsrGraph base;
  UpdateStream stream;
};

MultiQueryOptions breaker_options() {
  MultiQueryOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.workers = 2;
  opt.cache_budget_bytes = 4 << 20;
  opt.estimator.num_walks = 256;
  opt.recovery.backoff_initial_ms = 0.0;  // no sleeping in tests
  opt.recovery.watchdog_timeout_ms = 2.0;
  opt.check_invariants = true;
  return opt;
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = std::string(::testing::TempDir()) + "gcsm_brk_" +
                          tag + "_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  io::ensure_dir(dir);
  return dir;
}

FaultSpec poison_spec(QueryId id) {
  FaultSpec spec;
  spec.probability = 1.0;
  spec.match_query_id = id;
  return spec;
}

std::uint64_t counter_value(const char* name) {
  return metrics::Registry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Poison-tenant isolation: every batch commits, healthy counts unchanged.

TEST(Breaker, PoisonedTenantIsolatedBitIdentical) {
  const StreamFixture f(21);
  FaultInjector inj(0xB0B0);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.breaker.trip_after_failures = 1;   // trip on the first exhaustion:
  opt.breaker.cooldown_batches = 1000;   // every batch must commit
  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_fig1_diamond());
  const QueryId path = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  // Poison-free references for the two healthy tenants.
  PipelineOptions ref_opt;
  ref_opt.kind = EngineKind::kGcsm;
  ref_opt.workers = 2;
  ref_opt.cache_budget_bytes = 4 << 20;
  ref_opt.estimator.num_walks = 256;
  ref_opt.recovery.backoff_initial_ms = 0.0;
  ref_opt.check_invariants = true;
  Pipeline ref_tri(f.stream.initial, make_triangle(), ref_opt);
  Pipeline ref_path(f.stream.initial, make_path(4), ref_opt);

  const std::uint64_t trips_before = counter_value("server.breaker.trips");
  for (std::size_t k = 0; k < f.stream.num_batches(); ++k) {
    const EdgeBatch& batch = f.stream.batches[k];
    ServerBatchReport out;
    ASSERT_NO_THROW(out = engine.process_batch(batch))
        << "poisoned tenant failed the whole batch " << k;
    const BatchReport want_tri = ref_tri.process_batch(batch);
    const BatchReport want_path = ref_path.process_batch(batch);
    std::int64_t sum = 0;
    for (const auto& q : out.queries) {
      sum += q.report.stats.signed_embeddings;
      if (q.id == tri) {
        EXPECT_EQ(q.report.stats.signed_embeddings,
                  want_tri.stats.signed_embeddings)
            << "triangle diverged at batch " << k;
        EXPECT_EQ(q.report.stats.positive, want_tri.stats.positive);
        EXPECT_EQ(q.report.stats.negative, want_tri.stats.negative);
      } else if (q.id == path) {
        EXPECT_EQ(q.report.stats.signed_embeddings,
                  want_path.stats.signed_embeddings)
            << "path diverged at batch " << k;
      } else {
        // The poisoned tenant: trips on batch 0, skipped after, zero stats.
        EXPECT_EQ(q.report.stats.signed_embeddings, 0);
        EXPECT_EQ(q.report.stats.positive, 0u);
        if (k == 0) {
          EXPECT_TRUE(q.tripped);
        } else {
          EXPECT_TRUE(q.skipped);
        }
      }
    }
    EXPECT_EQ(out.shared.stats.signed_embeddings, sum)
        << "aggregate is not the sum of per-query stats at batch " << k;
    EXPECT_EQ(engine.cumulative().batches_committed, k + 1);
  }
  EXPECT_EQ(counter_value("server.breaker.trips") - trips_before, 1u);
  EXPECT_EQ(engine.query_health(poison).state, HealthState::kQuarantined);
  EXPECT_EQ(engine.query_health(poison).trips, 1u);
  EXPECT_EQ(engine.query_health(tri).state, HealthState::kHealthy);
  engine.graph().validate();
  EXPECT_EQ(engine.graph().to_csr().edge_list(),
            ref_tri.graph().to_csr().edge_list());
}

// Below the trip threshold the pre-breaker contract holds: the batch fails
// as a unit and NO trip is applied on a failed batch — but the in-memory
// streak persists, so resubmitting the batch trips and commits.
TEST(Breaker, BelowThresholdFailsBatchThenTripsOnResubmit) {
  const StreamFixture f(22);
  FaultInjector inj(0xB0B1);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.breaker.trip_after_failures = 2;
  opt.breaker.cooldown_batches = 1000;
  MultiQueryEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  EXPECT_THROW(engine.process_batch(f.stream.batches[0]), Error);
  EXPECT_EQ(engine.cumulative().batches_committed, 0u);
  EXPECT_EQ(engine.query_health(poison).state, HealthState::kHealthy);
  EXPECT_EQ(engine.query_health(poison).trips, 0u);

  // The client resubmits the failed batch; streak 1 -> 2 trips it.
  const ServerBatchReport out = engine.process_batch(f.stream.batches[0]);
  EXPECT_EQ(engine.cumulative().batches_committed, 1u);
  EXPECT_EQ(engine.query_health(poison).state, HealthState::kQuarantined);
  bool saw_trip = false;
  for (const auto& q : out.queries) saw_trip = saw_trip || q.tripped;
  EXPECT_TRUE(saw_trip);
}

// Breaker disabled: tripping never happens; the poisoned batch fails as a
// unit exactly like PR 5's engine.
TEST(Breaker, DisabledBreakerKeepsUnitBatchSemantics) {
  const StreamFixture f(23);
  FaultInjector inj(0xB0B2);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.breaker.enabled = false;
  opt.breaker.trip_after_failures = 1;
  MultiQueryEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_THROW(engine.process_batch(f.stream.batches[0]), Error);
    EXPECT_EQ(engine.cumulative().batches_committed, 0u);
    EXPECT_EQ(engine.query_health(poison).state, HealthState::kHealthy);
  }
}

// ---------------------------------------------------------------------------
// Exact catch-up: after the poison clears, cooldown elapses, the half-open
// probe passes and WAL catch-up replay brings the query's cumulative
// counters bit-identical to a fault-free run — including sink delivery.

TEST(Breaker, ExactCatchUpIsBitIdenticalToFaultFreeRun) {
  const StreamFixture f(24);
  const std::string dir = fresh_dir("catchup");
  FaultInjector inj(0xCA7C);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;  // keep the WAL covering the debt
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 2;
  opt.breaker.max_debt_batches = 64;

  std::int64_t sink_signed = 0;
  std::uint64_t sink_calls = 0;
  MatchSink sink = [&](const MatchPlan&, std::span<const VertexId>,
                       int sign) {
    sink_signed += sign;
    ++sink_calls;
  };

  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_fig1_diamond(), sink);
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  // Fault-free reference over the same stream (durability off: counts are
  // storage-independent).
  std::int64_t ref_signed = 0;
  std::uint64_t ref_calls = 0;
  MatchSink ref_sink = [&](const MatchPlan&, std::span<const VertexId>,
                           int sign) {
    ref_signed += sign;
    ++ref_calls;
  };
  MultiQueryEngine ref(f.stream.initial, breaker_options());
  const QueryId ref_tri = ref.register_query(make_triangle());
  const QueryId ref_poison = ref.register_query(make_fig1_diamond(),
                                                ref_sink);

  const std::uint64_t rejoins_before =
      counter_value("server.breaker.rejoins");
  const std::uint64_t replayed_before =
      counter_value("server.catchup.batches_replayed");

  // Batch 0 trips (commits), batches 1-2 tick the cooldown, the poison is
  // cleared before batch 3, whose probe passes and re-admits via catch-up.
  for (std::size_t k = 0; k < 6; ++k) {
    if (k == 3) inj.disarm(fault_site::kMatchQuery);
    const ServerBatchReport out = engine.process_batch(f.stream.batches[k]);
    ref.process_batch(f.stream.batches[k]);
    for (const auto& q : out.queries) {
      if (q.id != poison) continue;
      if (k == 0) {
        EXPECT_TRUE(q.tripped);
      }
      if (k == 1 || k == 2) {
        EXPECT_TRUE(q.skipped);
      }
      if (k == 3) {
        EXPECT_TRUE(q.probed);
        EXPECT_TRUE(q.rejoined);
        EXPECT_FALSE(q.rebaselined);
      }
      if (k > 3) {
        EXPECT_FALSE(q.skipped);
        EXPECT_FALSE(q.probed);
      }
    }
  }

  // Cumulative per-query counters are bit-identical to the fault-free run.
  EXPECT_EQ(engine.query_health(poison).counters,
            ref.query_health(ref_poison).counters);
  EXPECT_EQ(engine.query_health(tri).counters,
            ref.query_health(ref_tri).counters);
  EXPECT_EQ(engine.query_health(poison).state, HealthState::kHealthy);
  // The catch-up correction folded into the commit marker keeps the
  // aggregate equal to the fault-free aggregate too.
  EXPECT_EQ(engine.cumulative().cum_signed, ref.cumulative().cum_signed);
  EXPECT_EQ(engine.cumulative().cum_positive, ref.cumulative().cum_positive);
  EXPECT_EQ(engine.cumulative().cum_negative, ref.cumulative().cum_negative);
  EXPECT_EQ(engine.cumulative().batches_committed,
            ref.cumulative().batches_committed);
  // Sink delivery: the outage window's embeddings arrived via catch-up
  // (no crash here, so exactly the fault-free delivery).
  EXPECT_EQ(sink_signed, ref_signed);
  EXPECT_EQ(sink_calls, ref_calls);
  EXPECT_EQ(counter_value("server.breaker.rejoins") - rejoins_before, 1u);
  // Batches 1-4 were missed (the trip excluded batch 0's seq 1... wait:
  // seqs 1-4 are batches 0-3; the query re-matched batch 3 live, so the
  // replayed debt is seqs 1-3.
  EXPECT_EQ(counter_value("server.catchup.batches_replayed") -
                replayed_before,
            3u);

  // A restart after all of this recovers through the integrity gate with
  // the same counters and a healthy registry.
  MultiQueryOptions ropt = opt;
  ropt.fault_injector = nullptr;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.cumulative().cum_signed, engine.cumulative().cum_signed);
  EXPECT_EQ(recovered.cumulative().batches_committed, 6u);
  EXPECT_EQ(recovered.query_health(poison).counters,
            engine.query_health(poison).counters);
  EXPECT_EQ(recovered.query_health(poison).state, HealthState::kHealthy);
}

// Debt past the window overflows: re-join falls back to a full static
// recount re-baseline (no exact replay, counters re-anchored).
TEST(Breaker, DebtOverflowRebaselines) {
  const StreamFixture f(25);
  const std::string dir = fresh_dir("overflow");
  FaultInjector inj(0xDEB7);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 3;
  opt.breaker.max_debt_batches = 1;  // overflow almost immediately
  MultiQueryEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  const std::uint64_t rebase_before =
      counter_value("server.catchup.rebaselines");
  for (std::size_t k = 0; k < 5; ++k) {
    if (k == 1) inj.disarm(fault_site::kMatchQuery);
    const ServerBatchReport out = engine.process_batch(f.stream.batches[k]);
    if (k == 4) {
      bool rebaselined = false;
      for (const auto& q : out.queries) {
        rebaselined = rebaselined || q.rebaselined;
      }
      EXPECT_TRUE(rebaselined) << "overflowed re-join did not re-baseline";
    }
  }
  EXPECT_EQ(counter_value("server.catchup.rebaselines") - rebase_before, 1u);
  const QueryHealth& h = engine.query_health(poison);
  EXPECT_EQ(h.state, HealthState::kHealthy);
  EXPECT_FALSE(h.debt_overflow);
  // Re-baselined counters are the full static recount of the live graph.
  EXPECT_EQ(h.counters.positive, engine.count_current_embeddings(poison));
  EXPECT_EQ(h.counters.negative, 0u);
}

// ---------------------------------------------------------------------------
// Crash during catch-up: for EVERY durable-write crash point across the
// re-join batch, recovery + resubmission converge to the fault-free
// counters exactly once (sink delivery is at-least-once).

TEST(Breaker, KillDuringCatchUpRecoversExactlyOnce) {
  const StreamFixture f(26, 200, 48, 192);

  // Fault-free reference counters over batches 0-3.
  MultiQueryEngine ref(f.stream.initial, breaker_options());
  ref.register_query(make_triangle());
  const QueryId ref_poison = ref.register_query(make_path(4));
  std::uint64_t ref_calls = 0;
  ref.attach_sink(ref_poison,
                  [&](const MatchPlan&, std::span<const VertexId>, int) {
                    ++ref_calls;
                  });
  for (std::size_t k = 0; k < 4; ++k) ref.process_batch(f.stream.batches[k]);

  bool exhausted_crash_points = false;
  for (std::uint64_t n = 1; n <= 64 && !exhausted_crash_points; ++n) {
    const std::string dir =
        fresh_dir("crash_n" + std::to_string(n));
    FaultInjector inj(0xC4A6);
    MultiQueryOptions opt = breaker_options();
    opt.fault_injector = &inj;
    opt.durability.wal_dir = dir;
    opt.durability.snapshot_interval = 100;
    opt.breaker.trip_after_failures = 1;
    opt.breaker.cooldown_batches = 1;

    std::uint64_t sink_calls = 0;
    MatchSink sink = [&](const MatchPlan&, std::span<const VertexId>, int) {
      ++sink_calls;
    };

    QueryId poison = 0;
    // Phase A: poison trips on batch 0, batch 1 ticks the cooldown down.
    {
      MultiQueryEngine engine(f.stream.initial, opt);
      engine.register_query(make_triangle());
      poison = engine.register_query(make_path(4), sink);
      inj.arm(fault_site::kMatchQuery, poison_spec(poison));
      engine.process_batch(f.stream.batches[0]);
      engine.process_batch(f.stream.batches[1]);
      ASSERT_EQ(engine.query_health(poison).state,
                HealthState::kQuarantined);
    }

    // Phase B: restart with the crash armed on the nth durable write; the
    // probe on the next batch passes and catch-up runs under that sword.
    inj.disarm(fault_site::kMatchQuery);
    FaultSpec crash;
    crash.nth_hit = n;
    crash.crash_at_byte = 7;
    inj.arm(fault_site::kCrashAt, crash);

    bool crashed = false;
    std::size_t next_batch = 2;
    for (int life = 0; life < 4 && next_batch < 4; ++life) {
      try {
        MultiQueryEngine engine(f.stream.initial, opt);
        engine.attach_sink(poison, sink);
        next_batch =
            static_cast<std::size_t>(engine.cumulative().batches_committed);
        while (next_batch < 4) {
          engine.process_batch(f.stream.batches[next_batch]);
          ++next_batch;
        }
        // Converged: compare against the fault-free reference.
        EXPECT_EQ(engine.cumulative().batches_committed, 4u) << "n=" << n;
        EXPECT_EQ(engine.cumulative().cum_signed,
                  ref.cumulative().cum_signed)
            << "n=" << n;
        EXPECT_EQ(engine.cumulative().cum_positive,
                  ref.cumulative().cum_positive)
            << "n=" << n;
        EXPECT_EQ(engine.query_health(poison).counters,
                  ref.query_health(ref_poison).counters)
            << "n=" << n;
        EXPECT_EQ(engine.query_health(poison).state, HealthState::kHealthy)
            << "n=" << n;
      } catch (const CrashError&) {
        crashed = true;
        inj.disarm(fault_site::kCrashAt);  // one crash per scenario
      }
    }
    ASSERT_GE(next_batch, 4u) << "scenario n=" << n << " never converged";
    // Catch-up sink delivery is at-least-once across crashes.
    EXPECT_GE(sink_calls, ref_calls) << "n=" << n;
    if (!crashed) exhausted_crash_points = true;
  }
  EXPECT_TRUE(exhausted_crash_points)
      << "crash points never exhausted within the probe budget";
}

// ---------------------------------------------------------------------------
// Registry edge cases on a quarantined id.

TEST(Breaker, AttachSinkAndUnregisterOnQuarantinedId) {
  const StreamFixture f(27);
  const std::string dir = fresh_dir("unreg");
  FaultInjector inj(0xF0F0);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 100;
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 1000;
  MultiQueryEngine engine(f.stream.initial, opt);
  const QueryId tri = engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  engine.process_batch(f.stream.batches[0]);  // trips
  engine.process_batch(f.stream.batches[1]);
  ASSERT_EQ(engine.query_health(poison).state, HealthState::kQuarantined);

  // attach_sink on a quarantined id is legal (fires once it re-joins).
  EXPECT_NO_THROW(engine.attach_sink(
      poison, [](const MatchPlan&, std::span<const VertexId>, int) {}));

  // unregister on a quarantined id is legal and ALWAYS compacts: the
  // removed query's contributions are baked into the commit markers, so
  // the old WAL prefix must never replay without it.
  EXPECT_TRUE(engine.unregister_query(poison));
  std::string why;
  const auto snap =
      durable::load_snapshot_file(dir + "/graph.snap", &why);
  ASSERT_TRUE(snap.has_value()) << why;
  EXPECT_EQ(snap->counters.batches_committed, 2u);

  const ServerBatchReport out = engine.process_batch(f.stream.batches[2]);
  EXPECT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].id, tri);

  // Restart: recovery replays only post-compaction batches and converges.
  MultiQueryOptions ropt = opt;
  ropt.fault_injector = nullptr;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.cumulative().batches_committed, 3u);
  EXPECT_EQ(recovered.cumulative().cum_signed,
            engine.cumulative().cum_signed);
  EXPECT_EQ(recovered.registry().entries().size(), 1u);
}

// Registering while a quarantined query owes exact catch-up debt defers
// the forced snapshot; the compaction fires at the first debt-free commit.
TEST(Breaker, RegisterDuringDebtDefersCompactionUntilDrained) {
  const StreamFixture f(28);
  const std::string dir = fresh_dir("defer");
  FaultInjector inj(0xDEF0);
  MultiQueryOptions opt = breaker_options();
  opt.fault_injector = &inj;
  opt.durability.wal_dir = dir;
  opt.durability.snapshot_interval = 1;  // a snapshot is due every commit
  opt.durability.fsync = false;
  opt.breaker.trip_after_failures = 1;
  opt.breaker.cooldown_batches = 2;
  opt.breaker.max_debt_batches = 64;
  MultiQueryEngine engine(f.stream.initial, opt);
  engine.register_query(make_triangle());
  const QueryId poison = engine.register_query(make_path(4));
  inj.arm(fault_site::kMatchQuery, poison_spec(poison));

  const std::uint64_t deferred_before =
      counter_value("server.catchup.deferred_snapshots");

  engine.process_batch(f.stream.batches[0]);  // trips; snapshot deferred
  ASSERT_EQ(engine.query_health(poison).state, HealthState::kQuarantined);
  std::string why;
  EXPECT_FALSE(durable::load_snapshot_file(dir + "/graph.snap", &why)
                   .has_value())
      << "snapshot was not deferred while catch-up debt is owed";

  // Register mid-debt: the forced compaction is deferred too.
  const QueryId late = engine.register_query(make_fig1_diamond());
  EXPECT_FALSE(durable::load_snapshot_file(dir + "/graph.snap", &why)
                   .has_value())
      << "registration compacted the WAL away from a debt holder";

  inj.disarm(fault_site::kMatchQuery);
  engine.process_batch(f.stream.batches[1]);  // cooldown 2 -> 1, deferred
  engine.process_batch(f.stream.batches[2]);  // cooldown 1 -> 0, deferred
  EXPECT_FALSE(durable::load_snapshot_file(dir + "/graph.snap", &why)
                   .has_value());
  EXPECT_GE(counter_value("server.catchup.deferred_snapshots") -
                deferred_before,
            3u);

  // Probe passes, exact catch-up drains the debt, and the same commit's
  // tail fires the deferred registration snapshot.
  const ServerBatchReport out = engine.process_batch(f.stream.batches[3]);
  bool rejoined = false;
  for (const auto& q : out.queries) rejoined = rejoined || q.rejoined;
  EXPECT_TRUE(rejoined);
  const auto snap = durable::load_snapshot_file(dir + "/graph.snap", &why);
  ASSERT_TRUE(snap.has_value())
      << "deferred snapshot did not fire once the debt drained: " << why;
  EXPECT_EQ(snap->counters.batches_committed, 4u);

  // Restart proves the whole dance recovers through the integrity gate.
  MultiQueryOptions ropt = opt;
  ropt.fault_injector = nullptr;
  MultiQueryEngine recovered(f.stream.initial, ropt);
  EXPECT_EQ(recovered.cumulative().batches_committed, 4u);
  EXPECT_EQ(recovered.cumulative().cum_signed,
            engine.cumulative().cum_signed);
  EXPECT_EQ(recovered.query_health(late).counters,
            engine.query_health(late).counters);
  EXPECT_EQ(recovered.query_health(poison).counters,
            engine.query_health(poison).counters);
}

// ---------------------------------------------------------------------------
// Codec pinning: GQRY v2 round-trips the health fields; v1 images still
// decode (health starts fresh); GSRV transitions round-trip and validate.

TEST(Breaker, RegistryV2RoundTripsHealthFields) {
  QueryRegistry reg;
  const QueryId a = reg.add(make_triangle(), 2.0);
  const QueryId b = reg.add(make_path(4), 1.0);
  reg.set_health_revision(7);
  durable::DurableCounters agg;
  agg.batches_committed = 12;
  agg.last_seq = 14;
  agg.cum_signed = -3;
  agg.cum_positive = 40;
  agg.cum_negative = 43;
  reg.set_aggregate(agg);
  QueryHealth& ha = reg.find_mutable(a)->health;
  ha.state = HealthState::kQuarantined;
  ha.debt_overflow = true;
  ha.last_applied_seq = 9;
  ha.trips = 3;
  ha.counters = QueryCounters{-5, 10, 15, 99};
  reg.find_mutable(b)->health.last_applied_seq = 14;

  std::string why;
  const auto decoded = QueryRegistry::decode(reg.encode(), &why);
  ASSERT_TRUE(decoded.has_value()) << why;
  EXPECT_EQ(decoded->health_revision(), 7u);
  EXPECT_EQ(decoded->aggregate(), agg);
  ASSERT_NE(decoded->find(a), nullptr);
  EXPECT_EQ(decoded->find(a)->health, reg.find(a)->health);
  EXPECT_EQ(decoded->find(b)->health, reg.find(b)->health);
  EXPECT_EQ(decoded->find(a)->weight, 2.0);
}

TEST(Breaker, RegistryV1ImageStillDecodes) {
  // Hand-built v1 image: no health-revision/aggregate header fields and no
  // per-entry health — exactly what the pre-breaker encoder wrote.
  const QueryGraph tri = make_triangle();
  std::string bytes;
  bytes.append("GQRY", 4);
  io::put_u32(bytes, 1);  // version
  io::put_u32(bytes, 2);  // next_id
  io::put_u64(bytes, 1);  // one entry
  io::put_u32(bytes, 1);  // id
  io::put_u64(bytes, std::bit_cast<std::uint64_t>(1.5));
  io::put_bytes(bytes, tri.name());
  io::put_u32(bytes, tri.num_vertices());
  for (std::uint32_t v = 0; v < tri.num_vertices(); ++v) {
    io::put_u32(bytes, static_cast<std::uint32_t>(tri.label(v)));
  }
  io::put_u64(bytes, tri.edges().size());
  for (const QueryEdge& e : tri.edges()) {
    io::put_u32(bytes, e.a);
    io::put_u32(bytes, e.b);
  }
  io::put_u32(bytes, io::crc32c(bytes));

  std::string why;
  const auto decoded = QueryRegistry::decode(bytes, &why);
  ASSERT_TRUE(decoded.has_value()) << why;
  ASSERT_EQ(decoded->entries().size(), 1u);
  EXPECT_EQ(decoded->entries()[0].weight, 1.5);
  // v1 carries no health: everything starts fresh.
  EXPECT_EQ(decoded->entries()[0].health, QueryHealth{});
  EXPECT_EQ(decoded->health_revision(), 0u);
  EXPECT_EQ(decoded->aggregate(), durable::DurableCounters{});
}

TEST(Breaker, HealthTransitionRoundTripAndValidation) {
  HealthTransition t;
  t.reason = HealthTransition::Reason::kRejoin;
  t.revision = 42;
  t.query = 3;
  QueryHealth h1;
  h1.state = HealthState::kQuarantined;
  h1.last_applied_seq = 5;
  h1.trips = 2;
  h1.counters = QueryCounters{7, 9, 2, 31};
  QueryHealth h2;
  h2.last_applied_seq = 11;
  t.table.emplace_back(1, h1);
  t.table.emplace_back(3, h2);
  t.aggregate.batches_committed = 11;
  t.aggregate.last_seq = 11;
  t.aggregate.cum_signed = 100;

  std::string why;
  const auto back = decode_transition(encode_transition(t), &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->reason, t.reason);
  EXPECT_EQ(back->revision, 42u);
  EXPECT_EQ(back->query, 3u);
  ASSERT_EQ(back->table.size(), 2u);
  EXPECT_EQ(back->table[0].second, h1);
  EXPECT_EQ(back->table[1].second, h2);
  EXPECT_EQ(back->aggregate, t.aggregate);

  // Non-ascending ids are rejected, as is trailing garbage.
  HealthTransition bad = t;
  std::swap(bad.table[0], bad.table[1]);
  EXPECT_FALSE(decode_transition(encode_transition(bad), &why).has_value());
  std::string trailing = encode_transition(t);
  trailing.push_back('\0');
  EXPECT_FALSE(decode_transition(trailing, &why).has_value());
}

}  // namespace
}  // namespace gcsm
