#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/dcsr_cache.hpp"
#include "core/gpu_engine.hpp"
#include "core/intersect.hpp"
#include "core/list_ref.hpp"
#include "core/rapidflow_like.hpp"
#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/automorphism.hpp"
#include "query/patterns.hpp"
#include "util/rng.hpp"

namespace gcsm {
namespace {

// ----------------------------------------------------------- intersect ----

TEST(Intersect, BasicOverlap) {
  const std::vector<VertexId> a{1, 3, 5, 7, 9};
  const std::vector<VertexId> b{2, 3, 4, 7, 10};
  std::vector<VertexId> out;
  intersect_sorted(a.data(), a.size(), b.data(), b.size(), out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 7}));
}

TEST(Intersect, EmptyInputs) {
  const std::vector<VertexId> a{1, 2, 3};
  std::vector<VertexId> out{99};
  intersect_sorted(a.data(), a.size(), nullptr, 0, out);
  EXPECT_TRUE(out.empty());
  intersect_sorted(nullptr, 0, a.data(), a.size(), out);
  EXPECT_TRUE(out.empty());
}

TEST(Intersect, GallopingPathMatchesMergePath) {
  Rng rng(21);
  // Short list vs very long list triggers galloping; cross-check with the
  // trivially correct std::set_intersection.
  std::vector<VertexId> big;
  for (VertexId v = 0; v < 10000; v += 3) big.push_back(v);
  std::vector<VertexId> small{3, 999, 1000, 5001, 9999};
  std::vector<VertexId> expect;
  std::set_intersection(small.begin(), small.end(), big.begin(), big.end(),
                        std::back_inserter(expect));
  std::vector<VertexId> out;
  intersect_sorted(small.data(), small.size(), big.data(), big.size(), out);
  EXPECT_EQ(out, expect);
  // Symmetric order.
  intersect_sorted(big.data(), big.size(), small.data(), small.size(), out);
  EXPECT_EQ(out, expect);
}

TEST(Intersect, IntersectIntoMatchesFresh) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<VertexId> sa, sb;
    for (int i = 0; i < 60; ++i) {
      sa.insert(static_cast<VertexId>(rng.bounded(120)));
      sb.insert(static_cast<VertexId>(rng.bounded(120)));
    }
    std::vector<VertexId> a(sa.begin(), sa.end());
    const std::vector<VertexId> b(sb.begin(), sb.end());
    std::vector<VertexId> expect;
    intersect_sorted(a.data(), a.size(), b.data(), b.size(), expect);
    intersect_into(a, b.data(), b.size());
    EXPECT_EQ(a, expect);
  }
}

TEST(Intersect, IntersectIntoEmptyOther) {
  std::vector<VertexId> acc{1, 2, 3};
  intersect_into(acc, nullptr, 0);
  EXPECT_TRUE(acc.empty());
}

// ------------------------------------------------------------ DCSR --------

class DcsrTest : public ::testing::Test {
 protected:
  DcsrTest()
      : graph_(CsrGraph::from_edges(
            6, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}})) {}

  DynamicGraph graph_;
  gpusim::Device device_;
  gpusim::TrafficCounters counters_;
};

TEST_F(DcsrTest, RoundTripsViewsAfterBatch) {
  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  batch.updates.push_back({1, 2, -1});
  graph_.apply_batch(batch);

  DcsrCache cache;
  cache.build(graph_, {0, 1, 2, 3}, 1 << 20, device_, counters_);
  EXPECT_EQ(cache.num_cached(), 4u);

  for (const VertexId v : {0, 1, 2, 3}) {
    for (const ViewMode mode : {ViewMode::kOld, ViewMode::kNew}) {
      std::uint32_t steps = 0;
      const auto cached = cache.lookup(v, mode, steps);
      ASSERT_TRUE(cached.has_value());
      std::vector<VertexId> from_cache, from_graph;
      materialize_view(*cached, from_cache);
      materialize_view(graph_.view(v, mode), from_graph);
      EXPECT_EQ(from_cache, from_graph) << "v=" << v;
    }
  }
}

TEST_F(DcsrTest, MissReturnsNullopt) {
  DcsrCache cache;
  cache.build(graph_, {1, 3}, 1 << 20, device_, counters_);
  std::uint32_t steps = 0;
  EXPECT_FALSE(cache.lookup(0, ViewMode::kNew, steps).has_value());
  EXPECT_FALSE(cache.lookup(5, ViewMode::kNew, steps).has_value());
  EXPECT_TRUE(cache.lookup(3, ViewMode::kNew, steps).has_value());
}

TEST_F(DcsrTest, BudgetDropsLowPriorityVertices) {
  // Priority order: 3 first. Budget that fits only a couple of lists.
  DcsrCache cache;
  const std::uint64_t tiny =
      graph_.list_bytes(3) + 3 * (sizeof(VertexId) + 16);
  cache.build(graph_, {3, 0, 1, 2, 4, 5}, tiny, device_, counters_);
  EXPECT_GE(cache.num_cached(), 1u);
  std::uint32_t steps = 0;
  EXPECT_TRUE(cache.lookup(3, ViewMode::kNew, steps).has_value());
  EXPECT_LT(cache.num_cached(), 6u);
}

TEST_F(DcsrTest, SingleDmaTransaction) {
  DcsrCache cache;
  cache.build(graph_, {0, 1, 2, 3, 4, 5}, 1 << 20, device_, counters_);
  const auto t = counters_.snapshot();
  EXPECT_EQ(t.dma_calls, 1u);
  EXPECT_EQ(t.dma_bytes, cache.blob_bytes());
}

TEST_F(DcsrTest, DeduplicatesInput) {
  DcsrCache cache;
  cache.build(graph_, {2, 2, 2, 1}, 1 << 20, device_, counters_);
  EXPECT_EQ(cache.num_cached(), 2u);
}

TEST_F(DcsrTest, EmptySelection) {
  DcsrCache cache;
  cache.build(graph_, {}, 1 << 20, device_, counters_);
  EXPECT_TRUE(cache.empty());
  std::uint32_t steps = 0;
  EXPECT_FALSE(cache.lookup(0, ViewMode::kNew, steps).has_value());
}

// -------------------------------------------------------- policies --------

TEST(AccessPolicy, ZeroCopyChargesLines) {
  DynamicGraph g(CsrGraph::from_edges(3, {{0, 1}, {0, 2}}));
  gpusim::SimParams params;
  ZeroCopyPolicy policy(g, params);
  gpusim::TrafficCounters c;
  policy.fetch(0, ViewMode::kNew, c);
  const auto t = c.snapshot();
  EXPECT_GE(t.zero_copy_lines, 1u);
  EXPECT_EQ(t.zero_copy_bytes, 2 * sizeof(VertexId));
  EXPECT_EQ(t.device_bytes, 0u);
}

TEST(AccessPolicy, CachedHitUsesDeviceMissFallsBack) {
  DynamicGraph g(CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}));
  gpusim::Device device;
  gpusim::TrafficCounters build_c;
  DcsrCache cache;
  cache.build(g, {0}, 1 << 20, device, build_c);

  gpusim::SimParams params;
  CachedPolicy policy(g, cache, params);
  gpusim::TrafficCounters c;
  policy.fetch(0, ViewMode::kNew, c);  // hit
  auto t = c.snapshot();
  EXPECT_EQ(t.cache_hits, 1u);
  EXPECT_EQ(t.zero_copy_lines, 0u);
  EXPECT_GT(t.device_bytes, 0u);

  policy.fetch(1, ViewMode::kNew, c);  // miss
  t = c.snapshot();
  EXPECT_EQ(t.cache_misses, 1u);
  EXPECT_GE(t.zero_copy_lines, 1u);
}

TEST(AccessPolicy, UnifiedMemoryFaultsOnceThenHits) {
  DynamicGraph g(CsrGraph::from_edges(3, {{0, 1}, {0, 2}}));
  gpusim::SimParams params;
  UnifiedMemoryPolicy policy(g, params);
  gpusim::TrafficCounters c;
  policy.fetch(0, ViewMode::kNew, c);
  policy.fetch(0, ViewMode::kNew, c);
  const auto t = c.snapshot();
  EXPECT_GE(t.um_faults, 1u);
  EXPECT_GE(t.um_hits, 1u);
}

TEST(AccessPolicy, CountingPolicyRecordsPerVertexCounts) {
  DynamicGraph g(CsrGraph::from_edges(3, {{0, 1}, {1, 2}}));
  CountingPolicy policy(g);
  gpusim::TrafficCounters c;
  policy.fetch(1, ViewMode::kNew, c);
  policy.fetch(1, ViewMode::kOld, c);
  policy.fetch(2, ViewMode::kNew, c);
  const auto counts = policy.access_counts();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

// ---------------------------------------------------- cache selection -----

TEST(CacheSelection, ByFrequencyDescendingPositiveOnly) {
  const std::vector<double> freq{0.0, 5.0, 2.0, 0.0, 9.0};
  const auto sel = select_by_frequency(freq);
  EXPECT_EQ(sel, (std::vector<VertexId>{4, 1, 2}));
}

TEST(CacheSelection, ByDegreeDescending) {
  DynamicGraph g(CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}));
  const auto sel = select_by_degree(g);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_EQ(sel[0], 0);  // degree 3
  EXPECT_EQ(sel[3], 3);  // degree 1
}

TEST(CacheSelection, KhopCoversNeighborhood) {
  // Path 0-1-2-3-4; batch touches edge (0,1).
  DynamicGraph g(CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  EdgeBatch batch;
  batch.updates.push_back({0, 1, -1});
  const auto k0 = khop_vertices(g, batch, 0);
  EXPECT_EQ(std::set<VertexId>(k0.begin(), k0.end()),
            (std::set<VertexId>{0, 1}));
  const auto k1 = khop_vertices(g, batch, 1);
  EXPECT_EQ(std::set<VertexId>(k1.begin(), k1.end()),
            (std::set<VertexId>{0, 1, 2}));
  const auto k3 = khop_vertices(g, batch, 3);
  EXPECT_EQ(std::set<VertexId>(k3.begin(), k3.end()),
            (std::set<VertexId>{0, 1, 2, 3, 4}));
}

// -------------------------------------------- engine vs reference ---------

class EngineVsReference : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsReference, FullMatchCountsAgree) {
  Rng rng(100 + GetParam());
  const CsrGraph g = generate_erdos_renyi(60, 240, 3, rng);
  DynamicGraph dyn(g);
  const QueryGraph q = make_pattern(GetParam());

  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  const MatchStats stats = engine.match_full(dyn, policy, c);
  EXPECT_EQ(stats.positive, reference_count_embeddings(g, q))
      << "pattern " << q.name();
  EXPECT_EQ(stats.negative, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, EngineVsReference,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Engine, TriangleCountOnKnownGraph) {
  // K4 has 4 triangles = 24 embeddings.
  const CsrGraph k4 =
      CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  DynamicGraph dyn(k4);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  EXPECT_EQ(engine.match_full(dyn, policy, c).positive, 24u);
  EXPECT_EQ(count_automorphisms(make_triangle()), 6u);  // 24/6 = 4 triangles
}

TEST(Engine, LabelsRestrictMatches) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}},
                                          {0, 0, 1});
  DynamicGraph dyn(g);
  const QueryGraph labeled =
      QueryGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 0, 1});
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(labeled, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;
  // Query vertex 2 must map to data vertex 2; vertices 0,1 to {0,1}: 2 ways.
  EXPECT_EQ(engine.match_full(dyn, policy, c).positive, 2u);
}

// --------------------------------------- incremental delta identity -------

// The central correctness property: for any batch, the signed incremental
// count equals full(G_{k+1}) - full(G_k).
void check_incremental_identity(const CsrGraph& initial,
                                const std::vector<EdgeBatch>& batches,
                                const QueryGraph& q, std::uint64_t seed) {
  (void)seed;
  DynamicGraph dyn(initial);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;

  std::int64_t expected =
      static_cast<std::int64_t>(reference_count_embeddings(initial, q));

  for (const EdgeBatch& batch : batches) {
    dyn.apply_batch(batch);
    const MatchStats stats = engine.match_batch(dyn, batch, policy, c);
    expected += stats.signed_embeddings;
    dyn.reorganize();
    const std::int64_t actual = static_cast<std::int64_t>(
        reference_count_embeddings(dyn.to_csr(), q));
    ASSERT_EQ(actual, expected)
        << "drift after batch for pattern " << q.name();
  }
}

TEST(Incremental, IdentityOnFig1Example) {
  // The paper's running example (Fig. 1): data graph G_0 with one diamond
  // match; inserting edges creates a second one.
  const QueryGraph q = make_fig1_diamond();
  const CsrGraph g0 = CsrGraph::from_edges(
      7, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {5, 6}});
  EdgeBatch batch;
  batch.updates.push_back({5, 3, +1});
  batch.updates.push_back({6, 3, +1});
  check_incremental_identity(g0, {batch}, q, 0);
}

TEST(Incremental, IdentitySmallRandomGraphsAllPatterns) {
  for (int p = 1; p <= 6; ++p) {
    Rng rng(500 + p);
    const CsrGraph g = generate_erdos_renyi(40, 160, 2, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = 60;
    opt.batch_size = 20;
    opt.seed = 600 + p;
    const UpdateStream stream = make_update_stream(g, opt);
    check_incremental_identity(stream.initial, stream.batches,
                               make_pattern(p), 0);
  }
}

TEST(Incremental, IdentityTriangleDenseGraph) {
  Rng rng(700);
  const CsrGraph g = generate_erdos_renyi(30, 200, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 80;
  opt.batch_size = 16;
  opt.seed = 701;
  const UpdateStream stream = make_update_stream(g, opt);
  check_incremental_identity(stream.initial, stream.batches, make_triangle(),
                             0);
}

TEST(Incremental, IdentityWithNewVertices) {
  const CsrGraph g0 = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}},
                                           {0, 0, 0, 0});
  DynamicGraph dyn(g0);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;

  EdgeBatch batch;
  batch.new_vertex_labels.emplace_back(4, 0);
  batch.updates.push_back({3, 4, +1});
  batch.updates.push_back({0, 4, +1});
  batch.updates.push_back({0, 3, +1});
  batch.updates.push_back({3, 4, -1});  // would be invalid: inserted above
  batch.updates.pop_back();

  dyn.apply_batch(batch);
  const MatchStats stats = engine.match_batch(dyn, batch, policy, c);
  dyn.reorganize();
  const std::int64_t before =
      static_cast<std::int64_t>(reference_count_embeddings(g0, make_triangle()));
  const std::int64_t after = static_cast<std::int64_t>(
      reference_count_embeddings(dyn.to_csr(), make_triangle()));
  EXPECT_EQ(before + stats.signed_embeddings, after);
  EXPECT_GT(stats.positive, 0u);  // triangle 0-3-4 appeared
}

TEST(Incremental, PureDeletionBatch) {
  // K4 minus one edge loses embeddings.
  const CsrGraph k4 = CsrGraph::from_edges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  DynamicGraph dyn(k4);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;

  EdgeBatch batch;
  batch.updates.push_back({0, 1, -1});
  dyn.apply_batch(batch);
  const MatchStats stats = engine.match_batch(dyn, batch, policy, c);
  dyn.reorganize();
  // Triangles through edge (0,1): {0,1,2} and {0,1,3} -> 12 embeddings lost.
  EXPECT_EQ(stats.signed_embeddings, -12);
  EXPECT_EQ(stats.positive, 0u);
  EXPECT_EQ(stats.negative, 12u);
}

TEST(Incremental, MatchSinkReceivesSignedBindings) {
  const CsrGraph g0 = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  DynamicGraph dyn(g0);
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(make_triangle(), exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;

  EdgeBatch batch;
  batch.updates.push_back({0, 2, +1});  // completes the triangle
  dyn.apply_batch(batch);

  std::vector<int> signs;
  std::vector<std::set<VertexId>> bindings;
  MatchSink sink = [&](const MatchPlan&, std::span<const VertexId> b,
                       int sign) {
    signs.push_back(sign);
    bindings.emplace_back(b.begin(), b.end());
  };
  const MatchStats stats = engine.match_batch(dyn, batch, policy, c, &sink);
  EXPECT_EQ(stats.positive, static_cast<std::uint64_t>(signs.size()));
  // All six embeddings of the single new triangle {0,1,2}.
  EXPECT_EQ(signs.size(), 6u);
  for (const auto& b : bindings) {
    EXPECT_EQ(b, (std::set<VertexId>{0, 1, 2}));
  }
}

// --------------------------------- engine across all access policies ------

TEST(Engine, AllPoliciesGiveSameCounts) {
  Rng rng(800);
  const CsrGraph g = generate_barabasi_albert(300, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 200;
  opt.batch_size = 200;
  opt.seed = 801;
  const UpdateStream stream = make_update_stream(g, opt);
  const QueryGraph q = make_pattern(1);

  auto run = [&](auto make_policy) {
    DynamicGraph dyn(stream.initial);
    dyn.apply_batch(stream.batches[0]);
    gpusim::SimtExecutor exec(2);
    MatchEngine engine(q, exec);
    gpusim::TrafficCounters c;
    auto policy = make_policy(dyn);
    return engine.match_batch(dyn, stream.batches[0], *policy, c)
        .signed_embeddings;
  };

  gpusim::SimParams params;
  const std::int64_t host = run([&](DynamicGraph& dyn) {
    return std::make_unique<HostPolicy>(dyn);
  });
  const std::int64_t zc = run([&](DynamicGraph& dyn) {
    return std::make_unique<ZeroCopyPolicy>(dyn, params);
  });
  const std::int64_t um = run([&](DynamicGraph& dyn) {
    return std::make_unique<UnifiedMemoryPolicy>(dyn, params);
  });
  EXPECT_EQ(host, zc);
  EXPECT_EQ(host, um);
}

TEST(Engine, CachedPolicyMatchesHostCounts) {
  Rng rng(900);
  const CsrGraph g = generate_barabasi_albert(200, 4, 2, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 150;
  opt.batch_size = 150;
  opt.seed = 901;
  const UpdateStream stream = make_update_stream(g, opt);
  const QueryGraph q = make_pattern(2);

  DynamicGraph dyn_a(stream.initial);
  dyn_a.apply_batch(stream.batches[0]);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  gpusim::TrafficCounters c;
  HostPolicy host(dyn_a);
  const std::int64_t expect =
      engine.match_batch(dyn_a, stream.batches[0], host, c)
          .signed_embeddings;

  DynamicGraph dyn_b(stream.initial);
  dyn_b.apply_batch(stream.batches[0]);
  gpusim::Device device;
  DcsrCache cache;
  // Cache a subset only: half of the vertices, so hits AND misses occur.
  std::vector<VertexId> some;
  for (VertexId v = 0; v < dyn_b.num_vertices(); v += 2) some.push_back(v);
  cache.build(dyn_b, some, 1 << 24, device, c);
  gcsm::gpusim::SimParams params;
  CachedPolicy cached(dyn_b, cache, params);
  const MatchStats stats =
      engine.match_batch(dyn_b, stream.batches[0], cached, c);
  EXPECT_EQ(stats.signed_embeddings, expect);
  const auto t = c.snapshot();
  EXPECT_GT(t.cache_hits, 0u);
  EXPECT_GT(t.cache_misses, 0u);
}

// --------------------------------------------------- RapidFlow-like -------

TEST(RapidFlowLike, MatchesEngineCounts) {
  Rng rng(1000);
  const CsrGraph g = generate_barabasi_albert(150, 4, 3, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 120;
  opt.batch_size = 40;
  opt.seed = 1001;
  const UpdateStream stream = make_update_stream(g, opt);
  const QueryGraph q = make_pattern(1);

  RapidFlowLikeEngine rf(stream.initial, q);

  DynamicGraph dyn(stream.initial);
  gpusim::SimtExecutor exec(2);
  MatchEngine engine(q, exec);
  HostPolicy policy(dyn);
  gpusim::TrafficCounters c;

  for (const EdgeBatch& batch : stream.batches) {
    const auto rf_report = rf.process_batch(batch);
    dyn.apply_batch(batch);
    const MatchStats stats = engine.match_batch(dyn, batch, policy, c);
    dyn.reorganize();
    EXPECT_EQ(rf_report.stats.signed_embeddings, stats.signed_embeddings);
  }
}

TEST(RapidFlowLike, IndexFiltersByLabelAndDegree) {
  const CsrGraph g = CsrGraph::from_edges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}, {0, 0, 1, 1});
  DynamicGraph dyn(g);
  const QueryGraph q =
      QueryGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 0, 1});
  CandidateIndex index(q, dyn);
  // Query vertex 0: label 0, degree 2 -> data vertices 0 and 1.
  EXPECT_TRUE(index.admits(0, 0));
  EXPECT_TRUE(index.admits(0, 1));
  EXPECT_FALSE(index.admits(0, 2));  // wrong label
  // Query vertex 2: label 1, degree 2 -> vertex 2 (deg 2) not 3 (deg 1).
  EXPECT_TRUE(index.admits(2, 2));
  EXPECT_FALSE(index.admits(2, 3));
  EXPECT_EQ(index.count(0), 2u);
  EXPECT_GT(index.memory_bytes(), 0u);
}

TEST(RapidFlowLike, IndexRefreshTracksDegreeChanges) {
  const CsrGraph g =
      CsrGraph::from_edges(4, {{0, 1}, {1, 2}}, {0, 0, 0, 0});
  DynamicGraph dyn(g);
  const QueryGraph q = make_triangle();  // every vertex needs degree >= 2
  CandidateIndex index(q, dyn);
  EXPECT_FALSE(index.admits(0, 0));  // degree 1
  EXPECT_TRUE(index.admits(0, 1));   // degree 2

  EdgeBatch batch;
  batch.updates.push_back({0, 3, +1});
  dyn.apply_batch(batch);
  index.refresh(dyn, batch);
  EXPECT_TRUE(index.admits(0, 0));  // now degree 2
  dyn.reorganize();
}

}  // namespace
}  // namespace gcsm
