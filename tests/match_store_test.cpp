#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/match_store.hpp"
#include "core/pipeline.hpp"
#include "core/reference_matcher.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/error.hpp"

namespace gcsm {
namespace {

TEST(MatchStore, CanonicalizationCollapsesAutomorphicEmbeddings) {
  MatchStore store(make_triangle());
  EXPECT_EQ(store.automorphisms(), 6u);
  // All 6 embeddings of triangle {3, 7, 9}.
  const VertexId verts[3] = {3, 7, 9};
  VertexId perm[3] = {0, 1, 2};
  std::vector<VertexId> e(3);
  std::sort(perm, perm + 3);
  do {
    for (int i = 0; i < 3; ++i) e[i] = verts[perm[i]];
    store.apply(std::span<const VertexId>(e.data(), 3), +1);
  } while (std::next_permutation(perm, perm + 3));

  EXPECT_EQ(store.embedding_count(), 6);
  EXPECT_EQ(store.subgraph_count(), 1u);
  const std::vector<VertexId> probe{9, 3, 7};
  EXPECT_TRUE(store.contains(std::span<const VertexId>(probe.data(), 3)));
  const auto subs = store.subgraphs();
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], (std::vector<VertexId>{3, 7, 9}));
}

TEST(MatchStore, RemovalClearsSubgraph) {
  MatchStore store(make_path(1));  // single edge, |Aut| = 2
  const std::vector<VertexId> a{1, 2};
  const std::vector<VertexId> b{2, 1};
  store.apply(std::span<const VertexId>(a.data(), 2), +1);
  store.apply(std::span<const VertexId>(b.data(), 2), +1);
  EXPECT_EQ(store.subgraph_count(), 1u);
  store.apply(std::span<const VertexId>(a.data(), 2), -1);
  store.apply(std::span<const VertexId>(b.data(), 2), -1);
  EXPECT_EQ(store.subgraph_count(), 0u);
  EXPECT_EQ(store.embedding_count(), 0);
  EXPECT_FALSE(store.contains(std::span<const VertexId>(a.data(), 2)));
}

TEST(MatchStore, OutOfOrderCancellationIsHarmless) {
  // Within a batch the engine may emit - before + for a transient pair.
  MatchStore store(make_path(1));
  const std::vector<VertexId> a{5, 6};
  store.apply(std::span<const VertexId>(a.data(), 2), -1);
  EXPECT_EQ(store.embedding_count(), -1);
  store.apply(std::span<const VertexId>(a.data(), 2), +1);
  EXPECT_EQ(store.embedding_count(), 0);
  EXPECT_EQ(store.subgraph_count(), 0u);
}

TEST(MatchStore, RejectsWrongArity) {
  MatchStore store(make_triangle());
  const std::vector<VertexId> bad{1, 2};
  EXPECT_THROW(store.apply(std::span<const VertexId>(bad.data(), 2), +1),
               Error);
}

TEST(MatchStore, TracksStreamAgainstReferenceEnumeration) {
  // Seed the store with the initial matches, stream several batches through
  // a pipeline, and check the maintained subgraph set equals a from-scratch
  // enumeration after every batch.
  Rng rng(321);
  const CsrGraph base = generate_erdos_renyi(40, 170, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 90;
  opt.batch_size = 30;
  opt.seed = 322;
  const UpdateStream stream = make_update_stream(base, opt);
  const QueryGraph q = make_triangle();

  MatchStore store(q);
  // Seed with initial matches.
  for (const auto& arr : reference_list_embeddings(stream.initial, q)) {
    std::vector<VertexId> e(arr.begin(), arr.begin() + q.num_vertices());
    store.apply(std::span<const VertexId>(e.data(), e.size()), +1);
  }

  PipelineOptions popt;
  popt.kind = EngineKind::kCpu;
  popt.workers = 2;
  Pipeline pipe(stream.initial, q, popt);
  const MatchSink sink = store.sink();

  for (const EdgeBatch& batch : stream.batches) {
    pipe.process_batch(batch, &sink);
    // Reference: all current subgraphs, canonicalized as sorted sets.
    std::set<std::vector<VertexId>> expected;
    for (const auto& arr :
         reference_list_embeddings(pipe.graph().to_csr(), q)) {
      std::vector<VertexId> e(arr.begin(), arr.begin() + q.num_vertices());
      std::sort(e.begin(), e.end());
      expected.insert(e);
    }
    ASSERT_EQ(store.subgraph_count(), expected.size());
    ASSERT_EQ(store.embedding_count(),
              static_cast<std::int64_t>(expected.size() *
                                        store.automorphisms()));
    for (auto sub : store.subgraphs()) {
      std::sort(sub.begin(), sub.end());
      ASSERT_TRUE(expected.count(sub));
    }
  }
}

TEST(MatchStore, ClearResetsEverything) {
  MatchStore store(make_triangle());
  const std::vector<VertexId> e{1, 2, 3};
  store.apply(std::span<const VertexId>(e.data(), 3), +1);
  store.clear();
  EXPECT_EQ(store.embedding_count(), 0);
  EXPECT_EQ(store.subgraph_count(), 0u);
  EXPECT_FALSE(store.contains(std::span<const VertexId>(e.data(), 3)));
}

TEST(EmbeddingFromBinding, ReordersByPlanOrder) {
  const QueryGraph q = make_fig1_diamond();
  const MatchPlan plan = make_delta_plan(q, 2);
  std::vector<VertexId> binding(q.num_vertices());
  for (std::size_t i = 0; i < binding.size(); ++i) {
    binding[i] = static_cast<VertexId>(100 + i);
  }
  const auto embedding = embedding_from_binding(
      plan, std::span<const VertexId>(binding.data(), binding.size()));
  for (std::size_t pos = 0; pos < binding.size(); ++pos) {
    EXPECT_EQ(embedding[plan.vertex_order[pos]], binding[pos]);
  }
}

}  // namespace
}  // namespace gcsm
