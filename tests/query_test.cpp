#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/automorphism.hpp"
#include "query/motifs.hpp"
#include "query/patterns.hpp"
#include "query/plan.hpp"
#include "query/query_graph.hpp"
#include "util/error.hpp"

namespace gcsm {
namespace {

// --------------------------------------------------------- QueryGraph -----

TEST(QueryGraph, EdgesCanonicallyNumbered) {
  const QueryGraph q =
      QueryGraph::from_edges(4, {{3, 1}, {0, 2}, {1, 0}, {2, 3}});
  const auto& edges = q.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].id, i);
    EXPECT_LT(edges[i].a, edges[i].b);
    if (i > 0) {
      EXPECT_TRUE(edges[i - 1].a < edges[i].a ||
                  (edges[i - 1].a == edges[i].a &&
                   edges[i - 1].b < edges[i].b));
    }
  }
}

TEST(QueryGraph, AdjacencyAndDegree) {
  const QueryGraph q = make_pattern(1);  // house
  EXPECT_EQ(q.num_vertices(), 5u);
  EXPECT_EQ(q.num_edges(), 6u);
  EXPECT_TRUE(q.adjacent(0, 1));
  EXPECT_TRUE(q.adjacent(1, 0));
  EXPECT_FALSE(q.adjacent(2, 4));
  EXPECT_EQ(q.degree(0), 3u);
  EXPECT_EQ(q.degree(4), 2u);
}

TEST(QueryGraph, RejectsBadInput) {
  EXPECT_THROW(QueryGraph::from_edges(9, {{0, 1}}), Error);
  EXPECT_THROW(QueryGraph::from_edges(3, {{0, 0}}), Error);
  EXPECT_THROW(QueryGraph::from_edges(3, {{0, 1}, {1, 0}}),
               Error);
  EXPECT_THROW(QueryGraph::from_edges(3, {{0, 5}}), Error);
}

TEST(QueryGraph, LabelsAndWildcard) {
  const QueryGraph q = QueryGraph::from_edges(2, {{0, 1}}, {3, -1});
  EXPECT_TRUE(q.label_matches(0, 3));
  EXPECT_FALSE(q.label_matches(0, 4));
  EXPECT_TRUE(q.label_matches(1, 0));
  EXPECT_TRUE(q.label_matches(1, 42));
}

TEST(QueryGraph, Connectivity) {
  EXPECT_TRUE(make_triangle().connected());
  const QueryGraph disconnected =
      QueryGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(disconnected.connected());
}

TEST(QueryGraph, Diameter) {
  EXPECT_EQ(make_triangle().diameter(), 1u);
  EXPECT_EQ(make_path(4).diameter(), 4u);
  EXPECT_EQ(make_cycle(6).diameter(), 3u);
  EXPECT_EQ(make_clique(5).diameter(), 1u);
  EXPECT_EQ(make_star(5).diameter(), 2u);
}

TEST(QueryGraph, CanonicalCodeDetectsIsomorphism) {
  const QueryGraph p1 = QueryGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const QueryGraph p2 = QueryGraph::from_edges(4, {{2, 0}, {0, 3}, {3, 1}});
  EXPECT_EQ(p1.canonical_code(), p2.canonical_code());
  const QueryGraph star = QueryGraph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NE(p1.canonical_code(), star.canonical_code());
}

// ------------------------------------------------------- automorphism -----

TEST(Automorphism, KnownCounts) {
  EXPECT_EQ(count_automorphisms(make_triangle()), 6u);    // S3
  EXPECT_EQ(count_automorphisms(make_clique(4)), 24u);    // S4
  EXPECT_EQ(count_automorphisms(make_path(2)), 2u);       // flip
  EXPECT_EQ(count_automorphisms(make_cycle(4)), 8u);      // dihedral D4
  EXPECT_EQ(count_automorphisms(make_cycle(5)), 10u);     // D5
  EXPECT_EQ(count_automorphisms(make_star(4)), 24u);      // leaf perms
  EXPECT_EQ(count_automorphisms(make_fig1_diamond()), 4u);
}

TEST(Automorphism, LabelsBreakSymmetry) {
  const QueryGraph plain = make_triangle();
  const QueryGraph labeled =
      QueryGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 0, 1});
  EXPECT_EQ(count_automorphisms(plain), 6u);
  EXPECT_EQ(count_automorphisms(labeled), 2u);  // only swap of the two 0s
}

TEST(Automorphism, ListMatchesCount) {
  const QueryGraph q = make_cycle(4);
  const auto autos = list_automorphisms(q);
  EXPECT_EQ(autos.size(), count_automorphisms(q));
  // Every listed permutation preserves adjacency.
  for (const auto& perm : autos) {
    for (std::uint32_t i = 0; i < q.num_vertices(); ++i) {
      for (std::uint32_t j = i + 1; j < q.num_vertices(); ++j) {
        EXPECT_EQ(q.adjacent(i, j), q.adjacent(perm[i], perm[j]));
      }
    }
  }
}

// ------------------------------------------------------------ patterns ----

TEST(Patterns, AllSixWellFormed) {
  const auto patterns = all_patterns();
  ASSERT_EQ(patterns.size(), 6u);
  const std::uint32_t expected_sizes[6] = {5, 5, 6, 6, 7, 7};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(patterns[i].num_vertices(), expected_sizes[i])
        << patterns[i].name();
    EXPECT_TRUE(patterns[i].connected()) << patterns[i].name();
    EXPECT_GE(patterns[i].num_edges(), patterns[i].num_vertices() - 1)
        << patterns[i].name();
  }
}

TEST(Patterns, RoundRobinLabels) {
  const QueryGraph q = with_round_robin_labels(make_pattern(3), 2);
  for (std::uint32_t u = 0; u < q.num_vertices(); ++u) {
    EXPECT_EQ(q.label(u), static_cast<Label>(u % 2));
  }
  EXPECT_EQ(q.num_edges(), make_pattern(3).num_edges());
}

TEST(Patterns, InvalidIndexThrows) {
  EXPECT_THROW(make_pattern(0), Error);
  EXPECT_THROW(make_pattern(7), Error);
}

// -------------------------------------------------------------- motifs ----

TEST(Motifs, KnownMotifCounts) {
  // Connected non-isomorphic graphs: 1 (n=2), 2 (n=3), 6 (n=4), 21 (n=5).
  EXPECT_EQ(all_motifs(2).size(), 1u);
  EXPECT_EQ(all_motifs(3).size(), 2u);
  EXPECT_EQ(all_motifs(4).size(), 6u);
  EXPECT_EQ(all_motifs(5).size(), 21u);
}

TEST(Motifs, AllConnectedAndDistinct) {
  for (std::uint32_t size = 3; size <= 5; ++size) {
    const auto motifs = all_motifs(size);
    std::set<std::uint64_t> codes;
    for (const QueryGraph& m : motifs) {
      EXPECT_TRUE(m.connected());
      EXPECT_EQ(m.num_vertices(), size);
      EXPECT_TRUE(codes.insert(m.canonical_code()).second)
          << "duplicate motif";
    }
  }
}

TEST(Motifs, SizeBoundsEnforced) {
  EXPECT_THROW(all_motifs(1), Error);
  EXPECT_THROW(all_motifs(7), Error);
}

// ---------------------------------------------------------------- plans ---

TEST(Plan, StaticPlanShape) {
  const QueryGraph q = make_fig1_diamond();
  const MatchPlan plan = make_static_plan(q);
  EXPECT_EQ(plan.seed_edge_id, 0u);
  EXPECT_EQ(plan.vertex_order.size(), q.num_vertices());
  EXPECT_EQ(plan.levels.size(), q.num_vertices() - 2);
  // Static plans read only NEW views.
  for (const PlanLevel& level : plan.levels) {
    for (const BackwardConstraint& c : level.constraints) {
      EXPECT_EQ(c.view, ViewMode::kNew);
    }
  }
}

TEST(Plan, VertexOrderIsPermutationAndConnected) {
  for (int i = 1; i <= 6; ++i) {
    const QueryGraph q = make_pattern(i);
    for (std::uint32_t e = 0; e < q.num_edges(); ++e) {
      const MatchPlan plan = make_delta_plan(q, e);
      std::set<std::uint32_t> seen(plan.vertex_order.begin(),
                                   plan.vertex_order.end());
      EXPECT_EQ(seen.size(), q.num_vertices());
      // Every ordered vertex beyond the seed connects backward.
      for (std::size_t pos = 2; pos < plan.vertex_order.size(); ++pos) {
        bool connected = false;
        for (std::size_t prev = 0; prev < pos; ++prev) {
          connected |= q.adjacent(plan.vertex_order[pos],
                                  plan.vertex_order[prev]);
        }
        EXPECT_TRUE(connected);
      }
    }
  }
}

TEST(Plan, DeltaViewRule) {
  // Constraint through query edge j must read OLD if j < i, NEW if j > i.
  for (int p = 1; p <= 6; ++p) {
    const QueryGraph q = make_pattern(p);
    for (std::uint32_t i = 0; i < q.num_edges(); ++i) {
      const MatchPlan plan = make_delta_plan(q, i);
      for (const PlanLevel& level : plan.levels) {
        for (const BackwardConstraint& c : level.constraints) {
          EXPECT_NE(c.query_edge_id, i);  // the seed edge is never re-read
          if (c.query_edge_id < i) {
            EXPECT_EQ(c.view, ViewMode::kOld);
          } else {
            EXPECT_EQ(c.view, ViewMode::kNew);
          }
        }
      }
    }
  }
}

TEST(Plan, EveryQueryEdgeCoveredExactlyOnce) {
  for (int p = 1; p <= 6; ++p) {
    const QueryGraph q = make_pattern(p);
    for (std::uint32_t i = 0; i < q.num_edges(); ++i) {
      const MatchPlan plan = make_delta_plan(q, i);
      std::set<std::uint32_t> covered{plan.seed_edge_id};
      for (const PlanLevel& level : plan.levels) {
        for (const BackwardConstraint& c : level.constraints) {
          EXPECT_TRUE(covered.insert(c.query_edge_id).second)
              << "edge " << c.query_edge_id << " covered twice";
        }
      }
      EXPECT_EQ(covered.size(), q.num_edges());
    }
  }
}

TEST(Plan, SeedEndpointsLeadTheOrder) {
  const QueryGraph q = make_pattern(4);
  for (std::uint32_t i = 0; i < q.num_edges(); ++i) {
    const MatchPlan plan = make_delta_plan(q, i);
    EXPECT_EQ(plan.vertex_order[0], plan.seed_a);
    EXPECT_EQ(plan.vertex_order[1], plan.seed_b);
    EXPECT_EQ(q.edges()[i].a, plan.seed_a);
    EXPECT_EQ(q.edges()[i].b, plan.seed_b);
  }
}

TEST(Plan, DeltaPlansOnePerEdge) {
  const QueryGraph q = make_pattern(2);
  const auto plans = make_delta_plans(q);
  EXPECT_EQ(plans.size(), q.num_edges());
  for (std::uint32_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].seed_edge_id, i);
  }
}

TEST(Plan, WeightedOrderPrefersLowWeight) {
  // Path 0-1-2-3: seeding edge (1,2); weights force 3 before 0 or the
  // reverse.
  const QueryGraph q = make_path(3);
  const std::uint32_t seed_edge = 1;  // edge (1,2)
  {
    const MatchPlan plan = make_delta_plan_weighted(
        q, seed_edge, {1000, 0, 0, 1});
    EXPECT_EQ(plan.vertex_order[2], 3u);
    EXPECT_EQ(plan.vertex_order[3], 0u);
  }
  {
    const MatchPlan plan = make_delta_plan_weighted(
        q, seed_edge, {1, 0, 0, 1000});
    EXPECT_EQ(plan.vertex_order[2], 0u);
    EXPECT_EQ(plan.vertex_order[3], 3u);
  }
}

TEST(Plan, DisconnectedQueryThrows) {
  const QueryGraph q = QueryGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(make_static_plan(q), Error);
}

TEST(Plan, DescribeMentionsViews) {
  const QueryGraph q = make_fig1_diamond();
  const MatchPlan plan = make_delta_plan(q, 2);
  const std::string desc = describe_plan(q, plan);
  EXPECT_NE(desc.find("N("), std::string::npos);   // some OLD view
  EXPECT_NE(desc.find("N'("), std::string::npos);  // some NEW view
}

}  // namespace
}  // namespace gcsm
