#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/binomial.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace gcsm {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.bounded(kBound)];
  for (const int h : hist) {
    EXPECT_NEAR(h, kDraws / kBound, kDraws / kBound * 0.15);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng base(42);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.next() == s2.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(9);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(9);
  EXPECT_EQ(rng.next(), first);
}

// ----------------------------------------------------------- binomial -----

TEST(Binomial, DegenerateCases) {
  Rng rng(1);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
  EXPECT_EQ(binomial(rng, 100, -0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.5), 100u);
}

TEST(Binomial, NeverExceedsTrials) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(binomial(rng, 13, 0.7), 13u);
  }
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(1234 + n);
  RunningStats stats;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    stats.add(static_cast<double>(binomial(rng, n, p)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1 - p);
  EXPECT_NEAR(stats.mean(), mean, 4 * std::sqrt(var / draws) + 1e-9);
  EXPECT_NEAR(stats.variance(), var, 0.08 * var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMoments,
    ::testing::Values(BinomialCase{1, 0.5}, BinomialCase{10, 0.1},
                      BinomialCase{10, 0.9}, BinomialCase{100, 0.02},
                      BinomialCase{100, 0.5}, BinomialCase{1000, 0.3},
                      BinomialCase{100000, 0.001},
                      BinomialCase{100000, 0.4}));

TEST(Binomial, TinyProbabilityMostlyZero) {
  Rng rng(77);
  int nonzero = 0;
  for (int i = 0; i < 10000; ++i) {
    if (binomial(rng, 1000, 1e-6) > 0) ++nonzero;
  }
  // E[nonzero] ~ 10000 * (1 - (1-1e-6)^1000) ~ 10.
  EXPECT_LT(nonzero, 40);
}

TEST(Binomial, InversionMatchesBtrsDistribution) {
  // Same (n, p) sampled by both internal algorithms should produce
  // statistically equal moments (n*p inside the BTRS regime).
  Rng r1(5);
  Rng r2(6);
  const std::uint64_t n = 64;
  const double p = 0.25;
  RunningStats a, b;
  for (int i = 0; i < 30000; ++i) {
    a.add(static_cast<double>(detail::binomial_inversion(r1, n, p)));
    b.add(static_cast<double>(detail::binomial_btrs(r2, n, p)));
  }
  EXPECT_NEAR(a.mean(), b.mean(), 0.15);
  EXPECT_NEAR(a.variance(), b.variance(), 0.8);
}

// --------------------------------------------------------- ThreadPool -----

TEST(ThreadPool, RunsBodyOnAllWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](std::size_t id) { hits[id]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10001;
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for(kN, 7, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) seen[i]++;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<bool> called{false};
  pool.parallel_for(0, 1, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called.load());
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, 10,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        total += static_cast<int>(e - b);
                      });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  int sum = 0;
  pool.parallel_for(10, 3, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

// -------------------------------------------------------------- stats -----

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(TopFractionShare, SkewedWeights) {
  // One heavy item out of 100 holding ~90% of the weight.
  std::vector<std::uint64_t> w(100, 1);
  w[42] = 900;
  EXPECT_NEAR(top_fraction_share(w, 0.01), 900.0 / 999.0, 1e-12);
  EXPECT_DOUBLE_EQ(top_fraction_share(w, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(top_fraction_share({}, 0.5), 0.0);
}

TEST(TopkCoverage, PerfectAndDisjoint) {
  std::vector<std::uint64_t> truth{100, 90, 80, 1, 1, 1};
  std::vector<double> est_good{99.0, 88.0, 77.0, 0.1, 0.1, 0.1};
  EXPECT_DOUBLE_EQ(topk_coverage(truth, est_good, 3), 1.0);
  std::vector<double> est_bad{0.1, 0.1, 0.1, 99.0, 88.0, 77.0};
  EXPECT_DOUBLE_EQ(topk_coverage(truth, est_bad, 3), 0.0);
}

// ---------------------------------------------------------------- cli -----

TEST(CliArgs, ParsesAllForms) {
  const char* argv[] = {"prog",    "--alpha=3",  "--beta", "7",
                        "--gamma", "positional", "--flag"};
  CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_EQ(args.get("gamma", ""), "positional");
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_FALSE(args.get_bool("absent"));
  EXPECT_EQ(args.get_int("absent", -5), -5);
}

TEST(CliArgs, DoubleAndDefaults) {
  const char* argv[] = {"prog", "--scale=0.25"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("other", 2.5), 2.5);
}

TEST(CliArgs, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--x=1", "two"};
  CliArgs args(4, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

}  // namespace
}  // namespace gcsm
